#!/usr/bin/env bash
# Tier-1 verification gate for the Rijndael IP workspace.
#
# Everything runs --locked --offline: the workspace has zero registry
# dependencies (see "Hermetic build policy" in README.md / DESIGN.md), so
# a clean checkout must format-check, lint, build and test with no
# network access and no lockfile drift.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets --locked --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --locked --offline

echo "==> cargo test"
cargo test -q --workspace --locked --offline

echo "==> OK: hermetic verify passed"

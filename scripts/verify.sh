#!/usr/bin/env bash
# Tier-1 verification gate for the Rijndael IP workspace.
#
# Everything runs --locked --offline: the workspace has zero registry
# dependencies (see "Hermetic build policy" in README.md / DESIGN.md), so
# a clean checkout must format-check, lint, build and test with no
# network access and no lockfile drift.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets --locked --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --locked --offline

echo "==> cargo test"
cargo test -q --workspace --locked --offline

echo "==> telemetry spine tests"
cargo test -q -p rijndael-telemetry --locked --offline

echo "==> engine subsystem tests"
cargo test -q -p rijndael-engine --locked --offline
cargo test -q --test engine_equivalence --locked --offline

echo "==> worker-pool concurrency stress (resize + hot-swap under load)"
cargo test -q -p rijndael-engine --test engine_concurrency --locked --offline
# One pass with the dispatcher pinned: the Auto-built workers must keep
# every invariant when they all resolve to the T-table backend.
RIJNDAEL_FORCE_BACKEND=ttable \
    cargo test -q -p rijndael-engine --test engine_concurrency --locked --offline

echo "==> bitsliced backend cross-check"
cargo test -q --test bitslice_equivalence --locked --offline

echo "==> runtime dispatch gate (forced-backend sweep)"
# The force override is read once per process, so each backend gets a
# fresh process: the full equivalence sweep under the pin, then a live
# server round trip asserting GET_STATS reports the pinned name. Only
# targeted test binaries run here — the whole suite includes tests that
# legitimately assume an unpinned dispatch.
cargo build -q --release --locked --offline -p rijndael-bench --bin dispatch_probe
backends="$(target/release/dispatch_probe --list)"
[ -n "$backends" ] || { echo "dispatch_probe --list printed no backends" >&2; exit 1; }
for backend in $backends; do
    echo "    --> RIJNDAEL_FORCE_BACKEND=$backend"
    RIJNDAEL_FORCE_BACKEND="$backend" \
        cargo test -q --test bitslice_equivalence --locked --offline
    RIJNDAEL_FORCE_BACKEND="$backend" \
        cargo test -q --test aead_kats --locked --offline
    RIJNDAEL_FORCE_BACKEND="$backend" \
        target/release/dispatch_probe --check
done
echo "    --> unknown tokens must fail loudly"
if RIJNDAEL_FORCE_BACKEND=not-a-real-backend target/release/dispatch_probe --check \
    >/dev/null 2>&1; then
    echo "an unknown RIJNDAEL_FORCE_BACKEND token was silently accepted" >&2
    exit 1
fi

echo "==> dispatch force-override end-to-end test"
cargo test -q --test dispatch_force --locked --offline

echo "==> mode-trait equivalence tests"
cargo test -q --test mode_trait --locked --offline

echo "==> service subsystem tests (incl. GET_STATS round trip)"
cargo test -q -p rijndael-service --locked --offline
cargo test -q --test service_roundtrip --locked --offline

echo "==> service pipelining tests (v2 out-of-order + v1 compat)"
cargo test -q --test service_pipeline --locked --offline

echo "==> AEAD subsystem gate (NIST GCM / RFC 3394 / IEEE XTS KATs + service flow)"
cargo test -q --test aead_kats --locked --offline

echo "==> service load generator (smoke; 10k-connection hold + GET_STATS audit)"
load_out="$(mktemp)"
TESTKIT_BENCH_SMOKE=1 \
    cargo run -q --release --locked --offline -p rijndael-bench --bin service_load \
    | tee "$load_out"
grep -q "holding 10000 concurrent connections" "$load_out" \
    || { echo "service_load did not hold 10k connections" >&2; exit 1; }
grep -E -q "burst p50 +[0-9.]+.{0,2}s p99 +[0-9.]+.{0,2}s" "$load_out" \
    || { echo "service_load did not report burst p50/p99" >&2; exit 1; }
grep -E -q "dispatch p50 [0-9]+ us, p99 >?[0-9]+ us" "$load_out" \
    || { echo "service_load did not report event-loop p50/p99" >&2; exit 1; }
rm -f "$load_out"

echo "==> cluster subsystem tests (ring, router, drain migration, node loss)"
cargo test -q -p rijndael-cluster --locked --offline

echo "==> cluster load gate (smoke: >=2.5x paced 1->3 nodes, drain zero-loss, fleet audit)"
cluster_json="$(mktemp)"
trap 'rm -f "$cluster_json"' EXIT
BENCH_CLUSTER_JSON="$cluster_json" \
    cargo run -q --release --locked --offline -p rijndael-bench --bin cluster_load -- --smoke
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$cluster_json" \
    || { echo "cluster_load JSON is malformed" >&2; exit 1; }

echo "==> elastic scaling gate (smoke: >=2x paced 1->4 workers, resize step, autoscaled service)"
elastic_json="$(mktemp)"
trap 'rm -f "$cluster_json" "$elastic_json"' EXIT
BENCH_ELASTIC_JSON="$elastic_json" \
    cargo run -q --release --locked --offline -p rijndael-bench --bin elastic_scaling -- --smoke
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$elastic_json" \
    || { echo "elastic_scaling JSON is malformed" >&2; exit 1; }

echo "==> engine scaling report (smoke, backend race JSON)"
bench_json="$(mktemp)"
race_json="$(mktemp)"
trap 'rm -f "$cluster_json" "$elastic_json" "$bench_json" "$race_json"' EXIT
BENCH_BITSLICE_JSON="$race_json" \
    cargo run -q --release --locked --offline -p rijndael-bench --bin engine_scaling -- --smoke
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$race_json" \
    || { echo "engine_scaling backend-race JSON is malformed" >&2; exit 1; }

echo "==> AEAD throughput report (smoke: GCM-vs-CTR overhead gate + GHASH race)"
gcm_json="$(mktemp)"
trap 'rm -f "$cluster_json" "$elastic_json" "$bench_json" "$race_json" "$gcm_json"' EXIT
TESTKIT_BENCH_SMOKE=1 BENCH_GCM_JSON="$gcm_json" \
    cargo run -q --release --locked --offline -p rijndael-bench --bin aead_throughput
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$gcm_json" \
    || { echo "aead_throughput JSON is malformed" >&2; exit 1; }

echo "==> engine bench (smoke, JSON well-formedness)"
TESTKIT_BENCH_SMOKE=1 TESTKIT_BENCH_JSON="$bench_json" \
    cargo bench -q --locked --offline -p rijndael-bench --bench engine >/dev/null
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$bench_json" \
    || { echo "engine bench JSON is malformed" >&2; exit 1; }

echo "==> bitslice bench (smoke: no-alloc hot loops + JSON well-formedness)"
TESTKIT_BENCH_SMOKE=1 TESTKIT_BENCH_JSON="$bench_json" \
    cargo bench -q --locked --offline -p rijndael-bench --bench bitslice >/dev/null
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$bench_json" \
    || { echo "bitslice bench JSON is malformed" >&2; exit 1; }

echo "==> OK: hermetic verify passed"

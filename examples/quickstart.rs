//! Quickstart: load a key into the low-area AES-128 IP, push a block
//! through it, and check the result against the software reference.
//!
//! Run with `cargo run --example quickstart`.

use rijndael_ip::aes_ip::bus::IpDriver;
use rijndael_ip::aes_ip::core::{Direction, EncDecCore};
use rijndael_ip::rijndael::Aes128;

fn main() {
    // FIPS-197 Appendix C.1 key and plaintext.
    let key: [u8; 16] = core::array::from_fn(|i| i as u8);
    let plaintext: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);

    // The combined encrypt/decrypt device behind its bus interface.
    let mut ip = IpDriver::new(EncDecCore::new());
    ip.write_key(&key);
    println!(
        "key loaded ({} clock cycles incl. the decrypt key walk)",
        ip.cycles()
    );

    let before = ip.cycles();
    let ciphertext = ip
        .try_process_block(&plaintext, Direction::Encrypt)
        .expect("fresh keyed core accepts a block");
    println!(
        "encrypted one block in {} cycles (50-cycle latency + the load edge)",
        ip.cycles() - before
    );
    println!("ciphertext: {}", hex(&ciphertext));

    // Cross-check against the golden software model.
    let software = Aes128::new(&key);
    assert_eq!(ciphertext, software.encrypt_block(&plaintext));
    println!("matches the FIPS-197 software reference");

    // Same device, other direction.
    let recovered = ip
        .try_process_block(&ciphertext, Direction::Decrypt)
        .expect("combined device also decrypts");
    assert_eq!(recovered, plaintext);
    println!("decryption on the same device restores the plaintext");

    // What that means at the paper's clock rates (Table 2):
    for (family, clk_ns) in [("Acex1K", 17.0), ("Cyclone", 13.0)] {
        let latency_ns = clk_ns * 50.0;
        println!(
            "on {family} (combined device, {clk_ns} ns clock): {latency_ns:.0} ns/block, \
             {:.0} Mbps",
            128_000.0 / latency_ns
        );
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

//! Generates a VCD waveform of one key load + encryption on the RTL
//! mount of the IP — the ModelSim-style view of the paper's Figure 9
//! interface. Open the output in GTKWave.
//!
//! Run with `cargo run --example waveform [output.vcd]`.

use rijndael_ip::aes_ip::core::EncryptCore;
use rijndael_ip::aes_ip::rtl_mount::IpBench;

fn main() {
    // 14 ns clock: the paper's Acex1K encrypt device.
    let mut bench = IpBench::new(EncryptCore::new(), 7);
    bench.record_vcd("rijndael_ip");

    bench.write_key(&core::array::from_fn(|i| i as u8));
    bench.write_data(&core::array::from_fn(|i| (i as u8) * 0x11), false);
    bench.run_cycles(55);
    assert!(bench.data_ok(), "encryption must have finished");
    println!("dout = {:02x?}", bench.dout());

    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "rijndael_ip.vcd".to_string());
    match bench.save_vcd(&path) {
        Ok(()) => println!("waveform written to {path} — open it with GTKWave"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

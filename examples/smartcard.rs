//! The paper's low-cost scenario: "a low cost and small design can be
//! used in smart card applications". A card-reader session encrypts a
//! short EMV-style transaction record in CBC mode through the hardware
//! model, and the example reports the silicon the design needs on the
//! paper's low-cost device.
//!
//! Run with `cargo run --release --example smartcard`.

use rijndael_ip::aes_ip::bus::HardwareAes;
use rijndael_ip::aes_ip::core::{CoreVariant, EncDecCore};
use rijndael_ip::aes_ip::netlist_gen::{build_core_netlist, RomStyle};
use rijndael_ip::fpga::device::EP1K100;
use rijndael_ip::fpga::flow::{synthesize, FlowOptions};
use rijndael_ip::rijndael::cmac::{cmac, verify};
use rijndael_ip::rijndael::modes::{pkcs7_pad, pkcs7_unpad, Cbc};

fn main() {
    // --- the silicon ------------------------------------------------
    let netlist = build_core_netlist(CoreVariant::EncDec, RomStyle::Macro);
    let report = synthesize(&netlist, &EP1K100, &FlowOptions::default())
        .expect("the combined device fits the paper's Acex1K part");
    println!("smart-card profile on {}:", EP1K100.part);
    println!(
        "  {} logic cells ({:.0}%), {} memory bits ({:.0}%), {:.1} ns clock\n",
        report.fit.logic_cells,
        report.fit.logic_pct,
        report.fit.memory_bits,
        report.fit.memory_pct,
        report.clock_ns
    );

    // --- the session -------------------------------------------------
    let session_key = [0xC4u8; 16];
    let iv = [0x0Fu8; 16];
    let hw = HardwareAes::new(EncDecCore::new(), &session_key);

    let record = b"PAN=5413330089010434;AMT=004250;CUR=986;ARQC".to_vec();
    println!(
        "transaction record ({} bytes): {}",
        record.len(),
        String::from_utf8_lossy(&record)
    );

    let mut wire = record.clone();
    pkcs7_pad(&mut wire, 16);
    Cbc::encrypt(&hw, &iv, &mut wire).expect("padded to block multiple");
    println!("ciphertext ({} bytes): {}...", wire.len(), hex(&wire[..16]));

    let spent = hw.cycles();
    println!(
        "hardware cost: {} clock cycles total = {:.1} µs at the Acex1K clock",
        spent,
        spent as f64 * report.clock_ns / 1000.0
    );

    // The card also authenticates the ciphertext: AES-CMAC computed by
    // the same hardware core (no extra gates — CMAC is block encryptions).
    let tag = cmac(&hw, &wire);
    println!("AES-CMAC tag: {}", hex(&tag[..8]));

    // The terminal side verifies and decrypts with the same core model.
    assert!(verify(&hw, &wire, &tag), "MAC must verify");
    Cbc::decrypt(&hw, &iv, &mut wire).expect("block multiple");
    let body = pkcs7_unpad(&wire, 16).expect("valid padding");
    assert_eq!(&wire[..body], &record[..]);
    println!("terminal verifies the MAC, decrypts, and recovers the record intact");

    // A flipped ciphertext bit must be caught by the MAC.
    let mut tampered = wire.clone();
    Cbc::encrypt(&hw, &iv, &mut tampered).expect("block multiple");
    tampered[3] ^= 0x40;
    assert!(!verify(&hw, &tampered, &tag));
    println!("tampered ciphertext is rejected by the MAC");
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

//! The paper's high-throughput scenario: "at backbone communication
//! channels, or at heavily loaded server, it is not possible to lose
//! processing speed running cryptography algorithms in general software".
//!
//! A burst of packets is pushed through the encrypt-only device in
//! pipelined (full-rate) operation, and the sustained throughput is
//! reported at each family's Table 2 clock.
//!
//! Run with `cargo run --release --example backbone`.

use rijndael_ip::aes_ip::bus::IpDriver;
use rijndael_ip::aes_ip::core::{CycleCore, Direction, EncryptCore};
use rijndael_ip::rijndael::Aes128;

fn main() {
    let key = [0x3Cu8; 16];
    let mut link = IpDriver::new(EncryptCore::new());
    link.write_key(&key);

    // A burst of 64 blocks (1 KiB of traffic), written back-to-back so
    // the Data_In/Out decoupling keeps the engine at full rate.
    let burst: Vec<[u8; 16]> = (0..64u8)
        .map(|i| core::array::from_fn(|j| i.wrapping_mul(31).wrapping_add(j as u8)))
        .collect();

    let start = link.cycles();
    let ciphertexts = link
        .try_process_stream(&burst, Direction::Encrypt)
        .expect("keyed encrypt core streams the burst");
    let cycles = link.cycles() - start;

    // Verify the whole burst against software.
    let sw = Aes128::new(&key);
    for (pt, ct) in burst.iter().zip(&ciphertexts) {
        assert_eq!(*ct, sw.encrypt_block(pt), "hardware/software mismatch");
    }

    let per_block = cycles as f64 / burst.len() as f64;
    println!(
        "encrypted {} blocks in {} cycles ({:.1} cycles/block)",
        burst.len(),
        cycles,
        per_block
    );
    println!(
        "pipelining efficiency: {:.1}% of the theoretical 1 block / {} cycles\n",
        100.0 * link.core().latency_cycles() as f64 / per_block,
        link.core().latency_cycles()
    );

    println!("sustained line rate at the paper's clocks (encrypt-only device):");
    for (family, clk_ns) in [("Acex1K", 14.0), ("Cyclone", 10.0)] {
        let mbps = 128.0 * 1000.0 / (per_block * clk_ns);
        println!("  {family:<8} {clk_ns:>4.0} ns clock -> {mbps:>6.0} Mbps");
    }
    println!("\n(paper Table 2: 182 Mbps on Acex1K, 256 Mbps on Cyclone)");
}

//! Deterministic, seedable PRNG: xoshiro256** seeded through SplitMix64.
//!
//! This is the workspace's only randomness source. It is *not* a
//! cryptographic generator — it produces reproducible stimulus for
//! equivalence checking and benchmarks, where the requirement is that two
//! runs (or two machines) see byte-identical workloads. The generator and
//! its seeding discipline follow the published reference implementations
//! by Blackman/Vigna (public domain).

/// One step of SplitMix64: the stateless mixer used both to seed the main
/// generator and to derive independent per-case seeds in the property
/// harness.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** — 256 bits of state, period 2^256 − 1, passes BigCrush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Builds a generator whose full state is derived from `seed` via
    /// SplitMix64, as the xoshiro authors recommend (never seed the raw
    /// state directly: all-zero state is a fixed point).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly distributed bits (upper half of a 64-bit draw —
    /// the low bits of xoshiro** are fine, but the high half is the
    /// conventional choice).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 128 uniformly distributed bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Fills `dest` with uniformly distributed bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// A uniformly distributed byte.
    pub fn gen_byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// A uniformly distributed byte array (e.g. a random AES block or key:
    /// `rng.gen_array::<16>()`).
    pub fn gen_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        self.fill_bytes(&mut out);
        out
    }

    /// A uniformly distributed byte vector of length `len`.
    pub fn gen_vec(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.fill_bytes(&mut out);
        out
    }

    /// Uniform draw from `[0, bound)` by rejection sampling (no modulo
    /// bias). `bound` must be non-zero.
    pub fn gen_index(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_index bound must be non-zero");
        // Zone is the largest multiple of `bound` that fits in u64.
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform draw from a half-open `usize` range, matching the shape of
    /// the `rand` call sites this kit replaces.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = (range.end - range.start) as u64;
        range.start + self.gen_index(span) as usize
    }

    /// Uniform draw from an inclusive `usize` range.
    pub fn gen_range_inclusive(&mut self, range: std::ops::RangeInclusive<usize>) -> usize {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "gen_range_inclusive on empty range");
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as usize;
        }
        lo + self.gen_index(span + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First three outputs for seed 0, from the published SplitMix64
        // reference implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(0xDA7E_2003);
        let mut b = Rng::seed_from_u64(0xDA7E_2003);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a.gen_array::<16>(), b.gen_array::<16>());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut rng = Rng::seed_from_u64(7);
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 33] {
            let v = rng.gen_vec(len);
            assert_eq!(v.len(), len);
        }
    }

    #[test]
    fn fill_bytes_prefix_is_stable() {
        // The first `len` bytes of a fill must not depend on the buffer
        // length rounding (chunked little-endian draw).
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let long = a.gen_vec(16);
        let short = b.gen_vec(8);
        assert_eq!(&long[..8], &short[..]);
    }

    #[test]
    fn gen_index_is_in_bounds_and_hits_everything() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let i = rng.gen_index(10) as usize;
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(5..9);
            assert!((5..9).contains(&v));
            let w = rng.gen_range_inclusive(0..=10);
            assert!(w <= 10);
        }
    }

    #[test]
    fn bytes_look_uniform_enough() {
        // Crude sanity: all 256 byte values appear in 16 KiB of output.
        let mut rng = Rng::seed_from_u64(0xAE5);
        let mut seen = [false; 256];
        for b in rng.gen_vec(16 * 1024) {
            seen[b as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

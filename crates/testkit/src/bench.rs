//! A minimal micro-benchmark harness (hermetic `criterion` replacement).
//!
//! Each benchmark is calibrated during a warmup phase (doubling the
//! per-sample iteration count until a sample is long enough to time
//! reliably), then measured as K samples whose **median** is reported —
//! the median is robust against scheduler noise in a way a mean is not.
//! Results print as one human-readable line per benchmark and, when the
//! suite finishes, as a single JSON document on stdout (and to the file
//! named by `TESTKIT_BENCH_JSON`, if set) for machine consumption.
//!
//! ```no_run
//! let mut bench = testkit::bench::Bench::from_args("example");
//! bench
//!     .group("hashing")
//!     .throughput_bytes(16)
//!     .bench("fnv", || std::hint::black_box(42u64).wrapping_mul(0x100000001b3));
//! bench.finish();
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

use crate::json::{json_f64, json_string};

/// Timing statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Benchmark group (e.g. `cycle_core_block`).
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Iterations folded into each timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// Bytes processed per iteration, when declared via
    /// [`Group::throughput_bytes`].
    pub bytes_per_iter: Option<u64>,
}

impl Record {
    /// Throughput in MiB/s derived from the median, when a byte count was
    /// declared.
    #[must_use]
    pub fn throughput_mib_s(&self) -> Option<f64> {
        self.bytes_per_iter
            .map(|b| b as f64 / (1024.0 * 1024.0) / (self.median_ns / 1e9))
    }

    fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"group\":{}", json_string(&self.group)),
            format!("\"name\":{}", json_string(&self.name)),
            format!("\"iters_per_sample\":{}", self.iters_per_sample),
            format!("\"samples\":{}", self.samples),
            format!("\"median_ns\":{}", json_f64(self.median_ns)),
            format!("\"min_ns\":{}", json_f64(self.min_ns)),
            format!("\"max_ns\":{}", json_f64(self.max_ns)),
        ];
        if let Some(b) = self.bytes_per_iter {
            fields.push(format!("\"bytes_per_iter\":{b}"));
            if let Some(t) = self.throughput_mib_s() {
                fields.push(format!("\"mib_per_s\":{}", json_f64(t)));
            }
        }
        format!("{{{}}}", fields.join(","))
    }
}

/// A benchmark suite: owns the collected records and the CLI filter.
pub struct Bench {
    suite: String,
    filter: Option<String>,
    records: Vec<Record>,
}

impl Bench {
    /// Creates a suite, reading an optional substring filter from the
    /// command line (`cargo bench --bench cores -- gate` runs only
    /// benchmarks whose `group/name` contains `gate`). Harness flags that
    /// cargo forwards (`--bench`, `--test`, ...) are ignored.
    #[must_use]
    pub fn from_args(suite: &str) -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            suite: suite.to_string(),
            filter,
            records: Vec::new(),
        }
    }

    /// Opens a named benchmark group with default sampling parameters
    /// (11 samples of ≥20 ms each after a 150 ms warmup).
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            bench: self,
            name: name.to_string(),
            samples: 11,
            warmup: Duration::from_millis(150),
            sample_target: Duration::from_millis(20),
            bytes_per_iter: None,
        }
    }

    /// Prints the JSON document and returns the records.
    pub fn finish(self) -> Vec<Record> {
        let body = self
            .records
            .iter()
            .map(Record::to_json)
            .collect::<Vec<_>>()
            .join(",");
        let doc = format!(
            "{{\"suite\":{},\"results\":[{}]}}",
            json_string(&self.suite),
            body
        );
        println!("{doc}");
        if let Ok(path) = std::env::var("TESTKIT_BENCH_JSON") {
            if let Err(e) = std::fs::write(&path, &doc) {
                eprintln!("testkit-bench: cannot write {path}: {e}");
            }
        }
        self.records
    }
}

/// A group of related benchmarks sharing sampling parameters.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    samples: usize,
    warmup: Duration,
    sample_target: Duration,
    bytes_per_iter: Option<u64>,
}

impl Group<'_> {
    /// Sets the number of timed samples (the K in median-of-K).
    pub fn samples(&mut self, k: usize) -> &mut Self {
        assert!(k >= 1);
        self.samples = k;
        self
    }

    /// Sets the warmup duration.
    pub fn warmup_ms(&mut self, ms: u64) -> &mut Self {
        self.warmup = Duration::from_millis(ms);
        self
    }

    /// Sets the target duration of one timed sample.
    pub fn sample_ms(&mut self, ms: u64) -> &mut Self {
        self.sample_target = Duration::from_millis(ms);
        self
    }

    /// Declares how many bytes one iteration processes, enabling
    /// throughput reporting.
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.bytes_per_iter = Some(bytes);
        self
    }

    /// Runs one benchmark. The closure's return value is passed through
    /// [`black_box`] so the computation cannot be optimized away.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.bench.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }

        // Warmup + calibration: run batches, doubling the batch size until
        // one batch takes at least the per-sample target (or the warmup
        // window closes on an already-long batch).
        let warmup_start = Instant::now();
        let mut iters: u64 = 1;
        let mut batch_time;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            batch_time = t.elapsed();
            if batch_time >= self.sample_target {
                break;
            }
            if warmup_start.elapsed() >= self.warmup && batch_time >= Duration::from_micros(100) {
                // Slow-enough batch and warmup satisfied: scale directly to
                // the target instead of doubling further.
                let scale = self.sample_target.as_nanos() as f64 / batch_time.as_nanos() as f64;
                iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
            } else {
                iters = iters.saturating_mul(2);
            }
        }

        let mut per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];

        let record = Record {
            group: self.name.clone(),
            name: name.to_string(),
            iters_per_sample: iters,
            samples: self.samples,
            median_ns: median,
            min_ns: per_iter_ns[0],
            max_ns: per_iter_ns[per_iter_ns.len() - 1],
            bytes_per_iter: self.bytes_per_iter,
        };
        let throughput = record
            .throughput_mib_s()
            .map(|t| format!("  {t:10.1} MiB/s"))
            .unwrap_or_default();
        println!(
            "{id:<42} {:>12} /iter  [{} .. {}]  ({iters} iters x {} samples){throughput}",
            format_ns(record.median_ns),
            format_ns(record.min_ns),
            format_ns(record.max_ns),
            self.samples,
        );
        self.bench.records.push(record);
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_sane_statistics() {
        let mut bench = Bench {
            suite: "selftest".to_string(),
            filter: None,
            records: Vec::new(),
        };
        bench
            .group("tiny")
            .samples(5)
            .warmup_ms(1)
            .sample_ms(1)
            .throughput_bytes(16)
            .bench("xor", || black_box(17u64) ^ black_box(23u64));
        let records = bench.finish();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!((r.group.as_str(), r.name.as_str()), ("tiny", "xor"));
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.median_ns > 0.0);
        assert!(r.throughput_mib_s().expect("bytes declared") > 0.0);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut bench = Bench {
            suite: "selftest".to_string(),
            filter: Some("nomatch".to_string()),
            records: Vec::new(),
        };
        bench
            .group("g")
            .samples(1)
            .warmup_ms(1)
            .sample_ms(1)
            .bench("skipped", || panic!("must not run"));
        assert!(bench.finish().is_empty());
    }

    #[test]
    fn json_escapes_and_shapes() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        let r = Record {
            group: "g".into(),
            name: "n".into(),
            iters_per_sample: 3,
            samples: 5,
            median_ns: 1.5,
            min_ns: 1.0,
            max_ns: 2.0,
            bytes_per_iter: Some(16),
        };
        let j = r.to_json();
        assert!(j.contains("\"median_ns\":1.500"), "{j}");
        assert!(j.contains("\"bytes_per_iter\":16"), "{j}");
        assert!(j.contains("\"mib_per_s\":"), "{j}");
    }
}

//! Zero-dependency test and benchmark kit for the Rijndael IP workspace.
//!
//! The workspace builds **hermetically**: no registry dependencies, so
//! `cargo build --offline` succeeds on a machine that has never seen a
//! crates.io index. This crate vendors the three capabilities the test
//! and bench suites previously pulled from the registry:
//!
//! * [`rng`] — a deterministic, seedable PRNG (xoshiro256** seeded via
//!   SplitMix64) replacing `rand` at every call site;
//! * [`prop`] — a property-test harness ([`forall!`]) running N
//!   deterministic cases with seed reporting and bisection shrinking,
//!   replacing `proptest`;
//! * [`bench`] — a warmup + median-of-K micro-benchmark harness with
//!   JSON output, replacing `criterion`;
//! * [`json`] — the hand-rolled JSON string/number writer the bench
//!   harness and the telemetry snapshots share (no `serde`).
//!
//! Determinism is the point: every random workload in the repository is
//! reproducible bit-for-bit from a printed seed, which is what the
//! paper-reproduction's equivalence story (software reference ≡
//! cycle-accurate IP ≡ gate-level netlist) requires of its stimulus.

#![forbid(unsafe_code)]

pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;

pub use prop::{any, vec_of};
pub use rng::Rng;

//! A tiny JSON writer shared by the bench harness and the telemetry
//! snapshots.
//!
//! The workspace builds hermetically (no `serde`), so every JSON document
//! it emits — bench results, `BENCH_*.json` trajectories, live telemetry
//! snapshots served over the wire — is assembled by hand. These helpers
//! keep the escaping and number formatting rules in one place so the
//! documents cannot drift apart: strings are escaped per RFC 8259
//! (quotes, backslashes, control characters), floats print with three
//! decimals, and non-finite floats become `null` (JSON has no NaN).

/// Quotes and escapes `s` as a JSON string literal (including the
/// surrounding double quotes).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats `v` as a JSON number with three decimals, or `null` when the
/// value is not finite (JSON cannot represent NaN or infinities).
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_quotes_backslashes_and_controls() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("tab\there"), "\"tab\\u0009here\"");
        assert_eq!(json_string(""), "\"\"");
    }

    #[test]
    fn floats_are_fixed_precision_or_null() {
        assert_eq!(json_f64(1.5), "1.500");
        assert_eq!(json_f64(0.0), "0.000");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}

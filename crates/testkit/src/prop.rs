//! A minimal deterministic property-test harness (hermetic `proptest`
//! replacement).
//!
//! [`forall!`] runs a property over N pseudo-random cases. Every case seed
//! is derived from one base seed, so a failure is reproducible bit-for-bit
//! on any machine; the base seed can be overridden with the `TESTKIT_SEED`
//! environment variable and is printed in every failure report. On
//! failure the harness shrinks the counterexample by bisection (integers
//! halve toward zero, byte arrays zero progressively smaller windows,
//! vectors drop halves) and reports both the original and the shrunk
//! input.
//!
//! ```
//! use testkit::forall;
//! use testkit::prop::any;
//!
//! forall!(cases = 64, fn xor_is_involutive(a in any::<u64>(), b in any::<u64>()) {
//!     assert_eq!(a ^ b ^ b, a);
//! });
//! ```

use std::cell::{Cell, RefCell};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::rng::{splitmix64, Rng};

/// Default case count, matching the workspace's historical
/// `ProptestConfig::with_cases(64)`.
pub const DEFAULT_CASES: u32 = 64;

/// Base seed used when `TESTKIT_SEED` is not set. Fixed so that CI and
/// local runs exercise identical stimulus.
pub const DEFAULT_SEED: u64 = 0xDA7E_2003_0311;

/// Upper bound on shrink iterations, to keep a pathological shrinker from
/// hanging a failing test.
const MAX_SHRINK_STEPS: usize = 500;

// ---------------------------------------------------------------------------
// Value generation
// ---------------------------------------------------------------------------

/// Types with a canonical uniform generator and a bisection shrinker.
pub trait Arbitrary: Clone + Debug {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut Rng) -> Self;

    /// Candidate simpler values to try when this value falsifies a
    /// property. Candidates must be "smaller" in some well-founded sense
    /// so the shrink loop terminates.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty => $draw:ident),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> Self {
                rng.$draw() as $t
            }
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                // Bisection toward zero, with a −1 fallback so minima that
                // are not powers of two are still reached exactly.
                let mut out = vec![0, v / 2, v - 1];
                out.dedup();
                out.retain(|&c| c != v);
                out
            }
        }
    )+};
}

arbitrary_uint! {
    u8 => gen_byte,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    u128 => next_u128,
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> Self {
        rng.gen_bool()
    }
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut Rng) -> Self {
        rng.gen_array()
    }
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // Zero aligned windows, bisecting the window size down to single
        // bytes: [0..N), [0..N/2), [N/2..N), [0..N/4), ...
        let mut window = N;
        while window >= 1 {
            for start in (0..N).step_by(window) {
                let end = (start + window).min(N);
                if self[start..end].iter().any(|&b| b != 0) {
                    let mut cand = *self;
                    cand[start..end].fill(0);
                    out.push(cand);
                }
            }
            if window == 1 {
                break;
            }
            window /= 2;
        }
        // Halve individual bytes (with a −1 fallback) so minimal
        // counterexamples are reached exactly, not just to the nearest
        // power of two.
        for i in 0..N {
            if self[i] > 1 {
                let mut cand = *self;
                cand[i] /= 2;
                out.push(cand);
                let mut cand = *self;
                cand[i] -= 1;
                out.push(cand);
            }
        }
        out
    }
}

macro_rules! arbitrary_tuple {
    ($(($($T:ident . $i:tt),+))+) => {$(
        impl<$($T: Arbitrary),+> Arbitrary for ($($T,)+) {
            fn arbitrary(rng: &mut Rng) -> Self {
                ($($T::arbitrary(rng),)+)
            }
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink() {
                        let mut next = self.clone();
                        next.$i = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

arbitrary_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A value generator with an attached shrinker — the binding form the
/// [`forall!`] macro consumes (`x in <strategy>`).
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Candidate simpler values for a falsifying input.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// The canonical strategy for an [`Arbitrary`] type: `any::<[u8; 16]>()`.
pub struct Any<T>(PhantomData<T>);

/// Uniform values of `T` (the analogue of proptest's `any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink()
    }
}

impl Strategy for std::ops::RangeInclusive<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut Rng) -> usize {
        rng.gen_range_inclusive(self.clone())
    }
    fn shrink(&self, value: &usize) -> Vec<usize> {
        let (lo, v) = (*self.start(), *value);
        if v <= lo {
            return Vec::new();
        }
        let mut out = vec![lo, lo + (v - lo) / 2, v - 1];
        out.dedup();
        out.retain(|&c| c != v);
        out
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut Rng) -> usize {
        rng.gen_range(self.clone())
    }
    fn shrink(&self, value: &usize) -> Vec<usize> {
        (self.start..=self.end - 1).shrink(value)
    }
}

/// Vectors with a length drawn from `len` and elements from `elem`
/// (the analogue of `prop::collection::vec`).
pub struct VecOf<S> {
    elem: S,
    len: std::ops::Range<usize>,
}

/// `vec_of(any::<(bool, u128)>(), 0..40)` — random-length vectors.
#[must_use]
pub fn vec_of<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecOf<S> {
    VecOf { elem, len }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let min = self.len.start;
        let mut out: Vec<Self::Value> = Vec::new();
        // Length bisection: empty (or minimal), front half, back half,
        // drop-last — all clamped to the declared minimum length.
        if value.len() > min {
            out.push(value[..min].to_vec());
            let half = (value.len() / 2).max(min);
            if half < value.len() {
                out.push(value[..half].to_vec());
                out.push(value[value.len() - half..].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
        }
        // Element-wise shrink for short vectors (kept bounded so shrink
        // rounds stay cheap on long inputs).
        if value.len() <= 8 {
            for (i, v) in value.iter().enumerate() {
                for cand in self.elem.shrink(v) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
        }
        out.dedup_by(|a, b| format!("{a:?}") == format!("{b:?}"));
        out
    }
}

macro_rules! tuple_strategy {
    ($(($($S:ident . $i:tt),+ $(,)?))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&value.$i) {
                        let mut next = value.clone();
                        next.$i = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_strategy! {
    (A.0,)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
    static LAST_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
}

static HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that suppresses the default
/// backtrace spew for panics the harness intentionally provokes while
/// probing shrink candidates, and forwards everything else to the
/// previous hook. The suppression flag is thread-local, so parallel test
/// threads are unaffected.
fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if QUIET.with(Cell::get) {
                let loc = info
                    .location()
                    .map(|l| format!(" (at {}:{}:{})", l.file(), l.line(), l.column()))
                    .unwrap_or_default();
                let msg = if let Some(s) = info.payload().downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = info.payload().downcast_ref::<String>() {
                    s.clone()
                } else {
                    "<non-string panic payload>".to_string()
                };
                LAST_PANIC.with(|l| *l.borrow_mut() = Some(format!("{msg}{loc}")));
            } else {
                prev(info);
            }
        }));
    });
}

/// Runs `body(value)`, returning the panic message if it fails.
fn probe<V, F: Fn(V)>(body: &F, value: V) -> Option<String> {
    install_quiet_hook();
    QUIET.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| body(value)));
    QUIET.with(|q| q.set(false));
    match result {
        Ok(()) => None,
        Err(_) => Some(
            LAST_PANIC
                .with(|l| l.borrow_mut().take())
                .unwrap_or_else(|| "<panic>".to_string()),
        ),
    }
}

fn base_seed() -> u64 {
    match std::env::var("TESTKIT_SEED") {
        Ok(raw) => {
            let raw = raw.trim();
            let parsed = raw
                .strip_prefix("0x")
                .map_or_else(|| raw.parse(), |hex| u64::from_str_radix(hex, 16));
            parsed.unwrap_or_else(|_| panic!("TESTKIT_SEED is not a u64: {raw:?}"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

/// Executes `cases` deterministic cases of a property. Used through the
/// [`forall!`] macro; exposed for harness self-tests.
///
/// # Panics
/// Panics with a seed-bearing report (original input, shrunk input,
/// failure message) when the property is falsified.
pub fn run_forall<S, F>(name: &str, cases: u32, strategy: &S, body: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    let seed = base_seed();
    for case in 0..cases {
        // Independent per-case seed: one SplitMix64 step over a
        // golden-ratio spaced offset of the base seed.
        let mut sm = seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = Rng::seed_from_u64(splitmix64(&mut sm));
        let original = strategy.generate(&mut rng);
        let Some(first_msg) = probe(&body, original.clone()) else {
            continue;
        };

        // Shrink: greedily accept the first candidate that still fails,
        // until a full round of candidates all pass.
        let mut current = original.clone();
        let mut message = first_msg;
        let mut steps = 0;
        'shrinking: while steps < MAX_SHRINK_STEPS {
            for cand in strategy.shrink(&current) {
                if let Some(msg) = probe(&body, cand.clone()) {
                    current = cand;
                    message = msg;
                    steps += 1;
                    continue 'shrinking;
                }
            }
            break;
        }

        panic!(
            "forall `{name}` falsified at case {case}/{cases} \
             (base seed {seed:#x}; rerun with TESTKIT_SEED={seed})\n\
             original input: {original:?}\n\
             shrunk input ({steps} bisection steps): {current:?}\n\
             failure: {message}"
        );
    }
}

/// Declares a `#[test]` running a property over deterministic
/// pseudo-random cases:
///
/// ```ignore
/// forall!(cases = 64, fn roundtrip(key in any::<[u8; 16]>(), n in 0usize..=10) {
///     assert!(...);
/// });
/// ```
///
/// Each binding takes a [`Strategy`](crate::prop::Strategy): `any::<T>()`,
/// a `usize` range, or [`vec_of`](crate::prop::vec_of). Omitting
/// `cases = N` uses [`DEFAULT_CASES`](crate::prop::DEFAULT_CASES).
#[macro_export]
macro_rules! forall {
    (cases = $cases:expr, fn $name:ident($($bind:ident in $strat:expr),+ $(,)?) $body:block) => {
        #[test]
        fn $name() {
            let strategy = ($($strat,)+);
            $crate::prop::run_forall(
                stringify!($name),
                $cases,
                &strategy,
                |($($bind,)+)| $body,
            );
        }
    };
    (fn $name:ident($($bind:ident in $strat:expr),+ $(,)?) $body:block) => {
        $crate::forall!(cases = $crate::prop::DEFAULT_CASES,
                        fn $name($($bind in $strat),+) $body);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        run_forall("counts", 64, &(any::<u64>(),), |(v,)| {
            counter.set(counter.get() + 1);
            assert_eq!(v ^ v, 0);
        });
        assert_eq!(counter.get(), 64);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks_to_minimum() {
        let outcome = panic::catch_unwind(|| {
            run_forall("ge_ten_fails", 64, &(any::<u64>(),), |(v,)| {
                assert!(v < 10, "value {v} too large");
            });
        });
        let payload = outcome.expect_err("property must be falsified");
        let msg = payload
            .downcast_ref::<String>()
            .expect("harness panics with String")
            .clone();
        assert!(msg.contains("TESTKIT_SEED="), "{msg}");
        assert!(msg.contains("ge_ten_fails"), "{msg}");
        // Bisection must land exactly on the boundary counterexample.
        assert!(msg.contains("shrunk input"), "{msg}");
        assert!(msg.contains("(10,)"), "{msg}");
    }

    #[test]
    fn failures_are_deterministic() {
        let grab = || {
            panic::catch_unwind(|| {
                run_forall("det", 32, &(any::<[u8; 16]>(),), |(b,)| {
                    assert!(b[3] < 8);
                });
            })
            .expect_err("falsified")
            .downcast_ref::<String>()
            .expect("String payload")
            .clone()
        };
        assert_eq!(grab(), grab());
    }

    #[test]
    fn array_shrinker_zeroes_irrelevant_bytes() {
        let msg = panic::catch_unwind(|| {
            run_forall("arr", 32, &(any::<[u8; 16]>(),), |(b,)| {
                assert!(b[0] == 0, "first byte set");
            });
        })
        .expect_err("falsified")
        .downcast_ref::<String>()
        .expect("String payload")
        .clone();
        // Only byte 0 matters; the shrunk witness must be minimal: a one
        // in position 0, zeros elsewhere.
        assert!(
            msg.contains("[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]"),
            "{msg}"
        );
    }

    #[test]
    fn vec_strategy_respects_length_bounds() {
        let strat = vec_of(any::<u8>(), 3..7);
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()), "len {}", v.len());
            for cand in strat.shrink(&v) {
                assert!(cand.len() >= 3, "shrink broke min length");
            }
        }
    }

    #[test]
    fn range_strategy_stays_in_range() {
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..200 {
            let v = (0usize..=10).generate(&mut rng);
            assert!(v <= 10);
        }
    }

    forall!(cases = 64, fn macro_smoke(a in any::<u64>(), b in any::<u64>()) {
        assert_eq!(a ^ b ^ b, a);
    });

    forall!(fn macro_default_cases(v in any::<u128>()) {
        assert_eq!(v.rotate_left(32).rotate_right(32), v);
    });
}

//! Shared support code for the benchmark/table harness.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper; this library holds the pieces they share: running the synthesis
//! flow over the IP variants, formatting Table-2-style rows, and the
//! published reference numbers the measured results are printed against.

pub mod flows;
pub mod reference;

pub use flows::{table2_rows, Table2Row};

//! Cluster-level load gate, in three acts:
//!
//! 1. **Node scaling** — the same synchronous CTR workload runs against
//!    a 1-node and a 3-node cluster of real child processes, each node a
//!    `service` with one paced core (`BackendSpec::Paced`) and a single
//!    event thread. The clients speak wire v1, so every request runs
//!    inline on its node's event loop — a node is one serial crypto
//!    pipe, exactly the paper's one-IP-per-device deployment — and the
//!    run asserts ≥ 2.5x aggregate throughput from 1 → 3 nodes. Pacing
//!    makes the figure portable: modeled block time dominates, and it
//!    overlaps across *processes* the way independent devices would.
//! 2. **Drain under load** — with pipelined (v2) traffic in flight, the
//!    session's home node is drained. The run asserts every accepted
//!    job is delivered exactly once after the migration: zero loss.
//! 3. **Fleet audit** — the aggregated `GET_STATS` document must show
//!    every node reachable and the summed per-op counters must cover
//!    all the traffic acts 1 and 2 sent.
//!
//! Results land in `BENCH_cluster.json` (override the path with
//! `BENCH_CLUSTER_JSON`) as a `telemetry/1` snapshot. Pass `--smoke` or
//! set `TESTKIT_BENCH_SMOKE=1` for the tiny CI workload.
//!
//! Run with `--node` to *be* a node: the binary re-execs itself as the
//! cluster's child processes (`CARGO_BIN_EXE_*` only resolves in the
//! owning crate's tests, so the bench is its own node image).

use std::net::SocketAddr;
use std::process::Command;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use cluster::{ClusterClient, NodeProcess};
use engine::BackendSpec;
use service::protocol::Op;
use service::server::ServiceConfig;
use service::Transport;
use telemetry::Registry;

/// Modeled per-block time of each node's single paced core.
const BLOCK_NS: u32 = 50_000;

/// Per-cluster key-encryption key (the usual deployment would load it
/// from an HSM; the bench just needs all nodes keyed alike).
const KEK: [u8; 16] = *b"bench-cluster-kk";

/// One synchronous op's payload: 4 blocks, comfortably under the bulk
/// threshold so it rides the paced engine, not the host's SIMD lane.
const OP_BYTES: usize = 64;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--node") {
        run_as_node();
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("TESTKIT_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let threads: usize = 6;
    let ops: usize = if smoke { 60 } else { 200 };
    let depth: usize = if smoke { 32 } else { 128 };

    let report = Registry::new();
    report.gauge("bench.cluster.smoke").set(i64::from(smoke));

    // Act 1: aggregate throughput, 1 node vs 3 nodes.
    println!(
        "Cluster scaling — {threads} client threads x {ops} CTR ops x {OP_BYTES} B, paced nodes at {BLOCK_NS} ns/block\n"
    );
    println!(
        "{:<7} {:>12} {:>12} {:>9}",
        "nodes", "wall ms", "ops/s", "scale"
    );
    println!("{}", "-".repeat(43));
    let mut fleets = Vec::new();
    let mut rates = Vec::new();
    for n in [1usize, 3] {
        let fleet = spawn_fleet(n);
        let addrs: Vec<SocketAddr> = fleet.iter().map(|p| p.addr()).collect();
        let wall = drive_load(&addrs, threads, ops);
        let rate = (threads * ops) as f64 / wall;
        let scale = rates.first().map_or(1.0, |&r1: &f64| rate / r1);
        println!("{n:<7} {:>12.1} {:>12.0} {scale:>8.2}x", wall * 1e3, rate);
        report
            .counter(&format!("bench.cluster.ops_per_s.nodes_{n}"))
            .add(rate.round() as u64);
        rates.push(rate);
        fleets.push(fleet);
    }
    let scale = rates[1] / rates[0];
    report
        .counter("bench.cluster.scale_1_to_3_x1000")
        .add((scale * 1000.0).round() as u64);
    assert!(
        scale >= 2.5,
        "1 -> 3 paced nodes must give >= 2.5x aggregate throughput, got {scale:.2}x"
    );
    println!("\n1 -> 3 nodes: {scale:.2}x aggregate throughput (gate: >= 2.5x)\n");

    // Acts 2 and 3 reuse the 3-node fleet.
    let fleet3 = fleets.pop().expect("3-node fleet is live");
    let addrs: Vec<SocketAddr> = fleet3.iter().map(|p| p.addr()).collect();
    drain_under_load(&report, &addrs, depth);
    fleet_audit(&report, &addrs, threads * ops, depth);

    let doc = report.snapshot().to_json();
    let path =
        std::env::var("BENCH_CLUSTER_JSON").unwrap_or_else(|_| "BENCH_cluster.json".to_string());
    match std::fs::write(&path, &doc) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }

    for fleet in fleets {
        for node in fleet {
            node.shutdown();
        }
    }
    for node in fleet3 {
        node.shutdown();
    }
}

/// Child-process entry: one paced single-event-thread node on an
/// ephemeral loopback port.
fn run_as_node() {
    let config = ServiceConfig::builder()
        .farm(&[BackendSpec::Paced { block_ns: BLOCK_NS }])
        .event_threads(1)
        .build()
        .expect("paced node config");
    if let Err(e) = cluster::run_node(config, "127.0.0.1:0") {
        eprintln!("cluster_load --node: {e}");
        std::process::exit(1);
    }
}

fn spawn_fleet(n: usize) -> Vec<NodeProcess> {
    let exe = std::env::current_exe().expect("own path");
    (0..n)
        .map(|_| {
            let mut command = Command::new(&exe);
            command.arg("--node");
            NodeProcess::spawn(command).expect("node child starts")
        })
        .collect()
}

/// Runs `threads` clients, each with its own v1 `ClusterClient` and its
/// own session pinned (by re-rolling placement) to node `t % n`, each
/// performing `ops` synchronous CTR ops. Returns the aggregate wall
/// time in seconds.
fn drive_load(addrs: &[SocketAddr], threads: usize, ops: usize) -> f64 {
    let n = addrs.len();
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut workers = Vec::with_capacity(threads);
    for t in 0..threads {
        let addrs = addrs.to_vec();
        let barrier = Arc::clone(&barrier);
        workers.push(thread::spawn(move || {
            let mut fleet = ClusterClient::connect_v1(&addrs, &KEK).expect("cluster connects");
            // Deterministic even spread: open sessions until one lands
            // on this thread's target node (the ring is deterministic,
            // so every thread converges in a handful of labels).
            let want = t % n;
            let key = [t as u8 + 1; 16];
            for _ in 0..64 {
                let label = fleet.open_session(&key).expect("session opens");
                if fleet.session_node(label) == Some(want) {
                    break;
                }
            }
            let payload = [0x6Bu8; OP_BYTES];
            let ctr = [t as u8; 16];
            barrier.wait();
            for _ in 0..ops {
                fleet.ctr_apply(&ctr, &payload).expect("paced ctr op");
            }
        }));
    }
    barrier.wait();
    let started = Instant::now();
    for worker in workers {
        worker.join().expect("load thread succeeds");
    }
    started.elapsed().as_secs_f64()
}

/// Act 2: drain the home node with pipelined jobs in flight; every
/// accepted job must come back exactly once through the migrated
/// session.
fn drain_under_load(report: &Registry, addrs: &[SocketAddr], depth: usize) {
    let mut fleet = ClusterClient::connect(addrs, &KEK).expect("cluster connects");
    let label = fleet.open_session(&[0x2Bu8; 16]).expect("session opens");
    let home = fleet.session_node(label).expect("session placed");

    let payload = [0x11u8; OP_BYTES];
    let mut expected: Vec<u32> = Vec::with_capacity(depth);
    for _ in 0..depth {
        expected.push(
            fleet
                .pipeline(Op::EcbEncrypt, None, &payload)
                .expect("pipelined submit"),
        );
    }
    let moved = fleet.drain(home).expect("drain succeeds");
    assert_eq!(moved, 1, "the loaded session migrates off the drained node");

    let mut jobs = fleet.collect_all().expect("collect across migration");
    assert_eq!(jobs.len(), depth, "drain must lose zero accepted jobs");
    jobs.sort_by_key(|j| j.corr);
    expected.sort_unstable();
    let delivered: Vec<u32> = jobs.iter().map(|j| j.corr).collect();
    assert_eq!(delivered, expected, "drain duplicated or dropped a job");
    for job in &jobs {
        job.result.as_ref().expect("migrated job completed ok");
    }
    // The migrated session still serves synchronous traffic.
    fleet
        .ctr_apply(&[0u8; 16], &payload)
        .expect("post-drain op");
    fleet.restore(home);

    println!(
        "Drain under load — {depth} pipelined jobs in flight, session migrated off node {home}, 0 lost\n"
    );
    report
        .counter("bench.cluster.drain.jobs_preserved")
        .add(depth as u64);
    report
        .counter("bench.cluster.drain.migrated")
        .add(moved as u64);
}

/// Act 3: the aggregated `GET_STATS` document accounts for the fleet.
fn fleet_audit(report: &Registry, addrs: &[SocketAddr], ctr_ops: usize, depth: usize) {
    let mut fleet = ClusterClient::connect(addrs, &KEK).expect("cluster connects");
    let merged = fleet.stats().expect("aggregate stats");
    let scraped = cluster::stats::scrape(&merged);
    let get = |name: &str| {
        scraped
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("aggregate missing {name}"))
    };
    assert_eq!(
        get("cluster.nodes.reachable"),
        cluster::stats::Scraped::Gauge(addrs.len() as i64),
        "every node must answer the stats poll"
    );
    let ctr = match get("service.op.ctr_apply.requests") {
        cluster::stats::Scraped::Counter(v) => v,
        other => panic!("ctr counter wrong shape: {other:?}"),
    };
    assert!(
        ctr >= ctr_ops as u64,
        "summed CTR counter {ctr} cannot cover the {ctr_ops} ops the load sent"
    );
    let ecb = match get("service.op.ecb_encrypt.requests") {
        cluster::stats::Scraped::Counter(v) => v,
        other => panic!("ecb counter wrong shape: {other:?}"),
    };
    assert!(
        ecb >= depth as u64,
        "summed ECB counter {ecb} cannot cover the {depth} pipelined jobs"
    );
    println!(
        "Fleet audit — {} nodes reachable, {ctr} CTR + {ecb} ECB requests accounted across the cluster\n",
        addrs.len()
    );
    report.counter("bench.cluster.audit.ctr_requests").add(ctr);
    report.counter("bench.cluster.audit.ecb_requests").add(ecb);
}

//! The §4/§6 architecture ablation: sweep the datapath design space
//! (serial-8, all-32, the paper's mixed-32/128, full-128) through the
//! same flow and print cycles/round, resources, clock and throughput.
//!
//! Reproduces the paper's headline claim — the mixed datapath cuts a
//! round from 12 cycles to 5 — and the §6 conclusions: smaller datapaths
//! "will use many clock cycles and the clock speed will not reverse this
//! problem"; larger ones are limited by the key schedule.

use aes_ip::alt::AltArch;
use aes_ip::alt_netlist::build_alt_netlist;
use aes_ip::core::CoreVariant;
use aes_ip::netlist_gen::{build_core_netlist, RomStyle};
use fpga::device::EP1K100;
use fpga::flow::{synthesize, FlowOptions};

fn main() {
    println!("Architecture sweep on {} (encrypt path)\n", EP1K100.part);
    println!(
        "{:<28} | {:>6} | {:>8} | {:>8} | {:>8} | {:>7} | {:>10}",
        "architecture", "cyc/rd", "latency", "memory", "LCs", "clk", "throughput"
    );
    println!("{}", "-".repeat(92));

    let mut rows: Vec<(String, u64, u64, u32, u32, f64, f64)> = Vec::new();
    for arch in AltArch::ALL {
        let nl = if arch == AltArch::Mixed32x128 {
            build_core_netlist(CoreVariant::Encrypt, RomStyle::Macro)
        } else {
            build_alt_netlist(arch, RomStyle::Macro)
        };
        let options = FlowOptions {
            latency_cycles: arch.latency_cycles(),
            ..Default::default()
        };
        let r = synthesize(&nl, &EP1K100, &options).expect("sweep designs fit");
        rows.push((
            arch.to_string(),
            arch.cycles_per_round(),
            arch.latency_cycles(),
            r.fit.memory_bits,
            r.fit.logic_cells,
            r.clock_ns,
            r.throughput_mbps,
        ));
    }
    for (name, cpr, lat, mem, lcs, clk, tp) in &rows {
        println!(
            "{:<28} | {:>6} | {:>5} cy | {:>8} | {:>4} LCs | {:>5.1}ns | {:>6.0} Mbps",
            name, cpr, lat, mem, lcs, clk, tp
        );
    }

    println!("\npaper claims checked:");
    println!(
        "  * all-32 needs 12 cycles/round, the mixed datapath 5 (paper §4): {} -> {}",
        AltArch::All32.cycles_per_round(),
        AltArch::Mixed32x128.cycles_per_round()
    );
    let serial = &rows[0];
    let mixed = &rows[2];
    println!(
        "  * serial-8 clocks {:.1}x faster but needs {:.1}x the cycles -> {:.1}x lower throughput (paper §6)",
        mixed.5 / serial.5,
        serial.2 as f64 / mixed.2 as f64,
        mixed.6 / serial.6
    );
    let full = &rows[3];
    println!(
        "  * full-128 gains {:.1}x throughput for {:.1}x the embedded memory",
        full.6 / mixed.6,
        f64::from(full.3) / f64::from(mixed.3),
    );
    println!(
        "  * LC counts stay within {:.0}% across the sweep — the paper's own
    conclusion (\"the area decrease is not very great\"); memory scales
    with the substitution width, which is why the paper optimises memory",
        (rows.iter().map(|r| r.4).max().unwrap() as f64
            / rows.iter().map(|r| r.4).min().unwrap() as f64
            - 1.0)
            * 100.0
    );
}

//! Demonstrates the bus architecture of the paper's Figures 8–9: the
//! decoupled Data_In / Out processes let a new block be written while the
//! previous one is still being processed, sustaining one block per 50
//! clock cycles. Writes a VCD waveform of the session next to the binary.

use aes_ip::core::EncDecCore;
use aes_ip::rtl_mount::IpBench;

fn main() {
    // Acex1K combined device: 17 ns clock in the paper.
    let mut bench = IpBench::new(EncDecCore::new(), 9);
    bench.record_vcd("rijndael_ip_tb");

    println!("interface demo: EncDec device, clock period 18 time units\n");
    bench.write_key(&[0x2Bu8; 16]);
    println!(
        "t={:>5}  key written (+10 setup cycles for the decrypt key walk)",
        bench.time()
    );

    // Three back-to-back blocks: each written while the previous one is
    // still in flight.
    let blocks: [[u8; 16]; 3] = [[0x11; 16], [0x22; 16], [0x33; 16]];
    bench.write_data(&blocks[0], false);
    println!(
        "t={:>5}  block 0 written (engine absorbs it on this edge)",
        bench.time()
    );

    // Overlap rule: the Data_In register is a single entry, so the bus
    // master keeps at most one block outstanding beyond the one in
    // flight. A pending block is absorbed exactly when the running block
    // completes, so the master writes the next block shortly after each
    // completion (and the very first extra block 20 cycles into block 0's
    // flight).
    let mut written = 1;
    let mut results = 0;
    let mut cycles_since_write = 0u64;
    let mut write_countdown: Option<u64> = None;
    let mut last_dout: Option<[u8; 16]> = None;
    while results < 3 {
        bench.run_cycles(1);
        cycles_since_write += 1;
        if bench.data_ok() {
            let dout = bench.dout();
            if last_dout != Some(dout) {
                results += 1;
                println!(
                    "t={:>5}  data_ok high, Out register updated: result {} = {:02x?}...",
                    bench.time(),
                    results,
                    &dout[..4]
                );
                last_dout = Some(dout);
                if written < 3 {
                    write_countdown = Some(10);
                }
            }
        }
        if written == 1 && cycles_since_write >= 20 {
            // First overlapped write: 20 cycles into block 0's flight.
            write_countdown = Some(0);
        }
        if let Some(cd) = write_countdown {
            if cd == 0 {
                bench.write_data(&blocks[written], false);
                cycles_since_write = 0;
                println!(
                    "t={:>5}  block {} written while the engine is busy (Data_In register)",
                    bench.time(),
                    written
                );
                written += 1;
                write_countdown = None;
            } else {
                write_countdown = Some(cd - 1);
            }
        }
        assert!(bench.time() < 20_000, "demo wedged");
    }
    println!("\nsustained rate: one 128-bit block per 50 clock cycles (900 time units)");

    let path = std::env::temp_dir().join("rijndael_interface_demo.vcd");
    match bench.save_vcd(&path) {
        Ok(()) => println!("\nwaveform written to {}", path.display()),
        Err(e) => println!("\ncould not write waveform: {e}"),
    }
}

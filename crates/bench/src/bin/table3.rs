//! Regenerates the paper's Table 3: this IP and the design-space
//! neighbours on the comparison devices, next to the published rows.
//!
//! The published rows are reproduced verbatim where the source text is
//! legible (several cells of the scanned paper are not recoverable and
//! are printed as `n/r`); the measured rows re-derive the comparison's
//! *shape* — the low-cost serial core is smaller and much slower, the
//! fully parallel core is larger and much faster, and this IP sits
//! between — from this reproduction's own synthesis flow.

use aes_ip::alt::AltArch;
use aes_ip::alt_netlist::build_alt_netlist;
use aes_ip::core::CoreVariant;
use aes_ip::netlist_gen::{build_core_netlist, RomStyle};
use bench_support::reference::PAPER_TABLE3;
use fpga::device::{Device, EP1K100, EP20K300E, EP20K400, EPF10K100A};
use fpga::flow::{synthesize, FlowOptions};

fn run(name: &str, netlist: &netlist::Netlist, device: &Device, latency: u64) {
    let options = FlowOptions {
        latency_cycles: latency,
        ..Default::default()
    };
    match synthesize(netlist, device, &options) {
        Ok(r) => println!(
            "{:<34} {:<12} | {:>6} LCs | {:>6} bits | {:>6.1} ns clk | {:>7.1} Mbps",
            name,
            device.family.to_string(),
            r.fit.logic_cells,
            r.fit.memory_bits,
            r.clock_ns,
            r.throughput_mbps,
        ),
        Err(e) => println!(
            "{:<34} {:<12} | does not fit: {e}",
            name,
            device.family.to_string()
        ),
    }
}

fn main() {
    println!("Table 3 — this flow's measurements on the comparison families\n");
    for device in [&EPF10K100A, &EP20K400, &EP20K300E] {
        for variant in [
            CoreVariant::Encrypt,
            CoreVariant::Decrypt,
            CoreVariant::EncDec,
        ] {
            let nl = build_core_netlist(variant, RomStyle::Macro);
            run(&format!("this IP ({variant})"), &nl, device, 50);
        }
    }
    let low_cost = build_alt_netlist(AltArch::Serial8, RomStyle::Macro);
    run(
        "serial-8 low-cost analogue of [14]",
        &low_cost,
        &EP1K100,
        AltArch::Serial8.latency_cycles(),
    );
    let high_perf = build_alt_netlist(AltArch::Full128, RomStyle::Macro);
    run(
        "full-128 high-perf analogue of [1]",
        &high_perf,
        &EP20K400,
        AltArch::Full128.latency_cycles(),
    );

    println!("\npublished rows (n/r = not recoverable from the scanned source):");
    for row in PAPER_TABLE3 {
        let fmt_u = |v: Option<u32>| v.map_or("n/r".to_string(), |x| x.to_string());
        let fmt_f = |v: Option<f32>| v.map_or("n/r".to_string(), |x| format!("{x:.1}"));
        println!(
            "{:<34} {:<12} | mem {:>6} | LCs E/D/C {:>5}/{:>5}/{:>5} | Mbps E/D/C {:>6}/{:>6}/{:>6}",
            row.source,
            row.technology,
            fmt_u(row.memory_bits),
            fmt_u(row.lcs[0]), fmt_u(row.lcs[1]), fmt_u(row.lcs[2]),
            fmt_f(row.throughput_mbps[0]), fmt_f(row.throughput_mbps[1]), fmt_f(row.throughput_mbps[2]),
        );
    }
    println!("\nshape check: the serial-8 core must be the smallest and slowest,");
    println!("full-128 the largest and fastest, with this IP in between (see arch_sweep).");
}

//! Reports (and verifies) the runtime CPU dispatch decision.
//!
//! Three modes:
//!
//! * no arguments — a human-readable report: probed CPU features, every
//!   backend kind with its availability and constant-time standing, the
//!   micro-race timings, and the selected winner per lane;
//! * `--list` — one [`Kind::token`] per line for every backend this host
//!   can run, machine-consumable (the `scripts/verify.sh` dispatch gate
//!   loops over this to force each backend in a fresh process);
//! * `--check` — end-to-end assertion that the dispatch decision
//!   (honoring `RIJNDAEL_FORCE_BACKEND`) is what a live service reports:
//!   spawns a server with an `Auto` farm, runs bulk and small ECB work
//!   through a client, scrapes `GET_STATS` off the wire, and exits
//!   non-zero unless the selected backend's telemetry is present.

use rijndael::dispatch::{self, Kind};
use telemetry::Registry;

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("--list") => {
            for kind in Kind::detected() {
                println!("{}", kind.token());
            }
        }
        Some("--check") => check(),
        _ => report(),
    }
}

/// Human-readable probe report.
fn report() {
    let cpu = dispatch::cpu();
    println!(
        "CPU features: aesni={} avx2={} neon_aes={}",
        cpu.aesni, cpu.avx2, cpu.neon_aes
    );
    println!();
    println!(
        "{:<20} {:>10} {:>14} {:>12}",
        "backend", "available", "constant-time", "in race"
    );
    println!("{}", "-".repeat(60));
    for kind in Kind::ALL {
        println!(
            "{:<20} {:>10} {:>14} {:>12}",
            kind.token(),
            kind.available(),
            kind.constant_time(),
            kind.available() && kind.constant_time(),
        );
    }
    let sel = dispatch::selection();
    println!();
    if sel.forced {
        println!(
            "selection (forced via {}): bulk={} block={}",
            dispatch::FORCE_ENV,
            sel.bulk.token(),
            sel.block.token()
        );
    } else {
        println!(
            "selection (micro-race): bulk={} block={}",
            sel.bulk.token(),
            sel.block.token()
        );
        let snap = Registry::global().snapshot();
        for kind in Kind::detected() {
            let bulk = snap.counter(&format!("rijndael.dispatch.race.{}.bulk_ns", kind.token()));
            let block = snap.counter(&format!("rijndael.dispatch.race.{}.block_ns", kind.token()));
            if let (Some(bulk), Some(block)) = (bulk, block) {
                println!(
                    "  raced {:<20} bulk {:>9} ns / 64 blocks, block {:>7} ns",
                    kind.token(),
                    bulk,
                    block
                );
            }
        }
    }
}

/// Asserts the dispatch decision is visible through a live server's
/// `GET_STATS`, then prints one confirmation line.
fn check() {
    use engine::BackendSpec;
    use service::client::Client;
    use service::server::{Server, ServiceConfig};
    use std::time::Duration;

    let sel = dispatch::selection();
    if let Some(forced) = dispatch::forced() {
        assert_eq!(sel.bulk, forced, "forced backend must win the bulk lane");
        assert_eq!(sel.block, forced, "forced backend must win the block lane");
        assert!(sel.forced, "selection must flag the override");
    }

    let server = Server::new(
        ServiceConfig::builder()
            .farm(&[BackendSpec::Auto; 2])
            .queue_capacity(8)
            .max_connections(4)
            .idle_timeout(Duration::from_secs(10))
            .event_threads(1)
            .build()
            .expect("valid probe config"),
    )
    .spawn("127.0.0.1:0")
    .expect("bind ephemeral port");

    let key = [0x2Bu8; 16];
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.set_key(&key).expect("SET_KEY");
    // Small payload rides the engine farm; bulk rides the session lane.
    client.ecb_encrypt(&[0u8; 16]).expect("small ECB");
    client.ecb_encrypt(&[0u8; 64 * 16]).expect("bulk ECB");
    let stats = client.stats().expect("GET_STATS");
    drop(client);
    server.shutdown();

    let headline = format!("rijndael.dispatch.backend.{}", sel.bulk.token());
    assert!(
        stats.contains(&headline),
        "GET_STATS does not report the dispatch decision {headline}: {stats}"
    );
    let core_name = format!("engine.core.0.{}.", sel.bulk.backend_name());
    assert!(
        stats.contains(&core_name),
        "GET_STATS does not report core telemetry under {core_name}: {stats}"
    );
    println!(
        "dispatch check ok: {} (forced={}) visible in GET_STATS as {} and {}",
        sel.bulk.token(),
        sel.forced,
        headline,
        core_name
    );
}

//! Table-2-style throughput report scaled by core count: what a farm of
//! the paper's encrypt cores sustains on a CTR workload when the engine
//! keeps every decoupled bus saturated.
//!
//! One core is the paper's published operating point (50 cycles/block —
//! 250 Mbps at the 10 ns Cyclone clock of Table 2); the engine shards the
//! counter stream so `k` cores approach `50 / k` wall cycles per block.
//! The report prints virtual-cycle figures, per-core occupancy and the
//! projected throughput at the Cyclone clock, and asserts the scaling is
//! monotone so the binary doubles as a regression check.
//!
//! Pass `--smoke` for a tiny workload (CI keeps the binary exercised
//! without burning time on a full sweep).

use engine::{BackendSpec, Engine, Mode};

/// Table 2 (Cyclone): 9.97 ns clock, rounded to the 10 ns the paper
/// quotes in the text.
const CYCLONE_CLOCK_NS: f64 = 10.0;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let blocks: usize = if smoke { 64 } else { 4096 };
    let key = [0x2Bu8; 16];
    let payload = vec![0x5Au8; blocks * 16];

    println!("Engine scaling — CTR workload of {blocks} blocks across farms of encrypt cores");
    println!("(virtual cycles from the cycle-accurate models; throughput at the paper's");
    println!("{CYCLONE_CLOCK_NS} ns Cyclone clock, Table 2)\n");
    println!(
        "{:<6} {:>8} {:>12} {:>14} {:>12} {:>12}",
        "cores", "blocks", "wall cycles", "cycles/block", "min occ", "throughput"
    );
    println!("{}", "-".repeat(70));

    let mut last_cycles_per_block = f64::INFINITY;
    for cores in 1..=4usize {
        let mut eng = Engine::with_farm(&key, &vec![BackendSpec::EncryptCore; cores], 2);
        eng.try_submit(Mode::Ctr([0; 16]), payload.clone())
            .expect("queue has room");
        let out = eng.run();
        assert!(out[0].data.is_ok(), "CTR job failed: {:?}", out[0].data);

        let m = eng.metrics();
        let mbps = 128.0 / (m.cycles_per_block * CYCLONE_CLOCK_NS) * 1000.0;
        println!(
            "{:<6} {:>8} {:>12} {:>14.2} {:>11.1}% {:>7.0} Mbps",
            cores,
            m.total_blocks,
            m.wall_cycles,
            m.cycles_per_block,
            m.min_occupancy_pct(),
            mbps,
        );

        assert!(
            m.cycles_per_block < last_cycles_per_block,
            "{cores} cores must beat {} (got {:.2} vs {:.2} cycles/block)",
            cores - 1,
            m.cycles_per_block,
            last_cycles_per_block,
        );
        assert!(
            m.min_occupancy_pct() >= 90.0,
            "cores must stay >= 90% occupied at saturation, got {:.1}%",
            m.min_occupancy_pct(),
        );
        last_cycles_per_block = m.cycles_per_block;
    }

    println!("\nscaling is monotone and every core stayed >= 90% occupied");
}

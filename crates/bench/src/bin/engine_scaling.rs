//! Table-2-style throughput report scaled by core count: what a farm of
//! the paper's encrypt cores sustains on a CTR workload when the engine
//! keeps every decoupled bus saturated.
//!
//! One core is the paper's published operating point (50 cycles/block —
//! 250 Mbps at the 10 ns Cyclone clock of Table 2); the engine shards the
//! counter stream so `k` cores approach `50 / k` wall cycles per block.
//! The report prints virtual-cycle figures, per-core occupancy and the
//! projected throughput at the Cyclone clock, and asserts the scaling is
//! monotone so the binary doubles as a regression check. Every figure is
//! derived from the engine's telemetry snapshot
//! (`engine::FarmStats::from_snapshot`) — the same counters the service's
//! `GET_STATS` endpoint serves, with no private metrics path.
//!
//! Pass `--smoke` for a tiny workload (CI keeps the binary exercised
//! without burning time on a full sweep).
//!
//! After the virtual-cycle sweep the binary races the software backends
//! (specification, T-table, bitsliced, hardware AES where the CPU has
//! it, and the runtime-dispatched `auto` slot) over the same randomized
//! ECB workload on the host clock, asserts they produce byte-identical
//! ciphertext, and writes the measurements as a `telemetry/1` JSON
//! snapshot to `BENCH_bitslice.json` (path overridable via
//! `BENCH_BITSLICE_JSON`) so future changes can track the trajectory.

use engine::{BackendSpec, Engine, FarmStats, Mode};
use std::time::Instant;
use telemetry::Registry;

/// Table 2 (Cyclone): 9.97 ns clock, rounded to the 10 ns the paper
/// quotes in the text.
const CYCLONE_CLOCK_NS: f64 = 10.0;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let blocks: usize = if smoke { 64 } else { 4096 };
    let key = [0x2Bu8; 16];
    let payload = vec![0x5Au8; blocks * 16];

    println!("Engine scaling — CTR workload of {blocks} blocks across farms of encrypt cores");
    println!("(virtual cycles from the cycle-accurate models; throughput at the paper's");
    println!("{CYCLONE_CLOCK_NS} ns Cyclone clock, Table 2)\n");
    println!(
        "{:<6} {:>8} {:>12} {:>14} {:>12} {:>12}",
        "cores", "blocks", "wall cycles", "cycles/block", "min occ", "throughput"
    );
    println!("{}", "-".repeat(70));

    let mut last_cycles_per_block = f64::INFINITY;
    for cores in 1..=4usize {
        let mut eng = Engine::with_farm(&key, &vec![BackendSpec::EncryptCore; cores], 2);
        eng.try_submit(Mode::Ctr([0; 16]), payload.clone())
            .expect("queue has room");
        let out = eng.run();
        assert!(out[0].data.is_ok(), "CTR job failed: {:?}", out[0].data);

        // The same snapshot the service's GET_STATS endpoint would serve.
        let s = FarmStats::from_snapshot(&eng.snapshot());
        let mbps = 128.0 / (s.cycles_per_block() * CYCLONE_CLOCK_NS) * 1000.0;
        println!(
            "{:<6} {:>8} {:>12} {:>14.2} {:>11.1}% {:>7.0} Mbps",
            cores,
            s.total_blocks(),
            s.wall_cycles(),
            s.cycles_per_block(),
            s.min_occupancy_pct(),
            mbps,
        );

        assert!(
            s.cycles_per_block() < last_cycles_per_block,
            "{cores} cores must beat {} (got {:.2} vs {:.2} cycles/block)",
            cores - 1,
            s.cycles_per_block(),
            last_cycles_per_block,
        );
        assert!(
            s.min_occupancy_pct() >= 90.0,
            "cores must stay >= 90% occupied at saturation, got {:.1}%",
            s.min_occupancy_pct(),
        );
        last_cycles_per_block = s.cycles_per_block();
    }

    println!("\nscaling is monotone and every core stayed >= 90% occupied");

    software_backend_race(&key, smoke);
}

/// Races the software backends over one randomized ECB workload on the
/// host clock, proves they agree byte-for-byte, and emits the JSON
/// trajectory file in the `telemetry/1` snapshot schema.
fn software_backend_race(key: &[u8; 16], smoke: bool) {
    let n: usize = if smoke { 512 } else { 10_000 };
    let payload = random_blocks(n);

    println!("\nSoftware backends — {n} randomized ECB blocks on the host clock\n");
    println!("{:<16} {:>14} {:>12}", "backend", "ns/block", "speedup");
    println!("{}", "-".repeat(44));

    // The trajectory file is a telemetry snapshot like every other stats
    // surface in the workspace: the engines publish their block counters
    // into this registry, and the host-clock measurements ride along as
    // bench.* instruments.
    let race = Registry::new();
    let mut results: Vec<(&str, f64)> = Vec::new();
    let mut outputs: Vec<Vec<u8>> = Vec::new();
    // Hardware AES joins the race where the runtime probe finds it, and
    // the Auto slot shows what a default deployment actually lands on.
    let mut specs = vec![
        BackendSpec::Software,
        BackendSpec::Ttable,
        BackendSpec::Bitsliced,
    ];
    if BackendSpec::AesNi.available() {
        specs.push(BackendSpec::AesNi);
    }
    specs.push(BackendSpec::Auto);
    for spec in specs {
        let mut eng = engine::EngineBuilder::new()
            .core(spec)
            .capacity(2)
            .registry(race.clone())
            .build(key);
        let job = payload.clone();
        let start = Instant::now();
        eng.try_submit(Mode::EcbEncrypt, job)
            .expect("queue has room");
        let out = eng.run();
        let elapsed = start.elapsed();
        let data = out
            .into_iter()
            .next()
            .expect("one job submitted")
            .data
            .expect("ECB job succeeded");
        let ns_per_block = elapsed.as_nanos() as f64 / n as f64;
        let name = spec_name(spec);
        race.counter(&format!("bench.race.{name}.ns_per_block"))
            .add(ns_per_block.round() as u64);
        results.push((name, ns_per_block));
        outputs.push(data);
    }

    let baseline = results[0].1;
    for (name, ns) in &results {
        println!("{name:<16} {ns:>14.1} {:>11.2}x", baseline / ns);
    }

    assert!(
        outputs.windows(2).all(|w| w[0] == w[1]),
        "software backends disagree on the randomized ECB workload"
    );
    println!(
        "\nall {} software backends agree on {n} randomized blocks",
        results.len()
    );

    let speedup = results[1].1 / results[2].1;
    println!("bitsliced vs t-table: {speedup:.2}x");
    let auto_ns = results.last().expect("auto raced").1;
    let auto_speedup = results[1].1 / auto_ns;
    println!(
        "dispatched ({}) vs t-table: {auto_speedup:.2}x",
        rijndael::dispatch::selection().bulk.backend_name()
    );

    race.counter("bench.race.blocks").add(n as u64);
    race.gauge("bench.race.smoke").set(i64::from(smoke));
    race.gauge("bench.race.agree").set(1);
    race.counter("bench.race.speedup_bitsliced_vs_ttable_x1000")
        .add((speedup * 1000.0).round() as u64);
    race.counter("bench.race.speedup_auto_vs_ttable_x1000")
        .add((auto_speedup * 1000.0).round() as u64);

    let doc = race.snapshot().to_json();
    let path =
        std::env::var("BENCH_BITSLICE_JSON").unwrap_or_else(|_| "BENCH_bitslice.json".to_string());
    match std::fs::write(&path, &doc) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

fn spec_name(spec: BackendSpec) -> &'static str {
    match spec {
        BackendSpec::Software => "soft-ref",
        BackendSpec::Ttable => "soft-ttable",
        BackendSpec::Bitsliced => "soft-bitsliced",
        BackendSpec::AesNi => "soft-aesni",
        BackendSpec::Auto => "auto",
        _ => "ip-core",
    }
}

/// Deterministic xorshift-filled blocks: randomized content without an
/// RNG dependency, reproducible across runs.
fn random_blocks(n: usize) -> Vec<u8> {
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut out = Vec::with_capacity(n * 16);
    while out.len() < n * 16 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.extend_from_slice(&state.to_le_bytes());
    }
    out
}

//! AEAD throughput report: what authentication costs on top of raw
//! keystream, and what the `PCLMULQDQ` GHASH core buys over the portable
//! table walk.
//!
//! Three measurements, all on the dispatch-selected bulk cipher (the
//! same lane `Gcm` batches its keystream through):
//!
//! 1. raw batched CTR over the workload — the no-authentication floor;
//! 2. GCM seal over the same bytes — CTR plus GHASH plus the tag;
//! 3. GHASH alone, once per available multiplier core.
//!
//! The GCM:CTR ratio is asserted against a regression gate so the
//! authentication overhead cannot quietly balloon, and the measurements
//! are written as a `telemetry/1` JSON snapshot to `BENCH_gcm.json`
//! (path overridable via `BENCH_GCM_JSON`), the same trajectory-file
//! scheme as `BENCH_bitslice.json`.
//!
//! Pass `--smoke` (or set `TESTKIT_BENCH_SMOKE=1`) for a small workload;
//! the gate still applies, so CI exercises the regression check.

use rijndael::dispatch::{self, Kind};
use rijndael::ghash::{Ghash, GhashImpl};
use rijndael::modes::Ctr;
use rijndael::{Aead, AutoCipher, BlockCipher, Gcm};
use std::time::Instant;
use telemetry::Registry;

/// The regression gate on sealed-vs-raw throughput. GHASH rides along
/// with the keystream, so authenticating a stream must stay within this
/// factor of just encrypting it. The gate is sized to catch structural
/// regressions — GCM falling off the batched keystream lane, or the
/// GHASH dispatch losing `PCLMULQDQ` (either jumps the ratio past 3x) —
/// with headroom over the ~1.3-1.45x that hosts of different cache and
/// clock behavior legitimately measure.
const GCM_OVERHEAD_GATE: f64 = 1.6;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var_os("TESTKIT_BENCH_SMOKE").is_some_and(|v| v != "0");
    // The smoke run keeps the full-size payload and only trims reps: a
    // smaller workload fits in L2, which deflates the raw-CTR floor and
    // inflates the GCM:CTR ratio past the gate on fast-cache hosts. The
    // gate is about streaming overhead, so it must be measured at a
    // memory-realistic size.
    let blocks: usize = 65_536;
    let reps: usize = if smoke { 5 } else { 7 };
    let payload = random_bytes(blocks * 16);

    let key = [0x5Au8; 32];
    let cipher = AutoCipher::new(&key).unwrap_or_else(|| {
        // Dispatch pinned to the IP core: no software bulk lane there,
        // so the bench races the T-table core instead.
        AutoCipher::for_kind(Kind::Ttable, &key).expect("the T-table kind is always available")
    });
    let bulk = dispatch::selection().bulk.backend_name();
    println!(
        "AEAD throughput — {} KiB workload on the `{bulk}` bulk lane, GHASH via {}\n",
        payload.len() / 1024,
        GhashImpl::detect().name(),
    );

    // 1 + 2. The floor (raw batched CTR keystream) and GCM seal over
    // the same bytes (keystream + GHASH + tag), with the reps of the
    // two measurements interleaved: any clock or thermal drift across
    // the run then hits both operations alike instead of skewing the
    // ratio between a fast CTR phase and a slow GCM phase.
    let nonce = [0x24u8; 16];
    let h = subkey(&cipher);
    let gcm = Gcm::new(cipher.clone());
    let gcm_nonce = [0x24u8; 12];
    let (mut ctr_best, mut gcm_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let start = Instant::now();
        let mut buf = payload.clone();
        Ctr::apply_batched(&cipher, &nonce, 0, &mut buf);
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(buf);
        ctr_best = ctr_best.min(elapsed);

        let start = Instant::now();
        let sealed = gcm.seal(&gcm_nonce, b"", &payload);
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(sealed);
        gcm_best = gcm_best.min(elapsed);
    }
    let ctr_ns = ctr_best / payload.len() as f64;
    let gcm_ns = gcm_best / payload.len() as f64;
    let ratio = gcm_ns / ctr_ns;

    println!("{:<22} {:>12} {:>14}", "operation", "ns/byte", "vs raw CTR");
    println!("{}", "-".repeat(50));
    println!(
        "{:<22} {ctr_ns:>12.3} {:>13.2}x",
        "ctr (raw keystream)", 1.0
    );
    println!("{:<22} {gcm_ns:>12.3} {ratio:>13.2}x", "gcm seal");

    // 3. GHASH alone, once per multiplier core this CPU can run.
    println!();
    println!("{:<22} {:>12} {:>14}", "ghash core", "ns/byte", "vs table4");
    println!("{}", "-".repeat(50));
    let mut ghash_ns = Vec::new();
    for which in [GhashImpl::Portable, GhashImpl::Pclmul] {
        if !which.available() {
            println!("{:<22} {:>12} {:>14}", which.name(), "-", "absent");
            continue;
        }
        let ns = best_of(reps, || {
            let mut acc = Ghash::with_impl(&h, which);
            acc.update_padded(&payload);
            acc.finalize()
        }) / payload.len() as f64;
        ghash_ns.push((which, ns));
        let baseline = ghash_ns[0].1;
        println!("{:<22} {ns:>12.3} {:>13.2}x", which.name(), baseline / ns);
    }

    // Trajectory file: bench.* instruments in the workspace snapshot
    // schema, next to BENCH_bitslice.json.
    let reg = Registry::new();
    reg.counter("bench.gcm.bytes").add(payload.len() as u64);
    reg.gauge("bench.gcm.smoke").set(i64::from(smoke));
    reg.counter("bench.gcm.ctr_ns_per_kib")
        .add((ctr_ns * 1024.0).round() as u64);
    reg.counter("bench.gcm.seal_ns_per_kib")
        .add((gcm_ns * 1024.0).round() as u64);
    reg.counter("bench.gcm.overhead_vs_ctr_x1000")
        .add((ratio * 1000.0).round() as u64);
    for (which, ns) in &ghash_ns {
        reg.counter(&format!("bench.gcm.ghash.{}.ns_per_kib", which.name()))
            .add((ns * 1024.0).round() as u64);
    }
    if let [(_, table4), (_, pclmul)] = ghash_ns[..] {
        let speedup = table4 / pclmul;
        println!("\npclmul vs table4 GHASH: {speedup:.2}x");
        reg.counter("bench.gcm.ghash.speedup_pclmul_x1000")
            .add((speedup * 1000.0).round() as u64);
    }

    let path = std::env::var("BENCH_GCM_JSON").unwrap_or_else(|_| "BENCH_gcm.json".to_string());
    match std::fs::write(&path, reg.snapshot().to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }

    assert!(
        ratio <= GCM_OVERHEAD_GATE,
        "GCM overhead regressed: {ratio:.2}x over raw CTR (gate {GCM_OVERHEAD_GATE}x)"
    );
    println!("GCM overhead {ratio:.2}x is within the {GCM_OVERHEAD_GATE}x gate");
}

/// The GHASH subkey `H = E_K(0)` of `cipher`.
fn subkey<C: BlockCipher>(cipher: &C) -> [u8; 16] {
    let mut h = [0u8; 16];
    cipher.encrypt_in_place(&mut h);
    h
}

/// Runs `f` `reps` times and returns the fastest wall time in
/// nanoseconds, sinking the result so the work cannot be elided.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(out);
        best = best.min(elapsed);
    }
    best
}

/// Deterministic xorshift-filled payload: randomized content without an
/// RNG dependency, reproducible across runs.
fn random_bytes(len: usize) -> Vec<u8> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut out = Vec::with_capacity(len + 8);
    while out.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(len);
    out
}

//! Regenerates the paper's Figures 1–7 as textual demonstrations: each
//! transformation is shown on the FIPS-197 worked example and cross-
//! checked against the reference implementation.
//!
//! Usage: `figures [fig1|fig2|fig3|fig4|fig5|fig6|fig7]` — no argument
//! prints everything.

use gf256::SBOX;
use rijndael::key_schedule::{kstran, rcon, rot_word, sub_word};
use rijndael::trace::trace_encrypt;
use rijndael::{Rijndael, State};

const KEY: [u8; 16] = [
    0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C,
];
const PT: [u8; 16] = [
    0x32, 0x43, 0xF6, 0xA8, 0x88, 0x5A, 0x30, 0x8D, 0x31, 0x31, 0x98, 0xA2, 0xE0, 0x37, 0x07, 0x34,
];

fn print_state(title: &str, st: &State<4>) {
    println!("  {title}:");
    for r in 0..4 {
        print!("   ");
        for c in 0..4 {
            print!(" {:02x}", st.get(r, c));
        }
        println!();
    }
}

fn fig1() {
    println!("Figure 1 — state_t: 4x4 matrix of bytes, filled column by column");
    let st = State::<4>::from_bytes(&PT);
    print_state("input bytes 32 43 f6 a8 88 5a ... land as", &st);
    println!("  cell (row r, column c) holds input byte 4c + r\n");
}

fn fig2() {
    println!("Figure 2 — encryption schedule: initial AddKey, 9 full rounds,");
    println!("final round without MixColumn");
    let cipher = Rijndael::<4>::new(&KEY).expect("fixed key");
    let trace = trace_encrypt(&cipher, &State::from_bytes(&PT));
    println!("  input          {}", trace.input);
    println!("  after AddKey0  {}", trace.after_initial_add_key);
    for r in &trace.rounds {
        println!(
            "  round {:>2}       {}   (MixColumn {})",
            r.round,
            r.after_add_key,
            if r.after_mix_column.is_some() {
                "yes"
            } else {
                "SKIPPED"
            }
        );
    }
    println!("  ciphertext     {}\n", trace.output());
}

fn fig3() {
    println!("Figure 3 — KStran: shift word left, ByteSub each byte, XOR rcon");
    let w = 0x09CF_4F3Cu32; // last word of the FIPS-197 key
    println!("  input word        {w:08x}");
    println!("  after RotWord     {:08x}", rot_word(w));
    println!("  after SubWord     {:08x}", sub_word(rot_word(w)));
    println!("  rcon(1)           {:08x}", rcon(1));
    println!("  KStran output     {:08x}\n", kstran(w, 1));
}

fn fig4() {
    println!("Figure 4 — ByteSub: every state byte indexes the S-box ROM");
    let mut st = State::<4>::from_bytes(&PT);
    print_state("before", &st);
    rijndael::transform::byte_sub(&mut st);
    print_state("after ", &st);
    println!();
}

fn fig5() {
    println!("Figure 5 — the S-box table (256 x 8 bits = 2048 bits of ROM,");
    println!("derived from the GF(2^8) inverse + affine transform):");
    for row in 0..16 {
        print!("  {:x}x:", row);
        for col in 0..16 {
            print!(" {:02x}", SBOX[16 * row + col]);
        }
        println!();
    }
    println!();
}

fn fig6() {
    println!("Figure 6 — (I)ShiftRow: row r rotates by r positions");
    let bytes: [u8; 16] = core::array::from_fn(|i| i as u8);
    let mut st = State::<4>::from_bytes(&bytes);
    print_state("before", &st);
    rijndael::transform::inv_shift_row(&mut st);
    print_state("after IShiftRow", &st);
    println!();
}

fn fig7() {
    println!("Figure 7 — MixColumn: each column multiplied by");
    println!("c(x) = 03 x^3 + 01 x^2 + 01 x + 02  (mod x^4 + 1)");
    let col = [0xD4, 0xBF, 0x5D, 0x30];
    let mixed = gf256::GfPoly4::MIX_COLUMN.apply_column(col);
    println!("  column {col:02x?} -> {mixed:02x?}");
    let back = gf256::GfPoly4::INV_MIX_COLUMN.apply_column(mixed);
    println!("  IMixColumn restores {back:02x?}\n");
}

fn main() {
    let arg = std::env::args().nth(1);
    let all = arg.is_none();
    let want = |name: &str| all || arg.as_deref() == Some(name);
    if want("fig1") {
        fig1();
    }
    if want("fig2") {
        fig2();
    }
    if want("fig3") {
        fig3();
    }
    if want("fig4") {
        fig4();
    }
    if want("fig5") {
        fig5();
    }
    if want("fig6") {
        fig6();
    }
    if want("fig7") {
        fig7();
    }
}

//! Load generator for the framed TCP crypto service, in three acts:
//!
//! 1. **Pipelined throughput** — loopback clients streaming depth-16
//!    CTR bursts at servers whose per-session engine farms grow by
//!    core count, reporting real wall-clock throughput and per-burst
//!    latency percentiles, then auditing the server over the wire:
//!    `GET_STATS` must report exactly the per-opcode request counts
//!    the run generated.
//! 2. **Noisy neighbor** — a client streaming 256 KiB bulk jobs shares
//!    one shard with a client timing small CTR bursts. The bulk work
//!    rides the session worker pool, so the run asserts the small
//!    p99 stays far below one bulk job's modeled crypto time — the
//!    regression this guards is bulk crypto ever moving back onto the
//!    event-loop thread. The elastic supervisor must also grow the
//!    bulk session's farm under the queue pressure.
//! 3. **Connection scale** — a helper child process (re-invoking this
//!    binary with `--hold`) parks 10 000 idle connections on the
//!    server while short-lived clients churn through bursty pipelined
//!    traffic. The run asserts the server holds ≥ 10 000 concurrent
//!    connections end to end and that the event loop's own
//!    `service.loop.*` histograms report finite p50/p99 under that
//!    load. The child exists because holding both halves of 10 000
//!    loopback sockets in one process needs twice the fd budget.
//!
//! Unlike `engine_scaling` (virtual cycles from the cycle-accurate
//! models), this measures the deployed system end to end: TCP framing,
//! readiness polling, session dispatch and the engine itself. Set
//! `TESTKIT_BENCH_SMOKE=1` (or pass `--smoke`) for a tiny traffic
//! workload so CI keeps the binary exercised — the 10 000-connection
//! hold runs in smoke mode too; it is the point of the bench.

use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use engine::BackendSpec;
use service::client::Client;
use service::protocol::Op;
use service::server::{Server, ServiceConfig};

/// Frames in flight per connection during a pipelined burst.
const DEPTH: usize = 16;
/// Idle connections the `--hold` child parks on the server.
const HELD: usize = 10_000;

/// One client thread's share of the workload.
struct ClientReport {
    bytes: u64,
    burst_latencies: Vec<Duration>,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank]
}

/// Child mode: connect `n` sockets and hold them idle until the parent
/// writes a line on stdin. Prints `HELD <n>` once every connection is
/// up so the parent knows the server's books should show them.
fn hold_connections(n: usize, addr: &str) {
    let _ = service::net::raise_nofile_limit();
    let mut held = Vec::with_capacity(n);
    for i in 0..n {
        match TcpStream::connect(addr) {
            Ok(stream) => held.push(stream),
            Err(e) => panic!("holder connect {i}/{n} failed: {e}"),
        }
    }
    println!("HELD {}", held.len());
    std::io::stdout().flush().expect("flush handshake");
    let mut release = String::new();
    std::io::stdin()
        .read_line(&mut release)
        .expect("wait for release");
    drop(held);
}

fn run_load(
    farm: &[BackendSpec],
    clients: usize,
    bursts_per_client: usize,
    payload_len: usize,
) -> (Duration, u64, Vec<Duration>) {
    let server = Server::new(
        ServiceConfig::builder()
            .farm(farm)
            .queue_capacity(64)
            .max_connections(clients + 2)
            .idle_timeout(Duration::from_secs(30))
            .event_threads(2)
            .build()
            .expect("valid load config"),
    )
    .spawn("127.0.0.1:0")
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    let started = Instant::now();
    let mut workers = Vec::new();
    for worker in 0..clients {
        workers.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client.set_key(&[worker as u8 + 1; 16]).expect("SET_KEY");
            let payload = vec![worker as u8; payload_len];
            let mut icb = [0u8; 16];
            icb[0] = worker as u8;
            let mut report = ClientReport {
                bytes: 0,
                burst_latencies: Vec::with_capacity(bursts_per_client),
            };
            for _ in 0..bursts_per_client {
                let t0 = Instant::now();
                for _ in 0..DEPTH {
                    client
                        .pipeline(Op::CtrApply, Some(&icb), &payload)
                        .expect("pipeline CTR");
                }
                let jobs = client.collect_all().expect("collect burst");
                report.burst_latencies.push(t0.elapsed());
                assert_eq!(jobs.len(), DEPTH, "every frame in the burst must answer");
                for job in jobs {
                    report.bytes += job.result.expect("CTR apply").len() as u64;
                }
            }
            report
        }));
    }

    let mut bytes = 0u64;
    let mut latencies = Vec::new();
    for worker in workers {
        let report = worker.join().expect("client thread");
        bytes += report.bytes;
        latencies.extend(report.burst_latencies);
    }
    let elapsed = started.elapsed();

    // Cross-check the server's own books over the wire: GET_STATS must
    // report exactly the requests this run just made, and the JSON it
    // returns is the same snapshot the in-process registry yields — one
    // counter path end to end.
    let mut auditor = Client::connect(addr).expect("connect for stats");
    let stats_json = auditor.stats().expect("GET_STATS");
    let expected = (clients * bursts_per_client * DEPTH) as u64;
    let snap = server.registry().snapshot();
    assert_eq!(
        snap.counter("service.op.ctr_apply.requests"),
        Some(expected),
        "server must count every CTR request"
    );
    assert_eq!(
        snap.counter("service.op.set_key.requests"),
        Some(clients as u64)
    );
    let needle = format!(
        "{{\"name\":\"service.op.ctr_apply.requests\",\"type\":\"counter\",\"value\":{expected}}}"
    );
    assert!(
        stats_json.contains(&needle),
        "GET_STATS JSON must carry the same tally: missing {needle}"
    );
    drop(auditor);

    server.shutdown();
    latencies.sort_unstable();
    (elapsed, bytes, latencies)
}

/// The noisy-neighbor act: one shard, one client streaming 256 KiB
/// bulk ECB jobs, one client timing depth-[`DEPTH`] bursts of small
/// CTR requests beside it. The farm is a paced core
/// ([`BackendSpec::Paced`]) so each bulk job models ~33 ms of crypto:
/// if bulk ran inline on the event loop (the pre-pool design), every
/// small burst sharing the shard would eat that stall and the small
/// p99 would sit at tens of milliseconds. With the worker-pool lane
/// the shard only routes completions, so the run asserts the small
/// p99 stays under half of one modeled bulk job. The elastic policy
/// rides along: bulk queue depth must make the supervisor grow the
/// session's farm, visible in the same snapshot `GET_STATS` serves.
fn mixed_traffic(smoke: bool) {
    const BLOCK_NS: u32 = 2_000;
    let bulk_len = 256 * 1024; // MAX_PAYLOAD: 16 384 blocks ≈ 33 ms paced
                               // Even the smoke quota holds the queue busy past the supervisor's
                               // first 100 ms tick, so the grow assertion below is never racy.
    let bulk_jobs = if smoke { 6 } else { 10 };
    let bulk_depth = 4usize;
    let modeled_job = Duration::from_nanos(u64::from(BLOCK_NS)) * (bulk_len as u32 / 16);

    let server = Server::new(
        ServiceConfig::builder()
            .farm(&[BackendSpec::Paced { block_ns: BLOCK_NS }])
            .queue_capacity(64)
            .max_connections(4)
            .idle_timeout(Duration::from_secs(30))
            // Both clients share one shard: the neighbor effect is real.
            .event_threads(1)
            .elastic(engine::ResizePolicy {
                min_workers: 1,
                max_workers: 4,
                grow_depth: 2,
                shrink_after_ticks: 4,
                busy_occupancy_bp: 8_000,
                spec: BackendSpec::Paced { block_ns: BLOCK_NS },
            })
            .build()
            .expect("valid neighbor config"),
    )
    .spawn("127.0.0.1:0")
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

    // Bulk neighbor: keep `bulk_depth` jobs of modeled ~33 ms in
    // flight until its quota is done.
    let bulk_thread = {
        let done = std::sync::Arc::clone(&done);
        thread::spawn(move || {
            let mut client = Client::connect(addr).expect("bulk connect");
            client.set_key(&[0xB1; 16]).expect("SET_KEY");
            let payload = vec![0x42u8; bulk_len];
            let mut submitted = 0usize;
            let mut collected = 0usize;
            while collected < bulk_jobs {
                while submitted < bulk_jobs && submitted - collected < bulk_depth {
                    client
                        .pipeline(Op::EcbEncrypt, None, &payload)
                        .expect("pipeline bulk");
                    submitted += 1;
                }
                let job = client.collect_next().expect("collect bulk");
                assert_eq!(job.result.expect("bulk ok").len(), bulk_len);
                collected += 1;
            }
            done.store(true, std::sync::atomic::Ordering::Release);
        })
    };

    // Small lane: depth-DEPTH bursts of 64 B CTR requests, timed,
    // until the bulk neighbor finishes (minimum 20 bursts so the p99
    // means something even if bulk wins the race).
    let small_thread = {
        let done = std::sync::Arc::clone(&done);
        thread::spawn(move || {
            let mut client = Client::connect(addr).expect("small connect");
            client.set_key(&[0x51; 16]).expect("SET_KEY");
            let payload = vec![0x07u8; 64];
            let icb = [0x11u8; 16];
            let mut latencies = Vec::new();
            while latencies.len() < 20 || !done.load(std::sync::atomic::Ordering::Acquire) {
                let t0 = Instant::now();
                for _ in 0..DEPTH {
                    client
                        .pipeline(Op::CtrApply, Some(&icb), &payload)
                        .expect("pipeline small");
                }
                let jobs = client.collect_all().expect("collect small burst");
                latencies.push(t0.elapsed());
                assert_eq!(jobs.len(), DEPTH);
                for job in jobs {
                    assert_eq!(job.result.expect("small CTR ok").len(), 64);
                }
            }
            latencies
        })
    };

    bulk_thread.join().expect("bulk neighbor");
    let mut latencies = small_thread.join().expect("small lane");
    latencies.sort_unstable();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    println!(
        "mixed traffic: {bulk_jobs} x {} KiB bulk (modeled {:.1} ms each) beside {} small bursts",
        bulk_len / 1024,
        modeled_job.as_secs_f64() * 1e3,
        latencies.len(),
    );
    println!("mixed traffic: small-burst p50 {p50:>8.2?} p99 {p99:>8.2?}");

    // The gate: inline bulk would pin the small p99 at or above one
    // modeled job; the pool lane must keep it under half of one.
    assert!(
        p99 < modeled_job / 2,
        "small-request p99 {p99:?} must stay under half a bulk job ({:?}) — bulk crypto may not run on the event loop",
        modeled_job / 2,
    );

    // Queue pressure from the bulk lane must have grown that session's
    // farm, and the books must balance.
    let snap = server.registry().snapshot();
    assert!(
        snap.counter("engine.resize.grow").unwrap_or(0) >= 1,
        "bulk depth {bulk_depth} must trip the elastic supervisor"
    );
    assert_eq!(snap.gauge("service.pipeline.inflight"), Some(0));
    server.shutdown();
}

/// The 10 000-connection act: park [`HELD`] idle connections via the
/// child, churn short-lived pipelined clients through the same server,
/// and make the server prove it — connection gauge at or above the
/// floor the whole time, pipeline gauge drained to zero, and finite
/// p50/p99 out of the event loop's own histograms.
fn massive_connection_hold(smoke: bool) {
    let server = Server::new(
        ServiceConfig::builder()
            .farm(&[BackendSpec::EncDecCore, BackendSpec::Software])
            .queue_capacity(64)
            .max_connections(HELD + 64)
            .idle_timeout(Duration::from_secs(300))
            .event_threads(2)
            .build()
            .expect("valid hold config"),
    )
    .spawn("127.0.0.1:0")
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    let exe = std::env::current_exe().expect("own path for the holder child");
    let mut child = Command::new(exe)
        .arg("--hold")
        .arg(HELD.to_string())
        .arg(addr.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn holder child");
    let mut child_out = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut handshake = String::new();
    child_out
        .read_line(&mut handshake)
        .expect("holder handshake");
    assert_eq!(
        handshake.trim(),
        format!("HELD {HELD}"),
        "holder must park every connection"
    );

    // The child counts connects; wait for the server's gauge to agree.
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.active_connections() < HELD {
        assert!(
            Instant::now() < deadline,
            "server admitted only {} of {HELD} held connections",
            server.active_connections()
        );
        thread::sleep(Duration::from_millis(10));
    }
    println!(
        "holding {} concurrent connections ({} served so far)",
        server.active_connections(),
        server.connections_served()
    );

    // Bursty churn on top: every burst is a fresh connection that
    // pipelines DEPTH single-block jobs through the engine queue and
    // disconnects — connection setup, admission and teardown all stay
    // on the hot path while the 10k idle sockets sit in the poll sets.
    let workers = 4usize;
    let bursts_per_worker = if smoke { 4 } else { 32 };
    let mut handles = Vec::new();
    for worker in 0..workers {
        handles.push(thread::spawn(move || {
            let mut latencies = Vec::with_capacity(bursts_per_worker);
            for _ in 0..bursts_per_worker {
                let mut client = Client::connect(addr).expect("churn connect");
                client.set_key(&[worker as u8 + 1; 16]).expect("SET_KEY");
                let t0 = Instant::now();
                for _ in 0..DEPTH {
                    client
                        .pipeline(Op::EcbEncrypt, None, &[worker as u8; 16])
                        .expect("pipeline");
                }
                let jobs = client.collect_all().expect("collect");
                latencies.push(t0.elapsed());
                assert_eq!(jobs.len(), DEPTH);
                for job in jobs {
                    assert_eq!(job.result.expect("block ok").len(), 16);
                }
            }
            latencies
        }));
    }
    let mut latencies: Vec<Duration> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("churn thread"))
        .collect();
    latencies.sort_unstable();

    assert!(
        server.active_connections() >= HELD,
        "idle connections must survive the churn ({} left)",
        server.active_connections()
    );

    // The server's own event-loop histograms must yield finite
    // percentiles — the regression this guards is `quantile` reading
    // as "no data" the moment load pushed a bucket into overflow.
    let snap = server.registry().snapshot();
    assert_eq!(
        snap.gauge("service.pipeline.inflight"),
        Some(0),
        "every pipelined job must be drained"
    );
    let dispatch = snap
        .histogram("service.loop.dispatch_micros")
        .expect("dispatch histogram");
    let d50 = dispatch.quantile(0.50).expect("dispatch p50");
    let d99 = dispatch.quantile(0.99).expect("dispatch p99");
    assert!(
        !d50.is_overflow(),
        "median dispatch must land in a finite bucket"
    );
    let events = snap
        .histogram("service.loop.events_per_poll")
        .expect("events histogram");
    let e99 = events.quantile(0.99).expect("events p99");

    println!(
        "churn: {} bursts of {DEPTH} pipelined frames, burst p50 {:>8.2?} p99 {:>8.2?}",
        latencies.len(),
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
    );
    println!(
        "event loop: dispatch p50 {d50} us, p99 {d99} us ({} polls)",
        dispatch.count
    );
    println!("event loop: events/poll p99 {e99}");

    // Release the holder and confirm it exits cleanly.
    child
        .stdin
        .take()
        .expect("child stdin")
        .write_all(b"done\n")
        .expect("release holder");
    let status = child.wait().expect("holder exit");
    assert!(status.success(), "holder child failed: {status}");
    server.shutdown();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 4 && args[1] == "--hold" {
        let n: usize = args[2].parse().expect("--hold count");
        hold_connections(n, &args[3]);
        return;
    }

    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var_os("TESTKIT_BENCH_SMOKE").is_some_and(|v| v != "0");
    let clients = 4usize;
    let (bursts, payload_len) = if smoke { (2, 1024) } else { (12, 16 * 1024) };

    println!("Service load — {clients} loopback clients, {bursts} bursts of {DEPTH} pipelined CTR");
    println!("requests each, {payload_len} B payloads, per-session farms of the paper's core\n");
    println!(
        "{:<6} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "cores", "requests", "throughput", "b.p50", "b.p90", "b.p99"
    );
    println!("{}", "-".repeat(64));

    for cores in [1usize, 2, 4] {
        let farm = vec![BackendSpec::EncDecCore; cores];
        let (elapsed, bytes, latencies) = run_load(&farm, clients, bursts, payload_len);
        let secs = elapsed.as_secs_f64().max(1e-9);
        let mibps = bytes as f64 / (1024.0 * 1024.0) / secs;
        println!(
            "{:<6} {:>10} {:>9.2} MiB/s {:>9.2?} {:>9.2?} {:>9.2?}",
            cores,
            latencies.len() * DEPTH,
            mibps,
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.90),
            percentile(&latencies, 0.99),
        );
        assert_eq!(
            latencies.len(),
            clients * bursts,
            "every burst must complete"
        );
    }

    println!();
    mixed_traffic(smoke);

    println!();
    massive_connection_hold(smoke);

    println!("\n(real wall-clock figures: TCP + framing + readiness loop + engine)");
}

//! Load generator for the framed TCP crypto service: concurrent
//! loopback clients hammering CTR requests at servers whose per-session
//! engine farms grow by core count, reporting real wall-clock
//! throughput and request-latency percentiles.
//!
//! Unlike `engine_scaling` (virtual cycles from the cycle-accurate
//! models), this measures the deployed system end to end: TCP framing,
//! session dispatch, worker threads and the engine itself. After each
//! run it audits the server over the wire: `GET_STATS` must report
//! exactly the per-opcode request counts the run generated, and the
//! JSON must match the in-process registry snapshot. Set
//! `TESTKIT_BENCH_SMOKE=1` (or pass `--smoke`) for a tiny workload so
//! CI keeps the binary exercised.

use std::thread;
use std::time::{Duration, Instant};

use engine::BackendSpec;
use service::client::Client;
use service::server::{Server, ServiceConfig};

/// One client thread's share of the workload.
struct ClientReport {
    bytes: u64,
    latencies: Vec<Duration>,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank]
}

fn run_load(
    farm: &[BackendSpec],
    clients: usize,
    requests_per_client: usize,
    payload_len: usize,
) -> (Duration, u64, Vec<Duration>) {
    let server = Server::new(ServiceConfig {
        farm: farm.to_vec(),
        queue_capacity: 32,
        max_connections: clients + 2,
        idle_timeout: Duration::from_secs(30),
    })
    .spawn("127.0.0.1:0")
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    let started = Instant::now();
    let mut workers = Vec::new();
    for worker in 0..clients {
        workers.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client.set_key(&[worker as u8 + 1; 16]).expect("SET_KEY");
            let payload = vec![worker as u8; payload_len];
            let mut icb = [0u8; 16];
            icb[0] = worker as u8;
            let mut report = ClientReport {
                bytes: 0,
                latencies: Vec::with_capacity(requests_per_client),
            };
            for _ in 0..requests_per_client {
                let t0 = Instant::now();
                let out = client.ctr_apply(&icb, &payload).expect("CTR apply");
                report.latencies.push(t0.elapsed());
                report.bytes += out.len() as u64;
            }
            report
        }));
    }

    let mut bytes = 0u64;
    let mut latencies = Vec::new();
    for worker in workers {
        let report = worker.join().expect("client thread");
        bytes += report.bytes;
        latencies.extend(report.latencies);
    }
    let elapsed = started.elapsed();

    // Cross-check the server's own books over the wire: GET_STATS must
    // report exactly the requests this run just made, and the JSON it
    // returns is the same snapshot the in-process registry yields — one
    // counter path end to end.
    let mut auditor = Client::connect(addr).expect("connect for stats");
    let stats_json = auditor.stats().expect("GET_STATS");
    let expected = (clients * requests_per_client) as u64;
    let snap = server.registry().snapshot();
    assert_eq!(
        snap.counter("service.op.ctr_apply.requests"),
        Some(expected),
        "server must count every CTR request"
    );
    assert_eq!(
        snap.counter("service.op.set_key.requests"),
        Some(clients as u64)
    );
    let needle = format!(
        "{{\"name\":\"service.op.ctr_apply.requests\",\"type\":\"counter\",\"value\":{expected}}}"
    );
    assert!(
        stats_json.contains(&needle),
        "GET_STATS JSON must carry the same tally: missing {needle}"
    );
    drop(auditor);

    server.shutdown();
    latencies.sort_unstable();
    (elapsed, bytes, latencies)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var_os("TESTKIT_BENCH_SMOKE").is_some_and(|v| v != "0");
    let clients = 4usize;
    let (requests, payload_len) = if smoke { (8, 1024) } else { (200, 16 * 1024) };

    println!("Service load — {clients} loopback clients, {requests} CTR requests each,");
    println!("{payload_len} B payloads, per-session farms of the paper's combined core\n");
    println!(
        "{:<6} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "cores", "requests", "throughput", "p50", "p90", "p99"
    );
    println!("{}", "-".repeat(64));

    for cores in [1usize, 2, 4] {
        let farm = vec![BackendSpec::EncDecCore; cores];
        let (elapsed, bytes, latencies) = run_load(&farm, clients, requests, payload_len);
        let secs = elapsed.as_secs_f64().max(1e-9);
        let mibps = bytes as f64 / (1024.0 * 1024.0) / secs;
        println!(
            "{:<6} {:>10} {:>9.2} MiB/s {:>9.2?} {:>9.2?} {:>9.2?}",
            cores,
            latencies.len(),
            mibps,
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.90),
            percentile(&latencies, 0.99),
        );
        assert_eq!(
            latencies.len(),
            clients * requests,
            "every request must complete"
        );
    }

    println!("\n(real wall-clock figures: TCP + framing + session dispatch + engine)");
}

//! Elastic worker-pool gate, in three acts:
//!
//! 1. **Thread scaling** — farms of paced cores (each modeling one
//!    independently clocked hardware IP, `BackendSpec::Paced`) run the
//!    same bulk ECB + CTR workload at 1, 2 and 4 workers and the run
//!    asserts ≥ 2x wall-clock speedup from 1 → 4. Pacing makes the
//!    measurement honest on any host: the modeled per-block time
//!    dominates, and sleeps overlap across worker threads exactly the
//!    way concurrent hardware cores would, so the figure reflects the
//!    paper's deployment rather than the benchmark machine's core
//!    count.
//! 2. **Resize under load** — a 1-worker pool takes a queue of bulk
//!    jobs; mid-stream the farm grows to 4 workers and hot-swaps slot
//!    0. The run asserts the inter-completion gap steps down after the
//!    grow, that the shrink back to 1 worker loses nothing, and that
//!    every accepted job completes successfully.
//! 3. **Service supervision** — an in-process framed-TCP server runs
//!    with `ServiceConfig::elastic` set; pipelined bulk traffic from a
//!    real client drives the queue-depth gauge up, and the run asserts
//!    the shard's autoscale tick grew the farm and later shrank it,
//!    with both visible over the wire through `GET_STATS`.
//!
//! Results land in `BENCH_elastic.json` (override the path with
//! `BENCH_ELASTIC_JSON`) as a `telemetry/1` snapshot. Pass `--smoke`
//! or set `TESTKIT_BENCH_SMOKE=1` for the tiny CI workload.

use std::time::{Duration, Instant};

use engine::{BackendSpec, Mode, PoolBuilder, ResizePolicy};
use service::client::Client;
use service::protocol::Op;
use service::server::{Server, ServiceConfig};
use telemetry::Registry;

/// Modeled per-block processing time for the paced cores. Large enough
/// that pacing dwarfs both the real T-table arithmetic and the OS
/// scheduling noise, small enough that the full sweep stays quick.
const BLOCK_NS: u32 = 20_000;

/// The paced-core spec every farm in this gate is built from.
const PACED: BackendSpec = BackendSpec::Paced { block_ns: BLOCK_NS };

/// Upper bound on any single collect while work is outstanding.
const WAIT: Duration = Duration::from_secs(30);

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("TESTKIT_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let job_blocks: usize = if smoke { 64 } else { 256 };
    let jobs: usize = if smoke { 6 } else { 12 };
    let report = Registry::new();
    report.gauge("bench.elastic.smoke").set(i64::from(smoke));
    report.gauge("bench.elastic.host_parallelism").set(
        std::thread::available_parallelism()
            .map(|n| i64::try_from(n.get()).unwrap_or(i64::MAX))
            .unwrap_or(1),
    );

    thread_scaling(&report, job_blocks, jobs);
    resize_under_load(&report, job_blocks, jobs);
    service_supervision(&report);

    let doc = report.snapshot().to_json();
    let path =
        std::env::var("BENCH_ELASTIC_JSON").unwrap_or_else(|_| "BENCH_elastic.json".to_string());
    match std::fs::write(&path, &doc) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// Submits `jobs` bulk jobs of `mode`, waits for them all, and asserts
/// every one succeeded. Returns each job's payload result for byte
/// checks.
fn run_batch(pool: &engine::WorkerPool, mode: &Mode, payload: &[u8], jobs: usize) -> Vec<Vec<u8>> {
    let mut pending = 0usize;
    for _ in 0..jobs {
        loop {
            match pool.try_submit(*mode, payload.to_vec()) {
                Ok(_) => break,
                Err(engine::SubmitError::Busy { .. }) => {
                    std::thread::yield_now();
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        pending += 1;
    }
    let mut outputs = Vec::with_capacity(pending);
    for _ in 0..pending {
        let out = pool
            .collect_timeout(WAIT)
            .expect("completion while work is outstanding");
        outputs.push(out.data.expect("bulk job succeeds"));
    }
    outputs
}

/// Act 1: wall-clock 1 → 2 → 4 worker sweep over bulk ECB and CTR.
fn thread_scaling(report: &Registry, job_blocks: usize, jobs: usize) {
    let key = [0x2Bu8; 16];
    let payload = vec![0x5Au8; job_blocks * 16];
    let modes = [Mode::EcbEncrypt, Mode::Ctr([0x0Fu8; 16])];

    // Byte reference for the ECB half, computed once.
    let cipher = rijndael::Aes128::new(&key);
    let mut want_ecb = payload.clone();
    rijndael::modes::Ecb::encrypt(&cipher, &mut want_ecb).expect("block-aligned");

    println!(
        "Elastic scaling — {jobs} jobs x {job_blocks} blocks (ECB + CTR), paced cores at {BLOCK_NS} ns/block\n"
    );
    println!("{:<9} {:>12} {:>10}", "workers", "wall ms", "speedup");
    println!("{}", "-".repeat(33));

    let mut times: Vec<(usize, Duration)> = Vec::new();
    for workers in [1usize, 2, 4] {
        let pool = PoolBuilder::new()
            .cores(&vec![PACED; workers])
            .capacity(jobs * 2)
            .build(&key);
        let started = Instant::now();
        for mode in &modes {
            let outputs = run_batch(&pool, mode, &payload, jobs);
            if matches!(mode, Mode::EcbEncrypt) {
                assert!(
                    outputs.iter().all(|o| *o == want_ecb),
                    "paced farm of {workers} must match the software reference"
                );
            }
        }
        let elapsed = started.elapsed();
        let speedup = times
            .first()
            .map_or(1.0, |(_, t1)| t1.as_secs_f64() / elapsed.as_secs_f64());
        println!(
            "{workers:<9} {:>12.1} {speedup:>9.2}x",
            elapsed.as_secs_f64() * 1e3
        );
        report
            .counter(&format!("bench.elastic.wall_us.workers_{workers}"))
            .add(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
        times.push((workers, elapsed));
        pool.shutdown();
    }

    let t1 = times[0].1.as_secs_f64();
    let t4 = times[2].1.as_secs_f64();
    let speedup = t1 / t4;
    report
        .counter("bench.elastic.speedup_1_to_4_x1000")
        .add((speedup * 1000.0).round() as u64);
    assert!(
        speedup >= 2.0,
        "1 -> 4 paced workers must give >= 2x wall-clock, got {speedup:.2}x"
    );
    println!("\n1 -> 4 workers: {speedup:.2}x wall-clock (gate: >= 2x)\n");
}

/// Act 2: grow/swap/shrink a live pool mid-queue and prove the latency
/// step, with zero lost or failed jobs.
fn resize_under_load(report: &Registry, job_blocks: usize, jobs: usize) {
    let key = [0x2Bu8; 16];
    let payload = vec![0xA5u8; job_blocks * 16];
    let registry = Registry::new();
    let pool = PoolBuilder::new()
        .cores(&[PACED])
        .capacity(jobs * 4)
        .registry(registry.clone())
        .build(&key);

    // Queue two halves' worth of work on the single worker up front.
    let total = jobs * 2;
    for _ in 0..total {
        pool.try_submit(Mode::EcbEncrypt, payload.clone())
            .expect("capacity covers the whole queue");
    }

    let started = Instant::now();
    let mut stamps = Vec::with_capacity(total);
    for collected in 0..total {
        let out = pool.collect_timeout(WAIT).expect("queued job completes");
        out.data.expect("resize must not fail jobs");
        stamps.push(started.elapsed());
        if collected + 1 == jobs {
            // Mid-stream: grow to 4 workers and hot-swap the original
            // slot while its queue is still full.
            for _ in 0..3 {
                pool.add_core(PACED);
            }
            assert!(pool.swap_core(0, PACED), "slot 0 is alive and swappable");
        }
    }

    // Shrink back down; the retiring workers' queues are empty now.
    while pool.workers() > 1 {
        let victim = pool.workers() - 1;
        assert!(pool.remove_core(victim), "grown worker retires cleanly");
    }

    let mean_gap = |window: &[Duration]| {
        let span = window.last().unwrap().saturating_sub(window[0]);
        span.as_secs_f64() / (window.len() - 1) as f64
    };
    let before = mean_gap(&stamps[..jobs]);
    let after = mean_gap(&stamps[jobs..]);
    let step = before / after;
    println!(
        "Resize under load — completion gap {:.2} ms/job on 1 worker, {:.2} ms/job after growing to 4 ({step:.2}x step)",
        before * 1e3,
        after * 1e3
    );
    report
        .counter("bench.elastic.resize_step_x1000")
        .add((step * 1000.0).round() as u64);
    assert!(
        step >= 1.3,
        "growing 1 -> 4 workers mid-queue must step completion latency down >= 1.3x, got {step:.2}x"
    );

    let snap = registry.snapshot();
    assert!(
        snap.counter("engine.resize.grow") >= Some(3),
        "grows counted"
    );
    assert!(
        snap.counter("engine.resize.shrink") >= Some(3),
        "shrinks counted"
    );
    assert!(
        snap.counter("engine.resize.swap") >= Some(1),
        "swap counted"
    );
    assert_eq!(
        snap.gauge("engine.workers"),
        Some(1),
        "farm back to 1 worker"
    );
    assert_eq!(
        snap.counter("engine.jobs.failed"),
        Some(0),
        "no job may fail across the whole resize cycle"
    );
    println!("grow/swap/shrink cycle complete: {total} jobs, 0 failures\n");
    pool.shutdown();
}

/// Act 3: the shard loop's autoscale tick, observed over the wire.
fn service_supervision(report: &Registry) {
    // One paced worker per fresh session; bulk pressure must make the
    // supervisor grow it, and the post-traffic quiet shrink it again.
    let policy = ResizePolicy {
        min_workers: 1,
        max_workers: 4,
        grow_depth: 2,
        shrink_after_ticks: 2,
        busy_occupancy_bp: 8_000,
        spec: PACED,
    };
    let server = Server::new(
        ServiceConfig::builder()
            .farm(&[BackendSpec::Paced { block_ns: 50_000 }])
            .queue_capacity(32)
            .max_connections(4)
            .idle_timeout(Duration::from_secs(30))
            .event_threads(1)
            .elastic(policy)
            .build()
            .expect("valid autoscale config"),
    )
    .spawn("127.0.0.1:0")
    .expect("bind ephemeral port");

    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.set_key(&[0x2Bu8; 16]).expect("SET_KEY");
    // 16 pipelined 4 KiB jobs: ~200 ms of modeled work queued on one
    // paced worker, so several 100 ms autoscale ticks see real depth.
    let bulk = vec![0x33u8; 256 * 16];
    for _ in 0..16 {
        client
            .pipeline(Op::EcbEncrypt, None, &bulk)
            .expect("pipelined submit");
    }
    let replies = client.collect_all().expect("collect pipelined bulk");
    assert_eq!(replies.len(), 16);
    assert!(
        replies.iter().all(|j| j.result.is_ok()),
        "bulk jobs succeed"
    );

    // Grow must already have happened during traffic; the shrink lands
    // within a few ticks of the queue going quiet.
    let deadline = Instant::now() + Duration::from_secs(10);
    let (grows, shrinks) = loop {
        let snap = server.registry().snapshot();
        let grows = snap.counter("engine.resize.grow").unwrap_or(0);
        let shrinks = snap.counter("engine.resize.shrink").unwrap_or(0);
        if grows >= 1 && shrinks >= 1 {
            break (grows, shrinks);
        }
        assert!(
            Instant::now() < deadline,
            "supervisor must grow and shrink the farm (saw grow={grows} shrink={shrinks} \
             workers={:?} depth={:?} completed={:?})",
            snap.gauge("engine.workers"),
            snap.gauge("engine.queue.depth"),
            snap.counter("engine.jobs.completed"),
        );
        std::thread::sleep(Duration::from_millis(50));
    };

    // The same figures a real operator sees: GET_STATS carries the
    // resize counters and the live worker gauge.
    let stats_json = client.stats().expect("GET_STATS");
    for needle in [
        "engine.resize.grow",
        "engine.resize.shrink",
        "engine.workers",
    ] {
        assert!(
            stats_json.contains(&format!("\"name\":\"{needle}\"")),
            "GET_STATS must expose {needle}"
        );
    }
    println!(
        "Service supervision — autoscaler grew x{grows} and shrank x{shrinks} under pipelined bulk load; counters visible via GET_STATS"
    );
    report.counter("bench.elastic.service.grow").add(grows);
    report.counter("bench.elastic.service.shrink").add(shrinks);
    drop(client);
    server.shutdown();
}

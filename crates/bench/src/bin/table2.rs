//! Regenerates the paper's Table 2: performance and occupation of the
//! three IP variants on the Acex1K and Cyclone devices, printed next to
//! the published values.

use bench_support::flows::table2_rows;
use bench_support::reference::PAPER_TABLE2;

fn main() {
    println!("Table 2 — performance and occupation (measured by this reproduction's flow");
    println!("vs the numbers published in the paper)\n");
    println!(
        "{:<8} {:<8} | {:>6} {:>5} | {:>7} {:>5} | {:>5} {:>4} | {:>8} | {:>7} | {:>10}",
        "System", "Device", "LC's", "%", "Mem", "%", "Pins", "%", "Latency", "Clk", "Throughput"
    );
    println!("{}", "-".repeat(104));
    for row in table2_rows() {
        let r = &row.report;
        println!(
            "{:<8} {:<8} | {:>6} {:>4.0}% | {:>7} {:>4.0}% | {:>5} {:>3.0}% | {:>6.0}ns | {:>5.1}ns | {:>6.0} Mbps",
            row.variant.to_string(),
            row.device.family.to_string().replace(' ', ""),
            r.fit.logic_cells,
            r.fit.logic_pct,
            r.fit.memory_bits,
            r.fit.memory_pct,
            r.fit.pins,
            r.fit.pin_pct,
            r.latency_ns,
            r.clock_ns,
            r.throughput_mbps,
        );
    }
    println!("\npaper:");
    for p in PAPER_TABLE2 {
        println!(
            "{:<8} {:<8} | {:>6} {:>4}% | {:>7} {:>4}% | {:>5} {:>3}% | {:>6}ns | {:>5}ns | {:>6} Mbps",
            p.system, p.family, p.lcs.0, p.lcs.1, p.memory.0, p.memory.1, p.pins.0, p.pins.1,
            p.latency_ns, p.clk_ns, p.throughput_mbps,
        );
    }
}

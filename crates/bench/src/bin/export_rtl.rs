//! Writes the IP's gate-level netlists out as structural Verilog and BLIF
//! — the hand-off artifacts a hardware team would take downstream
//! (simulate, re-synthesize with vendor tools, or feed ABC/VTR).
//!
//! Usage: `export_rtl [output-dir]` (default: ./rtl_export)

use aes_ip::core::CoreVariant;
use aes_ip::netlist_gen::{build_core_netlist, RomStyle};
use netlist::export::{mapped_to_blif, to_blif, to_verilog};
use netlist::mapper::{map, MapperConfig};
use netlist::opt::optimize;

fn main() -> std::io::Result<()> {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "rtl_export".to_string());
    std::fs::create_dir_all(&dir)?;

    for (variant, tag) in [
        (CoreVariant::Encrypt, "enc"),
        (CoreVariant::Decrypt, "dec"),
        (CoreVariant::EncDec, "encdec"),
    ] {
        let nl = build_core_netlist(variant, RomStyle::Macro);
        let v_path = format!("{dir}/aes128_{tag}.v");
        let b_path = format!("{dir}/aes128_{tag}.blif");
        std::fs::write(&v_path, to_verilog(&nl))?;
        std::fs::write(&b_path, to_blif(&nl))?;

        let (clean, _) = optimize(&nl);
        let mapped = map(&clean, &MapperConfig::default());
        let m_path = format!("{dir}/aes128_{tag}.mapped.blif");
        std::fs::write(&m_path, mapped_to_blif(&clean, &mapped))?;

        println!(
            "{tag}: {} ({} cells) -> {v_path}, {b_path}, {m_path} ({} LUTs)",
            nl.name(),
            nl.cells().len(),
            mapped.luts.len()
        );
    }
    Ok(())
}

//! The paper's §6 future work, carried out: an activity-based power
//! analysis of the architecture.
//!
//! Each device variant executes a stream of random blocks at the gate
//! level while switching activity is collected; dynamic power follows
//! from `P = α·C·V²·f` with per-family electrical parameters and the
//! synthesis flow's clock. The mobile-systems angle the paper mentions is
//! the energy per encrypted block.

use aes_ip::bus::IpDriver;
use aes_ip::core::{CoreVariant, CycleCore, Direction};
use aes_ip::gate_sim::GateLevelCore;
use aes_ip::netlist_gen::{build_core_netlist, RomStyle};
use fpga::device::{Device, EP1C20, EP1K100};
use fpga::flow::{synthesize, FlowOptions};
use fpga::power::power_params_for;
use netlist::power::estimate_power;
use testkit::Rng;

/// Fixed workload seed: power figures must be reproducible run-to-run.
const WORKLOAD_SEED: u64 = 0x70_3E12;

fn analyse(variant: CoreVariant, device: &Device) {
    let style = if device.family.supports_async_rom() {
        RomStyle::Macro
    } else {
        RomStyle::LogicCells
    };
    // Clock from the same flow that produced Table 2.
    let netlist = build_core_netlist(variant, style);
    let clock_ns = synthesize(&netlist, device, &FlowOptions::default())
        .expect("paper designs fit")
        .clock_ns;

    // Gate-level workload: 8 random blocks, pipelined.
    let mut core = GateLevelCore::new(variant, style);
    core.enable_activity();
    let mut drv = IpDriver::new(core);
    let mut rng = Rng::seed_from_u64(WORKLOAD_SEED);
    let key: [u8; 16] = rng.gen_array();
    drv.write_key(&key);
    let blocks: Vec<[u8; 16]> = (0..8).map(|_| rng.gen_array()).collect();
    let dir = if variant == CoreVariant::Decrypt {
        Direction::Decrypt
    } else {
        Direction::Encrypt
    };
    drv.try_process_stream(&blocks, dir)
        .expect("power workload stream");

    let mut core = drv.into_inner();
    let trace = core.take_activity().expect("activity was enabled");
    let report = estimate_power(
        core.netlist(),
        &trace,
        &power_params_for(device.family),
        clock_ns,
    );

    let energy_per_block_nj = report.energy_per_cycle_pj * core.latency_cycles() as f64 / 1000.0;
    println!(
        "{:<8} {:<8} | {:>6.1} mW total ({:>5.1} logic, {:>5.1} reg, {:>5.1} rom, {:>5.1} clk) \
         | {:>6.2} nJ/block | activity {:.3}",
        variant.to_string(),
        device.family.to_string().replace(' ', ""),
        report.dynamic_mw,
        report.logic_mw,
        report.register_mw,
        report.rom_mw,
        report.clock_mw,
        energy_per_block_nj,
        report.mean_activity,
    );
}

fn main() {
    println!("Power analysis (the paper's §6 future work): dynamic power while");
    println!("encrypting a pipelined stream, at each device's flow-derived clock");
    println!(
        "workload seed: {WORKLOAD_SEED:#x} (xoshiro256**; fixed for run-to-run reproducibility)\n"
    );
    for device in [&EP1K100, &EP1C20] {
        for variant in [
            CoreVariant::Encrypt,
            CoreVariant::Decrypt,
            CoreVariant::EncDec,
        ] {
            analyse(variant, device);
        }
        println!();
    }
    println!("notes: Cyclone's 1.5 V core vs ACEX's 2.5 V dominates the switching");
    println!("energy; the combined device pays for both datapaths' activity even");
    println!("when only one direction is in use — relevant for the paper's");
    println!("mobile-systems application.");
}

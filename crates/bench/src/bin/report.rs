//! Regenerates the complete measured-results record as one markdown file
//! (the data behind EXPERIMENTS.md), so the reproduction's numbers can be
//! refreshed with a single command.
//!
//! Usage: `report [output.md]` (default: stdout)

use std::fmt::Write as _;

use aes_ip::alt::AltArch;
use aes_ip::alt_netlist::build_alt_netlist;
use aes_ip::core::CoreVariant;
use aes_ip::netlist_gen::{build_core_netlist, RomStyle};
use bench_support::flows::table2_rows;
use fpga::device::EP1K100;
use fpga::flow::{synthesize, FlowOptions};

fn main() {
    let mut md = String::new();
    let _ = writeln!(md, "# Measured results (regenerated)\n");

    // ------------------------------------------------------- Table 2
    let _ = writeln!(md, "## Table 2\n");
    let _ = writeln!(
        md,
        "| System | Device | LCs | LC % | Memory | Pins | Clk ns | Latency ns | Mbps |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|---|---|");
    for row in table2_rows() {
        let r = &row.report;
        let _ = writeln!(
            md,
            "| {} | {} | {} | {:.0}% | {} | {} | {:.1} | {:.0} | {:.0} |",
            row.variant,
            row.device.family,
            r.fit.logic_cells,
            r.fit.logic_pct,
            r.fit.memory_bits,
            r.fit.pins,
            r.clock_ns,
            r.latency_ns,
            r.throughput_mbps,
        );
    }

    // -------------------------------------------------- architecture sweep
    let _ = writeln!(md, "\n## Architecture sweep ({})\n", EP1K100.part);
    let _ = writeln!(
        md,
        "| Architecture | cyc/round | latency | memory | LCs | Clk ns | Mbps |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|");
    for arch in AltArch::ALL {
        let nl = if arch == AltArch::Mixed32x128 {
            build_core_netlist(CoreVariant::Encrypt, RomStyle::Macro)
        } else {
            build_alt_netlist(arch, RomStyle::Macro)
        };
        let options = FlowOptions {
            latency_cycles: arch.latency_cycles(),
            ..Default::default()
        };
        let r = synthesize(&nl, &EP1K100, &options).expect("sweep fits");
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {:.1} | {:.0} |",
            arch,
            arch.cycles_per_round(),
            arch.latency_cycles(),
            r.fit.memory_bits,
            r.fit.logic_cells,
            r.clock_ns,
            r.throughput_mbps,
        );
    }

    let _ = writeln!(
        md,
        "\nSee `table3`, `power_analysis`, `seu_campaign`, `figures` and\n\
         `interface_demo` for the remaining artifacts."
    );

    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, md).expect("write report");
            println!("report written to {path}");
        }
        None => print!("{md}"),
    }
}

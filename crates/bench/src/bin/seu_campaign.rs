//! Single-event-upset campaign over the gate-level IP — the experiment of
//! the paper's companion work \[16\] ("Testing a Rijndael VHDL Description
//! to Single Event Upsets"), run on this reproduction's netlists.
//!
//! Random (flip-flop, cycle) upsets are injected during encryptions and
//! the pin-visible outcome is classified: masked, corrupted (wrong
//! ciphertext under a valid handshake — the dangerous class AES
//! diffusion makes hard to detect without end-to-end checks), or hung
//! (the one-hot control rings lost their token).

use aes_ip::core::CoreVariant;
use aes_ip::fault::run_campaign;
use aes_ip::netlist_gen::RomStyle;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    println!("SEU campaign: {trials} random upsets per variant (gate-level model)\n");
    println!(
        "{:<10} | {:>8} | {:>10} | {:>6} | {:>16}",
        "variant", "masked", "corrupted", "hung", "mean wrong bits"
    );
    println!("{}", "-".repeat(62));
    for variant in [
        CoreVariant::Encrypt,
        CoreVariant::Decrypt,
        CoreVariant::EncDec,
    ] {
        let c = run_campaign(variant, RomStyle::Macro, trials, 0x5E0_CAFE);
        println!(
            "{:<10} | {:>7.1}% | {:>9.1}% | {:>5.1}% | {:>13.1}",
            variant.to_string(),
            c.masked_rate() * 100.0,
            c.corrupted_rate() * 100.0,
            c.hung_rate() * 100.0,
            c.mean_wrong_bits(),
        );
    }
    println!(
        "\nreading: corrupted outputs average ~64 wrong bits (full diffusion), so\n\
         parity/byte-level checks cannot catch them — consistent with [16]'s case\n\
         for TMR-style hardening of the control and key path."
    );
}

//! Synthesis-flow helpers shared by the table binaries.

use aes_ip::core::CoreVariant;
use aes_ip::netlist_gen::{build_core_netlist, RomStyle};
use fpga::device::{Device, EP1C20, EP1K100};
use fpga::flow::{synthesize, FlowOptions, SynthesisReport};

/// One measured row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Which device variant.
    pub variant: CoreVariant,
    /// Target device.
    pub device: &'static Device,
    /// Flow result.
    pub report: SynthesisReport,
}

/// Synthesizes one variant for one device, choosing the ROM style the
/// family supports.
///
/// # Panics
///
/// Panics if the design does not fit (it fits both paper targets).
#[must_use]
pub fn synthesize_variant(variant: CoreVariant, device: &'static Device) -> SynthesisReport {
    let style = if device.family.supports_async_rom() {
        RomStyle::Macro
    } else {
        RomStyle::LogicCells
    };
    let nl = build_core_netlist(variant, style);
    synthesize(&nl, device, &FlowOptions::default()).expect("paper designs fit their devices")
}

/// All six rows of Table 2 (3 variants x 2 devices).
#[must_use]
pub fn table2_rows() -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for variant in [
        CoreVariant::Encrypt,
        CoreVariant::Decrypt,
        CoreVariant::EncDec,
    ] {
        for device in [&EP1K100, &EP1C20] {
            rows.push(Table2Row {
                variant,
                device,
                report: synthesize_variant(variant, device),
            });
        }
    }
    rows
}

//! The published numbers of the paper, kept verbatim for side-by-side
//! reporting (never fed back into the model).

/// One published row of the paper's Table 2.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Device block of the table ("Encrypt" / "Decrypt" / "Both").
    pub system: &'static str,
    /// Family column.
    pub family: &'static str,
    /// Logic cells / percentage.
    pub lcs: (u32, u32),
    /// Memory bits / percentage.
    pub memory: (u32, u32),
    /// Pins / percentage.
    pub pins: (u32, u32),
    /// Latency in ns.
    pub latency_ns: u32,
    /// Clock period in ns.
    pub clk_ns: u32,
    /// Throughput in Mbps.
    pub throughput_mbps: u32,
}

/// Table 2 as printed in the paper.
pub const PAPER_TABLE2: &[PaperRow] = &[
    PaperRow {
        system: "Encrypt",
        family: "Acex1K",
        lcs: (2114, 42),
        memory: (16384, 33),
        pins: (261, 78),
        latency_ns: 700,
        clk_ns: 14,
        throughput_mbps: 182,
    },
    PaperRow {
        system: "Encrypt",
        family: "Cyclone",
        lcs: (4057, 20),
        memory: (0, 0),
        pins: (261, 87),
        latency_ns: 500,
        clk_ns: 10,
        throughput_mbps: 256,
    },
    PaperRow {
        system: "Decrypt",
        family: "Acex1K",
        lcs: (2217, 44),
        memory: (16384, 33),
        pins: (261, 78),
        latency_ns: 750,
        clk_ns: 15,
        throughput_mbps: 170,
    },
    PaperRow {
        system: "Decrypt",
        family: "Cyclone",
        lcs: (4211, 20),
        memory: (0, 0),
        pins: (261, 87),
        latency_ns: 550,
        clk_ns: 11,
        throughput_mbps: 232,
    },
    PaperRow {
        system: "Both",
        family: "Acex1K",
        lcs: (3222, 64),
        memory: (32768, 66),
        pins: (262, 78),
        latency_ns: 850,
        clk_ns: 17,
        throughput_mbps: 150,
    },
    PaperRow {
        system: "Both",
        family: "Cyclone",
        lcs: (7034, 35),
        memory: (0, 0),
        pins: (262, 87),
        latency_ns: 650,
        clk_ns: 13,
        throughput_mbps: 197,
    },
];

/// One row of the paper's Table 3 (comparison with published FPGA
/// implementations). The scanned source text garbles several cells; those
/// are `None` ("not recoverable") and we do not invent them.
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    /// Citation tag in the paper.
    pub source: &'static str,
    /// Technology / device family.
    pub technology: &'static str,
    /// Memory bits, if reported and recoverable.
    pub memory_bits: Option<u32>,
    /// Logic cells (encrypt / decrypt / combined), where recoverable.
    pub lcs: [Option<u32>; 3],
    /// Throughput in Mbps (encrypt / decrypt / combined), where
    /// recoverable.
    pub throughput_mbps: [Option<f32>; 3],
}

/// Table 3 as recoverable from the paper text.
pub const PAPER_TABLE3: &[Table3Row] = &[
    Table3Row {
        source: "[13] Mroczkowski",
        technology: "Flex10KA",
        memory_bits: None,
        lcs: [None, None, None],
        throughput_mbps: [None, None, None],
    },
    Table3Row {
        source: "[14] Zigiotto/d'Amore (low-cost)",
        technology: "Acex1K",
        memory_bits: None,
        lcs: [None, None, Some(1965)],
        throughput_mbps: [None, None, Some(61.2)],
    },
    Table3Row {
        source: "[1] Panato et al. (high-performance)",
        technology: "Apex20K-1X",
        memory_bits: None,
        lcs: [None, None, None],
        throughput_mbps: [None, None, None],
    },
    Table3Row {
        source: "[15] Altera Hammercores",
        technology: "Apex20KE",
        memory_bits: Some(57344),
        lcs: [None, None, None],
        throughput_mbps: [None, None, None],
    },
];

//! Criterion benches for the EDA substrate itself: netlist generation,
//! optimisation, LUT mapping and the full synthesis flow.

use std::time::Duration;

use aes_ip::core::CoreVariant;
use aes_ip::netlist_gen::{build_core_netlist, RomStyle};
use criterion::{criterion_group, criterion_main, Criterion};
use fpga::device::{EP1C20, EP1K100};
use fpga::flow::{synthesize, FlowOptions};
use netlist::mapper::{map, MapperConfig};
use netlist::opt::optimize;
use std::hint::black_box;

fn bench_netlist_generation(c: &mut Criterion) {
    c.bench_function("generate_encrypt_netlist", |b| {
        b.iter(|| build_core_netlist(black_box(CoreVariant::Encrypt), RomStyle::Macro));
    });
}

fn bench_optimize_and_map(c: &mut Criterion) {
    let nl = build_core_netlist(CoreVariant::Encrypt, RomStyle::Macro);
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("optimize", |b| {
        b.iter(|| optimize(black_box(&nl)));
    });
    let (clean, _) = optimize(&nl);
    group.bench_function("lut_map", |b| {
        b.iter(|| map(black_box(&clean), &MapperConfig::default()));
    });
    group.finish();
}

fn bench_full_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_flow");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(8));
    group.bench_function("encrypt_on_acex", |b| {
        let nl = build_core_netlist(CoreVariant::Encrypt, RomStyle::Macro);
        b.iter(|| synthesize(black_box(&nl), &EP1K100, &FlowOptions::default()).expect("fits"));
    });
    group.bench_function("encrypt_on_cyclone_lut_roms", |b| {
        let nl = build_core_netlist(CoreVariant::Encrypt, RomStyle::LogicCells);
        b.iter(|| synthesize(black_box(&nl), &EP1C20, &FlowOptions::default()).expect("fits"));
    });
    group.finish();
}

criterion_group!(benches, bench_netlist_generation, bench_optimize_and_map, bench_full_flow);
criterion_main!(benches);

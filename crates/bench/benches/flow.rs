//! Benches for the EDA substrate itself: netlist generation, optimisation,
//! LUT mapping and the full synthesis flow. Runs on the hermetic `testkit`
//! harness.

use aes_ip::core::CoreVariant;
use aes_ip::netlist_gen::{build_core_netlist, RomStyle};
use fpga::device::{EP1C20, EP1K100};
use fpga::flow::{synthesize, FlowOptions};
use netlist::mapper::{map, MapperConfig};
use netlist::opt::optimize;
use std::hint::black_box;
use testkit::bench::Bench;

fn main() {
    let mut bench = Bench::from_args("flow");

    bench
        .group("netlist")
        .bench("generate_encrypt_netlist", || {
            build_core_netlist(black_box(CoreVariant::Encrypt), RomStyle::Macro)
        });

    {
        let nl = build_core_netlist(CoreVariant::Encrypt, RomStyle::Macro);
        let mut group = bench.group("synthesis");
        group.samples(5).warmup_ms(500).sample_ms(400);
        group.bench("optimize", || optimize(black_box(&nl)));
        let (clean, _) = optimize(&nl);
        group.bench("lut_map", || {
            map(black_box(&clean), &MapperConfig::default())
        });
    }

    {
        let mut group = bench.group("full_flow");
        group.samples(5).warmup_ms(500).sample_ms(600);
        let nl = build_core_netlist(CoreVariant::Encrypt, RomStyle::Macro);
        group.bench("encrypt_on_acex", || {
            synthesize(black_box(&nl), &EP1K100, &FlowOptions::default()).expect("fits")
        });
        let nl = build_core_netlist(CoreVariant::Encrypt, RomStyle::LogicCells);
        group.bench("encrypt_on_cyclone_lut_roms", || {
            synthesize(black_box(&nl), &EP1C20, &FlowOptions::default()).expect("fits")
        });
    }

    bench.finish();
}

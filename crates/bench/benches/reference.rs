//! Benches for the software baselines: the paper's introduction motivates
//! hardware by software cost, so the reproduction measures what
//! era-typical software approaches achieve on the host: the plain
//! specification cipher vs the 32-bit T-table implementation, plus the
//! key schedule and the block modes. Runs on the hermetic `testkit`
//! harness.

use rijndael::modes::{Cbc, Ctr};
use rijndael::ttable::TtableAes;
use rijndael::{Aes128, KeySchedule, Rijndael};
use std::hint::black_box;
use testkit::bench::Bench;

fn main() {
    let mut bench = Bench::from_args("reference");

    {
        let key = [0x2Bu8; 16];
        let spec = Rijndael::<4>::new(&key).expect("valid key");
        let fast = TtableAes::new(&key).expect("valid key");
        let mut group = bench.group("block_encrypt");
        group.throughput_bytes(16);
        let mut block = [7u8; 16];
        group.bench("specification", || {
            spec.encrypt(black_box(&mut block));
        });
        let mut block = [7u8; 16];
        group.bench("t_table", || {
            fast.encrypt_block(black_box(&mut block));
        });
    }

    {
        let mut group = bench.group("key_schedule");
        for bytes in [16usize, 24, 32] {
            let key = vec![0x5Au8; bytes];
            group.bench(&format!("{}", bytes * 8), || {
                KeySchedule::expand(black_box(&key), 4).expect("valid key")
            });
        }
    }

    {
        let aes = Aes128::new(&[1u8; 16]);
        let mut group = bench.group("modes_4k");
        group.throughput_bytes(4096);
        let mut buf = vec![0u8; 4096];
        group.bench("cbc_encrypt", || {
            Cbc::encrypt(&aes, &[0u8; 16], black_box(&mut buf)).expect("aligned");
        });
        let mut buf = vec![0u8; 4096];
        group.bench("ctr", || {
            Ctr::apply(&aes, &[0u8; 16], black_box(&mut buf));
        });
    }

    {
        // The non-AES Rijndael block sizes, to show the generic cipher's cost.
        let mut group = bench.group("rijndael_block_sizes");
        let key = [0u8; 32];

        let cipher = Rijndael::<4>::new(&key).expect("valid");
        let mut block = [0u8; 16];
        group.bench("nb4_128bit", || cipher.encrypt(black_box(&mut block)));

        let cipher = Rijndael::<6>::new(&key).expect("valid");
        let mut block = [0u8; 24];
        group.bench("nb6_192bit", || cipher.encrypt(black_box(&mut block)));

        let cipher = Rijndael::<8>::new(&key).expect("valid");
        let mut block = [0u8; 32];
        group.bench("nb8_256bit", || cipher.encrypt(black_box(&mut block)));
    }

    bench.finish();
}

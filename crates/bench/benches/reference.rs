//! Criterion benches for the software baselines: the paper's introduction
//! motivates hardware by software cost, so the reproduction measures what
//! era-typical software approaches achieve on the host: the plain
//! specification cipher vs the 32-bit T-table implementation, plus the
//! key schedule and the block modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rijndael::modes::{Cbc, Ctr};
use rijndael::ttable::TtableAes;
use rijndael::{Aes128, KeySchedule, Rijndael};
use std::hint::black_box;

fn bench_block_encrypt(c: &mut Criterion) {
    let key = [0x2Bu8; 16];
    let spec = Rijndael::<4>::new(&key).expect("valid key");
    let fast = TtableAes::new(&key).expect("valid key");
    let mut group = c.benchmark_group("block_encrypt");
    group.throughput(Throughput::Bytes(16));
    group.bench_function("specification", |b| {
        let mut block = [7u8; 16];
        b.iter(|| {
            spec.encrypt(black_box(&mut block));
        });
    });
    group.bench_function("t_table", |b| {
        let mut block = [7u8; 16];
        b.iter(|| {
            fast.encrypt_block(black_box(&mut block));
        });
    });
    group.finish();
}

fn bench_key_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_schedule");
    for bytes in [16usize, 24, 32] {
        let key = vec![0x5Au8; bytes];
        group.bench_with_input(BenchmarkId::from_parameter(bytes * 8), &key, |b, key| {
            b.iter(|| KeySchedule::expand(black_box(key), 4).expect("valid key"));
        });
    }
    group.finish();
}

fn bench_modes(c: &mut Criterion) {
    let aes = Aes128::new(&[1u8; 16]);
    let mut group = c.benchmark_group("modes_4k");
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("cbc_encrypt", |b| {
        let mut buf = vec![0u8; 4096];
        b.iter(|| Cbc::encrypt(&aes, &[0u8; 16], black_box(&mut buf)).expect("aligned"));
    });
    group.bench_function("ctr", |b| {
        let mut buf = vec![0u8; 4096];
        b.iter(|| Ctr::apply(&aes, &[0u8; 16], black_box(&mut buf)));
    });
    group.finish();
}

fn bench_wide_rijndael(c: &mut Criterion) {
    // The non-AES Rijndael block sizes, to show the generic cipher's cost.
    let mut group = c.benchmark_group("rijndael_block_sizes");
    let key = [0u8; 32];
    group.bench_function("nb4_128bit", |b| {
        let cipher = Rijndael::<4>::new(&key).expect("valid");
        let mut block = [0u8; 16];
        b.iter(|| cipher.encrypt(black_box(&mut block)));
    });
    group.bench_function("nb6_192bit", |b| {
        let cipher = Rijndael::<6>::new(&key).expect("valid");
        let mut block = [0u8; 24];
        b.iter(|| cipher.encrypt(black_box(&mut block)));
    });
    group.bench_function("nb8_256bit", |b| {
        let cipher = Rijndael::<8>::new(&key).expect("valid");
        let mut block = [0u8; 32];
        b.iter(|| cipher.encrypt(black_box(&mut block)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_block_encrypt,
    bench_key_schedule,
    bench_modes,
    bench_wide_rijndael
);
criterion_main!(benches);

//! The dispatched software backends against the T-table baseline: raw
//! multi-block passes and bulk ECB/CTR through the batch submission
//! paths. This is the acceptance bench for the bitsliced backend *and*
//! for runtime dispatch — on an AVX2 host the bitsliced bulk paths land
//! well above 2× the T-table throughput at batch ≥ 64, and on an AES-NI
//! host the hardware rows must clear the bitsliced 2.2× baseline by at
//! least another 2×.
//!
//! Two extra checks ride along:
//!
//! * **No allocations in the hot loops.** A counting global allocator
//!   watches one untimed pass over every bulk path (including the
//!   chained modes, whose per-block scratch used to come off the heap)
//!   and the bench aborts if any of them allocate. This runs in smoke
//!   mode too, so CI keeps the property pinned.
//! * **Throughput ratio report.** The suite ends with `bitsliced /
//!   t-table` and `aesni / t-table` speedup lines per bulk group;
//!   outside smoke mode the best bitsliced bulk ratio must clear 2×,
//!   and where AES-NI raced it must double the bitsliced figure.
//!
//! Set `TESTKIT_BENCH_SMOKE=1` for a one-sample, minimum-duration run.

use rijndael::dispatch::{AutoCipher, Kind};
use rijndael::modes::{Cbc, Cfb, Ctr, Ecb, Ofb};
use rijndael::ttable::TtableAes;
use rijndael::{BatchCipher, Bitsliced8};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use testkit::bench::Bench;

/// System allocator wrapper that counts allocation calls, so the bench
/// can prove the bulk paths never touch the heap. (The one unavoidable
/// `unsafe` here is the `GlobalAlloc` contract itself; both methods
/// forward verbatim to [`System`].)
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` twice — once to reach steady state, once counted — and
/// asserts the counted pass performed zero heap allocations.
fn assert_no_alloc(what: &str, f: &mut dyn FnMut()) {
    f();
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    let n = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(n, 0, "{what}: {n} heap allocations in the hot loop");
}

fn smoke() -> bool {
    std::env::var_os("TESTKIT_BENCH_SMOKE").is_some_and(|v| v != "0")
}

const KEY: [u8; 16] = [
    0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C,
];

fn assert_hot_loops_do_not_allocate(sliced: &Bitsliced8, ttable: &TtableAes) {
    let mut blocks = vec![[0x5Au8; 16]; 64];
    let mut buf = vec![0xA5u8; 64 * 16];
    let iv = [7u8; 16];
    assert_no_alloc("bitsliced encrypt_blocks", &mut || {
        sliced.encrypt_blocks(black_box(&mut blocks));
    });
    assert_no_alloc("bitsliced decrypt_blocks", &mut || {
        sliced.decrypt_blocks(black_box(&mut blocks));
    });
    assert_no_alloc("ecb batched", &mut || {
        Ecb::encrypt_batched(sliced, black_box(&mut buf)).expect("aligned");
    });
    assert_no_alloc("ctr batched", &mut || {
        Ctr::apply_batched(sliced, &iv, 0, black_box(&mut buf));
    });
    assert_no_alloc("cbc encrypt", &mut || {
        Cbc::encrypt(ttable, &iv, black_box(&mut buf)).expect("aligned");
    });
    assert_no_alloc("cbc decrypt", &mut || {
        Cbc::decrypt(ttable, &iv, black_box(&mut buf)).expect("aligned");
    });
    assert_no_alloc("cfb encrypt", &mut || {
        Cfb::encrypt(ttable, &iv, black_box(&mut buf));
    });
    assert_no_alloc("ofb", &mut || {
        Ofb::apply(ttable, &iv, black_box(&mut buf));
    });
    assert_no_alloc("ctr per-block", &mut || {
        Ctr::apply(ttable, &iv, black_box(&mut buf));
    });
    println!("alloc-check: all bulk/chained hot loops are allocation-free");
}

fn main() {
    let mut bench = Bench::from_args("bitslice");
    let sliced = Bitsliced8::new(&KEY);
    let ttable = TtableAes::new(&KEY).expect("valid key");
    // Hardware AES rows run only where the runtime probe finds the
    // instructions (AES-NI on x86_64, the ARMv8 extension on aarch64).
    let hw_kind = [Kind::AesNi, Kind::Neon]
        .into_iter()
        .find(|k| k.available());
    let hw = hw_kind.map(|k| AutoCipher::for_kind(k, &KEY).expect("probed available"));

    assert_hot_loops_do_not_allocate(&sliced, &ttable);
    if let Some(hw) = &hw {
        let mut blocks = vec![[0x5Au8; 16]; 64];
        let mut buf = vec![0xA5u8; 64 * 16];
        let nonce = [7u8; 16];
        assert_no_alloc("aesni encrypt_blocks", &mut || {
            hw.encrypt_blocks(black_box(&mut blocks));
        });
        assert_no_alloc("aesni ecb batched", &mut || {
            Ecb::encrypt_batched(hw, black_box(&mut buf)).expect("aligned");
        });
        assert_no_alloc("aesni ctr batched", &mut || {
            Ctr::apply_batched(hw, &nonce, 0, black_box(&mut buf));
        });
    }

    let blocks: usize = if smoke() { 64 } else { 256 };
    let bytes = (blocks * 16) as u64;

    {
        let mut group = bench.group("raw_blocks");
        group.throughput_bytes(bytes);
        if smoke() {
            group.samples(1).warmup_ms(1).sample_ms(1);
        }
        let mut batch = vec![[0x5Au8; 16]; blocks];
        group.bench("bitsliced_encrypt", || {
            sliced.encrypt_blocks(black_box(&mut batch));
        });
        let mut batch = vec![[0x5Au8; 16]; blocks];
        group.bench("bitsliced_decrypt", || {
            sliced.decrypt_blocks(black_box(&mut batch));
        });
        let mut block = [0x5Au8; 16];
        group.bench("ttable_encrypt", || {
            for _ in 0..blocks {
                ttable.encrypt_block(black_box(&mut block));
            }
        });
        if let Some(hw) = &hw {
            let mut batch = vec![[0x5Au8; 16]; blocks];
            group.bench("aesni_encrypt", || {
                hw.encrypt_blocks(black_box(&mut batch));
            });
            let mut batch = vec![[0x5Au8; 16]; blocks];
            group.bench("aesni_decrypt", || {
                hw.decrypt_blocks(black_box(&mut batch));
            });
        }
    }

    {
        let mut group = bench.group("ecb_bulk");
        group.throughput_bytes(bytes);
        if smoke() {
            group.samples(1).warmup_ms(1).sample_ms(1);
        }
        let mut buf = vec![0xA5u8; blocks * 16];
        group.bench("bitsliced", || {
            Ecb::encrypt_batched(&sliced, black_box(&mut buf)).expect("aligned");
        });
        let mut buf = vec![0xA5u8; blocks * 16];
        group.bench("ttable", || {
            Ecb::encrypt(&ttable, black_box(&mut buf)).expect("aligned");
        });
        if let Some(hw) = &hw {
            let mut buf = vec![0xA5u8; blocks * 16];
            group.bench("aesni", || {
                Ecb::encrypt_batched(hw, black_box(&mut buf)).expect("aligned");
            });
        }
    }

    {
        let mut group = bench.group("ctr_bulk");
        group.throughput_bytes(bytes);
        if smoke() {
            group.samples(1).warmup_ms(1).sample_ms(1);
        }
        let nonce = [9u8; 16];
        let mut buf = vec![0xA5u8; blocks * 16];
        group.bench("bitsliced", || {
            Ctr::apply_batched(&sliced, &nonce, 0, black_box(&mut buf));
        });
        let mut buf = vec![0xA5u8; blocks * 16];
        group.bench("ttable", || {
            Ctr::apply(&ttable, &nonce, black_box(&mut buf));
        });
        if let Some(hw) = &hw {
            let mut buf = vec![0xA5u8; blocks * 16];
            group.bench("aesni", || {
                Ctr::apply_batched(hw, &nonce, 0, black_box(&mut buf));
            });
        }
    }

    let records = bench.finish();
    // Compare fastest samples: the minimum is the least noise-polluted
    // estimate of what each path can sustain, so the ratio does not get
    // skewed by scheduler interference on one side only.
    let min_ns = |group: &str, name: &str| {
        records
            .iter()
            .find(|r| r.group == group && r.name == name)
            .map(|r| r.min_ns)
    };
    let mut ratios = Vec::new();
    let mut hw_ratios = Vec::new();
    for group in ["ecb_bulk", "ctr_bulk"] {
        // A CLI filter may have excluded either side of a pair.
        let (Some(ttable), Some(sliced)) = (min_ns(group, "ttable"), min_ns(group, "bitsliced"))
        else {
            continue;
        };
        let ratio = ttable / sliced;
        ratios.push(ratio);
        println!("speedup {group}: bitsliced is {ratio:.2}x the t-table baseline");
        if let Some(hw_ns) = min_ns(group, "aesni") {
            let hw_ratio = ttable / hw_ns;
            hw_ratios.push((hw_ratio, sliced / hw_ns));
            println!(
                "speedup {group}: aesni is {hw_ratio:.2}x the t-table baseline \
                 ({:.2}x the bitsliced path)",
                sliced / hw_ns
            );
        }
    }
    // The acceptance bar — ≥2× on bulk ECB or CTR — applies to a full,
    // unfiltered, non-smoke run; the best of the two groups rides above
    // the host's scheduling noise where a single group may not.
    if ratios.len() == 2 && !smoke() {
        let best = ratios.iter().fold(0.0f64, |b, r| b.max(*r));
        assert!(
            best >= 2.0,
            "expected >=2x bulk speedup over the t-table baseline, best was {best:.2}x"
        );
    }
    // Dispatch acceptance: where the hardware AES rows raced, they must
    // clear the bitsliced baseline by another integer multiple — the
    // point of runtime dispatch is that capable hosts get this for free.
    if hw_ratios.len() == 2 && !smoke() {
        let best_vs_bitsliced = hw_ratios.iter().fold(0.0f64, |b, (_, r)| b.max(*r));
        assert!(
            best_vs_bitsliced >= 2.0,
            "expected hardware AES to at least double the bitsliced bulk path, \
             best was {best_vs_bitsliced:.2}x"
        );
    }
}

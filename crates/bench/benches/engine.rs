//! Benches over the multi-core throughput engine: how fast the
//! reproduction *simulates* farm workloads (virtual cycles are counted
//! inside the models; this measures host wall time per scheduled byte).
//!
//! Set `TESTKIT_BENCH_SMOKE=1` to run a one-sample, minimum-duration
//! sweep — CI uses this to keep the bench binary and its JSON output
//! exercised without paying for stable numbers.

use engine::{BackendSpec, Engine, Mode};
use std::hint::black_box;
use testkit::bench::Bench;

fn smoke() -> bool {
    std::env::var_os("TESTKIT_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn main() {
    let mut bench = Bench::from_args("engine");
    let key = [0x2Bu8; 16];
    let blocks: usize = if smoke() { 4 } else { 64 };
    let payload = vec![0xA5u8; blocks * 16];

    {
        let mut group = bench.group("ctr_farm");
        group.throughput_bytes(payload.len() as u64);
        if smoke() {
            group.samples(1).warmup_ms(1).sample_ms(1);
        }
        for cores in [1usize, 4] {
            let mut eng = Engine::with_farm(&key, &vec![BackendSpec::EncryptCore; cores], 2);
            group.bench(&format!("ip_x{cores}"), || {
                eng.try_submit(Mode::Ctr([0; 16]), black_box(payload.clone()))
                    .unwrap();
                eng.run()
            });
        }
        let mut eng = Engine::with_farm(&key, &[BackendSpec::Ttable; 4], 2);
        group.bench("ttable_x4", || {
            eng.try_submit(Mode::Ctr([0; 16]), black_box(payload.clone()))
                .unwrap();
            eng.run()
        });
    }

    {
        let mut group = bench.group("chained_single_core");
        group.throughput_bytes(payload.len() as u64);
        if smoke() {
            group.samples(1).warmup_ms(1).sample_ms(1);
        }
        let mut eng = Engine::with_farm(&key, &[BackendSpec::EncDecCore; 2], 2);
        group.bench("cbc_encrypt", || {
            eng.try_submit(Mode::CbcEncrypt([0; 16]), black_box(payload.clone()))
                .unwrap();
            eng.run()
        });
    }

    bench.finish();
}

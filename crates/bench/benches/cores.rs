//! Criterion benches over the hardware models: how fast the reproduction
//! simulates each architecture (cycle-accurate and gate-level), which
//! bounds how much stimulus the verification suites can afford.

use aes_ip::alt::{AltArch, AltEncryptCore};
use aes_ip::bus::IpDriver;
use aes_ip::core::{CoreVariant, Direction, EncDecCore, EncryptCore};
use aes_ip::gate_sim::GateLevelCore;
use aes_ip::netlist_gen::RomStyle;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

fn bench_cycle_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_core_block");
    group.throughput(Throughput::Bytes(16));
    group.bench_function("encrypt", |b| {
        let mut drv = IpDriver::new(EncryptCore::new());
        drv.write_key(&[0u8; 16]);
        b.iter(|| drv.process_block(black_box(&[7u8; 16]), Direction::Encrypt));
    });
    group.bench_function("encdec_decrypt", |b| {
        let mut drv = IpDriver::new(EncDecCore::new());
        drv.write_key(&[0u8; 16]);
        b.iter(|| drv.process_block(black_box(&[7u8; 16]), Direction::Decrypt));
    });
    group.finish();
}

fn bench_alt_architectures(c: &mut Criterion) {
    let mut group = c.benchmark_group("alt_arch_block");
    for arch in AltArch::ALL {
        if arch == AltArch::Mixed32x128 {
            continue; // covered by cycle_core_block/encrypt
        }
        group.bench_with_input(BenchmarkId::from_parameter(arch), &arch, |b, &arch| {
            let mut drv = IpDriver::new(AltEncryptCore::new(arch));
            drv.write_key(&[0u8; 16]);
            b.iter(|| drv.process_block(black_box(&[7u8; 16]), Direction::Encrypt));
        });
    }
    group.finish();
}

fn bench_gate_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_level_block");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("encrypt_eab", |b| {
        let mut drv = IpDriver::new(GateLevelCore::new(CoreVariant::Encrypt, RomStyle::Macro));
        drv.write_key(&[0u8; 16]);
        b.iter(|| drv.process_block(black_box(&[7u8; 16]), Direction::Encrypt));
    });
    group.finish();
}

criterion_group!(benches, bench_cycle_core, bench_alt_architectures, bench_gate_level);
criterion_main!(benches);

//! Benches over the hardware models: how fast the reproduction simulates
//! each architecture (cycle-accurate and gate-level), which bounds how
//! much stimulus the verification suites can afford. Runs on the hermetic
//! `testkit` harness (warmup + median-of-K, JSON summary on stdout).

use aes_ip::alt::{AltArch, AltEncryptCore};
use aes_ip::bus::IpDriver;
use aes_ip::core::{CoreVariant, Direction, EncDecCore, EncryptCore};
use aes_ip::gate_sim::GateLevelCore;
use aes_ip::netlist_gen::RomStyle;
use std::hint::black_box;
use testkit::bench::Bench;

fn main() {
    let mut bench = Bench::from_args("cores");

    {
        let mut group = bench.group("cycle_core_block");
        group.throughput_bytes(16);

        let mut drv = IpDriver::new(EncryptCore::new());
        drv.write_key(&[0u8; 16]);
        group.bench("encrypt", || {
            drv.try_process_block(black_box(&[7u8; 16]), Direction::Encrypt)
                .unwrap()
        });

        let mut drv = IpDriver::new(EncDecCore::new());
        drv.write_key(&[0u8; 16]);
        group.bench("encdec_decrypt", || {
            drv.try_process_block(black_box(&[7u8; 16]), Direction::Decrypt)
                .unwrap()
        });
    }

    {
        let mut group = bench.group("alt_arch_block");
        group.throughput_bytes(16);
        for arch in AltArch::ALL {
            if arch == AltArch::Mixed32x128 {
                continue; // covered by cycle_core_block/encrypt
            }
            let mut drv = IpDriver::new(AltEncryptCore::new(arch));
            drv.write_key(&[0u8; 16]);
            group.bench(&arch.to_string(), || {
                drv.try_process_block(black_box(&[7u8; 16]), Direction::Encrypt)
                    .unwrap()
            });
        }
    }

    {
        let mut group = bench.group("gate_level_block");
        group.samples(5).warmup_ms(500).sample_ms(400);
        let mut drv = IpDriver::new(GateLevelCore::new(CoreVariant::Encrypt, RomStyle::Macro));
        drv.write_key(&[0u8; 16]);
        group.bench("encrypt_eab", || {
            drv.try_process_block(black_box(&[7u8; 16]), Direction::Encrypt)
                .unwrap()
        });
    }

    bench.finish();
}

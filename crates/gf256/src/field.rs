//! The field element type [`Gf256`] and its arithmetic.

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::tables::{ALOG, LOG};

/// The Rijndael reduction polynomial `x^8 + x^4 + x^3 + x + 1` with the
/// implicit `x^8` bit included (as a 9-bit value).
pub const REDUCTION_POLY: u16 = 0x11B;

/// An element of GF(2^8) under the Rijndael polynomial `0x11B`.
///
/// Addition is XOR; multiplication is carry-less multiplication reduced
/// modulo [`REDUCTION_POLY`]. All operations are branchless on the value and
/// constant-time in the table-free `mul_slow` path.
///
/// # Examples
///
/// ```
/// use gf256::Gf256;
///
/// // xtime (multiplication by x) is the datapath primitive of MixColumn.
/// assert_eq!(Gf256::new(0x80).xtime(), Gf256::new(0x1B));
/// assert_eq!(Gf256::new(0x02) * Gf256::new(0x80), Gf256::new(0x1B));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gf256(pub(crate) u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The generator `0x03` used to build the log/antilog tables
    /// (`0x03 = x + 1` generates the multiplicative group).
    pub const GENERATOR: Gf256 = Gf256(3);

    /// Wraps a byte as a field element.
    ///
    /// ```
    /// use gf256::Gf256;
    /// assert_eq!(Gf256::new(7).value(), 7);
    /// ```
    #[inline]
    #[must_use]
    pub const fn new(value: u8) -> Self {
        Gf256(value)
    }

    /// Returns the underlying byte.
    #[inline]
    #[must_use]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Multiplication by `x` (i.e. by `0x02`): shift left and conditionally
    /// XOR the reduction polynomial. This is the `xtime` primitive of
    /// FIPS-197 §4.2.1 and the cheapest hardware multiplier in the
    /// MixColumn datapath.
    ///
    /// ```
    /// use gf256::Gf256;
    /// assert_eq!(Gf256::new(0x57).xtime(), Gf256::new(0xAE));
    /// assert_eq!(Gf256::new(0xAE).xtime(), Gf256::new(0x47));
    /// ```
    #[inline]
    #[must_use]
    pub const fn xtime(self) -> Self {
        let shifted = (self.0 as u16) << 1;
        let reduced = shifted ^ (((self.0 >> 7) as u16) * REDUCTION_POLY);
        Gf256(reduced as u8)
    }

    /// Carry-less ("peasant") multiplication reduced modulo the Rijndael
    /// polynomial. Usable in `const` contexts; the runtime [`Mul`] impl uses
    /// the log/antilog tables instead.
    #[must_use]
    pub const fn mul_slow(self, rhs: Self) -> Self {
        let mut a = self.0 as u16;
        let mut b = rhs.0;
        let mut acc: u16 = 0;
        let mut i = 0;
        while i < 8 {
            if b & 1 != 0 {
                acc ^= a;
            }
            b >>= 1;
            a <<= 1;
            if a & 0x100 != 0 {
                a ^= REDUCTION_POLY;
            }
            i += 1;
        }
        Gf256(acc as u8)
    }

    /// Fast multiplication through the discrete-log tables:
    /// `a·b = alog(log a + log b)`.
    #[inline]
    #[must_use]
    pub fn mul_table(self, rhs: Self) -> Self {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        let idx = LOG[self.0 as usize] as usize + LOG[rhs.0 as usize] as usize;
        // 0 <= idx <= 508; ALOG is replicated over 510 entries so no modular
        // reduction is needed here.
        Gf256(ALOG[idx])
    }

    /// Exponentiation by squaring.
    ///
    /// ```
    /// use gf256::Gf256;
    /// let g = Gf256::GENERATOR;
    /// assert_eq!(g.pow(255), Gf256::ONE); // group order divides 255
    /// ```
    #[must_use]
    pub const fn pow(self, mut exp: u32) -> Self {
        let mut base = self;
        let mut acc = Gf256::ONE;
        while exp > 0 {
            if exp & 1 != 0 {
                acc = acc.mul_slow(base);
            }
            base = base.mul_slow(base);
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse, or `None` for zero.
    ///
    /// Computed as `a^254` (Fermat: the multiplicative group has order 255),
    /// so it is available in `const` contexts — this is how the S-box is
    /// derived at compile time.
    ///
    /// ```
    /// use gf256::Gf256;
    /// assert_eq!(Gf256::new(0x53).inverse(), Some(Gf256::new(0xCA)));
    /// assert_eq!(Gf256::ZERO.inverse(), None);
    /// ```
    #[must_use]
    pub const fn inverse(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(self.pow(254))
        }
    }

    /// The inverse as used by the S-box construction, where zero maps to
    /// zero (FIPS-197 §5.1.1).
    #[inline]
    #[must_use]
    pub const fn inverse_or_zero(self) -> Self {
        match self.inverse() {
            Some(inv) => inv,
            None => Gf256::ZERO,
        }
    }

    /// Discrete logarithm base [`Gf256::GENERATOR`], or `None` for zero.
    #[inline]
    #[must_use]
    pub fn log(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(LOG[self.0 as usize])
        }
    }
}

impl From<u8> for Gf256 {
    #[inline]
    fn from(value: u8) -> Self {
        Gf256(value)
    }
}

impl From<Gf256> for u8 {
    #[inline]
    fn from(value: Gf256) -> Self {
        value.0
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    /// Field addition in characteristic 2 *is* XOR.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[allow(clippy::suspicious_op_assign_impl)]
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    /// Subtraction in characteristic 2 coincides with addition.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self + rhs
    }
}

impl SubAssign for Gf256 {
    #[allow(clippy::suspicious_op_assign_impl)]
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self += rhs;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    /// Every element is its own additive inverse in characteristic 2.
    #[inline]
    fn neg(self) -> Self {
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.mul_table(rhs)
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    /// # Panics
    ///
    /// Panics on division by zero, matching integer division semantics.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let inv = rhs.inverse().expect("division by zero in GF(2^8)");
        self * inv
    }
}

impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Gf256 {
    fn sum<I: Iterator<Item = Gf256>>(iter: I) -> Self {
        iter.fold(Gf256::ZERO, |a, b| a + b)
    }
}

impl Product for Gf256 {
    fn product<I: Iterator<Item = Gf256>>(iter: I) -> Self {
        iter.fold(Gf256::ONE, |a, b| a * b)
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256(0x{:02X})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:02X}", self.0)
    }
}

impl fmt::LowerHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_worked_example() {
        // FIPS-197 §4.2: {57} · {83} = {C1}
        assert_eq!(Gf256(0x57) * Gf256(0x83), Gf256(0xC1));
        assert_eq!(Gf256(0x57).mul_slow(Gf256(0x83)), Gf256(0xC1));
    }

    #[test]
    fn fips197_xtime_chain() {
        // FIPS-197 §4.2.1: {57}·{02}={AE}, ·{04}={47}, ·{08}={8E}, ·{10}={07}
        let a = Gf256(0x57);
        assert_eq!(a.xtime(), Gf256(0xAE));
        assert_eq!(a.xtime().xtime(), Gf256(0x47));
        assert_eq!(a.xtime().xtime().xtime(), Gf256(0x8E));
        assert_eq!(a.xtime().xtime().xtime().xtime(), Gf256(0x07));
        // and {57}·{13} = {FE} by decomposition
        assert_eq!(a * Gf256(0x13), Gf256(0xFE));
    }

    #[test]
    fn table_and_slow_multiplication_agree() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(
                    Gf256(a).mul_table(Gf256(b)),
                    Gf256(a).mul_slow(Gf256(b)),
                    "mismatch at {a:02x} * {b:02x}"
                );
            }
        }
    }

    #[test]
    fn inverse_of_every_nonzero_element() {
        for a in 1..=255u8 {
            let inv = Gf256(a).inverse().expect("nonzero must be invertible");
            assert_eq!(Gf256(a) * inv, Gf256::ONE, "inverse failed for {a:02x}");
        }
        assert_eq!(Gf256::ZERO.inverse(), None);
        assert_eq!(Gf256::ZERO.inverse_or_zero(), Gf256::ZERO);
    }

    #[test]
    fn fips197_inverse_example() {
        // FIPS-197 §5.1.1 uses {53} -> inverse {CA}
        assert_eq!(Gf256(0x53).inverse(), Some(Gf256(0xCA)));
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = [false; 256];
        let mut x = Gf256::ONE;
        for _ in 0..255 {
            assert!(!seen[x.value() as usize], "generator order < 255");
            seen[x.value() as usize] = true;
            x *= Gf256::GENERATOR;
        }
        assert_eq!(x, Gf256::ONE);
    }

    #[test]
    fn division_roundtrip() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                let q = Gf256(a) / Gf256(b);
                assert_eq!(q * Gf256(b), Gf256(a));
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf256(1) / Gf256(0);
    }

    #[test]
    fn log_antilog_consistency() {
        for a in 1..=255u8 {
            let l = Gf256(a).log().unwrap();
            assert_eq!(Gf256::GENERATOR.pow(l as u32), Gf256(a));
        }
        assert_eq!(Gf256::ZERO.log(), None);
    }

    #[test]
    fn formatting_is_nonempty_and_hex() {
        assert_eq!(format!("{}", Gf256(0x0B)), "0x0B");
        assert_eq!(format!("{:x}", Gf256(0x0B)), "b");
        assert_eq!(format!("{:X}", Gf256(0xAB)), "AB");
        assert_eq!(format!("{:?}", Gf256::ZERO), "Gf256(0x00)");
        assert_eq!(format!("{:b}", Gf256(5)), "101");
    }
}

//! The Rijndael S-box, derived at compile time from the field inverse and
//! the affine transform.
//!
//! Each S-box in the paper's IP is a 256×8-bit asynchronous ROM (2048 bits,
//! "2k" in the paper's terminology); 4 of them make one 32-bit `ByteSub`
//! slice, and 4 more serve the `KStran` key-schedule function.

use crate::affine::sub_byte;
use crate::field::Gf256;

/// The forward S-box: `SBOX[x] = affine(x⁻¹)`.
///
/// ```
/// use gf256::SBOX;
/// assert_eq!(SBOX[0x00], 0x63);
/// assert_eq!(SBOX[0x53], 0xED);
/// ```
pub const SBOX: [u8; 256] = build_sbox();

/// The inverse S-box: `INV_SBOX[SBOX[x]] = x`.
pub const INV_SBOX: [u8; 256] = build_inv_sbox();

/// Size of one S-box ROM in bits (256 entries × 8 bits): the unit the paper
/// uses when counting embedded memory ("2048 \[bits\] of memory" per S-box).
pub const SBOX_ROM_BITS: usize = 256 * 8;

const fn build_sbox() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut x: usize = 0;
    while x < 256 {
        table[x] = sub_byte(Gf256::new(x as u8)).value();
        x += 1;
    }
    table
}

const fn build_inv_sbox() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut x: usize = 0;
    while x < 256 {
        table[SBOX[x] as usize] = x as u8;
        x += 1;
    }
    table
}

/// Forward byte substitution.
#[inline]
#[must_use]
pub const fn sub(x: u8) -> u8 {
    SBOX[x as usize]
}

/// Inverse byte substitution.
#[inline]
#[must_use]
pub const fn inv_sub(x: u8) -> u8 {
    INV_SBOX[x as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First and last rows of the published FIPS-197 S-box table, to anchor
    /// the derivation against the standard.
    const FIRST_ROW: [u8; 16] = [
        0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B, 0xFE, 0xD7, 0xAB,
        0x76,
    ];
    const LAST_ROW: [u8; 16] = [
        0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F, 0xB0, 0x54, 0xBB,
        0x16,
    ];

    #[test]
    fn matches_published_rows() {
        assert_eq!(&SBOX[0x00..0x10], &FIRST_ROW);
        assert_eq!(&SBOX[0xF0..=0xFF], &LAST_ROW);
    }

    #[test]
    fn sbox_is_a_bijection() {
        let mut seen = [false; 256];
        for &y in SBOX.iter() {
            assert!(!seen[y as usize], "duplicate S-box output {y:02x}");
            seen[y as usize] = true;
        }
    }

    #[test]
    fn inverse_sbox_inverts() {
        for x in 0..=255u8 {
            assert_eq!(inv_sub(sub(x)), x);
            assert_eq!(sub(inv_sub(x)), x);
        }
    }

    #[test]
    fn sbox_has_no_fixed_points() {
        // A design property of Rijndael: S(x) != x and S(x) != complement(x).
        for x in 0..=255u8 {
            assert_ne!(sub(x), x);
            assert_ne!(sub(x), !x);
        }
    }

    #[test]
    fn rom_size_matches_paper() {
        assert_eq!(SBOX_ROM_BITS, 2048);
    }
}

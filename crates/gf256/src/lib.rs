//! Arithmetic in the Rijndael finite field GF(2^8) and the structures the
//! cipher derives from it.
//!
//! Rijndael interprets every byte as an element of GF(2^8) defined by the
//! irreducible polynomial
//!
//! ```text
//! m(x) = x^8 + x^4 + x^3 + x + 1        (0x11B)
//! ```
//!
//! This crate provides that field ([`Gf256`]), the affine transform over
//! GF(2) used by `ByteSub` ([`affine`]), the S-box derived from the two
//! ([`sbox`]), and four-term polynomials over the field reduced modulo
//! `x^4 + 1` as used by `MixColumn` ([`poly`]).
//!
//! Everything is derived from first principles — the S-box is *computed*
//! (multiplicative inverse followed by the affine transform), not pasted in —
//! and the unit tests pin the derivation against the published tables.
//!
//! # Examples
//!
//! ```
//! use gf256::Gf256;
//!
//! let a = Gf256::new(0x57);
//! let b = Gf256::new(0x83);
//! assert_eq!(a * b, Gf256::new(0xC1)); // worked example from FIPS-197 §4.2
//! assert_eq!(a * a.inverse().unwrap(), Gf256::ONE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod analysis;
pub mod field;
pub mod poly;
pub mod sbox;
pub mod tables;

pub use affine::BitMatrix;
pub use field::Gf256;
pub use poly::GfPoly4;
pub use sbox::{INV_SBOX, SBOX};

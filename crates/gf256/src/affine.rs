//! Bit-matrices over GF(2) and the Rijndael affine transform.
//!
//! `ByteSub` composes the field inverse with an affine transform
//! `y = A·x + c` over GF(2), where `A` is a circulant 8×8 bit-matrix and
//! `c = 0x63`. The inverse S-box uses `x = A⁻¹·(y + c)`.

use core::fmt;

use crate::field::Gf256;

/// An 8×8 matrix over GF(2), stored one row per byte (bit `j` of row `i` is
/// the entry `A[i][j]`; bit 0 is the least-significant input bit).
///
/// # Examples
///
/// ```
/// use gf256::BitMatrix;
///
/// let id = BitMatrix::IDENTITY;
/// assert_eq!(id.apply(0xA5), 0xA5);
/// assert_eq!(id * id, id);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: [u8; 8],
}

/// The circulant matrix of the Rijndael affine transform (FIPS-197 §5.1.1):
/// output bit `i` is `x_i ^ x_{(i+4)%8} ^ x_{(i+5)%8} ^ x_{(i+6)%8} ^ x_{(i+7)%8}`.
pub const AFFINE_MATRIX: BitMatrix = BitMatrix::circulant(0b1111_0001);

/// The additive constant of the forward affine transform.
pub const AFFINE_CONSTANT: u8 = 0x63;

/// The matrix of the inverse affine transform (circulant with taps at
/// offsets 2, 5 and 7: `x_i = y_{(i+2)%8} + y_{(i+5)%8} + y_{(i+7)%8}`).
pub const INV_AFFINE_MATRIX: BitMatrix = BitMatrix::circulant(0b1010_0100);

/// The additive constant applied by the inverse transform *after* the
/// matrix: `x = A⁻¹·y + A⁻¹·c = A⁻¹·y + 0x05`.
pub const INV_AFFINE_CONSTANT: u8 = 0x05;

impl BitMatrix {
    /// The identity matrix.
    pub const IDENTITY: BitMatrix = {
        let mut rows = [0u8; 8];
        let mut i = 0;
        while i < 8 {
            rows[i] = 1 << i;
            i += 1;
        }
        BitMatrix { rows }
    };

    /// The zero matrix.
    pub const ZERO: BitMatrix = BitMatrix { rows: [0; 8] };

    /// Builds a matrix from explicit rows (row `i`, bit `j` ⇒ `A[i][j]`).
    #[inline]
    #[must_use]
    pub const fn from_rows(rows: [u8; 8]) -> Self {
        BitMatrix { rows }
    }

    /// Builds the circulant matrix whose row 0 is `first_row`, each later
    /// row being the previous row rotated left by one bit position.
    #[must_use]
    pub const fn circulant(first_row: u8) -> Self {
        let mut rows = [0u8; 8];
        let mut i = 0;
        while i < 8 {
            rows[i] = first_row.rotate_left(i as u32);
            i += 1;
        }
        BitMatrix { rows }
    }

    /// Returns row `i` as a bit mask.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[inline]
    #[must_use]
    pub const fn row(&self, i: usize) -> u8 {
        self.rows[i]
    }

    /// Returns the bit at row `i`, column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8` or `j >= 8`.
    #[inline]
    #[must_use]
    pub const fn bit(&self, i: usize, j: usize) -> bool {
        assert!(j < 8);
        (self.rows[i] >> j) & 1 != 0
    }

    /// Applies the matrix to a column vector of 8 bits:
    /// `y_i = parity(row_i & x)`.
    #[inline]
    #[must_use]
    pub const fn apply(&self, x: u8) -> u8 {
        let mut y = 0u8;
        let mut i = 0;
        while i < 8 {
            let parity = (self.rows[i] & x).count_ones() & 1;
            y |= (parity as u8) << i;
            i += 1;
        }
        y
    }

    /// Matrix transpose.
    #[must_use]
    pub const fn transpose(&self) -> Self {
        let mut rows = [0u8; 8];
        let mut i = 0;
        while i < 8 {
            let mut j = 0;
            while j < 8 {
                if (self.rows[j] >> i) & 1 != 0 {
                    rows[i] |= 1 << j;
                }
                j += 1;
            }
            i += 1;
        }
        BitMatrix { rows }
    }

    /// Matrix product over GF(2) (usable in `const` contexts).
    #[must_use]
    pub const fn mul_matrix(&self, rhs: &BitMatrix) -> Self {
        // (A·B)x = A(Bx); row i of the product applied to x is
        // parity over k of A[i][k] & B[k][·]x — compute via transpose of rhs.
        let rt = rhs.transpose();
        let mut rows = [0u8; 8];
        let mut i = 0;
        while i < 8 {
            let mut j = 0;
            while j < 8 {
                let dot = (self.rows[i] & rt.rows[j]).count_ones() & 1;
                rows[i] |= (dot as u8) << j;
                j += 1;
            }
            i += 1;
        }
        BitMatrix { rows }
    }

    /// Inverse over GF(2) via Gauss–Jordan elimination, or `None` when the
    /// matrix is singular.
    #[must_use]
    pub fn inverse(&self) -> Option<Self> {
        let mut a = self.rows;
        let mut inv = BitMatrix::IDENTITY.rows;
        for col in 0..8 {
            // Find a pivot row with a 1 in this column.
            let pivot = (col..8).find(|&r| (a[r] >> col) & 1 != 0)?;
            a.swap(col, pivot);
            inv.swap(col, pivot);
            for r in 0..8 {
                if r != col && (a[r] >> col) & 1 != 0 {
                    a[r] ^= a[col];
                    inv[r] ^= inv[col];
                }
            }
        }
        Some(BitMatrix { rows: inv })
    }

    /// Rank of the matrix over GF(2).
    #[must_use]
    pub fn rank(&self) -> u32 {
        let mut a = self.rows;
        let mut rank = 0;
        let mut row = 0;
        for col in 0..8 {
            if let Some(p) = (row..8).find(|&r| (a[r] >> col) & 1 != 0) {
                a.swap(row, p);
                for r in 0..8 {
                    if r != row && (a[r] >> col) & 1 != 0 {
                        a[r] ^= a[row];
                    }
                }
                row += 1;
                rank += 1;
            }
        }
        rank
    }
}

impl core::ops::Mul for BitMatrix {
    type Output = BitMatrix;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.mul_matrix(&rhs)
    }
}

impl core::ops::Add for BitMatrix {
    type Output = BitMatrix;
    /// Matrix addition over GF(2) is elementwise XOR.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Self) -> Self {
        let mut rows = self.rows;
        for (r, o) in rows.iter_mut().zip(rhs.rows) {
            *r ^= o;
        }
        BitMatrix { rows }
    }
}

impl Default for BitMatrix {
    fn default() -> Self {
        BitMatrix::ZERO
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix [")?;
        for row in &self.rows {
            writeln!(f, "  {row:08b}")?;
        }
        write!(f, "]")
    }
}

/// The forward affine transform of `ByteSub`: `A·x + 0x63`.
///
/// ```
/// use gf256::affine::affine_forward;
/// // Applied to the inverse of 0x53 (= 0xCA) this yields S-box(0x53) = 0xED.
/// assert_eq!(affine_forward(0xCA), 0xED);
/// ```
#[inline]
#[must_use]
pub const fn affine_forward(x: u8) -> u8 {
    AFFINE_MATRIX.apply(x) ^ AFFINE_CONSTANT
}

/// The inverse affine transform: `A⁻¹·(y + 0x63) = A⁻¹·y + 0x05`.
#[inline]
#[must_use]
pub const fn affine_inverse(y: u8) -> u8 {
    INV_AFFINE_MATRIX.apply(y) ^ INV_AFFINE_CONSTANT
}

/// The affine transform applied to the *field element* form, composing with
/// [`Gf256::inverse_or_zero`] to give a single S-box step.
#[inline]
#[must_use]
pub const fn sub_byte(x: Gf256) -> Gf256 {
    Gf256::new(affine_forward(x.inverse_or_zero().value()))
}

/// Inverse of [`sub_byte`].
#[inline]
#[must_use]
pub const fn inv_sub_byte(y: Gf256) -> Gf256 {
    Gf256::new(affine_inverse(y.value())).inverse_or_zero()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_matrices_are_mutually_inverse() {
        assert_eq!(AFFINE_MATRIX * INV_AFFINE_MATRIX, BitMatrix::IDENTITY);
        assert_eq!(INV_AFFINE_MATRIX * AFFINE_MATRIX, BitMatrix::IDENTITY);
        assert_eq!(AFFINE_MATRIX.inverse(), Some(INV_AFFINE_MATRIX));
    }

    #[test]
    fn inverse_constant_is_image_of_forward_constant() {
        assert_eq!(
            INV_AFFINE_MATRIX.apply(AFFINE_CONSTANT),
            INV_AFFINE_CONSTANT
        );
    }

    #[test]
    fn affine_roundtrip_all_bytes() {
        for x in 0..=255u8 {
            assert_eq!(affine_inverse(affine_forward(x)), x);
        }
    }

    #[test]
    fn fips197_affine_example() {
        // FIPS-197 §5.1.1: S-box(0x53) = 0xED via inverse 0xCA.
        assert_eq!(sub_byte(Gf256::new(0x53)), Gf256::new(0xED));
        assert_eq!(inv_sub_byte(Gf256::new(0xED)), Gf256::new(0x53));
    }

    #[test]
    fn identity_and_zero_behave() {
        for x in [0x00u8, 0x01, 0x80, 0xFF, 0x5A] {
            assert_eq!(BitMatrix::IDENTITY.apply(x), x);
            assert_eq!(BitMatrix::ZERO.apply(x), 0);
        }
        assert_eq!(BitMatrix::IDENTITY.rank(), 8);
        assert_eq!(BitMatrix::ZERO.rank(), 0);
        assert_eq!(BitMatrix::ZERO.inverse(), None);
    }

    #[test]
    fn transpose_is_involution() {
        let m = AFFINE_MATRIX;
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matrix_product_matches_composition() {
        let p = AFFINE_MATRIX * INV_AFFINE_MATRIX.transpose();
        for x in 0..=255u8 {
            assert_eq!(
                p.apply(x),
                AFFINE_MATRIX.apply(INV_AFFINE_MATRIX.transpose().apply(x))
            );
        }
    }

    #[test]
    fn bit_accessor_matches_rows() {
        let m = AFFINE_MATRIX;
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(m.bit(i, j), (m.row(i) >> j) & 1 != 0);
            }
        }
    }
}

//! Cryptanalytic property analysis of 8-bit S-boxes.
//!
//! The AES contest judged candidates on security as well as
//! implementability (paper §2); the S-box's resistance against
//! differential and linear cryptanalysis is quantified by its difference
//! distribution table and linear approximation table. The published
//! constants for the Rijndael S-box — differential uniformity 4,
//! nonlinearity 112 — are re-derived here and pinned in tests.

use crate::sbox::SBOX;

/// The difference distribution table: `ddt[a][b]` counts inputs `x` with
/// `S(x ^ a) ^ S(x) == b`.
///
/// # Examples
///
/// ```
/// use gf256::analysis::{ddt, differential_uniformity};
/// let table = ddt(&gf256::SBOX);
/// assert_eq!(table[0][0], 256);
/// assert_eq!(differential_uniformity(&table), 4); // published AES value
/// ```
#[must_use]
#[allow(clippy::needless_range_loop)] // x indexes both sbox[x^a] and sbox[x]
pub fn ddt(sbox: &[u8; 256]) -> Vec<Vec<u16>> {
    let mut table = vec![vec![0u16; 256]; 256];
    for a in 0..256usize {
        for x in 0..256usize {
            let b = sbox[x ^ a] ^ sbox[x];
            table[a][usize::from(b)] += 1;
        }
    }
    table
}

/// The differential uniformity: the largest DDT entry outside the trivial
/// `a = 0` row. 4 for the Rijndael S-box (the theoretical optimum for a
/// bijective 8-bit S-box is believed to be 4).
#[must_use]
pub fn differential_uniformity(ddt: &[Vec<u16>]) -> u16 {
    ddt.iter()
        .skip(1)
        .flat_map(|row| row.iter())
        .copied()
        .max()
        .unwrap_or(0)
}

/// The linear approximation table: `lat[a][b] = #{x : a·x == b·S(x)} - 128`
/// (dot products over GF(2)).
#[must_use]
#[allow(clippy::needless_range_loop)] // x indexes sbox and masks simultaneously
pub fn lat(sbox: &[u8; 256]) -> Vec<Vec<i16>> {
    let parity = |v: u8| -> bool { v.count_ones() % 2 == 1 };
    let mut table = vec![vec![0i16; 256]; 256];
    for (a, row) in table.iter_mut().enumerate() {
        for (b, entry) in row.iter_mut().enumerate() {
            let mut count = 0i16;
            for x in 0..256usize {
                if parity(a as u8 & x as u8) == parity(b as u8 & sbox[x]) {
                    count += 1;
                }
            }
            *entry = count - 128;
        }
    }
    table
}

/// The linearity: the largest absolute LAT entry outside the trivial
/// `a = b = 0` cell. 16 for the Rijndael S-box, giving nonlinearity
/// `128 - 16 = 112`.
#[must_use]
pub fn linearity(lat: &[Vec<i16>]) -> u16 {
    let mut best = 0u16;
    for (a, row) in lat.iter().enumerate() {
        for (b, &v) in row.iter().enumerate() {
            if a == 0 && b == 0 {
                continue;
            }
            best = best.max(v.unsigned_abs());
        }
    }
    best
}

/// Nonlinearity: `128 - linearity` (distance to the nearest affine
/// function). 112 for the Rijndael S-box.
#[must_use]
pub fn nonlinearity(sbox: &[u8; 256]) -> u16 {
    128 - linearity(&lat(sbox))
}

/// Algebraic degree-1 fixed-point count diagnostics used by the S-box
/// design criteria: Rijndael's S-box has no fixed points and no
/// anti-fixed points.
#[must_use]
#[allow(clippy::needless_range_loop)]
pub fn fixed_points(sbox: &[u8; 256]) -> (usize, usize) {
    let fixed = sbox
        .iter()
        .enumerate()
        .filter(|&(x, &y)| y == x as u8)
        .count();
    let anti = sbox
        .iter()
        .enumerate()
        .filter(|&(x, &y)| y == !(x as u8))
        .count();
    (fixed, anti)
}

/// Convenience: the full scorecard of the Rijndael S-box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SboxScore {
    /// Differential uniformity (4 for AES).
    pub differential_uniformity: u16,
    /// Linearity (16 for AES).
    pub linearity: u16,
    /// Nonlinearity (112 for AES).
    pub nonlinearity: u16,
    /// Fixed points (0 for AES).
    pub fixed_points: usize,
    /// Anti-fixed points (0 for AES).
    pub anti_fixed_points: usize,
}

/// Computes the scorecard for any 8-bit S-box.
#[must_use]
pub fn score(sbox: &[u8; 256]) -> SboxScore {
    let d = ddt(sbox);
    let l = lat(sbox);
    let (fixed, anti) = fixed_points(sbox);
    let lin = linearity(&l);
    SboxScore {
        differential_uniformity: differential_uniformity(&d),
        linearity: lin,
        nonlinearity: 128 - lin,
        fixed_points: fixed,
        anti_fixed_points: anti,
    }
}

/// The scorecard of the standard Rijndael S-box.
#[must_use]
pub fn rijndael_score() -> SboxScore {
    score(&SBOX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbox::INV_SBOX;

    #[test]
    fn rijndael_sbox_published_constants() {
        let s = rijndael_score();
        assert_eq!(s.differential_uniformity, 4, "published AES value");
        assert_eq!(s.linearity, 16, "published AES value");
        assert_eq!(s.nonlinearity, 112, "published AES value");
        assert_eq!(s.fixed_points, 0);
        assert_eq!(s.anti_fixed_points, 0);
    }

    #[test]
    fn inverse_sbox_has_the_same_profile() {
        // DDT/LAT profiles are preserved under inversion of a bijection.
        let s = score(&INV_SBOX);
        assert_eq!(s.differential_uniformity, 4);
        assert_eq!(s.nonlinearity, 112);
    }

    #[test]
    fn ddt_row_sums() {
        let d = ddt(&SBOX);
        for (a, row) in d.iter().enumerate() {
            let sum: u32 = row.iter().map(|&v| u32::from(v)).sum();
            assert_eq!(sum, 256, "row {a} must sum to 256");
            // Bijectivity: entries are even.
            assert!(row.iter().all(|&v| v % 2 == 0), "row {a} has odd entries");
        }
        assert_eq!(d[0][0], 256);
    }

    #[test]
    fn identity_sbox_is_maximally_weak() {
        let identity: [u8; 256] = core::array::from_fn(|i| i as u8);
        let s = score(&identity);
        assert_eq!(s.differential_uniformity, 256);
        assert_eq!(s.nonlinearity, 0);
        assert_eq!(s.fixed_points, 256);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn lat_zero_column_structure() {
        let l = lat(&SBOX);
        assert_eq!(l[0][0], 128); // trivial approximation always holds
        for b in 1..256 {
            assert_eq!(l[0][b], 0, "balanced output masks (bijection)");
        }
    }
}

//! Four-term polynomials over GF(2^8) modulo `x^4 + 1`, the algebra behind
//! `MixColumn`.
//!
//! A state column `[a0, a1, a2, a3]` (a0 = top row) is read as the polynomial
//! `a3·x^3 + a2·x^2 + a1·x + a0`. `MixColumn` multiplies it by
//! `c(x) = {03}x^3 + {01}x^2 + {01}x + {02}`; the decryption path uses the
//! inverse `d(x) = {0B}x^3 + {0D}x^2 + {09}x + {0E}`.

use core::fmt;
use core::ops::{Add, Mul};

use crate::field::Gf256;

/// A polynomial `c3·x^3 + c2·x^2 + c1·x + c0` over GF(2^8), reduced modulo
/// `x^4 + 1` under multiplication.
///
/// # Examples
///
/// ```
/// use gf256::GfPoly4;
///
/// let c = GfPoly4::MIX_COLUMN;
/// let d = GfPoly4::INV_MIX_COLUMN;
/// assert_eq!(c * d, GfPoly4::ONE);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct GfPoly4 {
    coeffs: [Gf256; 4],
}

impl GfPoly4 {
    /// The zero polynomial.
    pub const ZERO: GfPoly4 = GfPoly4::from_bytes([0, 0, 0, 0]);
    /// The unit polynomial (multiplicative identity mod `x^4+1`).
    pub const ONE: GfPoly4 = GfPoly4::from_bytes([1, 0, 0, 0]);
    /// The `MixColumn` polynomial `{03}x^3 + {01}x^2 + {01}x + {02}`.
    pub const MIX_COLUMN: GfPoly4 = GfPoly4::from_bytes([0x02, 0x01, 0x01, 0x03]);
    /// The `IMixColumn` polynomial `{0B}x^3 + {0D}x^2 + {09}x + {0E}`.
    pub const INV_MIX_COLUMN: GfPoly4 = GfPoly4::from_bytes([0x0E, 0x09, 0x0D, 0x0B]);
    /// The `RotWord`-like rotation polynomial `x^3` (multiplying by it
    /// rotates coefficients).
    pub const X3: GfPoly4 = GfPoly4::from_bytes([0, 0, 0, 1]);

    /// Builds a polynomial from coefficients `[c0, c1, c2, c3]`
    /// (constant term first).
    #[inline]
    #[must_use]
    pub const fn new(coeffs: [Gf256; 4]) -> Self {
        GfPoly4 { coeffs }
    }

    /// Builds a polynomial from raw bytes, constant term first.
    #[inline]
    #[must_use]
    pub const fn from_bytes(bytes: [u8; 4]) -> Self {
        GfPoly4 {
            coeffs: [
                Gf256::new(bytes[0]),
                Gf256::new(bytes[1]),
                Gf256::new(bytes[2]),
                Gf256::new(bytes[3]),
            ],
        }
    }

    /// The coefficients, constant term first.
    #[inline]
    #[must_use]
    pub const fn coeffs(&self) -> [Gf256; 4] {
        self.coeffs
    }

    /// The coefficients as raw bytes, constant term first.
    #[inline]
    #[must_use]
    pub const fn to_bytes(self) -> [u8; 4] {
        [
            self.coeffs[0].value(),
            self.coeffs[1].value(),
            self.coeffs[2].value(),
            self.coeffs[3].value(),
        ]
    }

    /// Multiplication modulo `x^4 + 1` (`const`-friendly form of `*`).
    ///
    /// Because `x^4 ≡ 1`, the product coefficient `k` is
    /// `Σ_{i+j ≡ k (mod 4)} a_i·b_j` — a circular convolution, i.e. the
    /// matrix-vector form of FIPS-197 §4.3.
    #[must_use]
    pub const fn mul_mod(self, rhs: Self) -> Self {
        let a = self.coeffs;
        let b = rhs.coeffs;
        let mut out = [Gf256::ZERO; 4];
        let mut k = 0;
        while k < 4 {
            let mut acc = Gf256::ZERO;
            let mut i = 0;
            while i < 4 {
                let j = (k + 4 - i) % 4;
                acc = Gf256::new(acc.value() ^ a[i].mul_slow(b[j]).value());
                i += 1;
            }
            out[k] = acc;
            k += 1;
        }
        GfPoly4 { coeffs: out }
    }

    /// The inverse modulo `x^4 + 1`, if it exists.
    ///
    /// `x^4 + 1` is not irreducible, so not every polynomial is invertible;
    /// the cipher only relies on `c(x)` being invertible. The inverse is
    /// found by solving the 4×4 circulant linear system over GF(2^8) by
    /// Gaussian elimination.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // modular column indexing
    pub fn inverse(&self) -> Option<Self> {
        // Build the circulant matrix M where (M v)_k = sum_i a_i v_{(k-i)%4},
        // then solve M v = e0.
        let a = self.coeffs;
        let mut m = [[Gf256::ZERO; 5]; 4];
        for (k, row) in m.iter_mut().enumerate() {
            for i in 0..4 {
                let j = (k + 4 - i) % 4;
                row[j] += a[i];
            }
        }
        m[0][4] = Gf256::ONE;

        // Gaussian elimination with partial (nonzero) pivoting.
        for col in 0..4 {
            let pivot = (col..4).find(|&r| m[r][col] != Gf256::ZERO)?;
            m.swap(col, pivot);
            let inv = m[col][col].inverse()?;
            for x in m[col].iter_mut() {
                *x *= inv;
            }
            for r in 0..4 {
                if r != col && m[r][col] != Gf256::ZERO {
                    let f = m[r][col];
                    for c in 0..5 {
                        let sub = f * m[col][c];
                        m[r][c] += sub;
                    }
                }
            }
        }
        Some(GfPoly4 {
            coeffs: [m[0][4], m[1][4], m[2][4], m[3][4]],
        })
    }

    /// Applies this polynomial as the `MixColumn`-style transform to a
    /// 4-byte column (top-of-column byte first, matching the paper's
    /// `state_t` layout where a column is `[s0c, s1c, s2c, s3c]`).
    ///
    /// ```
    /// use gf256::GfPoly4;
    /// // FIPS-197 Appendix B round 1 MixColumns, first column:
    /// assert_eq!(
    ///     GfPoly4::MIX_COLUMN.apply_column([0xD4, 0xBF, 0x5D, 0x30]),
    ///     [0x04, 0x66, 0x81, 0xE5],
    /// );
    /// ```
    #[inline]
    #[must_use]
    pub const fn apply_column(self, column: [u8; 4]) -> [u8; 4] {
        GfPoly4::from_bytes(column).mul_mod(self).to_bytes()
    }
}

impl Add for GfPoly4 {
    type Output = GfPoly4;
    fn add(self, rhs: Self) -> Self {
        let mut out = self.coeffs;
        for (o, r) in out.iter_mut().zip(rhs.coeffs) {
            *o += r;
        }
        GfPoly4 { coeffs: out }
    }
}

impl Mul for GfPoly4 {
    type Output = GfPoly4;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.mul_mod(rhs)
    }
}

impl fmt::Debug for GfPoly4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GfPoly4({:02X}·x³ + {:02X}·x² + {:02X}·x + {:02X})",
            self.coeffs[3].value(),
            self.coeffs[2].value(),
            self.coeffs[1].value(),
            self.coeffs[0].value()
        )
    }
}

impl fmt::Display for GfPoly4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixcolumn_polynomials_are_mutually_inverse() {
        assert_eq!(GfPoly4::MIX_COLUMN * GfPoly4::INV_MIX_COLUMN, GfPoly4::ONE);
        assert_eq!(GfPoly4::MIX_COLUMN.inverse(), Some(GfPoly4::INV_MIX_COLUMN));
        assert_eq!(GfPoly4::INV_MIX_COLUMN.inverse(), Some(GfPoly4::MIX_COLUMN));
    }

    #[test]
    fn one_is_identity() {
        let p = GfPoly4::from_bytes([0x12, 0x34, 0x56, 0x78]);
        assert_eq!(p * GfPoly4::ONE, p);
        assert_eq!(GfPoly4::ONE * p, p);
        assert_eq!(p + GfPoly4::ZERO, p);
    }

    #[test]
    fn x3_rotates() {
        let p = GfPoly4::from_bytes([1, 2, 3, 4]);
        // multiplying by x rotates coefficients up; by x^3 down by one
        assert_eq!((p * GfPoly4::X3).to_bytes(), [2, 3, 4, 1]);
    }

    #[test]
    fn fips197_mixcolumns_vectors() {
        // FIPS-197 Appendix B, round 1.
        assert_eq!(
            GfPoly4::MIX_COLUMN.apply_column([0xD4, 0xBF, 0x5D, 0x30]),
            [0x04, 0x66, 0x81, 0xE5]
        );
        assert_eq!(
            GfPoly4::MIX_COLUMN.apply_column([0xE0, 0xB4, 0x52, 0xAE]),
            [0xE0, 0xCB, 0x19, 0x9A]
        );
        assert_eq!(
            GfPoly4::MIX_COLUMN.apply_column([0xB8, 0x41, 0x11, 0xF1]),
            [0x48, 0xF8, 0xD3, 0x7A]
        );
        assert_eq!(
            GfPoly4::MIX_COLUMN.apply_column([0x1E, 0x27, 0x98, 0xE5]),
            [0x28, 0x06, 0x26, 0x4C]
        );
    }

    #[test]
    fn inverse_mixcolumn_roundtrip_columns() {
        for seed in 0u32..64 {
            let col = [
                (seed.wrapping_mul(13) & 0xFF) as u8,
                (seed.wrapping_mul(29) >> 3 & 0xFF) as u8,
                (seed.wrapping_mul(53) >> 5 & 0xFF) as u8,
                (seed.wrapping_mul(97) >> 7 & 0xFF) as u8,
            ];
            let mixed = GfPoly4::MIX_COLUMN.apply_column(col);
            assert_eq!(GfPoly4::INV_MIX_COLUMN.apply_column(mixed), col);
        }
    }

    #[test]
    fn non_invertible_polynomial() {
        // x^3 + x^2 + x + 1 = (x+1)(x^2+1) shares the factor (x+1) with
        // x^4 + 1 = (x+1)^4 over GF(2^8), hence is not invertible.
        let p = GfPoly4::from_bytes([1, 1, 1, 1]);
        assert_eq!(p.inverse(), None);
    }

    #[test]
    fn multiplication_is_commutative_and_distributive() {
        let a = GfPoly4::from_bytes([0x0A, 0x1B, 0x2C, 0x3D]);
        let b = GfPoly4::from_bytes([0x55, 0x66, 0x77, 0x88]);
        let c = GfPoly4::from_bytes([0x01, 0x00, 0xFE, 0x10]);
        assert_eq!(a * b, b * a);
        assert_eq!(a * (b + c), a * b + a * c);
    }
}

//! Blocking loopback client: one [`Client`] per connection, typed
//! methods over the raw frame layer.
//!
//! The client tracks the sequence counter and the live session id, maps
//! [`Status::Error`] replies into [`ClientError::Service`], and exposes
//! the deferred-submission path ([`Client::try_submit`] /
//! [`Client::flush`]) so callers can observe the server's typed `Busy`
//! backpressure instead of unbounded queueing. The raw
//! [`Client::send_raw`] / [`Client::recv_raw`] pair is for protocol
//! tests that need to send deliberately malformed traffic.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{ErrorCode, Frame, Op, RecvError, Status, FLAG_DEFER};

/// Failure of a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// Broken framing in a reply.
    Recv(RecvError),
    /// The server answered with a typed error.
    Service {
        /// The typed failure code.
        code: ErrorCode,
        /// The code-specific detail value.
        detail: u32,
    },
    /// The reply did not have the shape the call expected.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Recv(e) => write!(f, "framing error: {e}"),
            ClientError::Service { code, detail } => {
                write!(f, "service error: {code} (detail {detail})")
            }
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Io(io) => ClientError::Io(io),
            other => ClientError::Recv(other),
        }
    }
}

/// Outcome of a deferred submission: queued, or bounced by
/// backpressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The job entered the queue; its result arrives at the next
    /// [`Client::flush`] tagged with this sequence number.
    Accepted(u32),
    /// The queue is full — flush and retry.
    Busy {
        /// The server-side queue capacity that was exhausted.
        capacity: u32,
    },
}

/// One result drained by [`Client::flush`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushedJob {
    /// The sequence number of the submission that produced it.
    pub seq: u32,
    /// The processed bytes, or the typed per-job failure.
    pub result: Result<Vec<u8>, (ErrorCode, u32)>,
}

/// A blocking connection to the service.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    seq: u32,
    session: u32,
}

impl Client {
    /// Connects (with `TCP_NODELAY`) and starts sequence numbering
    /// at 1.
    ///
    /// # Errors
    ///
    /// Propagates connect/setsockopt failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            seq: 0,
            session: 0,
        })
    }

    /// The live session id (0 before the first [`Client::set_key`]).
    #[must_use]
    pub fn session(&self) -> u32 {
        self.session
    }

    fn next_seq(&mut self) -> u32 {
        self.seq = self.seq.wrapping_add(1);
        self.seq
    }

    /// Sends a frame verbatim (protocol-test escape hatch).
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn send_raw(&mut self, frame: &Frame) -> io::Result<()> {
        frame.write_to(&mut self.stream)
    }

    /// Reads the next reply frame verbatim (protocol-test escape
    /// hatch).
    ///
    /// # Errors
    ///
    /// Transport or framing errors.
    pub fn recv_raw(&mut self) -> Result<Frame, RecvError> {
        Frame::read_from(&mut self.stream)
    }

    /// Request/reply round trip; typed `Error` replies become
    /// [`ClientError::Service`].
    fn call(&mut self, op: Op, flags: u8, payload: Vec<u8>) -> Result<Frame, ClientError> {
        let seq = self.next_seq();
        let request = Frame::request(op, flags, seq, self.session, payload);
        self.send_raw(&request)?;
        let reply = self.recv_raw()?;
        if let Some((code, detail)) = reply.error_body() {
            return Err(ClientError::Service { code, detail });
        }
        if reply.seq != seq {
            return Err(ClientError::Protocol(format!(
                "reply seq {} for request seq {seq}",
                reply.seq
            )));
        }
        Ok(reply)
    }

    fn expect_ok(reply: &Frame) -> Result<(), ClientError> {
        if reply.status() == Some(Status::Ok) {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!(
                "expected Ok, got kind {:#04x}",
                reply.kind
            )))
        }
    }

    /// Loads a key, creating a fresh server-side session; returns the
    /// new session id (used on every subsequent request automatically).
    ///
    /// # Errors
    ///
    /// Typed service errors or transport failures.
    pub fn set_key(&mut self, key: &[u8; 16]) -> Result<u32, ClientError> {
        let reply = self.call(Op::SetKey, 0, key.to_vec())?;
        Self::expect_ok(&reply)?;
        self.session = reply.session;
        Ok(reply.session)
    }

    /// Liveness probe; the server echoes `payload`.
    ///
    /// # Errors
    ///
    /// Typed service errors or transport failures.
    pub fn ping(&mut self, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        let reply = self.call(Op::Ping, 0, payload.to_vec())?;
        Self::expect_ok(&reply)?;
        Ok(reply.payload)
    }

    fn engine_call(
        &mut self,
        op: Op,
        iv: Option<&[u8; 16]>,
        data: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        let mut payload = Vec::with_capacity(16 + data.len());
        if let Some(iv) = iv {
            payload.extend_from_slice(iv);
        }
        payload.extend_from_slice(data);
        let reply = self.call(op, 0, payload)?;
        Self::expect_ok(&reply)?;
        Ok(reply.payload)
    }

    /// ECB-encrypts whole blocks under the session key.
    ///
    /// # Errors
    ///
    /// Typed service errors (`NoSession`, `RaggedLength`, `Busy`...) or
    /// transport failures.
    pub fn ecb_encrypt(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.engine_call(Op::EcbEncrypt, None, plaintext)
    }

    /// ECB-decrypts whole blocks under the session key.
    ///
    /// # Errors
    ///
    /// As [`Client::ecb_encrypt`].
    pub fn ecb_decrypt(&mut self, ciphertext: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.engine_call(Op::EcbDecrypt, None, ciphertext)
    }

    /// CBC-encrypts whole blocks under the session key.
    ///
    /// # Errors
    ///
    /// As [`Client::ecb_encrypt`].
    pub fn cbc_encrypt(&mut self, iv: &[u8; 16], plaintext: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.engine_call(Op::CbcEncrypt, Some(iv), plaintext)
    }

    /// CBC-decrypts whole blocks under the session key.
    ///
    /// # Errors
    ///
    /// As [`Client::ecb_encrypt`].
    pub fn cbc_decrypt(
        &mut self,
        iv: &[u8; 16],
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        self.engine_call(Op::CbcDecrypt, Some(iv), ciphertext)
    }

    /// Applies the CTR keystream (encrypt = decrypt, any length).
    ///
    /// # Errors
    ///
    /// As [`Client::ecb_encrypt`].
    pub fn ctr_apply(&mut self, counter: &[u8; 16], data: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.engine_call(Op::CtrApply, Some(counter), data)
    }

    /// Fetches the server's telemetry snapshot: the `telemetry/1` JSON
    /// document with per-opcode request counts, error tallies,
    /// connection gauges and every session engine's `engine.*`
    /// instruments. Works without a session.
    ///
    /// # Errors
    ///
    /// Typed service errors or transport failures;
    /// [`ClientError::Protocol`] if the payload is not UTF-8.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let reply = self.call(Op::GetStats, 0, Vec::new())?;
        Self::expect_ok(&reply)?;
        String::from_utf8(reply.payload)
            .map_err(|_| ClientError::Protocol("non-UTF-8 stats payload".into()))
    }

    /// Computes the AES-CMAC tag of `message` under the session key.
    ///
    /// # Errors
    ///
    /// Typed service errors or transport failures.
    pub fn cmac_tag(&mut self, message: &[u8]) -> Result<[u8; 16], ClientError> {
        let reply = self.call(Op::CmacTag, 0, message.to_vec())?;
        Self::expect_ok(&reply)?;
        reply
            .payload
            .as_slice()
            .try_into()
            .map_err(|_| ClientError::Protocol(format!("{}-byte CMAC tag", reply.payload.len())))
    }

    /// Verifies an AES-CMAC tag; `Ok(false)` on a well-formed mismatch.
    ///
    /// # Errors
    ///
    /// Typed service errors other than `BadTag`, or transport failures.
    pub fn cmac_verify(&mut self, message: &[u8], tag: &[u8; 16]) -> Result<bool, ClientError> {
        let mut payload = Vec::with_capacity(16 + message.len());
        payload.extend_from_slice(tag);
        payload.extend_from_slice(message);
        match self.call(Op::CmacVerify, 0, payload) {
            Ok(reply) => Self::expect_ok(&reply).map(|()| true),
            Err(ClientError::Service {
                code: ErrorCode::BadTag,
                ..
            }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Submits a deferred engine job; `Busy` comes back as a value, not
    /// an error, because it is the expected backpressure signal.
    ///
    /// # Errors
    ///
    /// Typed service errors other than `Busy`, or transport failures.
    pub fn try_submit(
        &mut self,
        op: Op,
        iv: Option<&[u8; 16]>,
        data: &[u8],
    ) -> Result<SubmitOutcome, ClientError> {
        let mut payload = Vec::with_capacity(16 + data.len());
        if let Some(iv) = iv {
            payload.extend_from_slice(iv);
        }
        payload.extend_from_slice(data);
        match self.call(op, FLAG_DEFER, payload) {
            Ok(reply) => {
                if reply.status() == Some(Status::Accepted) {
                    Ok(SubmitOutcome::Accepted(reply.seq))
                } else {
                    Err(ClientError::Protocol(format!(
                        "expected Accepted, got kind {:#04x}",
                        reply.kind
                    )))
                }
            }
            Err(ClientError::Service {
                code: ErrorCode::Busy,
                detail,
            }) => Ok(SubmitOutcome::Busy { capacity: detail }),
            Err(e) => Err(e),
        }
    }

    /// Drains the session's deferred jobs: collects the `Data` replies
    /// (tagged with their submission seq) until the `Flushed` marker.
    ///
    /// # Errors
    ///
    /// Typed service errors on the flush itself, a count mismatch, or
    /// transport failures. Per-job failures come back inside
    /// [`FlushedJob::result`] instead of failing the whole flush.
    pub fn flush(&mut self) -> Result<Vec<FlushedJob>, ClientError> {
        let flush_seq = self.next_seq();
        let request = Frame::request(Op::Flush, 0, flush_seq, self.session, Vec::new());
        self.send_raw(&request)?;
        let mut jobs = Vec::new();
        loop {
            let reply = self.recv_raw()?;
            match reply.status() {
                Some(Status::Data) => jobs.push(FlushedJob {
                    seq: reply.seq,
                    result: Ok(reply.payload),
                }),
                Some(Status::Error) => {
                    let (code, detail) = reply
                        .error_body()
                        .ok_or_else(|| ClientError::Protocol("undecodable error reply".into()))?;
                    if reply.seq == flush_seq {
                        // The flush itself failed (NoSession, ...).
                        return Err(ClientError::Service { code, detail });
                    }
                    jobs.push(FlushedJob {
                        seq: reply.seq,
                        result: Err((code, detail)),
                    });
                }
                Some(Status::Flushed) => {
                    let count = reply
                        .payload
                        .as_slice()
                        .try_into()
                        .map(u32::from_be_bytes)
                        .map_err(|_| ClientError::Protocol("short Flushed payload".into()))?;
                    if count as usize != jobs.len() {
                        return Err(ClientError::Protocol(format!(
                            "Flushed count {count} but {} results arrived",
                            jobs.len()
                        )));
                    }
                    return Ok(jobs);
                }
                _ => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected kind {:#04x} during flush",
                        reply.kind
                    )))
                }
            }
        }
    }
}

//! Blocking loopback client with a pipelined submit/collect API: one
//! [`Client`] per connection, typed methods over the raw frame layer.
//!
//! The wire discipline lives in [`NodeConn`] — one TCP connection to
//! one service node, owning the sequence counter, the live session id,
//! correlation matching and the bounded stray-reply stash. [`Client`]
//! wraps a `NodeConn` with typed per-op methods; the cluster router
//! drives one connection per node through the same core, which is why
//! the two never disagree about framing.
//!
//! The client maps [`Status::Error`] replies into
//! [`ClientError::Service`], and matches every reply to its request by
//! **correlation id** — never by arrival order. That makes it safe
//! against the v2 server's out-of-order completions: a reply for a
//! different outstanding request is stashed and delivered when its own
//! call asks for it, and only a reply that matches *nothing*
//! outstanding is an error ([`ClientError::StrayReply`] — the old
//! client failed hard on any sequence mismatch, with no way to
//! resynchronise). The stash is bounded at [`NodeConn::STASH_CAP`]
//! frames: a caller that abandons correlation ids can no longer grow
//! it without limit — the oldest stashed reply is dropped instead and
//! counted in [`NodeConn::stash_evictions`].
//!
//! Three request disciplines are exposed:
//!
//! * **blocking** — [`Client::ping`], [`Client::ecb_encrypt`], ... :
//!   send one request, wait for its reply;
//! * **pipelined** — [`Client::pipeline`] sends without waiting
//!   (depth-N in flight per connection), [`Client::collect_next`] /
//!   [`Client::collect_all`] receive completions in whatever order the
//!   engine finished them;
//! * **deferred** — [`Client::try_submit`] / [`Client::flush`], the
//!   explicit queue-and-drain path with typed `Busy` backpressure.
//!
//! [`Client::connect`] speaks protocol v2; [`Client::connect_v1`]
//! pins the connection to the version-1 layout for compatibility
//! testing against the in-order v1 contract. The raw
//! [`Client::send_raw`] / [`Client::recv_raw`] pair is for protocol
//! tests that need to send deliberately malformed traffic.

use std::collections::HashSet;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{ErrorCode, Frame, Op, RecvError, Status, FLAG_DEFER, PROTOCOL_V1};

/// Failure of a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// Broken framing in a reply.
    Recv(RecvError),
    /// The server answered with a typed error.
    Service {
        /// The typed failure code.
        code: ErrorCode,
        /// The code-specific detail value.
        detail: u32,
    },
    /// A reply whose correlation id matches no outstanding request —
    /// a duplicate, or an answer to something this client never sent.
    StrayReply {
        /// The unmatched correlation id.
        corr: u32,
    },
    /// A cluster node stayed down through a reconnect attempt: the
    /// router could neither reach it nor re-establish the session. The
    /// raw transport failure was already consumed by the retry — this
    /// is the typed verdict that replaces it.
    NodeUnreachable {
        /// The cluster's index for the unreachable node.
        node: usize,
    },
    /// The reply did not have the shape the call expected.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Recv(e) => write!(f, "framing error: {e}"),
            ClientError::Service { code, detail } => {
                write!(f, "service error: {code} (detail {detail})")
            }
            ClientError::StrayReply { corr } => {
                write!(f, "stray reply: correlation id {corr} matches no request")
            }
            ClientError::NodeUnreachable { node } => {
                write!(f, "cluster node {node} unreachable after reconnect attempt")
            }
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Io(io) => ClientError::Io(io),
            other => ClientError::Recv(other),
        }
    }
}

/// Outcome of a deferred submission: queued, or bounced by
/// backpressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The job entered the queue; its result arrives at the next
    /// [`Client::flush`] tagged with this correlation id.
    Accepted(u32),
    /// The queue is full — flush and retry.
    Busy {
        /// The server-side queue capacity that was exhausted.
        capacity: u32,
    },
}

/// One result drained by [`Client::flush`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushedJob {
    /// The correlation id of the submission that produced it (equal to
    /// that request's sequence number unless overridden).
    pub seq: u32,
    /// The processed bytes, or the typed per-job failure.
    pub result: Result<Vec<u8>, (ErrorCode, u32)>,
}

/// One pipelined completion, delivered by [`Client::collect_next`] in
/// engine completion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelinedJob {
    /// The correlation id [`Client::pipeline`] returned for the
    /// request.
    pub corr: u32,
    /// The processed bytes, or the typed per-job failure (`Busy`,
    /// `RaggedLength`, ...).
    pub result: Result<Vec<u8>, (ErrorCode, u32)>,
}

/// The wire core: one TCP connection to one service node.
///
/// `NodeConn` owns everything a correct conversation needs — the
/// sequence counter, the live session id, the v1/v2 framing choice,
/// the set of outstanding correlation ids and the bounded stash of
/// out-of-order replies. [`Client`] layers the typed per-op methods on
/// top; `rijndael-cluster`'s router drives one `NodeConn`-backed
/// client per node, so single-node and cluster traffic share one
/// framing implementation.
#[derive(Debug)]
pub struct NodeConn {
    stream: TcpStream,
    seq: u32,
    session: u32,
    version: u8,
    /// Correlation ids of pipelined requests still awaiting replies.
    pending: HashSet<u32>,
    /// Out-of-order pipelined replies received while waiting for
    /// something else, in arrival order; never longer than
    /// [`NodeConn::STASH_CAP`].
    stash: Vec<Frame>,
    /// Stashed replies dropped at the cap (their correlation ids are
    /// forgotten with them).
    stash_evicted: u64,
}

impl NodeConn {
    /// Most out-of-order replies held for later collection before the
    /// oldest is dropped. A caller that abandons correlation ids (sends
    /// pipelined work and never collects) previously grew the stash
    /// without bound; now it saturates here.
    pub const STASH_CAP: usize = 1024;

    /// Connects (with `TCP_NODELAY`) speaking protocol v2.
    ///
    /// # Errors
    ///
    /// Propagates connect/setsockopt failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<NodeConn> {
        Self::connect_version(addr, crate::protocol::PROTOCOL_V2)
    }

    /// Connects pinned to a specific wire-format version.
    ///
    /// # Errors
    ///
    /// Propagates connect/setsockopt failures.
    pub fn connect_version<A: ToSocketAddrs>(addr: A, version: u8) -> io::Result<NodeConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NodeConn {
            stream,
            seq: 0,
            session: 0,
            version,
            pending: HashSet::new(),
            stash: Vec::new(),
            stash_evicted: 0,
        })
    }

    /// The live session id (0 before the first `SET_KEY`).
    #[must_use]
    pub fn session(&self) -> u32 {
        self.session
    }

    /// The wire-format version this connection speaks.
    #[must_use]
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Pipelined requests sent and not yet collected. A stashed reply
    /// counts until its own collection call delivers it (the stash only
    /// ever holds replies whose correlation id is still outstanding, so
    /// the pending set alone is the honest tally — the old
    /// `pending + stash` sum double-counted every stashed reply).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Stashed replies dropped at [`NodeConn::STASH_CAP`] over the
    /// connection's lifetime.
    #[must_use]
    pub fn stash_evictions(&self) -> u64 {
        self.stash_evicted
    }

    fn next_seq(&mut self) -> u32 {
        self.seq = self.seq.wrapping_add(1);
        self.seq
    }

    fn request(&self, op: Op, flags: u8, seq: u32, payload: Vec<u8>) -> Frame {
        if self.version >= crate::protocol::PROTOCOL_V2 {
            Frame::request(op, flags, seq, self.session, payload)
        } else {
            Frame::request_v1(op, flags, seq, self.session, payload)
        }
    }

    /// Sends a frame verbatim (protocol-test escape hatch).
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn send_raw(&mut self, frame: &Frame) -> io::Result<()> {
        frame.write_to(&mut self.stream)
    }

    /// Reads the next reply frame verbatim (protocol-test escape
    /// hatch). Bypasses correlation matching — mixing this with
    /// outstanding pipelined requests will misroute replies.
    ///
    /// # Errors
    ///
    /// Transport or framing errors.
    pub fn recv_raw(&mut self) -> Result<Frame, RecvError> {
        Frame::read_from(&mut self.stream)
    }

    /// Stashes an out-of-order reply, evicting the oldest stashed frame
    /// (and forgetting its correlation id) once the cap is reached.
    fn stash_reply(&mut self, reply: Frame) {
        if self.stash.len() >= Self::STASH_CAP {
            let evicted = self.stash.remove(0);
            self.pending.remove(&evicted.corr);
            self.stash_evicted += 1;
        }
        self.stash.push(reply);
    }

    /// Reads until the reply correlated `want` arrives; pipelined
    /// replies that arrive in between are stashed for their own
    /// collection calls.
    fn recv_matched(&mut self, want: u32) -> Result<Frame, ClientError> {
        loop {
            let reply = self.recv_raw()?;
            if reply.corr == want {
                return Ok(reply);
            }
            if self.pending.contains(&reply.corr) {
                self.stash_reply(reply);
                continue;
            }
            // An unsolicited goodbye (idle timeout, shutdown) carries
            // corr 0 and outranks whatever we were waiting for.
            if reply.corr == 0 {
                if let Some((code, detail)) = reply.error_body() {
                    return Err(ClientError::Service { code, detail });
                }
            }
            return Err(ClientError::StrayReply { corr: reply.corr });
        }
    }

    /// Request/reply round trip; typed `Error` replies become
    /// [`ClientError::Service`].
    fn call(&mut self, op: Op, flags: u8, payload: Vec<u8>) -> Result<Frame, ClientError> {
        let seq = self.next_seq();
        let request = self.request(op, flags, seq, payload);
        self.send_raw(&request)?;
        let reply = self.recv_matched(seq)?;
        if let Some((code, detail)) = reply.error_body() {
            return Err(ClientError::Service { code, detail });
        }
        Ok(reply)
    }

    /// Sends a request **without waiting for the reply** and returns
    /// its correlation id.
    ///
    /// # Errors
    ///
    /// Transport failures on the send.
    fn pipeline_op(&mut self, op: Op, payload: Vec<u8>) -> Result<u32, ClientError> {
        let corr = self.next_seq();
        let request = self.request(op, 0, corr, payload);
        self.send_raw(&request)?;
        self.pending.insert(corr);
        Ok(corr)
    }

    /// Receives the next pipelined completion (stashed replies first,
    /// then the wire), blocking until one arrives.
    ///
    /// # Errors
    ///
    /// See [`Client::collect_next`].
    fn collect_next(&mut self) -> Result<PipelinedJob, ClientError> {
        if self.pending.is_empty() && self.stash.is_empty() {
            return Err(ClientError::Protocol(
                "collect_next with no pipelined request in flight".into(),
            ));
        }
        let reply = if self.stash.is_empty() {
            self.recv_raw()?
        } else {
            self.stash.remove(0)
        };
        if !self.pending.remove(&reply.corr) {
            if reply.corr == 0 {
                if let Some((code, detail)) = reply.error_body() {
                    return Err(ClientError::Service { code, detail });
                }
            }
            return Err(ClientError::StrayReply { corr: reply.corr });
        }
        let result = match reply.error_body() {
            Some((code, detail)) => Err((code, detail)),
            None => Ok(reply.payload),
        };
        Ok(PipelinedJob {
            corr: reply.corr,
            result,
        })
    }

    /// Collects every outstanding pipelined completion, in arrival
    /// order.
    ///
    /// # Errors
    ///
    /// See [`Client::collect_all`].
    fn collect_all(&mut self) -> Result<Vec<PipelinedJob>, ClientError> {
        let mut jobs = Vec::with_capacity(self.in_flight());
        while self.in_flight() > 0 {
            jobs.push(self.collect_next()?);
        }
        Ok(jobs)
    }

    /// Drains the session's deferred jobs until the `Flushed` marker.
    ///
    /// # Errors
    ///
    /// See [`Client::flush`].
    fn flush(&mut self) -> Result<Vec<FlushedJob>, ClientError> {
        let flush_seq = self.next_seq();
        let request = self.request(Op::Flush, 0, flush_seq, Vec::new());
        self.send_raw(&request)?;
        let mut jobs = Vec::new();
        loop {
            let reply = self.recv_raw()?;
            if self.pending.contains(&reply.corr) {
                self.stash_reply(reply);
                continue;
            }
            match reply.status() {
                Some(Status::Data) => jobs.push(FlushedJob {
                    seq: reply.corr,
                    result: Ok(reply.payload),
                }),
                Some(Status::Error) => {
                    let (code, detail) = reply
                        .error_body()
                        .ok_or_else(|| ClientError::Protocol("undecodable error reply".into()))?;
                    if reply.corr == flush_seq {
                        // The flush itself failed (NoSession, ...).
                        return Err(ClientError::Service { code, detail });
                    }
                    jobs.push(FlushedJob {
                        seq: reply.corr,
                        result: Err((code, detail)),
                    });
                }
                Some(Status::Flushed) => {
                    let count = reply
                        .payload
                        .as_slice()
                        .try_into()
                        .map(u32::from_be_bytes)
                        .map_err(|_| ClientError::Protocol("short Flushed payload".into()))?;
                    if count as usize != jobs.len() {
                        return Err(ClientError::Protocol(format!(
                            "Flushed count {count} but {} results arrived",
                            jobs.len()
                        )));
                    }
                    return Ok(jobs);
                }
                _ => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected kind {:#04x} during flush",
                        reply.kind
                    )))
                }
            }
        }
    }
}

/// A blocking connection to the service: typed per-op methods over a
/// [`NodeConn`].
#[derive(Debug)]
pub struct Client {
    conn: NodeConn,
}

impl Client {
    /// Connects (with `TCP_NODELAY`) speaking protocol v2, sequence
    /// numbering starting at 1.
    ///
    /// # Errors
    ///
    /// Propagates connect/setsockopt failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Ok(Client {
            conn: NodeConn::connect(addr)?,
        })
    }

    /// Connects pinned to the version-1 wire format (11-byte header,
    /// strictly in-order replies) — the compatibility path for peers
    /// that predate pipelining.
    ///
    /// # Errors
    ///
    /// Propagates connect/setsockopt failures.
    pub fn connect_v1<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Ok(Client {
            conn: NodeConn::connect_version(addr, PROTOCOL_V1)?,
        })
    }

    /// The underlying wire connection.
    #[must_use]
    pub fn conn(&self) -> &NodeConn {
        &self.conn
    }

    /// The live session id (0 before the first [`Client::set_key`]).
    #[must_use]
    pub fn session(&self) -> u32 {
        self.conn.session()
    }

    /// The wire-format version this connection speaks.
    #[must_use]
    pub fn version(&self) -> u8 {
        self.conn.version()
    }

    /// Pipelined requests sent and not yet collected.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.conn.in_flight()
    }

    /// Stashed replies dropped at [`NodeConn::STASH_CAP`] over the
    /// connection's lifetime.
    #[must_use]
    pub fn stash_evictions(&self) -> u64 {
        self.conn.stash_evictions()
    }

    #[cfg(test)]
    fn request(&self, op: Op, flags: u8, seq: u32, payload: Vec<u8>) -> Frame {
        self.conn.request(op, flags, seq, payload)
    }

    /// Sends a frame verbatim (protocol-test escape hatch).
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn send_raw(&mut self, frame: &Frame) -> io::Result<()> {
        self.conn.send_raw(frame)
    }

    /// Reads the next reply frame verbatim (protocol-test escape
    /// hatch). Bypasses correlation matching — mixing this with
    /// outstanding pipelined requests will misroute replies.
    ///
    /// # Errors
    ///
    /// Transport or framing errors.
    pub fn recv_raw(&mut self) -> Result<Frame, RecvError> {
        self.conn.recv_raw()
    }

    #[cfg(test)]
    fn recv_matched(&mut self, want: u32) -> Result<Frame, ClientError> {
        self.conn.recv_matched(want)
    }

    fn call(&mut self, op: Op, flags: u8, payload: Vec<u8>) -> Result<Frame, ClientError> {
        self.conn.call(op, flags, payload)
    }

    fn expect_ok(reply: &Frame) -> Result<(), ClientError> {
        if reply.status() == Some(Status::Ok) {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!(
                "expected Ok, got kind {:#04x}",
                reply.kind
            )))
        }
    }

    /// Loads an AES key (16, 24 or 32 bytes), creating a fresh
    /// server-side session; returns the new session id (used on every
    /// subsequent request automatically).
    ///
    /// # Errors
    ///
    /// Typed service errors (`BadKeyLength` for any other length) or
    /// transport failures.
    pub fn set_key(&mut self, key: &[u8]) -> Result<u32, ClientError> {
        let reply = self.call(Op::SetKey, 0, key.to_vec())?;
        Self::expect_ok(&reply)?;
        self.conn.session = reply.session;
        Ok(reply.session)
    }

    /// Re-keys from an RFC 3394 blob wrapped under the **live**
    /// session's key: the server unwraps it in place and the unwrapped
    /// key becomes the new session key, so raw key bytes never cross
    /// this connection. Returns the fresh session id.
    ///
    /// # Errors
    ///
    /// Typed service errors (`NoSession` without a live session,
    /// `TagMismatch` on a tampered blob, `BadKeyLength` when the blob
    /// unwraps to a non-key) or transport failures; every failure
    /// leaves the current session live.
    pub fn set_key_wrapped(&mut self, wrapped: &[u8]) -> Result<u32, ClientError> {
        let reply = self.call(Op::SetKeyWrapped, 0, wrapped.to_vec())?;
        Self::expect_ok(&reply)?;
        self.conn.session = reply.session;
        Ok(reply.session)
    }

    /// Liveness probe; the server echoes `payload`.
    ///
    /// # Errors
    ///
    /// Typed service errors or transport failures.
    pub fn ping(&mut self, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        let reply = self.call(Op::Ping, 0, payload.to_vec())?;
        Self::expect_ok(&reply)?;
        Ok(reply.payload)
    }

    fn engine_payload(iv: Option<&[u8; 16]>, data: &[u8]) -> Vec<u8> {
        let mut payload = Vec::with_capacity(16 + data.len());
        if let Some(iv) = iv {
            payload.extend_from_slice(iv);
        }
        payload.extend_from_slice(data);
        payload
    }

    fn engine_call(
        &mut self,
        op: Op,
        iv: Option<&[u8; 16]>,
        data: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        let reply = self.call(op, 0, Self::engine_payload(iv, data))?;
        Self::expect_ok(&reply)?;
        Ok(reply.payload)
    }

    /// ECB-encrypts whole blocks under the session key.
    ///
    /// # Errors
    ///
    /// Typed service errors (`NoSession`, `RaggedLength`, `Busy`...) or
    /// transport failures.
    pub fn ecb_encrypt(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.engine_call(Op::EcbEncrypt, None, plaintext)
    }

    /// ECB-decrypts whole blocks under the session key.
    ///
    /// # Errors
    ///
    /// As [`Client::ecb_encrypt`].
    pub fn ecb_decrypt(&mut self, ciphertext: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.engine_call(Op::EcbDecrypt, None, ciphertext)
    }

    /// CBC-encrypts whole blocks under the session key.
    ///
    /// # Errors
    ///
    /// As [`Client::ecb_encrypt`].
    pub fn cbc_encrypt(&mut self, iv: &[u8; 16], plaintext: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.engine_call(Op::CbcEncrypt, Some(iv), plaintext)
    }

    /// CBC-decrypts whole blocks under the session key.
    ///
    /// # Errors
    ///
    /// As [`Client::ecb_encrypt`].
    pub fn cbc_decrypt(
        &mut self,
        iv: &[u8; 16],
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        self.engine_call(Op::CbcDecrypt, Some(iv), ciphertext)
    }

    /// Applies the CTR keystream (encrypt = decrypt, any length).
    ///
    /// # Errors
    ///
    /// As [`Client::ecb_encrypt`].
    pub fn ctr_apply(&mut self, counter: &[u8; 16], data: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.engine_call(Op::CtrApply, Some(counter), data)
    }

    /// Fetches the server's telemetry snapshot: the `telemetry/1` JSON
    /// document with per-opcode request counts, error tallies,
    /// connection gauges and every session engine's `engine.*`
    /// instruments. Works without a session.
    ///
    /// # Errors
    ///
    /// Typed service errors or transport failures;
    /// [`ClientError::Protocol`] if the payload is not UTF-8.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let reply = self.call(Op::GetStats, 0, Vec::new())?;
        Self::expect_ok(&reply)?;
        String::from_utf8(reply.payload)
            .map_err(|_| ClientError::Protocol("non-UTF-8 stats payload".into()))
    }

    /// Computes the AES-CMAC tag of `message` under the session key.
    ///
    /// # Errors
    ///
    /// Typed service errors or transport failures.
    pub fn cmac_tag(&mut self, message: &[u8]) -> Result<[u8; 16], ClientError> {
        let reply = self.call(Op::CmacTag, 0, message.to_vec())?;
        Self::expect_ok(&reply)?;
        reply
            .payload
            .as_slice()
            .try_into()
            .map_err(|_| ClientError::Protocol(format!("{}-byte CMAC tag", reply.payload.len())))
    }

    /// Verifies an AES-CMAC tag; `Ok(false)` on a well-formed mismatch.
    ///
    /// # Errors
    ///
    /// Typed service errors other than `BadTag`, or transport failures.
    pub fn cmac_verify(&mut self, message: &[u8], tag: &[u8; 16]) -> Result<bool, ClientError> {
        let mut payload = Vec::with_capacity(16 + message.len());
        payload.extend_from_slice(tag);
        payload.extend_from_slice(message);
        match self.call(Op::CmacVerify, 0, payload) {
            Ok(reply) => Self::expect_ok(&reply).map(|()| true),
            Err(ClientError::Service {
                code: ErrorCode::BadTag,
                ..
            }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    fn aead_payload(nonce: &[u8; 12], aad: &[u8], body: &[u8]) -> Vec<u8> {
        let mut payload = Vec::with_capacity(16 + aad.len() + body.len());
        payload.extend_from_slice(nonce);
        payload.extend_from_slice(&(aad.len() as u32).to_be_bytes());
        payload.extend_from_slice(aad);
        payload.extend_from_slice(body);
        payload
    }

    /// AES-GCM seal under the session key: returns ciphertext ‖ 16-byte
    /// tag. The nonce must be unique per (key, message) — reuse forfeits
    /// both confidentiality and authenticity.
    ///
    /// # Errors
    ///
    /// Typed service errors or transport failures.
    pub fn seal(
        &mut self,
        nonce: &[u8; 12],
        aad: &[u8],
        plaintext: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        let reply = self.call(Op::Seal, 0, Self::aead_payload(nonce, aad, plaintext))?;
        Self::expect_ok(&reply)?;
        Ok(reply.payload)
    }

    /// AES-GCM open; `Ok(None)` on a well-formed authentication failure
    /// (a tampered ciphertext, AAD, nonce or tag), mirroring
    /// [`Client::cmac_verify`]'s verdict-not-error shape.
    ///
    /// # Errors
    ///
    /// Typed service errors other than `TagMismatch`, or transport
    /// failures.
    pub fn open(
        &mut self,
        nonce: &[u8; 12],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Option<Vec<u8>>, ClientError> {
        match self.call(Op::Open, 0, Self::aead_payload(nonce, aad, sealed)) {
            Ok(reply) => Self::expect_ok(&reply).map(|()| Some(reply.payload)),
            Err(ClientError::Service {
                code: ErrorCode::TagMismatch,
                ..
            }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Wraps `key_data` (RFC 3394) under the session key; the result is
    /// 8 bytes longer than the input.
    ///
    /// # Errors
    ///
    /// Typed service errors (`Malformed` unless `key_data` is ≥ 16
    /// bytes and a multiple of 8) or transport failures.
    pub fn wrap_key(&mut self, key_data: &[u8]) -> Result<Vec<u8>, ClientError> {
        let reply = self.call(Op::WrapKey, 0, key_data.to_vec())?;
        Self::expect_ok(&reply)?;
        Ok(reply.payload)
    }

    /// Unwraps an RFC 3394 blob; `Ok(None)` when the integrity check
    /// fails.
    ///
    /// # Errors
    ///
    /// Typed service errors other than `TagMismatch`, or transport
    /// failures.
    pub fn unwrap_key(&mut self, wrapped: &[u8]) -> Result<Option<Vec<u8>>, ClientError> {
        match self.call(Op::UnwrapKey, 0, wrapped.to_vec()) {
            Ok(reply) => Self::expect_ok(&reply).map(|()| Some(reply.payload)),
            Err(ClientError::Service {
                code: ErrorCode::TagMismatch,
                ..
            }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn xts_payload(sector_base: u64, sector_size: u32, body: &[u8]) -> Vec<u8> {
        let mut payload = Vec::with_capacity(12 + body.len());
        payload.extend_from_slice(&sector_base.to_be_bytes());
        payload.extend_from_slice(&sector_size.to_be_bytes());
        payload.extend_from_slice(body);
        payload
    }

    /// XTS-encrypts `data` as consecutive `sector_size`-byte sectors
    /// starting at sector number `sector_base` (sector `i` uses tweak
    /// `sector_base + i`, wrapping). `data` must be a non-empty whole
    /// number of sectors and `sector_size` at least one AES block.
    ///
    /// # Errors
    ///
    /// Typed service errors (`BadSectorSize` on bad geometry,
    /// `NoSession`, ...) or transport failures.
    pub fn xts_encrypt(
        &mut self,
        sector_base: u64,
        sector_size: u32,
        data: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        let reply = self.call(
            Op::XtsEncrypt,
            0,
            Self::xts_payload(sector_base, sector_size, data),
        )?;
        Self::expect_ok(&reply)?;
        Ok(reply.payload)
    }

    /// XTS-decrypts `data`; the inverse of [`Client::xts_encrypt`]
    /// under the same sector geometry.
    ///
    /// # Errors
    ///
    /// As [`Client::xts_encrypt`].
    pub fn xts_decrypt(
        &mut self,
        sector_base: u64,
        sector_size: u32,
        data: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        let reply = self.call(
            Op::XtsDecrypt,
            0,
            Self::xts_payload(sector_base, sector_size, data),
        )?;
        Self::expect_ok(&reply)?;
        Ok(reply.payload)
    }

    /// Sends an engine op **without waiting for the reply** and returns
    /// its correlation id. Any number of pipelined requests may be in
    /// flight; collect them with [`Client::collect_next`] /
    /// [`Client::collect_all`] — completions arrive in engine order,
    /// not submission order.
    ///
    /// # Errors
    ///
    /// Transport failures on the send. Server-side failures (`Busy`,
    /// `RaggedLength`, stale session, ...) come back as the job's
    /// [`PipelinedJob::result`] at collection time.
    pub fn pipeline(
        &mut self,
        op: Op,
        iv: Option<&[u8; 16]>,
        data: &[u8],
    ) -> Result<u32, ClientError> {
        self.conn.pipeline_op(op, Self::engine_payload(iv, data))
    }

    /// Receives the next pipelined completion (stashed replies first,
    /// then the wire), blocking until one arrives.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] when nothing is in flight;
    /// [`ClientError::StrayReply`] on a duplicate or unknown
    /// correlation id; unsolicited goodbyes surface as
    /// [`ClientError::Service`]; transport failures.
    pub fn collect_next(&mut self) -> Result<PipelinedJob, ClientError> {
        self.conn.collect_next()
    }

    /// Collects every outstanding pipelined completion, in arrival
    /// order.
    ///
    /// # Errors
    ///
    /// As [`Client::collect_next`]; already-collected jobs are not
    /// re-delivered after an error.
    pub fn collect_all(&mut self) -> Result<Vec<PipelinedJob>, ClientError> {
        self.conn.collect_all()
    }

    /// Submits a deferred engine job; `Busy` comes back as a value, not
    /// an error, because it is the expected backpressure signal.
    ///
    /// # Errors
    ///
    /// Typed service errors other than `Busy`, or transport failures.
    pub fn try_submit(
        &mut self,
        op: Op,
        iv: Option<&[u8; 16]>,
        data: &[u8],
    ) -> Result<SubmitOutcome, ClientError> {
        match self.call(op, FLAG_DEFER, Self::engine_payload(iv, data)) {
            Ok(reply) => {
                if reply.status() == Some(Status::Accepted) {
                    Ok(SubmitOutcome::Accepted(reply.corr))
                } else {
                    Err(ClientError::Protocol(format!(
                        "expected Accepted, got kind {:#04x}",
                        reply.kind
                    )))
                }
            }
            Err(ClientError::Service {
                code: ErrorCode::Busy,
                detail,
            }) => Ok(SubmitOutcome::Busy { capacity: detail }),
            Err(e) => Err(e),
        }
    }

    /// Drains the session's deferred jobs: collects the `Data` replies
    /// (tagged with their submission's correlation id) until the
    /// `Flushed` marker. Pipelined completions arriving in between are
    /// stashed, not lost.
    ///
    /// # Errors
    ///
    /// Typed service errors on the flush itself, a count mismatch, or
    /// transport failures. Per-job failures come back inside
    /// [`FlushedJob::result`] instead of failing the whole flush.
    pub fn flush(&mut self) -> Result<Vec<FlushedJob>, ClientError> {
        self.conn.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    /// A scripted peer: accepts one connection, reads `expect` frames,
    /// then plays back `replies` verbatim. Lets the tests hand the
    /// client deliberately reordered or duplicated replies.
    fn scripted_server(
        expect: usize,
        replies: Vec<Frame>,
    ) -> (std::net::SocketAddr, thread::JoinHandle<Vec<Frame>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut seen = Vec::with_capacity(expect);
            for _ in 0..expect {
                seen.push(Frame::read_from(&mut stream).unwrap());
            }
            for reply in &replies {
                reply.write_to(&mut stream).unwrap();
            }
            seen
        });
        (addr, handle)
    }

    fn ok_reply(corr: u32, payload: Vec<u8>) -> Frame {
        Frame::reply(Status::Ok, corr, 1, payload).with_corr(corr)
    }

    #[test]
    fn reordered_replies_match_by_correlation_id() {
        // Replies come back in reverse submission order; every job must
        // still land on its own correlation id.
        let (addr, server) = scripted_server(
            3,
            vec![
                ok_reply(3, vec![0x33]),
                ok_reply(1, vec![0x11]),
                ok_reply(2, vec![0x22]),
            ],
        );
        let mut client = Client::connect(addr).unwrap();
        let a = client.pipeline(Op::EcbEncrypt, None, &[0u8; 16]).unwrap();
        let b = client.pipeline(Op::EcbEncrypt, None, &[0u8; 16]).unwrap();
        let c = client.pipeline(Op::EcbEncrypt, None, &[0u8; 16]).unwrap();
        assert_eq!((a, b, c), (1, 2, 3));
        assert_eq!(client.in_flight(), 3);

        let jobs = client.collect_all().unwrap();
        assert_eq!(client.in_flight(), 0);
        let by_corr: std::collections::HashMap<u32, Vec<u8>> = jobs
            .into_iter()
            .map(|j| (j.corr, j.result.unwrap()))
            .collect();
        assert_eq!(by_corr[&1], vec![0x11]);
        assert_eq!(by_corr[&2], vec![0x22]);
        assert_eq!(by_corr[&3], vec![0x33]);
        server.join().unwrap();
    }

    #[test]
    fn duplicate_replies_are_typed_stray_errors() {
        let (addr, server) =
            scripted_server(1, vec![ok_reply(1, vec![0xAA]), ok_reply(1, vec![0xAA])]);
        let mut client = Client::connect(addr).unwrap();
        client.pipeline(Op::EcbEncrypt, None, &[0u8; 16]).unwrap();
        // Force a second receive after the pipeline drains by sending
        // another request; the duplicate arrives first and matches
        // nothing.
        let first = client.collect_next().unwrap();
        assert_eq!(first.corr, 1);
        let request = client.request(Op::Ping, 0, 99, Vec::new());
        client.send_raw(&request).unwrap();
        match client.recv_matched(99) {
            Err(ClientError::StrayReply { corr: 1 }) => {}
            other => panic!("expected StrayReply {{ corr: 1 }}, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn blocking_calls_stash_interleaved_pipelined_replies() {
        // The server answers the pipelined job FIRST, then the ping.
        // The blocking ping must stash the pipelined completion and
        // deliver it at collect_next — zero socket reads by then.
        let (addr, server) = scripted_server(
            2,
            vec![ok_reply(1, vec![0xEE]), ok_reply(2, b"pong".to_vec())],
        );
        let mut client = Client::connect(addr).unwrap();
        let corr = client.pipeline(Op::EcbEncrypt, None, &[0u8; 16]).unwrap();
        let pong = client.ping(b"pong").unwrap();
        assert_eq!(pong, b"pong");
        let job = client.collect_next().unwrap();
        assert_eq!(job.corr, corr);
        assert_eq!(job.result.unwrap(), vec![0xEE]);
        let seen = server.join().unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].op(), Some(Op::EcbEncrypt));
        assert_eq!(seen[1].op(), Some(Op::Ping));
    }

    #[test]
    fn v1_client_emits_v1_frames() {
        let (addr, server) = scripted_server(
            1,
            vec![Frame::reply(Status::Ok, 1, 0, b"hi".to_vec()).with_version(PROTOCOL_V1)],
        );
        let mut client = Client::connect_v1(addr).unwrap();
        assert_eq!(client.version(), PROTOCOL_V1);
        let echoed = client.ping(b"hi").unwrap();
        assert_eq!(echoed, b"hi");
        let seen = server.join().unwrap();
        assert_eq!(seen[0].version, PROTOCOL_V1);
        assert_eq!(seen[0].corr, seen[0].seq, "v1 decode mirrors seq");
    }

    #[test]
    fn unsolicited_goodbyes_surface_as_service_errors() {
        let (addr, server) =
            scripted_server(1, vec![Frame::error(ErrorCode::ShuttingDown, 0, 0, 0)]);
        let mut client = Client::connect(addr).unwrap();
        client.pipeline(Op::EcbEncrypt, None, &[0u8; 16]).unwrap();
        match client.collect_next() {
            Err(ClientError::Service {
                code: ErrorCode::ShuttingDown,
                ..
            }) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn abandoned_pipelined_replies_evict_at_the_stash_cap() {
        // One more pipelined job than the stash holds, all answered
        // before the blocking ping the client is actually waiting on.
        // The oldest stashed reply must be dropped (and its correlation
        // id forgotten) instead of growing the stash without bound.
        let depth = NodeConn::STASH_CAP + 1;
        let mut replies: Vec<Frame> = (1..=depth as u32)
            .map(|corr| ok_reply(corr, vec![0xCC]))
            .collect();
        let ping_corr = depth as u32 + 1;
        replies.push(ok_reply(ping_corr, b"pong".to_vec()));
        let (addr, server) = scripted_server(depth + 1, replies);

        let mut client = Client::connect(addr).unwrap();
        for _ in 0..depth {
            client.pipeline(Op::EcbEncrypt, None, &[0u8; 16]).unwrap();
        }
        assert_eq!(client.in_flight(), depth);
        let pong = client.ping(b"pong").unwrap();
        assert_eq!(pong, b"pong");

        // Exactly one eviction: the cap-sized stash plus the dropped
        // oldest account for every pipelined reply.
        assert_eq!(client.stash_evictions(), 1);
        assert_eq!(client.in_flight(), NodeConn::STASH_CAP);
        let jobs = client.collect_all().unwrap();
        assert_eq!(jobs.len(), NodeConn::STASH_CAP);
        // Correlation id 1 was the evicted one.
        assert!(jobs.iter().all(|j| j.corr != 1));
        assert_eq!(client.in_flight(), 0);
        server.join().unwrap();
    }

    #[test]
    fn node_unreachable_is_a_typed_displayable_error() {
        let err = ClientError::NodeUnreachable { node: 2 };
        assert_eq!(
            err.to_string(),
            "cluster node 2 unreachable after reconnect attempt"
        );
    }
}

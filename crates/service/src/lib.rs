//! Framed TCP crypto service in front of the multi-core engine.
//!
//! The paper's IP is a bus-mastered coprocessor; the natural system
//! around a farm of them is a keyed service: clients connect, load a
//! key, and stream mode operations at the engine. This crate is that
//! service, std-only and hermetic like the rest of the workspace:
//!
//! * [`protocol`] — the length-prefixed wire format, versions 1 and 2:
//!   request framing (ECB/CBC/CTR, CMAC, key load, flush, ping, stats),
//!   strict frame size limits, typed error replies instead of
//!   disconnects, and — in v2 — a correlation id that makes request
//!   pipelining with out-of-order replies well-defined;
//! * [`session`] — per-connection key management: `SET_KEY` builds a
//!   fresh engine farm, key material is never echoed and wipes itself
//!   on teardown or re-key; deferred and pipelined jobs ride the same
//!   bounded queue through separate lanes;
//! * [`net`] — the std-only readiness shim (`poll(2)` by direct FFI)
//!   that lets the server watch thousands of nonblocking sockets
//!   without external crates;
//! * [`server`] — the event-driven front end: an acceptor with a typed
//!   admission cap feeding per-connection state machines spread across
//!   a few shard event loops, with request pipelining, per-session
//!   backpressure mapped onto `Engine::try_submit` (typed `Busy`
//!   replies), write-backpressure, idle timeouts and a graceful
//!   shutdown that drains in-flight pipelined and deferred jobs;
//! * [`client`] — a blocking loopback client with a pipelined
//!   submit/collect API, used by the integration tests and the
//!   `service_load` load generator; its wire core ([`NodeConn`]) is
//!   reused per-node by the `rijndael-cluster` router;
//! * [`transport`] — the object-safe [`Transport`] trait: the one
//!   client surface implemented by both the single-node [`Client`] and
//!   the cluster router, so callers swap between them without code
//!   changes.
//!
//! Every server owns a [`telemetry::Registry`] that its session engines
//! publish into; `GET_STATS` ([`Client::stats`]) returns one snapshot of
//! it as the stable `telemetry/1` JSON document, and engine failures map
//! onto wire [`ErrorCode`]s through a single `engine::Error` match in
//! the server.
//!
//! # Quick start
//!
//! ```
//! use rijndael_service::client::Client;
//! use rijndael_service::server::{Server, ServiceConfig};
//!
//! let handle = Server::new(ServiceConfig::default())
//!     .spawn("127.0.0.1:0")
//!     .expect("bind");
//! let mut client = Client::connect(handle.local_addr()).expect("connect");
//! client.set_key(&[0u8; 16]).expect("key load");
//! let ct = client.ecb_encrypt(&[0u8; 16]).expect("encrypt");
//! assert_eq!(ct[0], 0x66); // AES-128 zero vector
//! handle.shutdown();
//! ```

// Unsafety is confined to the two audited FFI call sites in [`net`]
// (`poll(2)` and the rlimit pair); everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod net;
pub mod protocol;
pub mod server;
pub mod session;
pub mod transport;

pub use client::{Client, ClientError, FlushedJob, NodeConn, PipelinedJob, SubmitOutcome};
pub use protocol::{ErrorCode, Frame, Op, RecvBuffer, RecvError, Status};
pub use server::{ConfigError, Server, ServiceConfig, ServiceConfigBuilder, ServiceHandle};
pub use session::{Session, SessionSlot};
pub use transport::Transport;

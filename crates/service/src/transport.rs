//! The unified client surface: one object-safe trait over a single
//! node or a whole cluster.
//!
//! [`Transport`] is the API every consumer — tests, benches, examples —
//! should program against. The single-node [`Client`] implements it by
//! delegating to its inherent methods; `rijndael-cluster`'s
//! `ClusterClient` implements it by routing each call to the session's
//! home node. Code written against `&mut dyn Transport` swaps between
//! the two without changes, which is the whole point: the cluster is
//! *behaviourally* one service, and the type system should say so.
//!
//! The trait is deliberately object-safe (no generics, no `Self`
//! returns) so callers can hold `Box<dyn Transport>` and choose the
//! backing at runtime — a config flag away from a fleet.

use crate::client::{Client, ClientError, PipelinedJob};
use crate::protocol::Op;

/// One logical crypto service, whether backed by a single node or a
/// cluster. See the [module docs](self) for the design intent; see
/// [`Client`] for the per-method wire semantics the implementations
/// must preserve.
pub trait Transport {
    /// Loads an AES key (16, 24 or 32 bytes), creating a fresh session;
    /// returns the session id used on every subsequent request.
    ///
    /// # Errors
    ///
    /// Typed service errors (`BadKeyLength`, ...) or transport
    /// failures.
    fn set_key(&mut self, key: &[u8]) -> Result<u32, ClientError>;

    /// Re-keys from an RFC 3394 blob wrapped under the live session's
    /// key; raw key bytes never cross the wire.
    ///
    /// # Errors
    ///
    /// Typed service errors (`NoSession`, `TagMismatch`,
    /// `BadKeyLength`) or transport failures.
    fn set_key_wrapped(&mut self, wrapped: &[u8]) -> Result<u32, ClientError>;

    /// Liveness probe; the service echoes `payload`.
    ///
    /// # Errors
    ///
    /// Typed service errors or transport failures.
    fn ping(&mut self, payload: &[u8]) -> Result<Vec<u8>, ClientError>;

    /// ECB-encrypts whole blocks under the session key.
    ///
    /// # Errors
    ///
    /// Typed service errors (`NoSession`, `RaggedLength`, `Busy`...) or
    /// transport failures.
    fn ecb_encrypt(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, ClientError>;

    /// ECB-decrypts whole blocks under the session key.
    ///
    /// # Errors
    ///
    /// As [`Transport::ecb_encrypt`].
    fn ecb_decrypt(&mut self, ciphertext: &[u8]) -> Result<Vec<u8>, ClientError>;

    /// CBC-encrypts whole blocks under the session key.
    ///
    /// # Errors
    ///
    /// As [`Transport::ecb_encrypt`].
    fn cbc_encrypt(&mut self, iv: &[u8; 16], plaintext: &[u8]) -> Result<Vec<u8>, ClientError>;

    /// CBC-decrypts whole blocks under the session key.
    ///
    /// # Errors
    ///
    /// As [`Transport::ecb_encrypt`].
    fn cbc_decrypt(&mut self, iv: &[u8; 16], ciphertext: &[u8]) -> Result<Vec<u8>, ClientError>;

    /// Applies the CTR keystream (encrypt = decrypt, any length).
    ///
    /// # Errors
    ///
    /// As [`Transport::ecb_encrypt`].
    fn ctr_apply(&mut self, counter: &[u8; 16], data: &[u8]) -> Result<Vec<u8>, ClientError>;

    /// Computes the AES-CMAC tag of `message` under the session key.
    ///
    /// # Errors
    ///
    /// Typed service errors or transport failures.
    fn cmac_tag(&mut self, message: &[u8]) -> Result<[u8; 16], ClientError>;

    /// Verifies an AES-CMAC tag; `Ok(false)` on a well-formed mismatch.
    ///
    /// # Errors
    ///
    /// Typed service errors other than `BadTag`, or transport failures.
    fn cmac_verify(&mut self, message: &[u8], tag: &[u8; 16]) -> Result<bool, ClientError>;

    /// AES-GCM seal under the session key: ciphertext ‖ 16-byte tag.
    ///
    /// # Errors
    ///
    /// Typed service errors or transport failures.
    fn seal(
        &mut self,
        nonce: &[u8; 12],
        aad: &[u8],
        plaintext: &[u8],
    ) -> Result<Vec<u8>, ClientError>;

    /// AES-GCM open; `Ok(None)` on a well-formed authentication
    /// failure.
    ///
    /// # Errors
    ///
    /// Typed service errors other than `TagMismatch`, or transport
    /// failures.
    fn open(
        &mut self,
        nonce: &[u8; 12],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Option<Vec<u8>>, ClientError>;

    /// Wraps `key_data` (RFC 3394) under the session key.
    ///
    /// # Errors
    ///
    /// Typed service errors or transport failures.
    fn wrap_key(&mut self, key_data: &[u8]) -> Result<Vec<u8>, ClientError>;

    /// Unwraps an RFC 3394 blob; `Ok(None)` when the integrity check
    /// fails.
    ///
    /// # Errors
    ///
    /// Typed service errors other than `TagMismatch`, or transport
    /// failures.
    fn unwrap_key(&mut self, wrapped: &[u8]) -> Result<Option<Vec<u8>>, ClientError>;

    /// XTS-encrypts whole `sector_size`-byte sectors starting at sector
    /// number `sector_base`.
    ///
    /// # Errors
    ///
    /// Typed service errors (`BadSectorSize`, ...) or transport
    /// failures.
    fn xts_encrypt(
        &mut self,
        sector_base: u64,
        sector_size: u32,
        data: &[u8],
    ) -> Result<Vec<u8>, ClientError>;

    /// XTS-decrypts; the inverse of [`Transport::xts_encrypt`] under
    /// the same geometry.
    ///
    /// # Errors
    ///
    /// As [`Transport::xts_encrypt`].
    fn xts_decrypt(
        &mut self,
        sector_base: u64,
        sector_size: u32,
        data: &[u8],
    ) -> Result<Vec<u8>, ClientError>;

    /// Fetches the `telemetry/1` JSON snapshot. Cluster implementations
    /// aggregate across nodes.
    ///
    /// # Errors
    ///
    /// Typed service errors or transport failures.
    fn stats(&mut self) -> Result<String, ClientError>;

    /// Sends an engine op without waiting; returns its correlation id.
    ///
    /// # Errors
    ///
    /// Transport failures on the send; server-side failures arrive with
    /// the job at collection time.
    fn pipeline(&mut self, op: Op, iv: Option<&[u8; 16]>, data: &[u8]) -> Result<u32, ClientError>;

    /// Receives the next pipelined completion, blocking until one
    /// arrives.
    ///
    /// # Errors
    ///
    /// See [`Client::collect_next`].
    fn collect_next(&mut self) -> Result<PipelinedJob, ClientError>;

    /// Collects every outstanding pipelined completion.
    ///
    /// # Errors
    ///
    /// See [`Client::collect_all`].
    fn collect_all(&mut self) -> Result<Vec<PipelinedJob>, ClientError>;

    /// Pipelined requests sent and not yet collected.
    fn in_flight(&self) -> usize;
}

impl Transport for Client {
    fn set_key(&mut self, key: &[u8]) -> Result<u32, ClientError> {
        Client::set_key(self, key)
    }

    fn set_key_wrapped(&mut self, wrapped: &[u8]) -> Result<u32, ClientError> {
        Client::set_key_wrapped(self, wrapped)
    }

    fn ping(&mut self, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        Client::ping(self, payload)
    }

    fn ecb_encrypt(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, ClientError> {
        Client::ecb_encrypt(self, plaintext)
    }

    fn ecb_decrypt(&mut self, ciphertext: &[u8]) -> Result<Vec<u8>, ClientError> {
        Client::ecb_decrypt(self, ciphertext)
    }

    fn cbc_encrypt(&mut self, iv: &[u8; 16], plaintext: &[u8]) -> Result<Vec<u8>, ClientError> {
        Client::cbc_encrypt(self, iv, plaintext)
    }

    fn cbc_decrypt(&mut self, iv: &[u8; 16], ciphertext: &[u8]) -> Result<Vec<u8>, ClientError> {
        Client::cbc_decrypt(self, iv, ciphertext)
    }

    fn ctr_apply(&mut self, counter: &[u8; 16], data: &[u8]) -> Result<Vec<u8>, ClientError> {
        Client::ctr_apply(self, counter, data)
    }

    fn cmac_tag(&mut self, message: &[u8]) -> Result<[u8; 16], ClientError> {
        Client::cmac_tag(self, message)
    }

    fn cmac_verify(&mut self, message: &[u8], tag: &[u8; 16]) -> Result<bool, ClientError> {
        Client::cmac_verify(self, message, tag)
    }

    fn seal(
        &mut self,
        nonce: &[u8; 12],
        aad: &[u8],
        plaintext: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        Client::seal(self, nonce, aad, plaintext)
    }

    fn open(
        &mut self,
        nonce: &[u8; 12],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Option<Vec<u8>>, ClientError> {
        Client::open(self, nonce, aad, sealed)
    }

    fn wrap_key(&mut self, key_data: &[u8]) -> Result<Vec<u8>, ClientError> {
        Client::wrap_key(self, key_data)
    }

    fn unwrap_key(&mut self, wrapped: &[u8]) -> Result<Option<Vec<u8>>, ClientError> {
        Client::unwrap_key(self, wrapped)
    }

    fn xts_encrypt(
        &mut self,
        sector_base: u64,
        sector_size: u32,
        data: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        Client::xts_encrypt(self, sector_base, sector_size, data)
    }

    fn xts_decrypt(
        &mut self,
        sector_base: u64,
        sector_size: u32,
        data: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        Client::xts_decrypt(self, sector_base, sector_size, data)
    }

    fn stats(&mut self) -> Result<String, ClientError> {
        Client::stats(self)
    }

    fn pipeline(&mut self, op: Op, iv: Option<&[u8; 16]>, data: &[u8]) -> Result<u32, ClientError> {
        Client::pipeline(self, op, iv, data)
    }

    fn collect_next(&mut self) -> Result<PipelinedJob, ClientError> {
        Client::collect_next(self)
    }

    fn collect_all(&mut self) -> Result<Vec<PipelinedJob>, ClientError> {
        Client::collect_all(self)
    }

    fn in_flight(&self) -> usize {
        Client::in_flight(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Object safety is the trait's load-bearing property: a `dyn`
    // mention fails to compile if any method breaks it.
    #[allow(dead_code)]
    fn assert_object_safe(t: &mut dyn Transport) -> usize {
        t.in_flight()
    }

    #[test]
    fn client_is_usable_through_the_trait_object() {
        let config = crate::ServiceConfig::builder()
            .event_threads(1)
            .build()
            .unwrap();
        let server = crate::Server::new(config).spawn("127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let t: &mut dyn Transport = &mut client;
        t.set_key(&[7u8; 16]).unwrap();
        let ct = t.ecb_encrypt(&[0u8; 16]).unwrap();
        assert_eq!(t.ecb_decrypt(&ct).unwrap(), vec![0u8; 16]);
        assert!(t.stats().unwrap().contains("telemetry/1"));
        assert_eq!(t.in_flight(), 0);
        server.shutdown();
    }
}

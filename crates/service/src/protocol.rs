//! Versioned wire format: length-prefixed binary frames, v1 and v2.
//!
//! Every frame — request or reply — is one length-prefixed record. The
//! version-1 layout (the PR 3 format, still accepted everywhere):
//!
//! ```text
//! offset  size  field
//! 0       4     len      u32 BE; bytes after this field (11 ..= MAX_FRAME_LEN)
//! 4       1     version  1
//! 5       1     kind     request Op, or reply Status (high bit set)
//! 6       1     flags    bit 0 = FLAG_DEFER on engine ops; reserved otherwise
//! 7       4     seq      u32 BE; client-chosen, echoed in the matching replies
//! 11      4     session  u32 BE; 0 before SET_KEY, server-assigned afterwards
//! 15      ...   payload  op-specific body, at most MAX_PAYLOAD bytes
//! ```
//!
//! Version 2 appends a **correlation id** after the session field:
//!
//! ```text
//! offset  size  field
//! 0       4     len      u32 BE; bytes after this field (15 ..= MAX_FRAME_LEN)
//! 4       1     version  2
//! 5       1     kind     as v1
//! 6       1     flags    as v1
//! 7       4     seq      u32 BE; monotone per connection (diagnostics)
//! 11      4     session  u32 BE; as v1
//! 15      4     corr     u32 BE; client-chosen, echoed in the matching reply
//! 19      ...   payload  op-specific body, at most MAX_PAYLOAD bytes
//! ```
//!
//! The correlation id is what makes **pipelining** well-defined: a v2
//! client may have any number of requests in flight on one connection,
//! and the server may answer them in *any order* (engine jobs complete
//! out of order across a farm); each reply names the request it answers
//! through `corr`. On v1 frames there is no `corr` field — the decoder
//! mirrors `seq` into [`Frame::corr`] so both versions correlate
//! uniformly in code — and the server guarantees v1 replies arrive in
//! request order, which is exactly the PR 3 contract a v1 client
//! assumes.
//!
//! Limits are enforced on both sides: a frame longer than
//! [`MAX_FRAME_LEN`] is refused *before* it is buffered, and the server
//! answers protocol violations with typed [`ErrorCode`] replies instead
//! of dropping the connection wherever the stream is still in sync
//! (the two exceptions — an oversized length prefix and a version
//! mismatch — poison the framing itself, so the server sends the typed
//! error and then closes).
//!
//! Incremental reassembly goes through [`RecvBuffer`], a
//! consumed-offset cursor over the connection's receive bytes. The old
//! `parse_buffered` drained the front of a `Vec<u8>` per frame — an
//! O(n²) memmove exactly when a pipelining burst parks many frames in
//! one buffer. `RecvBuffer` advances a cursor instead and compacts
//! amortised-O(1), so parsing `k` buffered frames moves each byte a
//! bounded number of times no matter how large `k` gets.

use std::fmt;
use std::io::{self, Read, Write};

use engine::Mode;

/// The original wire-format version (11-byte header, in-order replies).
pub const PROTOCOL_V1: u8 = 1;

/// The pipelined wire-format version (15-byte header with a correlation
/// id; replies may arrive out of order).
pub const PROTOCOL_V2: u8 = 2;

/// The current wire-format version new clients speak.
pub const PROTOCOL_VERSION: u8 = PROTOCOL_V2;

/// Bytes of v1 header after the length prefix (version, kind, flags,
/// seq, session).
pub const HEADER_LEN: usize = 11;

/// Bytes of v2 header after the length prefix (v1 fields plus the
/// correlation id).
pub const HEADER_LEN_V2: usize = 15;

/// Hard cap on one frame's payload (IV included). Bigger requests must be
/// split; the cap bounds per-connection buffering no matter what a peer
/// sends.
pub const MAX_PAYLOAD: usize = 256 * 1024;

/// Hard cap on the post-prefix frame length (a maximal-payload v2
/// frame; v1 frames top out four bytes below it).
pub const MAX_FRAME_LEN: usize = HEADER_LEN_V2 + MAX_PAYLOAD;

/// Request flag bit 0: enqueue the job into the session engine and reply
/// [`Status::Accepted`] immediately; results are collected by
/// [`Op::Flush`]. Only valid on engine ops (ECB/CBC/CTR).
pub const FLAG_DEFER: u8 = 0x01;

/// Request operation codes (`kind` with the high bit clear).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op {
    /// Load an AES key (16, 24 or 32 bytes — AES-128/192/256): creates a
    /// fresh session bound to the server's engine farm and invalidates
    /// the previous one. Payload: the key (any other length is
    /// [`ErrorCode::BadKeyLength`]). Reply: [`Status::Ok`] with the new
    /// session id in the header's `session` field.
    SetKey = 0x01,
    /// Drain the session engine: one [`Status::Data`] reply per deferred
    /// job (carrying that job's original `seq`/`corr`), then
    /// [`Status::Flushed`] with a `u32` count. Payload: empty.
    Flush = 0x02,
    /// Liveness probe; the payload (bounded like any other) is echoed in
    /// the [`Status::Ok`] reply.
    Ping = 0x03,
    /// Fetch the server's telemetry snapshot. Payload: empty (anything
    /// else is [`ErrorCode::Malformed`]). Reply: [`Status::Ok`] whose
    /// payload is the `telemetry/1` JSON document (UTF-8) — per-opcode
    /// request counts, error tallies, connection gauges, and every
    /// session engine's `engine.*` instruments. Needs no session.
    GetStats = 0x04,
    /// Re-key from an RFC 3394 wrapped blob: the server unwraps the
    /// payload under the **live session's** key (which acts as the KEK)
    /// and replaces the session with one keyed on the recovered bytes —
    /// the raw key never crosses the wire. This is the cluster
    /// key-distribution primitive: the home node wraps the session key
    /// once ([`Op::WrapKey`]) and every other node only ever sees the
    /// wrapped blob. Payload: the wrapped blob. Reply: [`Status::Ok`]
    /// with the new session id in the header, or
    /// [`ErrorCode::TagMismatch`] / [`ErrorCode::BadKeyLength`] /
    /// [`ErrorCode::Malformed`] — all of which leave the KEK session
    /// live.
    SetKeyWrapped = 0x05,
    /// ECB-encrypt whole blocks. Payload: plaintext.
    EcbEncrypt = 0x10,
    /// ECB-decrypt whole blocks. Payload: ciphertext.
    EcbDecrypt = 0x11,
    /// CBC-encrypt whole blocks. Payload: 16-byte IV ‖ plaintext.
    CbcEncrypt = 0x12,
    /// CBC-decrypt whole blocks. Payload: 16-byte IV ‖ ciphertext.
    CbcDecrypt = 0x13,
    /// Apply the CTR keystream (enc = dec). Payload: 16-byte initial
    /// counter block ‖ data, any length.
    CtrApply = 0x14,
    /// Compute the AES-CMAC tag. Payload: message. Reply: 16-byte tag.
    CmacTag = 0x15,
    /// Verify an AES-CMAC tag in constant time. Payload: 16-byte tag ‖
    /// message. Reply: empty [`Status::Ok`], or [`ErrorCode::BadTag`].
    CmacVerify = 0x16,
    /// AES-GCM authenticated encryption. Payload: 12-byte nonce ‖
    /// `aad_len: u32 BE` ‖ AAD ‖ plaintext. Reply: ciphertext ‖ 16-byte
    /// tag.
    Seal = 0x20,
    /// AES-GCM authenticated decryption. Payload: 12-byte nonce ‖
    /// `aad_len: u32 BE` ‖ AAD ‖ ciphertext ‖ 16-byte tag. Reply: the
    /// plaintext, or [`ErrorCode::TagMismatch`] (nothing is released on
    /// failure).
    Open = 0x21,
    /// SP 800-38F / RFC 3394 key wrap under the session key. Payload:
    /// the key data (≥ 16 bytes, a multiple of 8). Reply: the 8-byte-
    /// longer wrapped blob.
    WrapKey = 0x22,
    /// RFC 3394 key unwrap. Payload: the wrapped blob (≥ 24 bytes, a
    /// multiple of 8). Reply: the recovered key data, or
    /// [`ErrorCode::TagMismatch`] when the integrity check fails.
    UnwrapKey = 0x23,
    /// AES-XTS (IEEE 1619) sector encryption under the session key.
    /// Payload: `sector_base: u64 BE` ‖ `sector_size: u32 BE` ‖ body,
    /// where `sector_size` is ≥ 16 and the body is a non-empty whole
    /// number of sectors; sector `i` of the body uses tweak
    /// `sector_base + i` (wrapping). Reply: the ciphertext, same length
    /// (ragged sector sizes use ciphertext stealing). A bad size or a
    /// ragged body is [`ErrorCode::BadSectorSize`].
    XtsEncrypt = 0x30,
    /// AES-XTS sector decryption: inverse of [`Op::XtsEncrypt`], same
    /// payload layout and error contract.
    XtsDecrypt = 0x31,
}

impl Op {
    /// Decodes a request `kind` byte.
    #[must_use]
    pub fn from_u8(kind: u8) -> Option<Op> {
        Some(match kind {
            0x01 => Op::SetKey,
            0x02 => Op::Flush,
            0x03 => Op::Ping,
            0x04 => Op::GetStats,
            0x05 => Op::SetKeyWrapped,
            0x10 => Op::EcbEncrypt,
            0x11 => Op::EcbDecrypt,
            0x12 => Op::CbcEncrypt,
            0x13 => Op::CbcDecrypt,
            0x14 => Op::CtrApply,
            0x15 => Op::CmacTag,
            0x16 => Op::CmacVerify,
            0x20 => Op::Seal,
            0x21 => Op::Open,
            0x22 => Op::WrapKey,
            0x23 => Op::UnwrapKey,
            0x30 => Op::XtsEncrypt,
            0x31 => Op::XtsDecrypt,
            _ => return None,
        })
    }

    /// Stable lowercase name used in telemetry instrument names
    /// (`service.op.<name>.requests`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Op::SetKey => "set_key",
            Op::Flush => "flush",
            Op::Ping => "ping",
            Op::GetStats => "get_stats",
            Op::SetKeyWrapped => "set_key_wrapped",
            Op::EcbEncrypt => "ecb_encrypt",
            Op::EcbDecrypt => "ecb_decrypt",
            Op::CbcEncrypt => "cbc_encrypt",
            Op::CbcDecrypt => "cbc_decrypt",
            Op::CtrApply => "ctr_apply",
            Op::CmacTag => "cmac_tag",
            Op::CmacVerify => "cmac_verify",
            Op::Seal => "seal",
            Op::Open => "open",
            Op::WrapKey => "wrap_key",
            Op::UnwrapKey => "unwrap_key",
            Op::XtsEncrypt => "xts_encrypt",
            Op::XtsDecrypt => "xts_decrypt",
        }
    }

    /// `true` for the ops routed through the engine scheduler (and thus
    /// the only ops that accept [`FLAG_DEFER`]).
    #[must_use]
    pub fn is_engine_op(self) -> bool {
        matches!(
            self,
            Op::EcbEncrypt | Op::EcbDecrypt | Op::CbcEncrypt | Op::CbcDecrypt | Op::CtrApply
        )
    }

    /// `true` when the payload starts with a 16-byte IV / counter block.
    #[must_use]
    pub fn takes_iv(self) -> bool {
        matches!(self, Op::CbcEncrypt | Op::CbcDecrypt | Op::CtrApply)
    }

    /// Maps an engine op (plus its IV, all-zero for the ECB ops) onto the
    /// scheduler's [`Mode`]. `None` for non-engine ops.
    #[must_use]
    pub fn engine_mode(self, iv: [u8; 16]) -> Option<Mode> {
        Some(match self {
            Op::EcbEncrypt => Mode::EcbEncrypt,
            Op::EcbDecrypt => Mode::EcbDecrypt,
            Op::CbcEncrypt => Mode::CbcEncrypt(iv),
            Op::CbcDecrypt => Mode::CbcDecrypt(iv),
            Op::CtrApply => Mode::Ctr(iv),
            _ => return None,
        })
    }
}

/// Reply status codes (`kind` with the high bit set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Status {
    /// The request completed; payload is op-specific.
    Ok = 0x80,
    /// A deferred job entered the session engine's queue; results follow
    /// the next [`Op::Flush`].
    Accepted = 0x81,
    /// One drained deferred job's output; `seq`/`corr` are the
    /// *submission*'s.
    Data = 0x82,
    /// The flush finished; payload is the `u32` BE count of jobs drained.
    Flushed = 0x83,
    /// The request failed; payload is `code: u8` ‖ `detail: u32 BE`
    /// (see [`ErrorCode`]).
    Error = 0xFF,
}

impl Status {
    /// Decodes a reply `kind` byte.
    #[must_use]
    pub fn from_u8(kind: u8) -> Option<Status> {
        Some(match kind {
            0x80 => Status::Ok,
            0x81 => Status::Accepted,
            0x82 => Status::Data,
            0x83 => Status::Flushed,
            0xFF => Status::Error,
            _ => return None,
        })
    }
}

/// Typed failure codes carried in [`Status::Error`] replies. `detail` is
/// a per-code `u32` (a length, a capacity, a limit — documented below).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ErrorCode {
    /// Frame version is neither [`PROTOCOL_V1`] nor [`PROTOCOL_V2`].
    /// Detail: the received version. The connection closes after this
    /// reply.
    BadVersion = 1,
    /// Unknown request op. Detail: the received `kind` byte.
    BadOp = 2,
    /// The payload does not parse for the op (short IV, wrong key
    /// length, missing tag...). Detail: the received payload length.
    Malformed = 3,
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (or the payload
    /// exceeds [`MAX_PAYLOAD`] for the frame's version). Detail: the
    /// declared length. The connection closes after this reply.
    FrameTooLarge = 4,
    /// A crypto op arrived before any `SET_KEY`. Detail: 0.
    NoSession = 5,
    /// The request's `session` field does not name the live session
    /// (stale pipelined request after a re-key). Detail: the live id.
    StaleSession = 6,
    /// The session engine's bounded queue is full — collect or flush
    /// outstanding replies and retry. Detail: the queue capacity.
    Busy = 7,
    /// ECB/CBC payload is not a whole number of 16-byte blocks. Detail:
    /// the offending data length.
    RaggedLength = 8,
    /// CMAC verification failed. Detail: 0.
    BadTag = 9,
    /// A backend fault while running the job. Detail: 0.
    JobFailed = 10,
    /// No complete request arrived within the idle budget; the
    /// connection closes after this reply. Detail: the timeout in ms,
    /// saturating at `u32::MAX` for longer budgets.
    IdleTimeout = 11,
    /// The server is draining for shutdown; in-flight pipelined and
    /// deferred jobs were answered before this goodbye. Detail: 0.
    ShuttingDown = 12,
    /// [`FLAG_DEFER`] on an op that cannot be deferred. Detail: the op
    /// byte.
    DeferUnsupported = 13,
    /// Connection admission refused: the server is at its connection
    /// cap. Detail: the cap.
    TooManyConnections = 14,
    /// GCM or key-unwrap authentication failed; nothing was released.
    /// Detail: 0.
    TagMismatch = 15,
    /// `SET_KEY` payload is not a valid AES key length (16, 24 or 32
    /// bytes). Detail: the received length.
    BadKeyLength = 16,
    /// An XTS op's sector size is under one block, or its body is not a
    /// non-empty whole number of sectors. Detail: the offending value
    /// (the sector size, or the body length when the body is ragged).
    BadSectorSize = 17,
}

impl ErrorCode {
    /// Decodes an error code byte.
    #[must_use]
    pub fn from_u8(code: u8) -> Option<ErrorCode> {
        Some(match code {
            1 => ErrorCode::BadVersion,
            2 => ErrorCode::BadOp,
            3 => ErrorCode::Malformed,
            4 => ErrorCode::FrameTooLarge,
            5 => ErrorCode::NoSession,
            6 => ErrorCode::StaleSession,
            7 => ErrorCode::Busy,
            8 => ErrorCode::RaggedLength,
            9 => ErrorCode::BadTag,
            10 => ErrorCode::JobFailed,
            11 => ErrorCode::IdleTimeout,
            12 => ErrorCode::ShuttingDown,
            13 => ErrorCode::DeferUnsupported,
            14 => ErrorCode::TooManyConnections,
            15 => ErrorCode::TagMismatch,
            16 => ErrorCode::BadKeyLength,
            17 => ErrorCode::BadSectorSize,
            _ => return None,
        })
    }

    /// Stable lowercase name used in telemetry instrument names
    /// (`service.error.<name>`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadVersion => "bad_version",
            ErrorCode::BadOp => "bad_op",
            ErrorCode::Malformed => "malformed",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::NoSession => "no_session",
            ErrorCode::StaleSession => "stale_session",
            ErrorCode::Busy => "busy",
            ErrorCode::RaggedLength => "ragged_length",
            ErrorCode::BadTag => "bad_tag",
            ErrorCode::JobFailed => "job_failed",
            ErrorCode::IdleTimeout => "idle_timeout",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::DeferUnsupported => "defer_unsupported",
            ErrorCode::TooManyConnections => "too_many_connections",
            ErrorCode::TagMismatch => "tag_mismatch",
            ErrorCode::BadKeyLength => "bad_key_length",
            ErrorCode::BadSectorSize => "bad_sector_size",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::BadVersion => "unsupported protocol version",
            ErrorCode::BadOp => "unknown operation",
            ErrorCode::Malformed => "malformed payload",
            ErrorCode::FrameTooLarge => "frame exceeds the size limit",
            ErrorCode::NoSession => "no session: SET_KEY first",
            ErrorCode::StaleSession => "stale session id",
            ErrorCode::Busy => "engine queue full: collect replies and retry",
            ErrorCode::RaggedLength => "payload is not whole 16-byte blocks",
            ErrorCode::BadTag => "CMAC verification failed",
            ErrorCode::JobFailed => "backend fault while running the job",
            ErrorCode::IdleTimeout => "connection idle too long",
            ErrorCode::ShuttingDown => "server shutting down",
            ErrorCode::DeferUnsupported => "operation cannot be deferred",
            ErrorCode::TooManyConnections => "server connection cap reached",
            ErrorCode::TagMismatch => "authentication tag mismatch",
            ErrorCode::BadKeyLength => "key must be 16, 24 or 32 bytes",
            ErrorCode::BadSectorSize => "sector size under 16 or body not whole sectors",
        };
        f.write_str(s)
    }
}

/// One decoded frame (either direction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Wire version ([`PROTOCOL_V1`] or [`PROTOCOL_V2`] on everything
    /// this crate builds; preserved verbatim on receive so version
    /// errors can echo it).
    pub version: u8,
    /// Raw `kind` byte: an [`Op`] on requests, a [`Status`] on replies.
    pub kind: u8,
    /// Request flags ([`FLAG_DEFER`]); reserved (0) on replies.
    pub flags: u8,
    /// Request sequence number, echoed in the matching replies.
    pub seq: u32,
    /// Session id (0 = none yet).
    pub session: u32,
    /// Correlation id: the pipelining handle that ties a reply to its
    /// request. Serialized only on v2 frames; on v1 frames the decoder
    /// mirrors `seq` here so both versions correlate uniformly.
    pub corr: u32,
    /// Op-/status-specific body.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a v2 request frame with `corr` mirroring `seq` (override
    /// with [`Frame::with_corr`] for pipelined traffic).
    #[must_use]
    pub fn request(op: Op, flags: u8, seq: u32, session: u32, payload: Vec<u8>) -> Frame {
        Frame {
            version: PROTOCOL_V2,
            kind: op as u8,
            flags,
            seq,
            session,
            corr: seq,
            payload,
        }
    }

    /// Builds a v1 request frame (11-byte header, correlated by `seq`).
    #[must_use]
    pub fn request_v1(op: Op, flags: u8, seq: u32, session: u32, payload: Vec<u8>) -> Frame {
        Frame {
            version: PROTOCOL_V1,
            ..Frame::request(op, flags, seq, session, payload)
        }
    }

    /// Overrides the correlation id (builder-style).
    #[must_use]
    pub fn with_corr(mut self, corr: u32) -> Frame {
        self.corr = corr;
        self
    }

    /// Overrides the version byte (builder-style; protocol tests).
    #[must_use]
    pub fn with_version(mut self, version: u8) -> Frame {
        self.version = version;
        self
    }

    /// Builds a v2 reply frame with `corr` mirroring `seq`.
    #[must_use]
    pub fn reply(status: Status, seq: u32, session: u32, payload: Vec<u8>) -> Frame {
        Frame {
            version: PROTOCOL_V2,
            kind: status as u8,
            flags: 0,
            seq,
            session,
            corr: seq,
            payload,
        }
    }

    /// Builds the reply to `request`: the version (normalised to the
    /// nearest layout this side emits — v2 for any version ≥ 2), `seq`,
    /// `corr` and `session` all echo the request.
    #[must_use]
    pub fn reply_to(request: &Frame, status: Status, payload: Vec<u8>) -> Frame {
        Frame {
            version: if request.version >= PROTOCOL_V2 {
                PROTOCOL_V2
            } else {
                PROTOCOL_V1
            },
            kind: status as u8,
            flags: 0,
            seq: request.seq,
            session: request.session,
            corr: request.corr,
            payload,
        }
    }

    /// Builds a typed v2 error reply.
    #[must_use]
    pub fn error(code: ErrorCode, detail: u32, seq: u32, session: u32) -> Frame {
        Frame::reply(Status::Error, seq, session, error_payload(code, detail))
    }

    /// Builds the typed error reply to `request` (version, `seq`,
    /// `corr` and `session` echo the request).
    #[must_use]
    pub fn error_to(request: &Frame, code: ErrorCode, detail: u32) -> Frame {
        Frame::reply_to(request, Status::Error, error_payload(code, detail))
    }

    /// The request op, when `kind` encodes one.
    #[must_use]
    pub fn op(&self) -> Option<Op> {
        Op::from_u8(self.kind)
    }

    /// The reply status, when `kind` encodes one.
    #[must_use]
    pub fn status(&self) -> Option<Status> {
        Status::from_u8(self.kind)
    }

    /// Decodes the `(code, detail)` body of a [`Status::Error`] reply.
    #[must_use]
    pub fn error_body(&self) -> Option<(ErrorCode, u32)> {
        if self.status() != Some(Status::Error) || self.payload.len() < 5 {
            return None;
        }
        let code = ErrorCode::from_u8(self.payload[0])?;
        let detail = u32::from_be_bytes(self.payload[1..5].try_into().ok()?);
        Some((code, detail))
    }

    /// The post-prefix header length for this frame's version.
    #[must_use]
    pub fn header_len(&self) -> usize {
        if self.version >= PROTOCOL_V2 {
            HEADER_LEN_V2
        } else {
            HEADER_LEN
        }
    }

    /// Serialises the frame (length prefix included) in its version's
    /// layout: v1 frames omit the correlation id.
    ///
    /// # Errors
    ///
    /// I/O errors from `w`; [`io::ErrorKind::InvalidInput`] when the
    /// payload exceeds [`MAX_PAYLOAD`] (the frame is not sent).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        if self.payload.len() > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("payload of {} exceeds MAX_PAYLOAD", self.payload.len()),
            ));
        }
        let header = self.header_len();
        let len = (header + self.payload.len()) as u32;
        let mut buf = Vec::with_capacity(4 + header + self.payload.len());
        buf.extend_from_slice(&len.to_be_bytes());
        buf.push(self.version);
        buf.push(self.kind);
        buf.push(self.flags);
        buf.extend_from_slice(&self.seq.to_be_bytes());
        buf.extend_from_slice(&self.session.to_be_bytes());
        if self.version >= PROTOCOL_V2 {
            buf.extend_from_slice(&self.corr.to_be_bytes());
        }
        buf.extend_from_slice(&self.payload);
        w.write_all(&buf)
    }

    /// Decodes one complete post-prefix frame body (length prefix
    /// already stripped and validated against the global bounds).
    fn decode_body(body: &[u8]) -> Result<Frame, RecvError> {
        let version = body[0];
        let header = if version >= PROTOCOL_V2 {
            HEADER_LEN_V2
        } else {
            HEADER_LEN
        };
        if body.len() < header {
            return Err(RecvError::TooShort {
                len: body.len() as u32,
            });
        }
        if body.len() - header > MAX_PAYLOAD {
            return Err(RecvError::TooLarge {
                len: body.len() as u32,
            });
        }
        let seq = u32::from_be_bytes(body[3..7].try_into().expect("4-byte slice"));
        let corr = if version >= PROTOCOL_V2 {
            u32::from_be_bytes(body[11..15].try_into().expect("4-byte slice"))
        } else {
            seq
        };
        Ok(Frame {
            version,
            kind: body[1],
            flags: body[2],
            seq,
            session: u32::from_be_bytes(body[7..11].try_into().expect("4-byte slice")),
            corr,
            payload: body[header..].to_vec(),
        })
    }

    /// Reads one frame, enforcing [`MAX_FRAME_LEN`] before buffering the
    /// body. Accepts both wire versions.
    ///
    /// # Errors
    ///
    /// [`RecvError::Io`] on transport errors (including a clean EOF
    /// before the length prefix, surfaced as `UnexpectedEof`);
    /// [`RecvError::TooLarge`] / [`RecvError::TooShort`] on a length
    /// prefix outside the valid range — the stream can no longer be
    /// trusted to be in sync, so the caller should close after its typed
    /// goodbye.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Frame, RecvError> {
        let mut len_buf = [0u8; 4];
        r.read_exact(&mut len_buf)?;
        let len = u32::from_be_bytes(len_buf);
        if (len as usize) < HEADER_LEN {
            return Err(RecvError::TooShort { len });
        }
        if (len as usize) > MAX_FRAME_LEN {
            return Err(RecvError::TooLarge { len });
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?;
        Frame::decode_body(&body)
    }
}

fn error_payload(code: ErrorCode, detail: u32) -> Vec<u8> {
    let mut payload = Vec::with_capacity(5);
    payload.push(code as u8);
    payload.extend_from_slice(&detail.to_be_bytes());
    payload
}

/// Incremental frame reassembly for non-blocking readers: a
/// consumed-offset cursor over the connection's receive bytes.
///
/// Append raw socket bytes with [`RecvBuffer::extend_from_slice`], then
/// pull complete frames with [`RecvBuffer::next_frame`] until it parks
/// (`Ok(None)`). Consumed bytes advance a cursor instead of draining the
/// vector's front, so a pipelining burst that parks thousands of frames
/// in one buffer parses in O(total bytes) — the old per-frame
/// `Vec::drain` cost O(frames × buffered bytes) in memmoves, which is
/// quadratic exactly when clients pipeline. The buffer compacts only
/// when the dead prefix dominates the live bytes, keeping the memmove
/// amortised O(1) per byte ([`RecvBuffer::compacted_bytes`] counts the
/// bytes actually moved so tests can pin the bound).
#[derive(Debug, Default)]
pub struct RecvBuffer {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by parsed frames.
    start: usize,
    /// Total bytes ever memmoved by compaction (regression metric).
    compacted: u64,
}

/// Compact only once the dead prefix is at least this large *and* at
/// least as large as the live remainder — both conditions together make
/// the copy cost amortised O(1) per received byte.
const COMPACT_THRESHOLD: usize = 4096;

impl RecvBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> RecvBuffer {
        RecvBuffer::default()
    }

    /// Appends raw bytes from the transport.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        if self.start == self.buf.len() {
            // Everything already parsed: reset for free.
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_THRESHOLD && self.start * 2 >= self.buf.len() {
            self.compact();
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// `true` when no unconsumed bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes memmoved by compaction since construction — the
    /// regression metric proving parsing is not quadratic: it stays 0
    /// for any burst parsed from one contiguous buffer, and is bounded
    /// by a small multiple of the bytes received otherwise.
    #[must_use]
    pub fn compacted_bytes(&self) -> u64 {
        self.compacted
    }

    fn compact(&mut self) {
        let live = self.buf.len() - self.start;
        self.buf.copy_within(self.start.., 0);
        self.buf.truncate(live);
        self.compacted += live as u64;
        self.start = 0;
    }

    /// Parses one complete frame off the cursor, or returns `Ok(None)`
    /// when more bytes are needed. The length prefix is validated as
    /// soon as it is visible, so an oversized frame is refused before
    /// its body accumulates.
    ///
    /// # Errors
    ///
    /// [`RecvError::TooLarge`] / [`RecvError::TooShort`] on a length
    /// prefix outside the valid range; the buffer is left untouched so
    /// the caller can report and close.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, RecvError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(avail[..4].try_into().expect("4-byte slice"));
        if (len as usize) < HEADER_LEN {
            return Err(RecvError::TooShort { len });
        }
        if (len as usize) > MAX_FRAME_LEN {
            return Err(RecvError::TooLarge { len });
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let frame = Frame::decode_body(&avail[4..total])?;
        self.start += total;
        Ok(Some(frame))
    }
}

/// Failure while receiving a frame.
#[derive(Debug)]
pub enum RecvError {
    /// Transport error (EOF mid-frame is `UnexpectedEof`).
    Io(io::Error),
    /// Length prefix under [`HEADER_LEN`] (or under the header length
    /// the frame's version requires): framing is corrupt.
    TooShort {
        /// The declared post-prefix length.
        len: u32,
    },
    /// Length prefix over [`MAX_FRAME_LEN`] (or payload over
    /// [`MAX_PAYLOAD`]): refused before buffering.
    TooLarge {
        /// The declared post-prefix length.
        len: u32,
    },
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "frame transport error: {e}"),
            RecvError::TooShort { len } => {
                write!(f, "frame length {len} under the version's header length")
            }
            RecvError::TooLarge { len } => {
                write!(f, "frame length {len} over the {MAX_FRAME_LEN} limit")
            }
        }
    }
}

impl std::error::Error for RecvError {}

impl From<io::Error> for RecvError {
    fn from(e: io::Error) -> Self {
        RecvError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v2_frame_roundtrips_through_the_wire_format() {
        let frame = Frame::request(Op::CbcEncrypt, FLAG_DEFER, 7, 0xDEAD_BEEF, vec![9u8; 48])
            .with_corr(0x1234_5678);
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        assert_eq!(wire.len(), 4 + HEADER_LEN_V2 + 48);
        let back = Frame::read_from(&mut wire.as_slice()).unwrap();
        assert_eq!(back, frame);
        assert_eq!(back.corr, 0x1234_5678);
        assert_eq!(back.op(), Some(Op::CbcEncrypt));
        assert_eq!(back.status(), None);
    }

    #[test]
    fn v1_frame_roundtrips_and_mirrors_seq_into_corr() {
        let frame = Frame::request_v1(Op::Ping, 0, 42, 3, vec![1, 2]);
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        // v1 keeps the 11-byte header: no correlation id on the wire.
        assert_eq!(wire.len(), 4 + HEADER_LEN + 2);
        let back = Frame::read_from(&mut wire.as_slice()).unwrap();
        assert_eq!(back.version, PROTOCOL_V1);
        assert_eq!(back.seq, 42);
        assert_eq!(back.corr, 42, "v1 correlates by seq");
        assert_eq!(back.payload, vec![1, 2]);
    }

    #[test]
    fn replies_echo_version_seq_corr_and_session() {
        let v2 = Frame::request(Op::Ping, 0, 5, 9, Vec::new()).with_corr(77);
        let reply = Frame::reply_to(&v2, Status::Ok, vec![1]);
        assert_eq!(
            (reply.version, reply.seq, reply.corr, reply.session),
            (PROTOCOL_V2, 5, 77, 9)
        );
        let v1 = Frame::request_v1(Op::Ping, 0, 5, 9, Vec::new());
        let reply = Frame::error_to(&v1, ErrorCode::Busy, 32);
        assert_eq!(reply.version, PROTOCOL_V1);
        assert_eq!(reply.error_body(), Some((ErrorCode::Busy, 32)));
        // Unknown future versions (parsed with the v2 layout) get v2
        // replies — the newest layout this side knows how to emit.
        let odd = Frame::request(Op::Ping, 0, 1, 0, Vec::new()).with_version(9);
        assert_eq!(
            Frame::reply_to(&odd, Status::Ok, Vec::new()).version,
            PROTOCOL_V2
        );
    }

    #[test]
    fn error_reply_roundtrips_code_and_detail() {
        let frame = Frame::error(ErrorCode::Busy, 32, 3, 1);
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        let back = Frame::read_from(&mut wire.as_slice()).unwrap();
        assert_eq!(back.status(), Some(Status::Error));
        assert_eq!(back.error_body(), Some((ErrorCode::Busy, 32)));
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_buffering() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        wire.extend_from_slice(&[0u8; 64]);
        match Frame::read_from(&mut wire.as_slice()) {
            Err(RecvError::TooLarge { len }) => assert_eq!(len as usize, MAX_FRAME_LEN + 1),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn undersized_length_prefix_is_refused() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(HEADER_LEN as u32 - 1).to_be_bytes());
        wire.extend_from_slice(&[0u8; HEADER_LEN]);
        assert!(matches!(
            Frame::read_from(&mut wire.as_slice()),
            Err(RecvError::TooShort { .. })
        ));
    }

    #[test]
    fn v2_frame_shorter_than_its_header_is_too_short() {
        // len = 12 is valid for v1 but the version byte says v2, whose
        // header needs 15 bytes.
        let mut wire = Vec::new();
        wire.extend_from_slice(&12u32.to_be_bytes());
        wire.push(PROTOCOL_V2);
        wire.extend_from_slice(&[0u8; 11]);
        assert!(matches!(
            Frame::read_from(&mut wire.as_slice()),
            Err(RecvError::TooShort { len: 12 })
        ));
    }

    #[test]
    fn v1_frame_cannot_smuggle_an_oversized_payload() {
        // A v1 frame whose length implies payload > MAX_PAYLOAD (legal
        // under the global MAX_FRAME_LEN, which is v2-sized) is refused.
        let len = (HEADER_LEN + MAX_PAYLOAD + 2) as u32;
        assert!(len as usize <= MAX_FRAME_LEN);
        let mut wire = Vec::new();
        wire.extend_from_slice(&len.to_be_bytes());
        wire.push(PROTOCOL_V1);
        wire.extend_from_slice(&vec![0u8; len as usize - 1]);
        assert!(matches!(
            Frame::read_from(&mut wire.as_slice()),
            Err(RecvError::TooLarge { .. })
        ));
    }

    #[test]
    fn oversized_payload_is_refused_at_send() {
        let frame = Frame::request(Op::Ping, 0, 0, 0, vec![0u8; MAX_PAYLOAD + 1]);
        let err = frame.write_to(&mut Vec::new()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let frame = Frame::request(Op::Ping, 0, 1, 0, vec![1, 2, 3]);
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        wire.truncate(wire.len() - 2);
        assert!(matches!(
            Frame::read_from(&mut wire.as_slice()),
            Err(RecvError::Io(_))
        ));
    }

    #[test]
    fn recv_buffer_handles_trickled_and_back_to_back_frames() {
        let a = Frame::request(Op::Ping, 0, 1, 0, vec![0xAA; 5]);
        let b = Frame::request_v1(Op::Flush, 0, 2, 9, Vec::new());
        let mut wire = Vec::new();
        a.write_to(&mut wire).unwrap();
        b.write_to(&mut wire).unwrap();

        let mut buf = RecvBuffer::new();
        let mut parsed = Vec::new();
        // Feed one byte at a time: partial frames must park, never error.
        for byte in wire {
            buf.extend_from_slice(&[byte]);
            while let Some(frame) = buf.next_frame().unwrap() {
                parsed.push(frame);
            }
        }
        assert_eq!(parsed, vec![a, b]);
        assert!(buf.is_empty());

        // An oversized prefix is refused from the first four bytes on.
        let mut poisoned = RecvBuffer::new();
        poisoned.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        assert!(matches!(
            poisoned.next_frame(),
            Err(RecvError::TooLarge { .. })
        ));
        // The buffer is untouched: the caller can still report length.
        assert_eq!(poisoned.len(), 4);
    }

    #[test]
    fn thousands_of_buffered_frames_parse_without_quadratic_memmove() {
        // The pipelined-burst regression: many complete frames sitting
        // in one receive buffer. The old drain-per-frame parser moved
        // the whole remaining buffer once per frame (O(n²) memmove);
        // the cursor moves nothing for a contiguous burst.
        const FRAMES: usize = 5000;
        let mut wire = Vec::new();
        for i in 0..FRAMES {
            Frame::request(Op::Ping, 0, i as u32, 0, vec![i as u8; 32])
                .with_corr(!(i as u32))
                .write_to(&mut wire)
                .unwrap();
        }
        let mut buf = RecvBuffer::new();
        buf.extend_from_slice(&wire);
        let mut n = 0usize;
        while let Some(frame) = buf.next_frame().unwrap() {
            assert_eq!(frame.seq, n as u32);
            assert_eq!(frame.corr, !(n as u32));
            assert_eq!(frame.payload, vec![n as u8; 32]);
            n += 1;
        }
        assert_eq!(n, FRAMES);
        assert!(buf.is_empty());
        assert_eq!(
            buf.compacted_bytes(),
            0,
            "a contiguous burst must parse with zero memmove"
        );

        // Chunked arrival (a torn frame on every boundary) stays linear:
        // the bytes compaction moves are bounded by the bytes received.
        let mut buf = RecvBuffer::new();
        let mut n = 0usize;
        for chunk in wire.chunks(8192) {
            buf.extend_from_slice(chunk);
            while let Some(_frame) = buf.next_frame().unwrap() {
                n += 1;
            }
        }
        assert_eq!(n, FRAMES);
        assert!(
            buf.compacted_bytes() <= wire.len() as u64,
            "compaction moved {} bytes for a {}-byte stream",
            buf.compacted_bytes(),
            wire.len()
        );
    }

    #[test]
    fn every_op_code_roundtrips() {
        for op in [
            Op::SetKey,
            Op::Flush,
            Op::Ping,
            Op::GetStats,
            Op::SetKeyWrapped,
            Op::EcbEncrypt,
            Op::EcbDecrypt,
            Op::CbcEncrypt,
            Op::CbcDecrypt,
            Op::CtrApply,
            Op::CmacTag,
            Op::CmacVerify,
            Op::Seal,
            Op::Open,
            Op::WrapKey,
            Op::UnwrapKey,
            Op::XtsEncrypt,
            Op::XtsDecrypt,
        ] {
            assert_eq!(Op::from_u8(op as u8), Some(op));
            assert!(op
                .name()
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b == b'_'));
        }
        assert_eq!(Op::from_u8(0x7E), None);
    }

    #[test]
    fn every_status_and_error_code_roundtrips() {
        for st in [
            Status::Ok,
            Status::Accepted,
            Status::Data,
            Status::Flushed,
            Status::Error,
        ] {
            assert_eq!(Status::from_u8(st as u8), Some(st));
        }
        assert_eq!(Status::from_u8(0x90), None);
        for code in 1..=17u8 {
            let decoded = ErrorCode::from_u8(code).expect("codes 1..=17 are assigned");
            assert_eq!(decoded as u8, code);
            assert!(!decoded.to_string().is_empty());
            assert!(!decoded.name().is_empty());
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(18), None);
    }

    #[test]
    fn engine_mode_mapping_covers_exactly_the_engine_ops() {
        let iv = [7u8; 16];
        assert_eq!(Op::EcbEncrypt.engine_mode(iv), Some(Mode::EcbEncrypt));
        assert_eq!(Op::EcbDecrypt.engine_mode(iv), Some(Mode::EcbDecrypt));
        assert_eq!(Op::CbcEncrypt.engine_mode(iv), Some(Mode::CbcEncrypt(iv)));
        assert_eq!(Op::CbcDecrypt.engine_mode(iv), Some(Mode::CbcDecrypt(iv)));
        assert_eq!(Op::CtrApply.engine_mode(iv), Some(Mode::Ctr(iv)));
        for op in [
            Op::SetKey,
            Op::Flush,
            Op::Ping,
            Op::GetStats,
            Op::SetKeyWrapped,
            Op::CmacTag,
            Op::CmacVerify,
            Op::Seal,
            Op::Open,
            Op::WrapKey,
            Op::UnwrapKey,
            Op::XtsEncrypt,
            Op::XtsDecrypt,
        ] {
            assert!(!op.is_engine_op());
            assert_eq!(op.engine_mode(iv), None);
        }
        assert!(Op::CtrApply.takes_iv() && !Op::EcbEncrypt.takes_iv());
    }
}

//! Version-1 wire format: length-prefixed binary frames.
//!
//! Every frame — request or reply — is one length-prefixed record:
//!
//! ```text
//! offset  size  field
//! 0       4     len      u32 BE; bytes after this field (11 ..= MAX_FRAME_LEN)
//! 4       1     version  PROTOCOL_VERSION (1)
//! 5       1     kind     request Op, or reply Status (high bit set)
//! 6       1     flags    bit 0 = FLAG_DEFER on engine ops; reserved otherwise
//! 7       4     seq      u32 BE; client-chosen, echoed in the matching replies
//! 11      4     session  u32 BE; 0 before SET_KEY, server-assigned afterwards
//! 15      ...   payload  op-specific body, at most MAX_PAYLOAD bytes
//! ```
//!
//! Limits are enforced on both sides: a frame longer than
//! [`MAX_FRAME_LEN`] is refused *before* it is buffered, and the server
//! answers protocol violations with typed [`ErrorCode`] replies instead
//! of dropping the connection wherever the stream is still in sync
//! (the two exceptions — an oversized length prefix and a version
//! mismatch — poison the framing itself, so the server sends the typed
//! error and then closes).

use std::fmt;
use std::io::{self, Read, Write};

use engine::Mode;

/// Wire-format version carried in every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Bytes of header after the length prefix (version, kind, flags, seq,
/// session).
pub const HEADER_LEN: usize = 11;

/// Hard cap on one frame's payload (IV included). Bigger requests must be
/// split; the cap bounds per-connection buffering no matter what a peer
/// sends.
pub const MAX_PAYLOAD: usize = 256 * 1024;

/// Hard cap on the post-prefix frame length.
pub const MAX_FRAME_LEN: usize = HEADER_LEN + MAX_PAYLOAD;

/// Request flag bit 0: enqueue the job into the session engine and reply
/// [`Status::Accepted`] immediately; results are collected by
/// [`Op::Flush`]. Only valid on engine ops (ECB/CBC/CTR).
pub const FLAG_DEFER: u8 = 0x01;

/// Request operation codes (`kind` with the high bit clear).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op {
    /// Load a 16-byte AES-128 key: creates a fresh session bound to the
    /// server's engine farm and invalidates the previous one. Payload:
    /// the key. Reply: [`Status::Ok`] with the new session id in the
    /// header's `session` field.
    SetKey = 0x01,
    /// Drain the session engine: one [`Status::Data`] reply per deferred
    /// job (carrying that job's original `seq`), then [`Status::Flushed`]
    /// with a `u32` count. Payload: empty.
    Flush = 0x02,
    /// Liveness probe; the payload (bounded like any other) is echoed in
    /// the [`Status::Ok`] reply.
    Ping = 0x03,
    /// Fetch the server's telemetry snapshot. Payload: empty (anything
    /// else is [`ErrorCode::Malformed`]). Reply: [`Status::Ok`] whose
    /// payload is the `telemetry/1` JSON document (UTF-8) — per-opcode
    /// request counts, error tallies, connection gauges, and every
    /// session engine's `engine.*` instruments. Needs no session.
    GetStats = 0x04,
    /// ECB-encrypt whole blocks. Payload: plaintext.
    EcbEncrypt = 0x10,
    /// ECB-decrypt whole blocks. Payload: ciphertext.
    EcbDecrypt = 0x11,
    /// CBC-encrypt whole blocks. Payload: 16-byte IV ‖ plaintext.
    CbcEncrypt = 0x12,
    /// CBC-decrypt whole blocks. Payload: 16-byte IV ‖ ciphertext.
    CbcDecrypt = 0x13,
    /// Apply the CTR keystream (enc = dec). Payload: 16-byte initial
    /// counter block ‖ data, any length.
    CtrApply = 0x14,
    /// Compute the AES-CMAC tag. Payload: message. Reply: 16-byte tag.
    CmacTag = 0x15,
    /// Verify an AES-CMAC tag in constant time. Payload: 16-byte tag ‖
    /// message. Reply: empty [`Status::Ok`], or [`ErrorCode::BadTag`].
    CmacVerify = 0x16,
}

impl Op {
    /// Decodes a request `kind` byte.
    #[must_use]
    pub fn from_u8(kind: u8) -> Option<Op> {
        Some(match kind {
            0x01 => Op::SetKey,
            0x02 => Op::Flush,
            0x03 => Op::Ping,
            0x04 => Op::GetStats,
            0x10 => Op::EcbEncrypt,
            0x11 => Op::EcbDecrypt,
            0x12 => Op::CbcEncrypt,
            0x13 => Op::CbcDecrypt,
            0x14 => Op::CtrApply,
            0x15 => Op::CmacTag,
            0x16 => Op::CmacVerify,
            _ => return None,
        })
    }

    /// Stable lowercase name used in telemetry instrument names
    /// (`service.op.<name>.requests`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Op::SetKey => "set_key",
            Op::Flush => "flush",
            Op::Ping => "ping",
            Op::GetStats => "get_stats",
            Op::EcbEncrypt => "ecb_encrypt",
            Op::EcbDecrypt => "ecb_decrypt",
            Op::CbcEncrypt => "cbc_encrypt",
            Op::CbcDecrypt => "cbc_decrypt",
            Op::CtrApply => "ctr_apply",
            Op::CmacTag => "cmac_tag",
            Op::CmacVerify => "cmac_verify",
        }
    }

    /// `true` for the ops routed through the engine scheduler (and thus
    /// the only ops that accept [`FLAG_DEFER`]).
    #[must_use]
    pub fn is_engine_op(self) -> bool {
        matches!(
            self,
            Op::EcbEncrypt | Op::EcbDecrypt | Op::CbcEncrypt | Op::CbcDecrypt | Op::CtrApply
        )
    }

    /// `true` when the payload starts with a 16-byte IV / counter block.
    #[must_use]
    pub fn takes_iv(self) -> bool {
        matches!(self, Op::CbcEncrypt | Op::CbcDecrypt | Op::CtrApply)
    }

    /// Maps an engine op (plus its IV, all-zero for the ECB ops) onto the
    /// scheduler's [`Mode`]. `None` for non-engine ops.
    #[must_use]
    pub fn engine_mode(self, iv: [u8; 16]) -> Option<Mode> {
        Some(match self {
            Op::EcbEncrypt => Mode::EcbEncrypt,
            Op::EcbDecrypt => Mode::EcbDecrypt,
            Op::CbcEncrypt => Mode::CbcEncrypt(iv),
            Op::CbcDecrypt => Mode::CbcDecrypt(iv),
            Op::CtrApply => Mode::Ctr(iv),
            _ => return None,
        })
    }
}

/// Reply status codes (`kind` with the high bit set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Status {
    /// The request completed; payload is op-specific.
    Ok = 0x80,
    /// A deferred job entered the session engine's queue; results follow
    /// the next [`Op::Flush`].
    Accepted = 0x81,
    /// One drained deferred job's output; `seq` is the *submission*'s
    /// sequence number.
    Data = 0x82,
    /// The flush finished; payload is the `u32` BE count of jobs drained.
    Flushed = 0x83,
    /// The request failed; payload is `code: u8` ‖ `detail: u32 BE`
    /// (see [`ErrorCode`]).
    Error = 0xFF,
}

impl Status {
    /// Decodes a reply `kind` byte.
    #[must_use]
    pub fn from_u8(kind: u8) -> Option<Status> {
        Some(match kind {
            0x80 => Status::Ok,
            0x81 => Status::Accepted,
            0x82 => Status::Data,
            0x83 => Status::Flushed,
            0xFF => Status::Error,
            _ => return None,
        })
    }
}

/// Typed failure codes carried in [`Status::Error`] replies. `detail` is
/// a per-code `u32` (a length, a capacity, a limit — documented below).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ErrorCode {
    /// Frame version ≠ [`PROTOCOL_VERSION`]. Detail: the received
    /// version. The connection closes after this reply.
    BadVersion = 1,
    /// Unknown request op. Detail: the received `kind` byte.
    BadOp = 2,
    /// The payload does not parse for the op (short IV, wrong key
    /// length, missing tag...). Detail: the received payload length.
    Malformed = 3,
    /// The length prefix exceeds [`MAX_FRAME_LEN`]. Detail: the declared
    /// length. The connection closes after this reply.
    FrameTooLarge = 4,
    /// A crypto op arrived before any `SET_KEY`. Detail: 0.
    NoSession = 5,
    /// The request's `session` field does not name the live session
    /// (stale pipelined request after a re-key). Detail: the live id.
    StaleSession = 6,
    /// The session engine's bounded queue is full — flush and retry.
    /// Detail: the queue capacity.
    Busy = 7,
    /// ECB/CBC payload is not a whole number of 16-byte blocks. Detail:
    /// the offending data length.
    RaggedLength = 8,
    /// CMAC verification failed. Detail: 0.
    BadTag = 9,
    /// A backend fault while running the job. Detail: 0.
    JobFailed = 10,
    /// No complete request arrived within the idle budget; the
    /// connection closes after this reply. Detail: the timeout in ms.
    IdleTimeout = 11,
    /// The server is draining for shutdown; in-flight deferred jobs were
    /// flushed before this goodbye. Detail: 0.
    ShuttingDown = 12,
    /// [`FLAG_DEFER`] on an op that cannot be deferred. Detail: the op
    /// byte.
    DeferUnsupported = 13,
    /// Connection admission refused: the server is at its connection
    /// cap. Detail: the cap.
    TooManyConnections = 14,
}

impl ErrorCode {
    /// Decodes an error code byte.
    #[must_use]
    pub fn from_u8(code: u8) -> Option<ErrorCode> {
        Some(match code {
            1 => ErrorCode::BadVersion,
            2 => ErrorCode::BadOp,
            3 => ErrorCode::Malformed,
            4 => ErrorCode::FrameTooLarge,
            5 => ErrorCode::NoSession,
            6 => ErrorCode::StaleSession,
            7 => ErrorCode::Busy,
            8 => ErrorCode::RaggedLength,
            9 => ErrorCode::BadTag,
            10 => ErrorCode::JobFailed,
            11 => ErrorCode::IdleTimeout,
            12 => ErrorCode::ShuttingDown,
            13 => ErrorCode::DeferUnsupported,
            14 => ErrorCode::TooManyConnections,
            _ => return None,
        })
    }

    /// Stable lowercase name used in telemetry instrument names
    /// (`service.error.<name>`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadVersion => "bad_version",
            ErrorCode::BadOp => "bad_op",
            ErrorCode::Malformed => "malformed",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::NoSession => "no_session",
            ErrorCode::StaleSession => "stale_session",
            ErrorCode::Busy => "busy",
            ErrorCode::RaggedLength => "ragged_length",
            ErrorCode::BadTag => "bad_tag",
            ErrorCode::JobFailed => "job_failed",
            ErrorCode::IdleTimeout => "idle_timeout",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::DeferUnsupported => "defer_unsupported",
            ErrorCode::TooManyConnections => "too_many_connections",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::BadVersion => "unsupported protocol version",
            ErrorCode::BadOp => "unknown operation",
            ErrorCode::Malformed => "malformed payload",
            ErrorCode::FrameTooLarge => "frame exceeds the size limit",
            ErrorCode::NoSession => "no session: SET_KEY first",
            ErrorCode::StaleSession => "stale session id",
            ErrorCode::Busy => "engine queue full: flush and retry",
            ErrorCode::RaggedLength => "payload is not whole 16-byte blocks",
            ErrorCode::BadTag => "CMAC verification failed",
            ErrorCode::JobFailed => "backend fault while running the job",
            ErrorCode::IdleTimeout => "connection idle too long",
            ErrorCode::ShuttingDown => "server shutting down",
            ErrorCode::DeferUnsupported => "operation cannot be deferred",
            ErrorCode::TooManyConnections => "server connection cap reached",
        };
        f.write_str(s)
    }
}

/// One decoded frame (either direction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Wire version ([`PROTOCOL_VERSION`] on everything this crate
    /// builds; preserved verbatim on receive so version errors can echo
    /// it).
    pub version: u8,
    /// Raw `kind` byte: an [`Op`] on requests, a [`Status`] on replies.
    pub kind: u8,
    /// Request flags ([`FLAG_DEFER`]); reserved (0) on replies.
    pub flags: u8,
    /// Request sequence number, echoed in the matching replies.
    pub seq: u32,
    /// Session id (0 = none yet).
    pub session: u32,
    /// Op-/status-specific body.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a request frame.
    #[must_use]
    pub fn request(op: Op, flags: u8, seq: u32, session: u32, payload: Vec<u8>) -> Frame {
        Frame {
            version: PROTOCOL_VERSION,
            kind: op as u8,
            flags,
            seq,
            session,
            payload,
        }
    }

    /// Builds a reply frame.
    #[must_use]
    pub fn reply(status: Status, seq: u32, session: u32, payload: Vec<u8>) -> Frame {
        Frame {
            version: PROTOCOL_VERSION,
            kind: status as u8,
            flags: 0,
            seq,
            session,
            payload,
        }
    }

    /// Builds a typed error reply.
    #[must_use]
    pub fn error(code: ErrorCode, detail: u32, seq: u32, session: u32) -> Frame {
        let mut payload = Vec::with_capacity(5);
        payload.push(code as u8);
        payload.extend_from_slice(&detail.to_be_bytes());
        Frame::reply(Status::Error, seq, session, payload)
    }

    /// The request op, when `kind` encodes one.
    #[must_use]
    pub fn op(&self) -> Option<Op> {
        Op::from_u8(self.kind)
    }

    /// The reply status, when `kind` encodes one.
    #[must_use]
    pub fn status(&self) -> Option<Status> {
        Status::from_u8(self.kind)
    }

    /// Decodes the `(code, detail)` body of a [`Status::Error`] reply.
    #[must_use]
    pub fn error_body(&self) -> Option<(ErrorCode, u32)> {
        if self.status() != Some(Status::Error) || self.payload.len() < 5 {
            return None;
        }
        let code = ErrorCode::from_u8(self.payload[0])?;
        let detail = u32::from_be_bytes(self.payload[1..5].try_into().ok()?);
        Some((code, detail))
    }

    /// Serialises the frame (length prefix included).
    ///
    /// # Errors
    ///
    /// I/O errors from `w`; [`io::ErrorKind::InvalidInput`] when the
    /// payload exceeds [`MAX_PAYLOAD`] (the frame is not sent).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        if self.payload.len() > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("payload of {} exceeds MAX_PAYLOAD", self.payload.len()),
            ));
        }
        let len = (HEADER_LEN + self.payload.len()) as u32;
        let mut buf = Vec::with_capacity(4 + HEADER_LEN + self.payload.len());
        buf.extend_from_slice(&len.to_be_bytes());
        buf.push(self.version);
        buf.push(self.kind);
        buf.push(self.flags);
        buf.extend_from_slice(&self.seq.to_be_bytes());
        buf.extend_from_slice(&self.session.to_be_bytes());
        buf.extend_from_slice(&self.payload);
        w.write_all(&buf)
    }

    /// Incremental variant of [`Frame::read_from`] for non-blocking
    /// readers: parses one complete frame off the front of `buf`,
    /// draining its bytes, or returns `Ok(None)` when more bytes are
    /// needed. The length prefix is validated as soon as it is visible,
    /// so an oversized frame is refused before its body accumulates.
    ///
    /// # Errors
    ///
    /// [`RecvError::TooLarge`] / [`RecvError::TooShort`] on a length
    /// prefix outside the valid range; `buf` is left untouched so the
    /// caller can report and close.
    pub fn parse_buffered(buf: &mut Vec<u8>) -> Result<Option<Frame>, RecvError> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(buf[..4].try_into().expect("4-byte slice"));
        if (len as usize) < HEADER_LEN {
            return Err(RecvError::TooShort { len });
        }
        if (len as usize) > MAX_FRAME_LEN {
            return Err(RecvError::TooLarge { len });
        }
        let total = 4 + len as usize;
        if buf.len() < total {
            return Ok(None);
        }
        let frame = Frame::read_from(&mut &buf[..total]).expect("complete frame already validated");
        buf.drain(..total);
        Ok(Some(frame))
    }

    /// Reads one frame, enforcing [`MAX_FRAME_LEN`] before buffering the
    /// body.
    ///
    /// # Errors
    ///
    /// [`RecvError::Io`] on transport errors (including a clean EOF
    /// before the length prefix, surfaced as `UnexpectedEof`);
    /// [`RecvError::TooLarge`] / [`RecvError::TooShort`] on a length
    /// prefix outside the valid range — the stream can no longer be
    /// trusted to be in sync, so the caller should close after its typed
    /// goodbye.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Frame, RecvError> {
        let mut len_buf = [0u8; 4];
        r.read_exact(&mut len_buf)?;
        let len = u32::from_be_bytes(len_buf);
        if (len as usize) < HEADER_LEN {
            return Err(RecvError::TooShort { len });
        }
        if (len as usize) > MAX_FRAME_LEN {
            return Err(RecvError::TooLarge { len });
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?;
        Ok(Frame {
            version: body[0],
            kind: body[1],
            flags: body[2],
            seq: u32::from_be_bytes(body[3..7].try_into().expect("4-byte slice")),
            session: u32::from_be_bytes(body[7..11].try_into().expect("4-byte slice")),
            payload: body[HEADER_LEN..].to_vec(),
        })
    }
}

/// Failure while receiving a frame.
#[derive(Debug)]
pub enum RecvError {
    /// Transport error (EOF mid-frame is `UnexpectedEof`).
    Io(io::Error),
    /// Length prefix under [`HEADER_LEN`]: framing is corrupt.
    TooShort {
        /// The declared post-prefix length.
        len: u32,
    },
    /// Length prefix over [`MAX_FRAME_LEN`]: refused before buffering.
    TooLarge {
        /// The declared post-prefix length.
        len: u32,
    },
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "frame transport error: {e}"),
            RecvError::TooShort { len } => {
                write!(f, "frame length {len} under the {HEADER_LEN}-byte header")
            }
            RecvError::TooLarge { len } => {
                write!(f, "frame length {len} over the {MAX_FRAME_LEN} limit")
            }
        }
    }
}

impl std::error::Error for RecvError {}

impl From<io::Error> for RecvError {
    fn from(e: io::Error) -> Self {
        RecvError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips_through_the_wire_format() {
        let frame = Frame::request(Op::CbcEncrypt, FLAG_DEFER, 7, 0xDEAD_BEEF, vec![9u8; 48]);
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        assert_eq!(wire.len(), 4 + HEADER_LEN + 48);
        let back = Frame::read_from(&mut wire.as_slice()).unwrap();
        assert_eq!(back, frame);
        assert_eq!(back.op(), Some(Op::CbcEncrypt));
        assert_eq!(back.status(), None);
    }

    #[test]
    fn error_reply_roundtrips_code_and_detail() {
        let frame = Frame::error(ErrorCode::Busy, 32, 3, 1);
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        let back = Frame::read_from(&mut wire.as_slice()).unwrap();
        assert_eq!(back.status(), Some(Status::Error));
        assert_eq!(back.error_body(), Some((ErrorCode::Busy, 32)));
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_buffering() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        wire.extend_from_slice(&[0u8; 64]);
        match Frame::read_from(&mut wire.as_slice()) {
            Err(RecvError::TooLarge { len }) => assert_eq!(len as usize, MAX_FRAME_LEN + 1),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn undersized_length_prefix_is_refused() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(HEADER_LEN as u32 - 1).to_be_bytes());
        wire.extend_from_slice(&[0u8; HEADER_LEN]);
        assert!(matches!(
            Frame::read_from(&mut wire.as_slice()),
            Err(RecvError::TooShort { .. })
        ));
    }

    #[test]
    fn oversized_payload_is_refused_at_send() {
        let frame = Frame::request(Op::Ping, 0, 0, 0, vec![0u8; MAX_PAYLOAD + 1]);
        let err = frame.write_to(&mut Vec::new()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let frame = Frame::request(Op::Ping, 0, 1, 0, vec![1, 2, 3]);
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        wire.truncate(wire.len() - 2);
        assert!(matches!(
            Frame::read_from(&mut wire.as_slice()),
            Err(RecvError::Io(_))
        ));
    }

    #[test]
    fn parse_buffered_handles_trickled_and_back_to_back_frames() {
        let a = Frame::request(Op::Ping, 0, 1, 0, vec![0xAA; 5]);
        let b = Frame::request(Op::Flush, 0, 2, 9, Vec::new());
        let mut wire = Vec::new();
        a.write_to(&mut wire).unwrap();
        b.write_to(&mut wire).unwrap();

        let mut buf = Vec::new();
        let mut parsed = Vec::new();
        // Feed one byte at a time: partial frames must park, never error.
        for byte in wire {
            buf.push(byte);
            while let Some(frame) = Frame::parse_buffered(&mut buf).unwrap() {
                parsed.push(frame);
            }
        }
        assert_eq!(parsed, vec![a, b]);
        assert!(buf.is_empty());

        // An oversized prefix is refused from the first four bytes on.
        let mut poisoned = (MAX_FRAME_LEN as u32 + 1).to_be_bytes().to_vec();
        assert!(matches!(
            Frame::parse_buffered(&mut poisoned),
            Err(RecvError::TooLarge { .. })
        ));
    }

    #[test]
    fn every_op_code_roundtrips() {
        for op in [
            Op::SetKey,
            Op::Flush,
            Op::Ping,
            Op::GetStats,
            Op::EcbEncrypt,
            Op::EcbDecrypt,
            Op::CbcEncrypt,
            Op::CbcDecrypt,
            Op::CtrApply,
            Op::CmacTag,
            Op::CmacVerify,
        ] {
            assert_eq!(Op::from_u8(op as u8), Some(op));
            assert!(op
                .name()
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b == b'_'));
        }
        assert_eq!(Op::from_u8(0x7E), None);
    }

    #[test]
    fn every_status_and_error_code_roundtrips() {
        for st in [
            Status::Ok,
            Status::Accepted,
            Status::Data,
            Status::Flushed,
            Status::Error,
        ] {
            assert_eq!(Status::from_u8(st as u8), Some(st));
        }
        assert_eq!(Status::from_u8(0x90), None);
        for code in 1..=14u8 {
            let decoded = ErrorCode::from_u8(code).expect("codes 1..=14 are assigned");
            assert_eq!(decoded as u8, code);
            assert!(!decoded.to_string().is_empty());
            assert!(!decoded.name().is_empty());
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(15), None);
    }

    #[test]
    fn engine_mode_mapping_covers_exactly_the_engine_ops() {
        let iv = [7u8; 16];
        assert_eq!(Op::EcbEncrypt.engine_mode(iv), Some(Mode::EcbEncrypt));
        assert_eq!(Op::EcbDecrypt.engine_mode(iv), Some(Mode::EcbDecrypt));
        assert_eq!(Op::CbcEncrypt.engine_mode(iv), Some(Mode::CbcEncrypt(iv)));
        assert_eq!(Op::CbcDecrypt.engine_mode(iv), Some(Mode::CbcDecrypt(iv)));
        assert_eq!(Op::CtrApply.engine_mode(iv), Some(Mode::Ctr(iv)));
        for op in [
            Op::SetKey,
            Op::Flush,
            Op::Ping,
            Op::GetStats,
            Op::CmacTag,
            Op::CmacVerify,
        ] {
            assert!(!op.is_engine_op());
            assert_eq!(op.engine_mode(iv), None);
        }
        assert!(Op::CtrApply.takes_iv() && !Op::EcbEncrypt.takes_iv());
    }
}

//! The event-driven server: a readiness loop over nonblocking sockets,
//! per-connection state machines, request pipelining, typed-error
//! dispatch, idle timeouts and graceful drain-on-shutdown.
//!
//! # Topology
//!
//! One **acceptor** thread polls the listener, admits connections up to
//! [`ServiceConfig::max_connections`] (refusing the rest with a typed
//! [`ErrorCode::TooManyConnections`] goodbye instead of a silent drop),
//! and hands admitted sockets round-robin to
//! [`ServiceConfig::event_threads`] **shard** threads. Each shard runs a
//! readiness loop ([`crate::net::PollSet`], the std-only `poll(2)`
//! shim) over its connections: there are no per-connection threads, so
//! the connection budget is bounded by descriptors, not stacks — tens
//! of thousands of mostly-idle connections cost two file descriptors
//! and a [`Conn`] struct each.
//!
//! # Per-connection state machine
//!
//! Each connection owns a [`crate::protocol::RecvBuffer`] (incremental
//! reassembly: a slow peer that trickles bytes never desynchronises the
//! stream), an outgoing byte queue, and a [`SessionSlot`]. Readable →
//! drain the socket, parse every complete frame, dispatch; writable →
//! flush the outgoing queue. Replies are serialised into the queue and
//! written opportunistically; when a peer stops reading, the queue
//! grows until the write-backpressure cap, at which point the server
//! stops *reading* from that peer until the queue drains — slow
//! consumers throttle themselves without unbounded buffering.
//!
//! # Pipelining
//!
//! Protocol-v2 engine ops are **submitted, not awaited**: the request's
//! correlation id rides into the session's pipelined lane
//! ([`crate::session::Session::submit`]) and the reply is emitted when
//! the engine completes the job — in completion order, which across a
//! multi-core farm is not submission order. A v2 client may therefore
//! keep an arbitrary pipeline depth per connection. Bulk-eligible
//! payloads hand off to the session's worker pool
//! ([`engine::WorkerPool`]) and never run crypto on the shard thread;
//! each shard parks a self-pipe wake fd in its poll set so a pool
//! completion cuts the poll short and the reply goes out immediately.
//! Version-1 frames keep the PR 3 contract to the letter: executed
//! synchronously, replies in request order, one layout on the wire.
//!
//! # Telemetry
//!
//! Every server owns a [`telemetry::Registry`]: per-opcode request
//! counters (`service.op.<op>.requests`), error-code tallies
//! (`service.error.<code>`), connection gauges, the pipelined in-flight
//! gauge (`service.pipeline.inflight`), readiness-loop histograms
//! (`service.loop.events_per_poll`, `service.loop.dispatch_micros`), a
//! request frame-size histogram, admission refusals, and — because each
//! session's engine is built against the same registry — the full
//! `engine.*` instrument set. `GET_STATS` serialises one snapshot of
//! that registry as the `telemetry/1` JSON document;
//! [`ServiceHandle::registry`] exposes the same registry in-process, so
//! there is exactly one counter path.
//!
//! Shutdown is graceful: the acceptor stops admitting, every shard
//! answers each connection's in-flight pipelined jobs, flushes its
//! deferred jobs (delivering their [`Status::Data`] replies), sends an
//! [`ErrorCode::ShuttingDown`] goodbye, and exits;
//! [`ServiceHandle::shutdown`] joins the acceptor, which joins every
//! shard — no threads outlive the handle.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use engine::{BackendSpec, Error, ResizePolicy, SubmitError};
use rijndael::aead;
use telemetry::{Counter, Gauge, Registry};

use crate::net::{self, PollSet};
use crate::protocol::{
    ErrorCode, Frame, Op, RecvBuffer, RecvError, Status, FLAG_DEFER, PROTOCOL_V1, PROTOCOL_V2,
};
use crate::session::SessionSlot;

/// Readiness-poll timeout: how often an idle shard (or the acceptor)
/// wakes to check the shutdown flag, the inbox and the idle budgets.
const POLL: Duration = Duration::from_millis(10);

/// How long the acceptor waits in its listener poll.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Poll token reserved for a shard's wake pipe. Connection tokens are
/// slot indices, so the all-ones pattern can never collide with one.
const WAKE_TOKEN: usize = usize::MAX;

/// How often a shard runs the elastic policy over its keyed sessions
/// when [`ServiceConfig::elastic`] is set.
const AUTOSCALE_TICK: Duration = Duration::from_millis(100);

/// How long the graceful-shutdown drain waits for a session's pool
/// lane to finish its in-flight bulk jobs before the goodbye frame —
/// generous next to real job times, but bounded so a wedged backend
/// cannot hold the whole server exit hostage.
const DRAIN_POOL_TIMEOUT: Duration = Duration::from_secs(5);

/// Write-backpressure cap: once a connection's outgoing queue holds
/// this many bytes the server stops reading from that peer until the
/// queue drains below it again.
const OUTBUF_SOFT_CAP: usize = 1 << 20;

/// Reads drained from one socket per readiness event before yielding to
/// the other connections (each read is one scratch buffer).
const READ_BURST: usize = 64;

/// Bucket upper bounds for the `service.frame.request_bytes` histogram
/// (whole frames, header included; the overflow bucket catches anything
/// up to `MAX_FRAME_LEN`).
const FRAME_SIZE_BOUNDS: [u64; 8] = [16, 64, 256, 1024, 4096, 16384, 65536, 262_144];

/// Bucket upper bounds for `service.loop.events_per_poll` (ready
/// sockets per poll wakeup).
const EVENTS_BOUNDS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Bucket upper bounds for `service.loop.dispatch_micros` (time spent
/// servicing one poll wakeup's events, µs).
const DISPATCH_BOUNDS: [u64; 8] = [10, 50, 100, 500, 1_000, 5_000, 10_000, 100_000];

/// Server tuning knobs.
///
/// Construct through [`ServiceConfig::builder`], which validates the
/// knobs and rejects contradictions with typed [`ConfigError`]s, or
/// start from [`ServiceConfig::default`]. The struct is
/// `#[non_exhaustive]`: direct struct-literal construction outside this
/// crate is not supported (it silently skipped validation and broke on
/// every added field), which is exactly the misuse the builder
/// replaces.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Engine farm built for every session (each connection keys its
    /// own copy, so farms are not shared across clients). The default is
    /// [`BackendSpec::Auto`] slots: the runtime dispatch decision, so a
    /// portable binary still lands on AES-NI/AVX2 where the serving CPU
    /// has them.
    pub farm: Vec<BackendSpec>,
    /// Bound on each session's engine queue (deferred plus pipelined
    /// jobs); exceeding it earns a typed [`ErrorCode::Busy`] reply.
    pub queue_capacity: usize,
    /// Connection admission cap.
    pub max_connections: usize,
    /// How long a connection may sit without a complete request before
    /// the server sends [`ErrorCode::IdleTimeout`] and closes.
    pub idle_timeout: Duration,
    /// Shard event-loop threads the connections are spread across
    /// (clamped to at least 1).
    pub event_threads: usize,
    /// Elastic worker-pool supervision: when set, each shard ticks every
    /// keyed session's pool against this policy (~10×/s), growing it
    /// under queue pressure and shrinking it when idle; the decisions
    /// surface as `engine.resize.*` / `engine.workers` telemetry in
    /// `GET_STATS`. `None` (the default) leaves every session's pool at
    /// its configured size.
    pub elastic: Option<ResizePolicy>,
}

impl ServiceConfig {
    /// A validating builder seeded with the default knobs — the blessed
    /// construction path, mirroring `engine::EngineBuilder`.
    #[must_use]
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder {
            config: ServiceConfig::default(),
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            farm: vec![BackendSpec::Auto; 4],
            queue_capacity: 32,
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            event_threads: 2,
            elastic: None,
        }
    }
}

/// Typed rejection from [`ServiceConfigBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The engine farm has no backend slots: sessions could never run a
    /// job.
    EmptyFarm,
    /// Zero shard event-loop threads: no thread would ever service a
    /// connection.
    ZeroShards,
    /// Zero per-session queue capacity: every submission would bounce
    /// `Busy`.
    ZeroQueueCapacity,
    /// Zero connection admission cap: every connect would be refused.
    ZeroConnections,
    /// Contradictory elastic bounds: the pool could never hold a legal
    /// worker count.
    ElasticBounds {
        /// The policy's floor (zero, or above the ceiling).
        min_workers: usize,
        /// The policy's ceiling.
        max_workers: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyFarm => f.write_str("farm must have at least one backend slot"),
            ConfigError::ZeroShards => f.write_str("event_threads must be at least 1"),
            ConfigError::ZeroQueueCapacity => f.write_str("queue_capacity must be at least 1"),
            ConfigError::ZeroConnections => f.write_str("max_connections must be at least 1"),
            ConfigError::ElasticBounds {
                min_workers,
                max_workers,
            } => write!(
                f,
                "elastic bounds are contradictory: min_workers {min_workers}, \
                 max_workers {max_workers}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`ServiceConfig`]; see
/// [`ServiceConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServiceConfigBuilder {
    config: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// The engine farm built for every session (one backend slot per
    /// entry).
    #[must_use]
    pub fn farm(mut self, farm: &[BackendSpec]) -> Self {
        self.config.farm = farm.to_vec();
        self
    }

    /// Bound on each session's engine queue (deferred plus pipelined
    /// jobs).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Connection admission cap.
    #[must_use]
    pub fn max_connections(mut self, cap: usize) -> Self {
        self.config.max_connections = cap;
        self
    }

    /// Idle budget before a typed [`ErrorCode::IdleTimeout`] goodbye.
    #[must_use]
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.config.idle_timeout = timeout;
        self
    }

    /// Shard event-loop threads the connections are spread across.
    #[must_use]
    pub fn event_threads(mut self, threads: usize) -> Self {
        self.config.event_threads = threads;
        self
    }

    /// Elastic worker-pool supervision policy (see
    /// [`ServiceConfig::elastic`]).
    #[must_use]
    pub fn elastic(mut self, policy: ResizePolicy) -> Self {
        self.config.elastic = Some(policy);
        self
    }

    /// Validates the knobs and produces the config.
    ///
    /// # Errors
    ///
    /// A typed [`ConfigError`] naming the first contradiction: an empty
    /// farm, zero shards/capacity/connections, or elastic bounds that
    /// admit no legal worker count.
    pub fn build(self) -> Result<ServiceConfig, ConfigError> {
        let c = &self.config;
        if c.farm.is_empty() {
            return Err(ConfigError::EmptyFarm);
        }
        if c.event_threads == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if c.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if c.max_connections == 0 {
            return Err(ConfigError::ZeroConnections);
        }
        if let Some(policy) = &c.elastic {
            if policy.min_workers == 0 || policy.min_workers > policy.max_workers {
                return Err(ConfigError::ElasticBounds {
                    min_workers: policy.min_workers,
                    max_workers: policy.max_workers,
                });
            }
        }
        Ok(self.config)
    }
}

/// The typed-timeout reply detail: the idle budget in milliseconds,
/// **saturating** at `u32::MAX` — a budget of 50 days or more used to
/// wrap silently in the `as u32` cast and report a bogus number.
fn idle_timeout_detail(idle_timeout: Duration) -> u32 {
    u32::try_from(idle_timeout.as_millis()).unwrap_or(u32::MAX)
}

/// Counters and flags shared by the acceptor, the shards and the
/// handle.
struct Shared {
    config: ServiceConfig,
    registry: Registry,
    shutdown: AtomicBool,
    /// `service.connections.active` — connections currently served.
    active: Gauge,
    /// `service.connections.served` — connections admitted since start.
    served: Counter,
    /// `service.admission.refused` — connections bounced at the cap.
    refused: Counter,
    /// `service.pipeline.inflight` — pipelined jobs submitted and not
    /// yet answered, across every connection.
    inflight: Gauge,
}

impl Shared {
    /// Tallies `service.error.<code>` for a typed error reply.
    fn count_error(&self, code: ErrorCode) {
        self.registry
            .counter(&format!("service.error.{}", code.name()))
            .incr();
    }
}

/// The service entry point: configure, then [`Server::spawn`].
#[derive(Debug, Default)]
pub struct Server {
    config: ServiceConfig,
}

impl Server {
    /// A server with the given tuning knobs.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Server {
        Server { config }
    }

    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor and shard threads. The returned handle owns every
    /// thread the server will ever start.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure or a thread-spawn failure.
    pub fn spawn<A: ToSocketAddrs>(self, addr: A) -> io::Result<ServiceHandle> {
        // One descriptor per connection: ask for the hard limit up
        // front (best-effort; a refusal just lowers effective
        // admission).
        let _ = net::raise_nofile_limit();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let registry = Registry::new();
        // Mirror the process-wide dispatch decision (published into the
        // global registry at probe time) so GET_STATS shows which
        // implementation serves bulk traffic without a second scrape.
        let dispatch = rijndael::dispatch::selection();
        registry
            .counter(&format!(
                "rijndael.dispatch.backend.{}",
                dispatch.bulk.token()
            ))
            .incr();
        registry
            .gauge("rijndael.dispatch.forced")
            .set(i64::from(dispatch.forced));
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            active: registry.gauge("service.connections.active"),
            served: registry.counter("service.connections.served"),
            refused: registry.counter("service.admission.refused"),
            inflight: registry.gauge("service.pipeline.inflight"),
            config: self.config,
            registry,
        });
        let shard_count = shared.config.event_threads.max(1);
        let mut inboxes = Vec::with_capacity(shard_count);
        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let inbox: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
            let shard_shared = Arc::clone(&shared);
            let shard_inbox = Arc::clone(&inbox);
            shards.push(
                thread::Builder::new()
                    .name(format!("service-shard-{i}"))
                    .spawn(move || shard_loop(&shard_shared, &shard_inbox))?,
            );
            inboxes.push(inbox);
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("service-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared, &inboxes, shards))?
        };
        Ok(ServiceHandle {
            addr: local,
            shared,
            acceptor: Some(acceptor),
        })
    }
}

/// Owning handle for a running server; dropping it shuts the server
/// down and joins every thread.
pub struct ServiceHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound address (with the resolved ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's telemetry registry — the same one `GET_STATS`
    /// snapshots, and the one every session engine publishes into.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// Connections currently being served.
    #[must_use]
    pub fn active_connections(&self) -> usize {
        self.shared.active.get().max(0) as usize
    }

    /// Connections admitted since the server started.
    #[must_use]
    pub fn connections_served(&self) -> u64 {
        self.shared.served.get()
    }

    /// Stops accepting, answers every connection's in-flight pipelined
    /// and deferred jobs, sends each peer a typed goodbye, and joins
    /// all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("addr", &self.addr)
            .field("active", &self.active_connections())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    inboxes: &[Arc<Mutex<Vec<TcpStream>>>],
    shards: Vec<JoinHandle<()>>,
) {
    let mut poll = PollSet::new();
    let mut next_shard = 0usize;
    while !shared.shutdown.load(Ordering::Acquire) {
        // Burst-accept everything pending; a sequential connect storm
        // must drain faster than the kernel backlog fills.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if shared.active.get() >= shared.config.max_connections as i64 {
                        refuse_connection(&stream, shared);
                        continue;
                    }
                    shared.active.add(1);
                    shared.served.incr();
                    inboxes[next_shard].lock().expect("inbox lock").push(stream);
                    next_shard = (next_shard + 1) % inboxes.len();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    thread::sleep(ACCEPT_POLL);
                    break;
                }
            }
        }
        // Sleep until the next pending connection (or the poll tick).
        poll.clear();
        poll.register(net::socket_fd(listener), 0, true, false);
        let _ = poll.poll(ACCEPT_POLL);
    }
    for shard in shards {
        let _ = shard.join();
    }
}

/// Best-effort typed refusal for connections over the admission cap.
fn refuse_connection(mut stream: &TcpStream, shared: &Shared) {
    shared.refused.incr();
    shared.count_error(ErrorCode::TooManyConnections);
    let cap = shared.config.max_connections as u32;
    let goodbye = Frame::error(ErrorCode::TooManyConnections, cap, 0, 0).with_version(PROTOCOL_V1);
    let _ = goodbye.write_to(&mut stream);
}

// ---------------------------------------------------------------------
// Connection state machine
// ---------------------------------------------------------------------

/// The outgoing byte queue: serialised reply frames waiting for the
/// socket's send buffer, consumed through an offset cursor like the
/// receive side.
#[derive(Debug, Default)]
struct OutBuf {
    buf: Vec<u8>,
    start: usize,
}

impl OutBuf {
    fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialises `frame` onto the queue. `false` only when the frame
    /// itself is unsendable (payload over the wire limit) — the caller
    /// treats that as a fatal connection error.
    fn push(&mut self, frame: &Frame) -> bool {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        frame.write_to(&mut self.buf).is_ok()
    }

    /// Writes as much of the queue as the socket accepts right now.
    /// `Ok(())` leaves any unwritten remainder queued for the next
    /// writable event.
    fn flush(&mut self, stream: &mut &TcpStream) -> io::Result<()> {
        while self.start < self.buf.len() {
            match stream.write(&self.buf[self.start..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.start += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.start = 0;
        Ok(())
    }
}

/// Whether the connection survives the request that was just answered.
enum Flow {
    Continue,
    /// Stop reading; flush the outgoing queue, then close.
    Close,
}

/// One connection's entire state: socket, reassembly buffer, outgoing
/// queue, session slot and liveness bookkeeping.
struct Conn {
    stream: TcpStream,
    inbuf: RecvBuffer,
    out: OutBuf,
    slot: SessionSlot,
    /// When the last *complete frame* arrived (the idle budget counts
    /// frames, not bytes, so a byte-trickling peer cannot stay alive
    /// for free).
    last_frame: Instant,
    /// The version of the peer's most recent frame — the layout used
    /// for unsolicited goodbyes (idle timeout, shutdown, framing
    /// errors). Starts at v1, the conservative layout every client
    /// parses.
    peer_version: u8,
    /// Set by [`Flow::Close`]: no more reads; drop once `out` drains.
    closing: bool,
    /// The owning shard's wake-pipe callback, installed into each newly
    /// keyed session's worker pool so bulk completions un-park the
    /// shard's `poll(2)` immediately. `None` when the platform gave the
    /// shard no pipe (the loop then falls back to its poll timeout).
    notifier: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl Conn {
    fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            inbuf: RecvBuffer::new(),
            out: OutBuf::default(),
            slot: SessionSlot::new(),
            last_frame: Instant::now(),
            peer_version: PROTOCOL_V1,
            closing: false,
            notifier: None,
        })
    }

    fn live_session(&mut self) -> u32 {
        self.slot.session_mut().map_or(0, |s| s.id())
    }

    /// Queues an unsolicited goodbye in the peer's layout.
    fn push_goodbye(&mut self, shared: &Shared, code: ErrorCode, detail: u32) {
        shared.count_error(code);
        let sid = self.live_session();
        let frame = Frame::error(code, detail, 0, sid).with_version(self.peer_version);
        let _ = self.out.push(&frame);
    }
}

// ---------------------------------------------------------------------
// Shard event loop
// ---------------------------------------------------------------------

fn shard_loop(shared: &Arc<Shared>, inbox: &Arc<Mutex<Vec<TcpStream>>>) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut poll = PollSet::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let events_hist = shared
        .registry
        .histogram("service.loop.events_per_poll", &EVENTS_BOUNDS);
    let dispatch_hist = shared
        .registry
        .histogram("service.loop.dispatch_micros", &DISPATCH_BOUNDS);

    // Self-pipe wakeup: session worker pools call the notifier when a
    // bulk job finishes, making the pipe readable so a parked poll(2)
    // returns immediately instead of waiting out its timeout. The pipe
    // is registered under a reserved token no connection slot can reach.
    let mut wake = net::WakePipe::new();
    let shard_notifier: Option<Arc<dyn Fn() + Send + Sync>> = wake.as_ref().map(|w| {
        let n = w.notifier();
        Arc::new(move || n.wake()) as Arc<dyn Fn() + Send + Sync>
    });
    let mut last_scale = Instant::now();

    loop {
        // Admit handed-off sockets into free slots.
        for stream in inbox.lock().expect("inbox lock").drain(..) {
            match Conn::new(stream) {
                Ok(mut conn) => {
                    conn.notifier = shard_notifier.clone();
                    if let Some(slot) = conns.iter_mut().find(|c| c.is_none()) {
                        *slot = Some(conn);
                    } else {
                        conns.push(Some(conn));
                    }
                }
                Err(_) => {
                    shared.active.sub(1);
                }
            }
        }

        if shared.shutdown.load(Ordering::Acquire) {
            for conn in conns.iter_mut().filter_map(Option::take) {
                drain_and_say_goodbye(conn, shared);
                shared.active.sub(1);
            }
            return;
        }

        // Interest set: read unless backpressured or closing, write
        // when bytes are queued. The wake pipe rides along under its
        // reserved token so completions (and only completions) can cut
        // a poll short.
        poll.clear();
        for (token, conn) in conns.iter().enumerate() {
            let Some(conn) = conn else { continue };
            let read = !conn.closing && conn.out.len() < OUTBUF_SOFT_CAP;
            let write = !conn.out.is_empty();
            poll.register(net::socket_fd(&conn.stream), token, read, write);
        }
        if let Some(w) = &wake {
            poll.register(w.fd(), WAKE_TOKEN, true, false);
        }
        if poll.is_empty() {
            // No pipe and no sockets: plain timed sleep keeps the
            // shutdown/inbox checks ticking.
            thread::sleep(POLL);
            continue;
        }
        let ready = match poll.poll(POLL) {
            Ok(ready) => ready,
            Err(_) => {
                thread::sleep(POLL);
                continue;
            }
        };
        let woken = ready.iter().any(|r| r.token == WAKE_TOKEN);
        let socket_events = ready.len() - usize::from(woken);
        if socket_events > 0 {
            events_hist.record(socket_events as u64);
        }

        let started = Instant::now();
        for r in ready {
            let Some(conn) = conns.get_mut(r.token).and_then(Option::as_mut) else {
                continue;
            };
            let mut alive = true;
            if r.writable && !conn.out.is_empty() {
                alive = conn.out.flush(&mut &conn.stream).is_ok();
            }
            if alive && (r.readable || r.error) && !conn.closing {
                alive = service_readable(conn, shared, &mut scratch);
            } else if alive && r.error && conn.closing {
                // Peer vanished while we were flushing its goodbye.
                alive = false;
            }
            if alive {
                // Push replies at the socket now instead of waiting
                // for the next writable event.
                alive = conn.out.flush(&mut &conn.stream).is_ok();
            }
            if !alive {
                conns[r.token] = None;
                shared.active.sub(1);
            }
        }
        if !ready.is_empty() {
            dispatch_hist.record(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
        }

        // Crypto completion sweep. Drain the pipe *first* so a wake
        // written after this point is never lost — it just cuts the
        // next poll short. Then emit replies for every session with
        // finished pipelined work and push them at the socket. The
        // sweep runs every iteration (not only on a wake) so the
        // non-unix fallback and engine-lane leftovers stay covered.
        if woken {
            if let Some(w) = wake.as_mut() {
                w.drain();
            }
        }
        for slot in &mut conns {
            let Some(conn) = slot.as_mut() else { continue };
            if conn.closing {
                continue;
            }
            let finished = conn.slot.session_mut().is_some_and(|s| s.in_flight() > 0);
            if !finished {
                continue;
            }
            collect_pipelined(conn, shared);
            if !conn.out.is_empty() && conn.out.flush(&mut &conn.stream).is_err() {
                *slot = None;
                shared.active.sub(1);
            }
        }

        // Elastic supervision: tick each keyed session's worker pool
        // against the configured policy roughly ten times a second.
        if let Some(policy) = shared.config.elastic {
            if last_scale.elapsed() >= AUTOSCALE_TICK {
                last_scale = Instant::now();
                for conn in conns.iter_mut().filter_map(Option::as_mut) {
                    if let Some(session) = conn.slot.session_mut() {
                        let _ = session.autoscale(&policy);
                    }
                }
            }
        }

        // Idle sweep and closing-drain cleanup.
        let now = Instant::now();
        for slot in &mut conns {
            let Some(conn) = slot.as_mut() else { continue };
            if conn.closing {
                if conn.out.is_empty() {
                    *slot = None;
                    shared.active.sub(1);
                }
                continue;
            }
            if now.duration_since(conn.last_frame) >= shared.config.idle_timeout {
                conn.push_goodbye(
                    shared,
                    ErrorCode::IdleTimeout,
                    idle_timeout_detail(shared.config.idle_timeout),
                );
                let _ = conn.out.flush(&mut &conn.stream);
                conn.closing = true;
                if conn.out.is_empty() {
                    *slot = None;
                    shared.active.sub(1);
                }
            }
        }
        // Trim trailing empty slots so long-gone bursts don't pin the
        // table size forever.
        while matches!(conns.last(), Some(None)) {
            conns.pop();
        }
    }
}

/// Drains the socket, parses every complete frame, dispatches, and
/// collects pipelined completions. Returns `false` when the connection
/// must be dropped.
fn service_readable(conn: &mut Conn, shared: &Shared, scratch: &mut [u8]) -> bool {
    let mut eof = false;
    for _ in 0..READ_BURST {
        match (&conn.stream).read(scratch) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&scratch[..n]);
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }

    loop {
        match conn.inbuf.next_frame() {
            Ok(Some(frame)) => {
                conn.last_frame = Instant::now();
                conn.peer_version = if frame.version >= PROTOCOL_V2 {
                    PROTOCOL_V2
                } else {
                    PROTOCOL_V1
                };
                match dispatch(frame, conn, shared) {
                    Flow::Continue => {}
                    Flow::Close => {
                        conn.closing = true;
                        break;
                    }
                }
            }
            Ok(None) => break,
            Err(RecvError::TooLarge { len }) => {
                conn.push_goodbye(shared, ErrorCode::FrameTooLarge, len);
                conn.closing = true;
                break;
            }
            Err(RecvError::TooShort { len }) => {
                conn.push_goodbye(shared, ErrorCode::Malformed, len);
                conn.closing = true;
                break;
            }
            Err(RecvError::Io(_)) => return false,
        }
    }

    collect_pipelined(conn, shared);

    if eof && !conn.closing {
        // Peer half: answered whatever was parsed; nothing more will
        // arrive, so flush and drop.
        conn.closing = true;
    }
    true
}

/// Emits a reply for every pipelined job the engine has finished, in
/// completion order.
fn collect_pipelined(conn: &mut Conn, shared: &Shared) {
    let Some(session) = conn.slot.session_mut() else {
        return;
    };
    collect_session(session, &mut conn.out, shared);
}

/// The session-level half of [`collect_pipelined`], callable from
/// dispatch (where the connection is already split into its fields).
fn collect_session(session: &mut crate::session::Session, out: &mut OutBuf, shared: &Shared) {
    if session.in_flight() == 0 {
        return;
    }
    let sid = session.id();
    let results = session.collect();
    for (corr, result) in results {
        shared.inflight.sub(1);
        let frame = match result {
            // Pipelined replies mirror `corr` into `seq`: correlation
            // is the contract, `seq` is diagnostics.
            Ok(data) => pipelined_frame(Status::Ok, corr, sid, data),
            Err(e) => {
                let (code, detail) = engine_error_code(Error::from(e));
                shared.count_error(code);
                pipelined_frame(Status::Error, corr, sid, error_body_bytes(code, detail))
            }
        };
        let _ = out.push(&frame);
    }
}

fn pipelined_frame(status: Status, corr: u32, sid: u32, payload: Vec<u8>) -> Frame {
    Frame::reply(status, corr, sid, payload).with_corr(corr)
}

fn error_body_bytes(code: ErrorCode, detail: u32) -> Vec<u8> {
    let mut payload = Vec::with_capacity(5);
    payload.push(code as u8);
    payload.extend_from_slice(&detail.to_be_bytes());
    payload
}

/// Answers every outstanding job, then says goodbye — the shutdown
/// path. Uses blocking writes: the loop is exiting, so backpressure no
/// longer matters, only delivery.
fn drain_and_say_goodbye(mut conn: Conn, shared: &Shared) {
    // v2 bulk jobs may still be executing on the session pool's worker
    // threads, and collect's pool lane is non-blocking: wait the pool
    // out (bounded) so every accepted request is answered before the
    // goodbye instead of being dropped with the session.
    if let Some(session) = conn.slot.session_mut() {
        let _ = session.quiesce(DRAIN_POOL_TIMEOUT);
    }
    collect_pipelined(&mut conn, shared);
    if let Some(session) = conn.slot.session_mut() {
        let sid = session.id();
        let peer_version = conn.peer_version;
        for (tag, result) in session.flush() {
            let frame = match result {
                Ok(data) => Frame::reply(Status::Data, tag, sid, data).with_corr(tag),
                Err(e) => {
                    let (code, detail) = engine_error_code(Error::from(e));
                    shared.count_error(code);
                    pipelined_frame(Status::Error, tag, sid, error_body_bytes(code, detail))
                }
            };
            let _ = conn.out.push(&frame.with_version(peer_version));
        }
    }
    conn.push_goodbye(shared, ErrorCode::ShuttingDown, 0);
    let _ = conn.stream.set_nonblocking(false);
    let _ = (&conn.stream).write_all(&conn.out.buf[conn.out.start..]);
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

/// The one place engine failures become wire error codes: submission
/// rejections keep their typed identity (`Busy` carries the capacity,
/// `RaggedLength` the offending length, a bad IV is a malformed
/// payload), and anything that failed *after* admission is a
/// [`ErrorCode::JobFailed`].
fn engine_error_code(e: Error) -> (ErrorCode, u32) {
    match e {
        Error::Submit(SubmitError::Busy { capacity }) => (ErrorCode::Busy, capacity as u32),
        Error::Submit(SubmitError::RaggedLength { len }) => (ErrorCode::RaggedLength, len as u32),
        Error::Submit(SubmitError::BadIv { len }) => (ErrorCode::Malformed, len as u32),
        Error::Job(_) => (ErrorCode::JobFailed, 0),
    }
}

/// Queues a reply that echoes `req`'s version/seq/corr, carrying
/// session id `sid`.
fn push_reply(conn_out: &mut OutBuf, req: &Frame, status: Status, sid: u32, payload: Vec<u8>) {
    let mut frame = Frame::reply_to(req, status, payload);
    frame.session = sid;
    let _ = conn_out.push(&frame);
}

/// Tallies and queues one typed error reply — every in-band error frame
/// leaves through here so `service.error.*` counts them all.
fn push_error(
    conn_out: &mut OutBuf,
    shared: &Shared,
    req: &Frame,
    code: ErrorCode,
    detail: u32,
    sid: u32,
) {
    shared.count_error(code);
    push_reply(
        conn_out,
        req,
        Status::Error,
        sid,
        error_body_bytes(code, detail),
    );
}

fn push_engine_error(conn_out: &mut OutBuf, shared: &Shared, req: &Frame, e: Error, sid: u32) {
    let (code, detail) = engine_error_code(e);
    push_error(conn_out, shared, req, code, detail, sid);
}

fn dispatch(frame: Frame, conn: &mut Conn, shared: &Shared) -> Flow {
    shared
        .registry
        .histogram("service.frame.request_bytes", &FRAME_SIZE_BOUNDS)
        .record((frame.header_len() + frame.payload.len()) as u64);
    let notifier = conn.notifier.clone();
    let slot = &mut conn.slot;
    let out = &mut conn.out;
    let live = slot.session_mut().map_or(0, |s| s.id());
    if frame.version != PROTOCOL_V1 && frame.version != PROTOCOL_V2 {
        push_error(
            out,
            shared,
            &frame,
            ErrorCode::BadVersion,
            u32::from(frame.version),
            live,
        );
        return Flow::Close; // framing may differ across versions
    }
    let Some(op) = frame.op() else {
        push_error(
            out,
            shared,
            &frame,
            ErrorCode::BadOp,
            u32::from(frame.kind),
            live,
        );
        return Flow::Continue;
    };
    shared
        .registry
        .counter(&format!("service.op.{}.requests", op.name()))
        .incr();
    if frame.flags & FLAG_DEFER != 0 && !op.is_engine_op() {
        push_error(
            out,
            shared,
            &frame,
            ErrorCode::DeferUnsupported,
            u32::from(op as u8),
            live,
        );
        return Flow::Continue;
    }

    match op {
        Op::Ping => {
            let payload = frame.payload.clone();
            push_reply(out, &frame, Status::Ok, live, payload);
        }
        Op::GetStats => {
            if !frame.payload.is_empty() {
                push_error(
                    out,
                    shared,
                    &frame,
                    ErrorCode::Malformed,
                    frame.payload.len() as u32,
                    live,
                );
                return Flow::Continue;
            }
            let json = shared.registry.snapshot().to_json();
            push_reply(out, &frame, Status::Ok, live, json.into_bytes());
        }
        Op::SetKey => {
            if !matches!(frame.payload.len(), 16 | 24 | 32) {
                push_error(
                    out,
                    shared,
                    &frame,
                    ErrorCode::BadKeyLength,
                    frame.payload.len() as u32,
                    live,
                );
                return Flow::Continue;
            }
            let mut key = [0u8; 32];
            let len = frame.payload.len();
            key[..len].copy_from_slice(&frame.payload);
            let sid = slot.rekey(
                &key[..len],
                &shared.config.farm,
                shared.config.queue_capacity,
                &shared.registry,
            );
            rijndael::zeroize::wipe_bytes(&mut key);
            // Hook the fresh session's pool completions up to this
            // shard's wake pipe so a finished bulk job interrupts the
            // poll instead of waiting out its timeout.
            if let Some(n) = notifier {
                slot.session_mut().expect("just rekeyed").set_notifier(n);
            }
            // The reply carries the new id in the header only — key
            // material never appears in any reply payload.
            push_reply(out, &frame, Status::Ok, sid, Vec::new());
        }
        Op::SetKeyWrapped => {
            // Needs a live session: its key is the KEK the blob was
            // wrapped under. Every failure leaves that session live so
            // the client can retry with a corrected blob.
            if !session_ok(out, shared, &frame, live) {
                return Flow::Continue;
            }
            let unwrapped = slot
                .session_mut()
                .expect("checked live")
                .unwrap_key(&frame.payload);
            match unwrapped {
                Ok(mut key) => {
                    if !matches!(key.len(), 16 | 24 | 32) {
                        let len = key.len() as u32;
                        rijndael::zeroize::wipe_bytes(&mut key);
                        push_error(out, shared, &frame, ErrorCode::BadKeyLength, len, live);
                        return Flow::Continue;
                    }
                    let sid = slot.rekey(
                        &key,
                        &shared.config.farm,
                        shared.config.queue_capacity,
                        &shared.registry,
                    );
                    rijndael::zeroize::wipe_bytes(&mut key);
                    if let Some(n) = notifier {
                        slot.session_mut().expect("just rekeyed").set_notifier(n);
                    }
                    push_reply(out, &frame, Status::Ok, sid, Vec::new());
                }
                Err(aead::Error::TagMismatch) => {
                    push_error(out, shared, &frame, ErrorCode::TagMismatch, 0, live);
                }
                Err(_) => {
                    push_error(
                        out,
                        shared,
                        &frame,
                        ErrorCode::Malformed,
                        frame.payload.len() as u32,
                        live,
                    );
                }
            }
        }
        Op::Flush => {
            if !session_ok(out, shared, &frame, live) {
                return Flow::Continue;
            }
            let session = slot.session_mut().expect("checked live");
            let results = session.flush();
            let count = results.len() as u32;
            for (tag, result) in results {
                let reply = match result {
                    Ok(data) => Frame::reply(Status::Data, tag, live, data).with_corr(tag),
                    Err(e) => {
                        let (code, detail) = engine_error_code(Error::from(e));
                        shared.count_error(code);
                        pipelined_frame(Status::Error, tag, live, error_body_bytes(code, detail))
                    }
                };
                let _ = out.push(&reply.with_version(frame.version));
            }
            push_reply(
                out,
                &frame,
                Status::Flushed,
                live,
                count.to_be_bytes().to_vec(),
            );
        }
        Op::CmacTag => {
            if !session_ok(out, shared, &frame, live) {
                return Flow::Continue;
            }
            let session = slot.session_mut().expect("checked live");
            let tag = session.cmac_tag(&frame.payload);
            push_reply(out, &frame, Status::Ok, live, tag.to_vec());
        }
        Op::CmacVerify => {
            if !session_ok(out, shared, &frame, live) {
                return Flow::Continue;
            }
            if frame.payload.len() < 16 {
                push_error(
                    out,
                    shared,
                    &frame,
                    ErrorCode::Malformed,
                    frame.payload.len() as u32,
                    live,
                );
                return Flow::Continue;
            }
            let session = slot.session_mut().expect("checked live");
            let tag: [u8; 16] = frame.payload[..16].try_into().expect("16-byte slice");
            if session.cmac_verify(&frame.payload[16..], &tag) {
                push_reply(out, &frame, Status::Ok, live, Vec::new());
            } else {
                push_error(out, shared, &frame, ErrorCode::BadTag, 0, live);
            }
        }
        Op::Seal | Op::Open => {
            if !session_ok(out, shared, &frame, live) {
                return Flow::Continue;
            }
            let Some((nonce, aad, body)) = split_aead_payload(&frame.payload) else {
                push_error(
                    out,
                    shared,
                    &frame,
                    ErrorCode::Malformed,
                    frame.payload.len() as u32,
                    live,
                );
                return Flow::Continue;
            };
            let session = slot.session_mut().expect("checked live");
            if op == Op::Seal {
                let sealed = session.seal(&nonce, aad, body);
                push_reply(out, &frame, Status::Ok, live, sealed);
            } else {
                match session.open(&nonce, aad, body) {
                    Ok(plaintext) => push_reply(out, &frame, Status::Ok, live, plaintext),
                    Err(aead::Error::TagMismatch) => {
                        push_error(out, shared, &frame, ErrorCode::TagMismatch, 0, live);
                    }
                    Err(_) => {
                        push_error(
                            out,
                            shared,
                            &frame,
                            ErrorCode::Malformed,
                            frame.payload.len() as u32,
                            live,
                        );
                    }
                }
            }
        }
        Op::WrapKey | Op::UnwrapKey => {
            if !session_ok(out, shared, &frame, live) {
                return Flow::Continue;
            }
            let session = slot.session_mut().expect("checked live");
            let result = if op == Op::WrapKey {
                session.wrap_key(&frame.payload)
            } else {
                session.unwrap_key(&frame.payload)
            };
            match result {
                Ok(data) => push_reply(out, &frame, Status::Ok, live, data),
                Err(aead::Error::TagMismatch) => {
                    push_error(out, shared, &frame, ErrorCode::TagMismatch, 0, live);
                }
                Err(_) => {
                    push_error(
                        out,
                        shared,
                        &frame,
                        ErrorCode::Malformed,
                        frame.payload.len() as u32,
                        live,
                    );
                }
            }
        }
        Op::XtsEncrypt | Op::XtsDecrypt => {
            if !session_ok(out, shared, &frame, live) {
                return Flow::Continue;
            }
            let Some((sector_base, sector_size, body)) = split_xts_payload(&frame.payload) else {
                push_error(
                    out,
                    shared,
                    &frame,
                    ErrorCode::Malformed,
                    frame.payload.len() as u32,
                    live,
                );
                return Flow::Continue;
            };
            if sector_size < 16 {
                push_error(
                    out,
                    shared,
                    &frame,
                    ErrorCode::BadSectorSize,
                    sector_size,
                    live,
                );
                return Flow::Continue;
            }
            if body.is_empty() || body.len() % sector_size as usize != 0 {
                push_error(
                    out,
                    shared,
                    &frame,
                    ErrorCode::BadSectorSize,
                    body.len() as u32,
                    live,
                );
                return Flow::Continue;
            }
            let session = slot.session_mut().expect("checked live");
            match session.xts_apply(
                sector_base,
                sector_size as usize,
                body.to_vec(),
                op == Op::XtsDecrypt,
            ) {
                Ok(data) => push_reply(out, &frame, Status::Ok, live, data),
                // Unreachable after the validation above, but kept typed
                // rather than panicking in the event loop.
                Err(_) => {
                    push_error(
                        out,
                        shared,
                        &frame,
                        ErrorCode::BadSectorSize,
                        sector_size,
                        live,
                    );
                }
            }
        }
        _ => return engine_op(frame, op, slot, out, shared, live),
    }
    Flow::Continue
}

/// Splits an XTS payload — `sector_base: u64 BE` ‖ `sector_size: u32
/// BE` ‖ body — returning `None` when even the fixed header is missing.
fn split_xts_payload(payload: &[u8]) -> Option<(u64, u32, &[u8])> {
    let body = payload.get(12..)?;
    let sector_base = u64::from_be_bytes(payload[..8].try_into().ok()?);
    let sector_size = u32::from_be_bytes(payload[8..12].try_into().ok()?);
    Some((sector_base, sector_size, body))
}

/// Splits a SEAL/OPEN payload — 12-byte nonce ‖ `aad_len: u32 BE` ‖ AAD
/// ‖ body — returning `None` when the lengths cannot be honoured.
fn split_aead_payload(payload: &[u8]) -> Option<([u8; aead::NONCE_LEN], &[u8], &[u8])> {
    let rest = payload.get(aead::NONCE_LEN + 4..)?;
    let nonce: [u8; aead::NONCE_LEN] = payload[..aead::NONCE_LEN].try_into().ok()?;
    let aad_len = u32::from_be_bytes(
        payload[aead::NONCE_LEN..aead::NONCE_LEN + 4]
            .try_into()
            .ok()?,
    ) as usize;
    if aad_len > rest.len() {
        return None;
    }
    let (aad, body) = rest.split_at(aad_len);
    Some((nonce, aad, body))
}

/// The five engine ops: IV split, mode mapping, and the three service
/// disciplines — immediate (v1 and bulk), pipelined (v2), deferred.
fn engine_op(
    mut frame: Frame,
    op: Op,
    slot: &mut SessionSlot,
    out: &mut OutBuf,
    shared: &Shared,
    live: u32,
) -> Flow {
    if !session_ok(out, shared, &frame, live) {
        return Flow::Continue;
    }
    let payload = std::mem::take(&mut frame.payload);
    let (iv, data) = if op.takes_iv() {
        if payload.len() < 16 {
            push_error(
                out,
                shared,
                &frame,
                ErrorCode::Malformed,
                payload.len() as u32,
                live,
            );
            return Flow::Continue;
        }
        let iv: [u8; 16] = payload[..16].try_into().expect("16-byte slice");
        (iv, payload[16..].to_vec())
    } else {
        ([0u8; 16], payload)
    };
    let mode = op
        .engine_mode(iv)
        .expect("dispatch routes only engine ops here");
    let session = slot.session_mut().expect("checked live");

    if frame.flags & FLAG_DEFER != 0 {
        match session.defer(frame.corr, mode, data) {
            Ok(_) => push_reply(out, &frame, Status::Accepted, live, Vec::new()),
            Err(e) => push_engine_error(out, shared, &frame, Error::from(e), live),
        }
        return Flow::Continue;
    }

    // v1 immediates run inline to keep their in-order reply contract
    // (the session still picks its bitsliced bulk lane internally). v2
    // traffic is pipelined: the session routes small jobs to its engine
    // queue and bulk jobs to the worker pool, so the event loop never
    // runs bulk crypto on its own thread.
    if frame.version < PROTOCOL_V2 {
        match session.execute(mode, data) {
            Ok(result) => push_reply(out, &frame, Status::Ok, live, result),
            Err(e) => push_engine_error(out, shared, &frame, e, live),
        }
        return Flow::Continue;
    }

    // v2 pipelined: submit now, reply at completion (collect_pipelined
    // runs after the dispatch batch). A full queue is not Busy yet —
    // draining completions frees slots, so the client only sees Busy
    // when the queue is full of genuinely *unfinished* work (deferred
    // jobs it has not flushed).
    if session.in_flight() + session.outstanding() >= session.queue_capacity() {
        collect_session(session, out, shared);
    }
    match session.submit(frame.corr, mode, data) {
        Ok(_) => {
            shared.inflight.add(1);
        }
        Err(e) => push_engine_error(out, shared, &frame, Error::from(e), live),
    }
    Flow::Continue
}

/// Session gate for ops that need one: queues `NoSession` /
/// `StaleSession` itself and returns `false` so the caller just
/// continues. (Matches the PR 3 semantics: the error's `session` field
/// carries the *live* id so the client can resynchronise.)
fn session_ok(out: &mut OutBuf, shared: &Shared, frame: &Frame, live: u32) -> bool {
    if live == 0 {
        push_error(out, shared, frame, ErrorCode::NoSession, 0, 0);
        return false;
    }
    if frame.session != live {
        push_error(out, shared, frame, ErrorCode::StaleSession, live, live);
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MAX_FRAME_LEN;
    use crate::session::BULK_THRESHOLD;

    fn tiny_config() -> ServiceConfig {
        ServiceConfig::builder()
            .farm(&[BackendSpec::Software])
            .queue_capacity(2)
            .max_connections(2)
            .idle_timeout(Duration::from_millis(200))
            .event_threads(1)
            .build()
            .expect("tiny config is valid")
    }

    fn tiny_server() -> ServiceHandle {
        Server::new(tiny_config())
            .spawn("127.0.0.1:0")
            .expect("bind ephemeral port")
    }

    fn call(stream: &TcpStream, frame: &Frame) -> Frame {
        let mut w = stream;
        frame.write_to(&mut w).unwrap();
        let mut r = stream;
        Frame::read_from(&mut r).unwrap()
    }

    #[test]
    fn idle_timeout_detail_saturates_instead_of_wrapping() {
        assert_eq!(idle_timeout_detail(Duration::from_millis(200)), 200);
        assert_eq!(
            idle_timeout_detail(Duration::from_millis(u64::from(u32::MAX))),
            u32::MAX
        );
        // One past the boundary used to wrap to 0; now it pins.
        assert_eq!(
            idle_timeout_detail(Duration::from_millis(u64::from(u32::MAX) + 1)),
            u32::MAX
        );
        assert_eq!(
            idle_timeout_detail(Duration::from_secs(100 * 24 * 3600)),
            u32::MAX
        );
    }

    #[test]
    fn ping_echoes_and_shutdown_joins_cleanly() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let reply = call(&stream, &Frame::request(Op::Ping, 0, 41, 0, vec![1, 2, 3]));
        assert_eq!(reply.status(), Some(Status::Ok));
        assert_eq!(reply.seq, 41);
        assert_eq!(reply.corr, 41);
        assert_eq!(reply.version, PROTOCOL_V2);
        assert_eq!(reply.payload, vec![1, 2, 3]);
        server.shutdown();
        // After shutdown the port no longer accepts (the goodbye may or
        // may not arrive first depending on scheduling, so only the
        // join mattered here).
    }

    #[test]
    fn v1_clients_get_v1_replies() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let reply = call(&stream, &Frame::request_v1(Op::Ping, 0, 9, 0, vec![7]));
        assert_eq!(reply.version, PROTOCOL_V1);
        assert_eq!(reply.status(), Some(Status::Ok));
        assert_eq!(reply.seq, 9);
        assert_eq!(reply.payload, vec![7]);
        server.shutdown();
    }

    #[test]
    fn crypto_before_set_key_is_a_typed_no_session_error() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let reply = call(
            &stream,
            &Frame::request(Op::EcbEncrypt, 0, 7, 0, vec![0u8; 16]),
        );
        assert_eq!(reply.error_body(), Some((ErrorCode::NoSession, 0)));
        // The connection survives a typed error: ping still answers.
        let reply = call(&stream, &Frame::request(Op::Ping, 0, 8, 0, Vec::new()));
        assert_eq!(reply.status(), Some(Status::Ok));
        // Both requests and the error all landed in the registry.
        let snap = server.registry().snapshot();
        assert_eq!(snap.counter("service.op.ping.requests"), Some(1));
        assert_eq!(snap.counter("service.op.ecb_encrypt.requests"), Some(1));
        assert_eq!(snap.counter("service.error.no_session"), Some(1));
        server.shutdown();
    }

    #[test]
    fn bad_version_gets_a_typed_reply_then_close() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let evil = Frame::request(Op::Ping, 0, 1, 0, Vec::new()).with_version(9);
        let reply = call(&stream, &evil);
        assert_eq!(reply.error_body(), Some((ErrorCode::BadVersion, 9)));
        // The server closed: the next read sees EOF.
        let mut r = &stream;
        assert!(Frame::read_from(&mut r).is_err());
        server.shutdown();
    }

    #[test]
    fn oversized_frames_are_refused_with_a_typed_goodbye() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut w = &stream;
        w.write_all(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes())
            .unwrap();
        let mut r = &stream;
        let reply = Frame::read_from(&mut r).unwrap();
        let (code, detail) = reply.error_body().unwrap();
        assert_eq!(code, ErrorCode::FrameTooLarge);
        assert_eq!(detail as usize, MAX_FRAME_LEN + 1);
        server.shutdown();
    }

    #[test]
    fn admission_cap_refuses_excess_connections_typed() {
        let server = tiny_server();
        let a = TcpStream::connect(server.local_addr()).unwrap();
        let b = TcpStream::connect(server.local_addr()).unwrap();
        // Make sure both are admitted before the third knocks.
        call(&a, &Frame::request(Op::Ping, 0, 1, 0, Vec::new()));
        call(&b, &Frame::request(Op::Ping, 0, 1, 0, Vec::new()));
        let c = TcpStream::connect(server.local_addr()).unwrap();
        let mut r = &c;
        let reply = Frame::read_from(&mut r).unwrap();
        assert_eq!(reply.error_body(), Some((ErrorCode::TooManyConnections, 2)));
        let snap = server.registry().snapshot();
        assert_eq!(snap.counter("service.admission.refused"), Some(1));
        assert_eq!(snap.counter("service.connections.served"), Some(2));
        server.shutdown();
    }

    #[test]
    fn idle_connections_get_a_typed_timeout() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut r = &stream;
        let reply = Frame::read_from(&mut r).unwrap();
        let (code, detail) = reply.error_body().unwrap();
        assert_eq!(code, ErrorCode::IdleTimeout);
        assert_eq!(detail, 200);
        server.shutdown();
    }

    #[test]
    fn get_stats_needs_no_session_and_rejects_a_payload() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let reply = call(&stream, &Frame::request(Op::GetStats, 0, 1, 0, Vec::new()));
        assert_eq!(reply.status(), Some(Status::Ok));
        let json = String::from_utf8(reply.payload).unwrap();
        assert!(json.contains("\"schema\":\"telemetry/1\""));
        assert!(json.contains("service.op.get_stats.requests"));

        let reply = call(&stream, &Frame::request(Op::GetStats, 0, 2, 0, vec![1]));
        assert_eq!(reply.error_body(), Some((ErrorCode::Malformed, 1)));
        server.shutdown();
    }

    /// Builds a SEAL/OPEN payload: nonce ‖ aad_len ‖ aad ‖ body.
    fn aead_payload(nonce: &[u8; 12], aad: &[u8], body: &[u8]) -> Vec<u8> {
        let mut p = Vec::with_capacity(16 + aad.len() + body.len());
        p.extend_from_slice(nonce);
        p.extend_from_slice(&(aad.len() as u32).to_be_bytes());
        p.extend_from_slice(aad);
        p.extend_from_slice(body);
        p
    }

    #[test]
    fn set_key_rejects_bad_lengths_with_a_typed_error() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        for len in [0usize, 15, 17, 23, 31, 33] {
            let reply = call(
                &stream,
                &Frame::request(Op::SetKey, 0, 1, 0, vec![0u8; len]),
            );
            assert_eq!(
                reply.error_body(),
                Some((ErrorCode::BadKeyLength, len as u32)),
                "len {len}"
            );
        }
        // All three AES key sizes key a session.
        for len in [16usize, 24, 32] {
            let reply = call(
                &stream,
                &Frame::request(Op::SetKey, 0, 2, 0, vec![7u8; len]),
            );
            assert_eq!(reply.status(), Some(Status::Ok), "len {len}");
            assert_ne!(reply.session, 0);
        }
        server.shutdown();
    }

    #[test]
    fn seal_open_wrap_unwrap_over_the_wire_with_a_256_bit_key() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let key: Vec<u8> = (0..32u8).collect();
        let reply = call(&stream, &Frame::request(Op::SetKey, 0, 1, 0, key));
        assert_eq!(reply.status(), Some(Status::Ok));
        let sid = reply.session;

        // SEAL with AAD, then OPEN the result back.
        let nonce = [3u8; 12];
        let sealed = call(
            &stream,
            &Frame::request(
                Op::Seal,
                0,
                2,
                sid,
                aead_payload(&nonce, b"header", b"secret payload"),
            ),
        );
        assert_eq!(sealed.status(), Some(Status::Ok));
        assert_eq!(sealed.payload.len(), 14 + 16);
        let opened = call(
            &stream,
            &Frame::request(
                Op::Open,
                0,
                3,
                sid,
                aead_payload(&nonce, b"header", &sealed.payload),
            ),
        );
        assert_eq!(opened.status(), Some(Status::Ok));
        assert_eq!(opened.payload, b"secret payload");

        // A flipped ciphertext bit is a typed TagMismatch.
        let mut tampered = sealed.payload.clone();
        tampered[0] ^= 0x01;
        let reply = call(
            &stream,
            &Frame::request(
                Op::Open,
                0,
                4,
                sid,
                aead_payload(&nonce, b"header", &tampered),
            ),
        );
        assert_eq!(reply.error_body(), Some((ErrorCode::TagMismatch, 0)));

        // WRAP a session key and UNWRAP it back.
        let secret = vec![0xC4u8; 16];
        let wrapped = call(
            &stream,
            &Frame::request(Op::WrapKey, 0, 5, sid, secret.clone()),
        );
        assert_eq!(wrapped.status(), Some(Status::Ok));
        assert_eq!(wrapped.payload.len(), 24);
        let unwrapped = call(
            &stream,
            &Frame::request(Op::UnwrapKey, 0, 6, sid, wrapped.payload.clone()),
        );
        assert_eq!(unwrapped.status(), Some(Status::Ok));
        assert_eq!(unwrapped.payload, secret);
        let mut bad = wrapped.payload;
        bad[1] ^= 0x80;
        let reply = call(&stream, &Frame::request(Op::UnwrapKey, 0, 7, sid, bad));
        assert_eq!(reply.error_body(), Some((ErrorCode::TagMismatch, 0)));

        let snap = server.registry().snapshot();
        assert_eq!(snap.counter("service.op.seal.requests"), Some(1));
        assert_eq!(snap.counter("service.op.open.requests"), Some(2));
        assert_eq!(snap.counter("service.error.tag_mismatch"), Some(2));
        server.shutdown();
    }

    #[test]
    fn malformed_payloads_on_the_aead_ops_are_typed_errors() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let reply = call(&stream, &Frame::request(Op::SetKey, 0, 1, 0, vec![0u8; 16]));
        let sid = reply.session;

        // SEAL: shorter than nonce + aad_len header.
        let reply = call(&stream, &Frame::request(Op::Seal, 0, 2, sid, vec![0u8; 15]));
        assert_eq!(reply.error_body(), Some((ErrorCode::Malformed, 15)));
        // SEAL: declared AAD length overruns the payload.
        let mut overrun = aead_payload(&[0u8; 12], b"", b"x");
        overrun[12..16].copy_from_slice(&100u32.to_be_bytes());
        let len = overrun.len() as u32;
        let reply = call(&stream, &Frame::request(Op::Seal, 0, 3, sid, overrun));
        assert_eq!(reply.error_body(), Some((ErrorCode::Malformed, len)));
        // OPEN: body shorter than one tag.
        let short = aead_payload(&[0u8; 12], b"", &[0u8; 15]);
        let len = short.len() as u32;
        let reply = call(&stream, &Frame::request(Op::Open, 0, 4, sid, short));
        assert_eq!(reply.error_body(), Some((ErrorCode::Malformed, len)));
        // WRAP: under two semiblocks / not a multiple of 8.
        let reply = call(
            &stream,
            &Frame::request(Op::WrapKey, 0, 5, sid, vec![0; 12]),
        );
        assert_eq!(reply.error_body(), Some((ErrorCode::Malformed, 12)));
        // UNWRAP: an impossible blob length.
        let reply = call(
            &stream,
            &Frame::request(Op::UnwrapKey, 0, 6, sid, vec![0; 16]),
        );
        assert_eq!(reply.error_body(), Some((ErrorCode::Malformed, 16)));
        // The connection survives all of it.
        let reply = call(&stream, &Frame::request(Op::Ping, 0, 7, 0, Vec::new()));
        assert_eq!(reply.status(), Some(Status::Ok));
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_complete_and_correlate() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let key_reply = call(&stream, &Frame::request(Op::SetKey, 0, 1, 0, vec![0u8; 16]));
        assert_eq!(key_reply.status(), Some(Status::Ok));
        let sid = key_reply.session;

        // Submit a burst without reading a single reply.
        let depth = 24u32;
        let mut w = &stream;
        for i in 0..depth {
            Frame::request(Op::EcbEncrypt, 0, 100 + i, sid, vec![0u8; 16])
                .with_corr(1000 + i)
                .write_to(&mut w)
                .unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        let mut r = &stream;
        for _ in 0..depth {
            let reply = Frame::read_from(&mut r).unwrap();
            assert_eq!(reply.status(), Some(Status::Ok), "{:?}", reply.error_body());
            // AES-128 all-zero KAT first byte.
            assert_eq!(reply.payload[0], 0x66);
            assert!(
                (1000..1000 + depth).contains(&reply.corr),
                "stray corr {}",
                reply.corr
            );
            assert!(seen.insert(reply.corr), "duplicate corr {}", reply.corr);
        }
        let snap = server.registry().snapshot();
        assert_eq!(snap.gauge("service.pipeline.inflight"), Some(0));
        assert!(snap.counter("service.op.ecb_encrypt.requests") >= Some(u64::from(depth)));
        server.shutdown();
    }

    /// Bulk v2 requests ride the worker-pool lane: the reply arrives via
    /// the wake pipe + completion sweep rather than the inline dispatch
    /// path, and the pool's worker gauge becomes visible in GET_STATS.
    #[test]
    fn bulk_pipelined_requests_ride_the_pool_and_wake_the_shard() {
        let mut config = tiny_config();
        config.queue_capacity = 16;
        config.elastic = Some(ResizePolicy::default());
        let server = Server::new(config).spawn("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let key_reply = call(&stream, &Frame::request(Op::SetKey, 0, 1, 0, vec![0u8; 16]));
        assert_eq!(key_reply.status(), Some(Status::Ok));
        let sid = key_reply.session;

        // Well past BULK_THRESHOLD so every request takes the pool lane.
        let bulk = vec![0u8; BULK_THRESHOLD * 16];
        let depth = 8u32;
        let mut w = &stream;
        for i in 0..depth {
            Frame::request(Op::EcbEncrypt, 0, 100 + i, sid, bulk.clone())
                .with_corr(2000 + i)
                .write_to(&mut w)
                .unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        let mut r = &stream;
        for _ in 0..depth {
            let reply = Frame::read_from(&mut r).unwrap();
            assert_eq!(reply.status(), Some(Status::Ok), "{:?}", reply.error_body());
            assert_eq!(reply.payload.len(), bulk.len());
            // All-zero plaintext: every block is the AES-128 zero KAT.
            assert_eq!(reply.payload[0], 0x66);
            let first = &reply.payload[..16];
            assert!(reply.payload.chunks_exact(16).all(|b| b == first));
            assert!(seen.insert(reply.corr), "duplicate corr {}", reply.corr);
        }
        let snap = server.registry().snapshot();
        assert_eq!(snap.gauge("service.pipeline.inflight"), Some(0));
        assert!(
            snap.gauge("engine.workers").unwrap_or(0) >= 1,
            "bulk traffic must have spun up pool workers"
        );
        // The pool (not the inline lane) must have run the jobs: the
        // only engine-counted work this test generates is the bulk
        // bursts, and they all land on the pool's completion counter.
        assert!(
            snap.counter("engine.jobs.completed").unwrap_or(0) >= u64::from(depth),
            "bulk v2 jobs must complete through the worker pool"
        );
        server.shutdown();
    }

    #[test]
    fn builder_rejects_each_contradiction_with_a_typed_error() {
        assert_eq!(
            ServiceConfig::builder().farm(&[]).build().unwrap_err(),
            ConfigError::EmptyFarm
        );
        assert_eq!(
            ServiceConfig::builder()
                .event_threads(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroShards
        );
        assert_eq!(
            ServiceConfig::builder()
                .queue_capacity(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroQueueCapacity
        );
        assert_eq!(
            ServiceConfig::builder()
                .max_connections(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroConnections
        );
        let contradictory = ResizePolicy {
            min_workers: 3,
            max_workers: 2,
            ..ResizePolicy::default()
        };
        assert_eq!(
            ServiceConfig::builder()
                .elastic(contradictory)
                .build()
                .unwrap_err(),
            ConfigError::ElasticBounds {
                min_workers: 3,
                max_workers: 2
            }
        );
        let zero_floor = ResizePolicy {
            min_workers: 0,
            ..ResizePolicy::default()
        };
        assert!(matches!(
            ServiceConfig::builder().elastic(zero_floor).build(),
            Err(ConfigError::ElasticBounds { min_workers: 0, .. })
        ));
        // The defaults and a fully-specified valid config both pass.
        assert!(ServiceConfig::builder().build().is_ok());
        let built = ServiceConfig::builder()
            .farm(&[BackendSpec::Ttable])
            .queue_capacity(7)
            .max_connections(9)
            .idle_timeout(Duration::from_secs(3))
            .event_threads(2)
            .elastic(ResizePolicy::default())
            .build()
            .unwrap();
        assert_eq!(built.queue_capacity, 7);
        assert_eq!(built.max_connections, 9);
        assert_eq!(built.event_threads, 2);
        assert!(built.elastic.is_some());
    }

    #[test]
    fn set_key_wrapped_rekeys_from_a_blob_wrapped_under_the_live_session() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        // Key the KEK session, wrap a fresh data key under it.
        let kek_reply = call(&stream, &Frame::request(Op::SetKey, 0, 1, 0, vec![9u8; 16]));
        assert_eq!(kek_reply.status(), Some(Status::Ok));
        let kek_sid = kek_reply.session;
        let data_key: Vec<u8> = (0..16u8).collect();
        let wrapped = call(
            &stream,
            &Frame::request(Op::WrapKey, 0, 2, kek_sid, data_key.clone()),
        );
        assert_eq!(wrapped.status(), Some(Status::Ok));

        // Re-key from the wrapped blob: the reply carries a fresh
        // session id, and the session now behaves exactly as if the raw
        // data key had been sent with SET_KEY.
        let rekeyed = call(
            &stream,
            &Frame::request(Op::SetKeyWrapped, 0, 3, kek_sid, wrapped.payload.clone()),
        );
        assert_eq!(rekeyed.status(), Some(Status::Ok));
        let sid = rekeyed.session;
        assert_ne!(sid, 0);
        assert_ne!(sid, kek_sid);
        let ct = call(
            &stream,
            &Frame::request(Op::EcbEncrypt, 0, 4, sid, vec![0u8; 16]),
        );
        assert_eq!(ct.status(), Some(Status::Ok));
        let expected = crate::session::tests_expected_ecb(&data_key, &[0u8; 16]);
        assert_eq!(ct.payload, expected);

        // A tampered blob is a typed TagMismatch and leaves the current
        // session live (the next request still answers under `sid`).
        let mut bad = wrapped.payload.clone();
        bad[0] ^= 0x40;
        let reply = call(&stream, &Frame::request(Op::SetKeyWrapped, 0, 5, sid, bad));
        assert_eq!(reply.error_body(), Some((ErrorCode::TagMismatch, 0)));
        let reply = call(&stream, &Frame::request(Op::Ping, 0, 6, sid, Vec::new()));
        assert_eq!(reply.status(), Some(Status::Ok));

        // An impossible blob length is Malformed; before any session it
        // is NoSession.
        let reply = call(
            &stream,
            &Frame::request(Op::SetKeyWrapped, 0, 7, sid, vec![0u8; 10]),
        );
        assert_eq!(reply.error_body(), Some((ErrorCode::Malformed, 10)));
        let fresh = TcpStream::connect(server.local_addr()).unwrap();
        let reply = call(
            &fresh,
            &Frame::request(Op::SetKeyWrapped, 0, 1, 0, vec![0u8; 24]),
        );
        assert_eq!(reply.error_body(), Some((ErrorCode::NoSession, 0)));
        server.shutdown();
    }

    #[test]
    fn set_key_wrapped_rejects_a_wrapped_non_key_with_bad_key_length() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let kek_reply = call(&stream, &Frame::request(Op::SetKey, 0, 1, 0, vec![9u8; 16]));
        let kek_sid = kek_reply.session;
        // 40 bytes wraps fine but is not an AES key length.
        let wrapped = call(
            &stream,
            &Frame::request(Op::WrapKey, 0, 2, kek_sid, vec![5u8; 40]),
        );
        assert_eq!(wrapped.status(), Some(Status::Ok));
        let reply = call(
            &stream,
            &Frame::request(Op::SetKeyWrapped, 0, 3, kek_sid, wrapped.payload),
        );
        assert_eq!(reply.error_body(), Some((ErrorCode::BadKeyLength, 40)));
        // The KEK session survived the rejection.
        let reply = call(
            &stream,
            &Frame::request(Op::Ping, 0, 4, kek_sid, Vec::new()),
        );
        assert_eq!(reply.status(), Some(Status::Ok));
        server.shutdown();
    }

    /// Builds an XTS payload: sector_base ‖ sector_size ‖ body.
    fn xts_payload(sector_base: u64, sector_size: u32, body: &[u8]) -> Vec<u8> {
        let mut p = Vec::with_capacity(12 + body.len());
        p.extend_from_slice(&sector_base.to_be_bytes());
        p.extend_from_slice(&sector_size.to_be_bytes());
        p.extend_from_slice(body);
        p
    }

    #[test]
    fn xts_wire_ops_roundtrip_and_match_the_session_lane() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let key: Vec<u8> = (100..132u8).collect();
        let reply = call(&stream, &Frame::request(Op::SetKey, 0, 1, 0, key.clone()));
        assert_eq!(reply.status(), Some(Status::Ok));
        let sid = reply.session;

        // Three 20-byte sectors exercise ciphertext stealing.
        let body: Vec<u8> = (0..60u8).collect();
        let ct = call(
            &stream,
            &Frame::request(Op::XtsEncrypt, 0, 2, sid, xts_payload(7, 20, &body)),
        );
        assert_eq!(ct.status(), Some(Status::Ok), "{:?}", ct.error_body());
        assert_eq!(ct.payload.len(), body.len());
        assert_ne!(ct.payload, body);
        let pt = call(
            &stream,
            &Frame::request(Op::XtsDecrypt, 0, 3, sid, xts_payload(7, 20, &ct.payload)),
        );
        assert_eq!(pt.status(), Some(Status::Ok));
        assert_eq!(pt.payload, body);

        // The wire op matches a locally-keyed XTS lane sector by sector.
        let local = crate::session::tests_expected_xts(&key, 7, 20, &body);
        assert_eq!(ct.payload, local);

        // Decrypting under the wrong sector base garbles the plaintext.
        let wrong = call(
            &stream,
            &Frame::request(Op::XtsDecrypt, 0, 4, sid, xts_payload(8, 20, &ct.payload)),
        );
        assert_eq!(wrong.status(), Some(Status::Ok));
        assert_ne!(wrong.payload, body);
        server.shutdown();
    }

    #[test]
    fn xts_wire_ops_reject_bad_geometry_with_typed_errors() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let reply = call(&stream, &Frame::request(Op::SetKey, 0, 1, 0, vec![0u8; 16]));
        let sid = reply.session;

        // Shorter than the fixed header is Malformed.
        let reply = call(
            &stream,
            &Frame::request(Op::XtsEncrypt, 0, 2, sid, vec![0u8; 11]),
        );
        assert_eq!(reply.error_body(), Some((ErrorCode::Malformed, 11)));
        // A sector size under one block names the offending size.
        let reply = call(
            &stream,
            &Frame::request(Op::XtsEncrypt, 0, 3, sid, xts_payload(0, 15, &[0u8; 30])),
        );
        assert_eq!(reply.error_body(), Some((ErrorCode::BadSectorSize, 15)));
        // An empty body and a ragged body both name the body length.
        let reply = call(
            &stream,
            &Frame::request(Op::XtsEncrypt, 0, 4, sid, xts_payload(0, 16, &[])),
        );
        assert_eq!(reply.error_body(), Some((ErrorCode::BadSectorSize, 0)));
        let reply = call(
            &stream,
            &Frame::request(Op::XtsDecrypt, 0, 5, sid, xts_payload(0, 16, &[0u8; 17])),
        );
        assert_eq!(reply.error_body(), Some((ErrorCode::BadSectorSize, 17)));
        // Before SET_KEY the ops are NoSession like every crypto op.
        let fresh = TcpStream::connect(server.local_addr()).unwrap();
        let reply = call(
            &fresh,
            &Frame::request(Op::XtsEncrypt, 0, 1, 0, xts_payload(0, 16, &[0u8; 16])),
        );
        assert_eq!(reply.error_body(), Some((ErrorCode::NoSession, 0)));
        server.shutdown();
    }
}

//! The threaded server loop: bounded accept, per-connection workers,
//! typed-error dispatch, idle timeouts and graceful drain-on-shutdown.
//!
//! Every connection gets one worker thread and one [`SessionSlot`]; the
//! acceptor thread admits connections up to
//! [`ServiceConfig::max_connections`] and refuses the rest with a typed
//! [`ErrorCode::TooManyConnections`] goodbye instead of a silent drop.
//! Workers poll their socket with a short read timeout so they can
//! observe the shutdown flag and the idle budget without a dedicated
//! timer thread; frames are reassembled incrementally
//! ([`Frame::parse_buffered`]) so a slow peer that trickles bytes never
//! desynchronises the stream.
//!
//! Every server owns a [`telemetry::Registry`]: per-opcode request
//! counters (`service.op.<op>.requests`), error-code tallies
//! (`service.error.<code>`), connection gauges, a request frame-size
//! histogram, admission refusals, and — because each session's engine is
//! built against the same registry — the full `engine.*` instrument set.
//! `GET_STATS` serialises one snapshot of that registry as the
//! `telemetry/1` JSON document; [`ServiceHandle::registry`] exposes the
//! same registry in-process for tests and load generators, so there is
//! exactly one counter path.
//!
//! Shutdown is graceful: the acceptor stops admitting, every worker
//! flushes its session's deferred jobs (delivering their
//! [`Status::Data`] replies), sends an [`ErrorCode::ShuttingDown`]
//! goodbye, and exits; [`ServiceHandle::shutdown`] joins the acceptor,
//! which joins every worker — no threads outlive the handle.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use engine::{BackendSpec, Error, SubmitError};
use telemetry::{Counter, Gauge, Registry};

use crate::protocol::{
    ErrorCode, Frame, Op, RecvError, Status, FLAG_DEFER, HEADER_LEN, PROTOCOL_VERSION,
};
use crate::session::SessionSlot;

/// How often idle workers wake to check the shutdown flag and idle
/// budget.
const POLL: Duration = Duration::from_millis(10);

/// How often the acceptor wakes when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Bucket upper bounds for the `service.frame.request_bytes` histogram
/// (whole frames, header included; the overflow bucket catches anything
/// up to `MAX_FRAME_LEN`).
const FRAME_SIZE_BOUNDS: [u64; 8] = [16, 64, 256, 1024, 4096, 16384, 65536, 262_144];

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Engine farm built for every session (each connection keys its
    /// own copy, so farms are not shared across clients).
    pub farm: Vec<BackendSpec>,
    /// Bound on each session's deferred-job queue; exceeding it earns a
    /// typed [`ErrorCode::Busy`] reply.
    pub queue_capacity: usize,
    /// Connection admission cap.
    pub max_connections: usize,
    /// How long a connection may sit without a complete request before
    /// the server sends [`ErrorCode::IdleTimeout`] and closes.
    pub idle_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            farm: vec![BackendSpec::Software; 4],
            queue_capacity: 32,
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// Counters and flags shared by the acceptor, the workers and the
/// handle.
struct Shared {
    config: ServiceConfig,
    registry: Registry,
    shutdown: AtomicBool,
    /// `service.connections.active` — connections currently served.
    active: Gauge,
    /// `service.connections.served` — connections admitted since start.
    served: Counter,
    /// `service.admission.refused` — connections bounced at the cap.
    refused: Counter,
}

impl Shared {
    /// Tallies `service.error.<code>` for a typed error reply.
    fn count_error(&self, code: ErrorCode) {
        self.registry
            .counter(&format!("service.error.{}", code.name()))
            .incr();
    }
}

/// The service entry point: configure, then [`Server::spawn`].
#[derive(Debug, Default)]
pub struct Server {
    config: ServiceConfig,
}

impl Server {
    /// A server with the given tuning knobs.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Server {
        Server { config }
    }

    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor thread. The returned handle owns every thread the
    /// server will ever start.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn<A: ToSocketAddrs>(self, addr: A) -> io::Result<ServiceHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let registry = Registry::new();
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            active: registry.gauge("service.connections.active"),
            served: registry.counter("service.connections.served"),
            refused: registry.counter("service.admission.refused"),
            config: self.config,
            registry,
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("service-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(ServiceHandle {
            addr: local,
            shared,
            acceptor: Some(acceptor),
        })
    }
}

/// Owning handle for a running server; dropping it shuts the server
/// down and joins every thread.
pub struct ServiceHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound address (with the resolved ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's telemetry registry — the same one `GET_STATS`
    /// snapshots, and the one every session engine publishes into.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// Connections currently being served.
    #[must_use]
    pub fn active_connections(&self) -> usize {
        self.shared.active.get().max(0) as usize
    }

    /// Connections admitted since the server started.
    #[must_use]
    pub fn connections_served(&self) -> u64 {
        self.shared.served.get()
    }

    /// Stops accepting, drains every connection's in-flight deferred
    /// jobs, sends each peer a typed goodbye, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("addr", &self.addr)
            .field("active", &self.active_connections())
            .finish()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                reap_finished(&mut workers);
                if shared.active.get() >= shared.config.max_connections as i64 {
                    refuse_connection(&stream, shared);
                    continue;
                }
                shared.active.add(1);
                shared.served.incr();
                let worker_shared = Arc::clone(shared);
                let spawned =
                    thread::Builder::new()
                        .name("service-worker".into())
                        .spawn(move || {
                            let _ = serve_connection(&stream, &worker_shared);
                            worker_shared.active.sub(1);
                        });
                match spawned {
                    Ok(handle) => workers.push(handle),
                    // The thread never started, so it cannot decrement.
                    Err(_) => {
                        shared.active.sub(1);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                reap_finished(&mut workers);
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
    for worker in workers {
        let _ = worker.join();
    }
}

/// Joins workers whose connections already ended, bounding the handle
/// list on long-lived servers.
fn reap_finished(workers: &mut Vec<JoinHandle<()>>) {
    let mut i = 0;
    while i < workers.len() {
        if workers[i].is_finished() {
            let _ = workers.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

/// Best-effort typed refusal for connections over the admission cap.
fn refuse_connection(mut stream: &TcpStream, shared: &Shared) {
    shared.refused.incr();
    shared.count_error(ErrorCode::TooManyConnections);
    let cap = shared.config.max_connections as u32;
    let goodbye = Frame::error(ErrorCode::TooManyConnections, cap, 0, 0);
    let _ = goodbye.write_to(&mut stream);
}

/// Whether the connection survives the request that was just answered.
enum Flow {
    Continue,
    Close,
}

/// Tallies and sends one typed error reply — every in-band error frame
/// leaves through here so `service.error.*` counts them all.
fn error_reply(
    mut stream: &TcpStream,
    shared: &Shared,
    code: ErrorCode,
    detail: u32,
    seq: u32,
    sid: u32,
) -> io::Result<()> {
    shared.count_error(code);
    Frame::error(code, detail, seq, sid).write_to(&mut stream)
}

/// The one place engine failures become wire error codes: submission
/// rejections keep their typed identity (`Busy` carries the capacity,
/// `RaggedLength` the offending length, a bad IV is a malformed
/// payload), and anything that failed *after* admission is a
/// [`ErrorCode::JobFailed`].
fn engine_error_reply(
    stream: &TcpStream,
    shared: &Shared,
    e: Error,
    seq: u32,
    sid: u32,
) -> io::Result<()> {
    let (code, detail) = match e {
        Error::Submit(SubmitError::Busy { capacity }) => (ErrorCode::Busy, capacity as u32),
        Error::Submit(SubmitError::RaggedLength { len }) => (ErrorCode::RaggedLength, len as u32),
        Error::Submit(SubmitError::BadIv { len }) => (ErrorCode::Malformed, len as u32),
        Error::Job(_) => (ErrorCode::JobFailed, 0),
    };
    error_reply(stream, shared, code, detail, seq, sid)
}

fn serve_connection(mut stream: &TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;
    let mut slot = SessionSlot::new();
    let mut inbuf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 4096];
    let mut idle = Duration::ZERO;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return drain_and_say_goodbye(stream, &mut slot, shared);
        }
        // Answer every complete frame already reassembled.
        loop {
            match Frame::parse_buffered(&mut inbuf) {
                Ok(Some(frame)) => {
                    idle = Duration::ZERO;
                    match dispatch(stream, frame, &mut slot, shared)? {
                        Flow::Continue => {}
                        Flow::Close => return Ok(()),
                    }
                }
                Ok(None) => break,
                Err(RecvError::TooLarge { len }) => {
                    let sid = live_session(&mut slot);
                    error_reply(stream, shared, ErrorCode::FrameTooLarge, len, 0, sid)?;
                    return Ok(());
                }
                Err(RecvError::TooShort { len }) => {
                    let sid = live_session(&mut slot);
                    error_reply(stream, shared, ErrorCode::Malformed, len, 0, sid)?;
                    return Ok(());
                }
                Err(RecvError::Io(e)) => return Err(e),
            }
        }
        match stream.read(&mut scratch) {
            Ok(0) => return Ok(()), // peer closed cleanly
            Ok(n) => inbuf.extend_from_slice(&scratch[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                idle += POLL;
                if idle >= shared.config.idle_timeout {
                    let detail = shared.config.idle_timeout.as_millis() as u32;
                    let sid = live_session(&mut slot);
                    error_reply(stream, shared, ErrorCode::IdleTimeout, detail, 0, sid)?;
                    return Ok(());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn live_session(slot: &mut SessionSlot) -> u32 {
    slot.session_mut().map_or(0, |s| s.id())
}

/// Flushes outstanding deferred jobs (their [`Status::Data`] replies
/// still carry the submitting request's `seq`) and sends the
/// shutting-down goodbye.
fn drain_and_say_goodbye(
    stream: &TcpStream,
    slot: &mut SessionSlot,
    shared: &Shared,
) -> io::Result<()> {
    if let Some(session) = slot.session_mut() {
        let sid = session.id();
        for (seq, result) in session.flush() {
            job_reply(stream, shared, seq, sid, result)?;
        }
    }
    let sid = live_session(slot);
    error_reply(stream, shared, ErrorCode::ShuttingDown, 0, 0, sid)
}

/// One drained job → one reply frame.
fn job_reply(
    mut stream: &TcpStream,
    shared: &Shared,
    seq: u32,
    sid: u32,
    result: Result<Vec<u8>, engine::JobError>,
) -> io::Result<()> {
    match result {
        Ok(data) => Frame::reply(Status::Data, seq, sid, data).write_to(&mut stream),
        Err(e) => engine_error_reply(stream, shared, Error::from(e), seq, sid),
    }
}

fn dispatch(
    mut stream: &TcpStream,
    frame: Frame,
    slot: &mut SessionSlot,
    shared: &Shared,
) -> io::Result<Flow> {
    let seq = frame.seq;
    shared
        .registry
        .histogram("service.frame.request_bytes", &FRAME_SIZE_BOUNDS)
        .record((HEADER_LEN + frame.payload.len()) as u64);
    if frame.version != PROTOCOL_VERSION {
        let sid = live_session(slot);
        error_reply(
            stream,
            shared,
            ErrorCode::BadVersion,
            u32::from(frame.version),
            seq,
            sid,
        )?;
        return Ok(Flow::Close); // framing may differ across versions
    }
    let Some(op) = frame.op() else {
        let sid = live_session(slot);
        error_reply(
            stream,
            shared,
            ErrorCode::BadOp,
            u32::from(frame.kind),
            seq,
            sid,
        )?;
        return Ok(Flow::Continue);
    };
    shared
        .registry
        .counter(&format!("service.op.{}.requests", op.name()))
        .incr();
    if frame.flags & FLAG_DEFER != 0 && !op.is_engine_op() {
        let sid = live_session(slot);
        error_reply(
            stream,
            shared,
            ErrorCode::DeferUnsupported,
            u32::from(op as u8),
            seq,
            sid,
        )?;
        return Ok(Flow::Continue);
    }

    match op {
        Op::Ping => {
            let sid = live_session(slot);
            Frame::reply(Status::Ok, seq, sid, frame.payload).write_to(&mut stream)?;
        }
        Op::GetStats => {
            if !frame.payload.is_empty() {
                let sid = live_session(slot);
                error_reply(
                    stream,
                    shared,
                    ErrorCode::Malformed,
                    frame.payload.len() as u32,
                    seq,
                    sid,
                )?;
                return Ok(Flow::Continue);
            }
            let sid = live_session(slot);
            let json = shared.registry.snapshot().to_json();
            Frame::reply(Status::Ok, seq, sid, json.into_bytes()).write_to(&mut stream)?;
        }
        Op::SetKey => {
            if frame.payload.len() != 16 {
                let sid = live_session(slot);
                error_reply(
                    stream,
                    shared,
                    ErrorCode::Malformed,
                    frame.payload.len() as u32,
                    seq,
                    sid,
                )?;
                return Ok(Flow::Continue);
            }
            let mut key = [0u8; 16];
            key.copy_from_slice(&frame.payload);
            let sid = slot.rekey(
                &key,
                &shared.config.farm,
                shared.config.queue_capacity,
                &shared.registry,
            );
            rijndael::zeroize::wipe_bytes(&mut key);
            // The reply carries the new id in the header only — key
            // material never appears in any reply payload.
            Frame::reply(Status::Ok, seq, sid, Vec::new()).write_to(&mut stream)?;
        }
        Op::Flush => {
            let Some(session) = checked_session(stream, slot, &frame, shared)? else {
                return Ok(Flow::Continue);
            };
            let sid = session.id();
            let results = session.flush();
            let count = results.len() as u32;
            for (job_seq, result) in results {
                job_reply(stream, shared, job_seq, sid, result)?;
            }
            Frame::reply(Status::Flushed, seq, sid, count.to_be_bytes().to_vec())
                .write_to(&mut stream)?;
        }
        Op::CmacTag => {
            let Some(session) = checked_session(stream, slot, &frame, shared)? else {
                return Ok(Flow::Continue);
            };
            let tag = session.cmac_tag(&frame.payload);
            Frame::reply(Status::Ok, seq, session.id(), tag.to_vec()).write_to(&mut stream)?;
        }
        Op::CmacVerify => {
            let Some(session) = checked_session(stream, slot, &frame, shared)? else {
                return Ok(Flow::Continue);
            };
            let sid = session.id();
            if frame.payload.len() < 16 {
                error_reply(
                    stream,
                    shared,
                    ErrorCode::Malformed,
                    frame.payload.len() as u32,
                    seq,
                    sid,
                )?;
                return Ok(Flow::Continue);
            }
            let tag: [u8; 16] = frame.payload[..16].try_into().expect("16-byte slice");
            if session.cmac_verify(&frame.payload[16..], &tag) {
                Frame::reply(Status::Ok, seq, sid, Vec::new()).write_to(&mut stream)?;
            } else {
                error_reply(stream, shared, ErrorCode::BadTag, 0, seq, sid)?;
            }
        }
        _ => return engine_op(stream, frame, op, slot, shared),
    }
    Ok(Flow::Continue)
}

/// The five engine ops: IV split, mode mapping, immediate vs deferred.
fn engine_op(
    mut stream: &TcpStream,
    frame: Frame,
    op: Op,
    slot: &mut SessionSlot,
    shared: &Shared,
) -> io::Result<Flow> {
    let seq = frame.seq;
    let Some(session) = checked_session(stream, slot, &frame, shared)? else {
        return Ok(Flow::Continue);
    };
    let sid = session.id();
    let (iv, data) = if op.takes_iv() {
        if frame.payload.len() < 16 {
            error_reply(
                stream,
                shared,
                ErrorCode::Malformed,
                frame.payload.len() as u32,
                seq,
                sid,
            )?;
            return Ok(Flow::Continue);
        }
        let iv: [u8; 16] = frame.payload[..16].try_into().expect("16-byte slice");
        (iv, frame.payload[16..].to_vec())
    } else {
        ([0u8; 16], frame.payload)
    };
    let mode = op
        .engine_mode(iv)
        .expect("dispatch routes only engine ops here");

    if frame.flags & FLAG_DEFER != 0 {
        match session.defer(seq, mode, data) {
            Ok(_) => Frame::reply(Status::Accepted, seq, sid, Vec::new()).write_to(&mut stream)?,
            Err(e) => engine_error_reply(stream, shared, Error::from(e), seq, sid)?,
        }
    } else {
        match session.execute(mode, data) {
            Ok(out) => Frame::reply(Status::Ok, seq, sid, out).write_to(&mut stream)?,
            Err(e) => engine_error_reply(stream, shared, e, seq, sid)?,
        }
    }
    Ok(Flow::Continue)
}

/// Session gate for ops that need one: answers `NoSession` /
/// `StaleSession` itself and returns `None` so the caller just
/// continues.
fn checked_session<'a>(
    stream: &TcpStream,
    slot: &'a mut SessionSlot,
    frame: &Frame,
    shared: &Shared,
) -> io::Result<Option<&'a mut crate::session::Session>> {
    let live = live_session(slot);
    if live == 0 {
        error_reply(stream, shared, ErrorCode::NoSession, 0, frame.seq, 0)?;
        return Ok(None);
    }
    if frame.session != live {
        error_reply(
            stream,
            shared,
            ErrorCode::StaleSession,
            live,
            frame.seq,
            live,
        )?;
        return Ok(None);
    }
    Ok(slot.session_mut())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::MAX_FRAME_LEN;
    use std::io::Write;

    fn tiny_server() -> ServiceHandle {
        Server::new(ServiceConfig {
            farm: vec![BackendSpec::Software],
            queue_capacity: 2,
            max_connections: 2,
            idle_timeout: Duration::from_millis(200),
        })
        .spawn("127.0.0.1:0")
        .expect("bind ephemeral port")
    }

    fn call(stream: &TcpStream, frame: &Frame) -> Frame {
        let mut w = stream;
        frame.write_to(&mut w).unwrap();
        let mut r = stream;
        Frame::read_from(&mut r).unwrap()
    }

    #[test]
    fn ping_echoes_and_shutdown_joins_cleanly() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let reply = call(&stream, &Frame::request(Op::Ping, 0, 41, 0, vec![1, 2, 3]));
        assert_eq!(reply.status(), Some(Status::Ok));
        assert_eq!(reply.seq, 41);
        assert_eq!(reply.payload, vec![1, 2, 3]);
        server.shutdown();
        // After shutdown the port no longer accepts (the goodbye may or
        // may not arrive first depending on scheduling, so only the
        // join mattered here).
    }

    #[test]
    fn crypto_before_set_key_is_a_typed_no_session_error() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let reply = call(
            &stream,
            &Frame::request(Op::EcbEncrypt, 0, 7, 0, vec![0u8; 16]),
        );
        assert_eq!(reply.error_body(), Some((ErrorCode::NoSession, 0)));
        // The connection survives a typed error: ping still answers.
        let reply = call(&stream, &Frame::request(Op::Ping, 0, 8, 0, Vec::new()));
        assert_eq!(reply.status(), Some(Status::Ok));
        // Both requests and the error all landed in the registry.
        let snap = server.registry().snapshot();
        assert_eq!(snap.counter("service.op.ping.requests"), Some(1));
        assert_eq!(snap.counter("service.op.ecb_encrypt.requests"), Some(1));
        assert_eq!(snap.counter("service.error.no_session"), Some(1));
        server.shutdown();
    }

    #[test]
    fn bad_version_gets_a_typed_reply_then_close() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut evil = Frame::request(Op::Ping, 0, 1, 0, Vec::new());
        evil.version = 9;
        let reply = call(&stream, &evil);
        assert_eq!(reply.error_body(), Some((ErrorCode::BadVersion, 9)));
        // The server closed: the next read sees EOF.
        let mut r = &stream;
        assert!(Frame::read_from(&mut r).is_err());
        server.shutdown();
    }

    #[test]
    fn oversized_frames_are_refused_with_a_typed_goodbye() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut w = &stream;
        w.write_all(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes())
            .unwrap();
        let mut r = &stream;
        let reply = Frame::read_from(&mut r).unwrap();
        let (code, detail) = reply.error_body().unwrap();
        assert_eq!(code, ErrorCode::FrameTooLarge);
        assert_eq!(detail as usize, MAX_FRAME_LEN + 1);
        server.shutdown();
    }

    #[test]
    fn admission_cap_refuses_excess_connections_typed() {
        let server = tiny_server();
        let a = TcpStream::connect(server.local_addr()).unwrap();
        let b = TcpStream::connect(server.local_addr()).unwrap();
        // Make sure both are admitted before the third knocks.
        call(&a, &Frame::request(Op::Ping, 0, 1, 0, Vec::new()));
        call(&b, &Frame::request(Op::Ping, 0, 1, 0, Vec::new()));
        let c = TcpStream::connect(server.local_addr()).unwrap();
        let mut r = &c;
        let reply = Frame::read_from(&mut r).unwrap();
        assert_eq!(reply.error_body(), Some((ErrorCode::TooManyConnections, 2)));
        let snap = server.registry().snapshot();
        assert_eq!(snap.counter("service.admission.refused"), Some(1));
        assert_eq!(snap.counter("service.connections.served"), Some(2));
        server.shutdown();
    }

    #[test]
    fn idle_connections_get_a_typed_timeout() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut r = &stream;
        let reply = Frame::read_from(&mut r).unwrap();
        let (code, detail) = reply.error_body().unwrap();
        assert_eq!(code, ErrorCode::IdleTimeout);
        assert_eq!(detail, 200);
        server.shutdown();
    }

    #[test]
    fn get_stats_needs_no_session_and_rejects_a_payload() {
        let server = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let reply = call(&stream, &Frame::request(Op::GetStats, 0, 1, 0, Vec::new()));
        assert_eq!(reply.status(), Some(Status::Ok));
        let json = String::from_utf8(reply.payload).unwrap();
        assert!(json.contains("\"schema\":\"telemetry/1\""));
        assert!(json.contains("service.op.get_stats.requests"));

        let reply = call(&stream, &Frame::request(Op::GetStats, 0, 2, 0, vec![1]));
        assert_eq!(reply.error_body(), Some((ErrorCode::Malformed, 1)));
        server.shutdown();
    }
}

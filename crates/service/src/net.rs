//! Minimal readiness polling over raw sockets — the std-only shim that
//! lets the event-driven server watch thousands of nonblocking
//! connections without any external crate.
//!
//! The workspace's hermetic policy (no registry dependencies) rules out
//! `mio`/`polling`, and std exposes no readiness API, so this module
//! declares the one libc entry point the server needs — `poll(2)` — as
//! an `extern "C"` import. std already links against the platform libc
//! on every supported target, so this adds no dependency; it is the
//! same move the `rijndael` crate made for its AVX2 intrinsics: a
//! single `#[allow(unsafe_code)]` module behind a crate-wide
//! `#![deny(unsafe_code)]`, with the unsafety confined to two FFI call
//! sites and audited by the tests below.
//!
//! Portability: the real implementation is `cfg(unix)`. Elsewhere the
//! same API degrades to a timed busy-poll fallback (every registered
//! socket reports ready after a short sleep), which keeps the crate
//! compiling and the server correct — nonblocking reads of a non-ready
//! socket just return `WouldBlock` — at the cost of idle CPU.

#![allow(unsafe_code)]

use std::io;
use std::time::Duration;

/// A raw socket descriptor (the `RawFd` of the unix socket APIs; a
/// dummy on other targets, where the fallback ignores it).
pub type Fd = i32;

/// Extracts the raw descriptor the poller needs from a socket.
#[cfg(unix)]
pub fn socket_fd<T: std::os::fd::AsRawFd>(socket: &T) -> Fd {
    socket.as_raw_fd()
}

/// Fallback descriptor extraction: the busy-poll path never
/// dereferences it.
#[cfg(not(unix))]
pub fn socket_fd<T>(_socket: &T) -> Fd {
    -1
}

/// One socket's readiness, reported by [`PollSet::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    /// The caller's token from [`PollSet::register`] (the server uses
    /// connection slot indices).
    pub token: usize,
    /// Bytes (or an incoming connection) can be read without blocking.
    pub readable: bool,
    /// The socket's send buffer has room.
    pub writable: bool,
    /// The peer hung up or the socket errored; the owner should read to
    /// EOF / drop the connection.
    pub error: bool,
}

#[cfg(unix)]
mod sys {
    use super::{Fd, Readiness};
    use std::io;

    // <poll.h> on every unix libc this workspace targets.
    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// `struct pollfd` — layout fixed by POSIX.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: Fd,
        pub events: i16,
        pub revents: i16,
    }

    #[cfg(target_pointer_width = "64")]
    type NfdsT = u64;
    #[cfg(not(target_pointer_width = "64"))]
    type NfdsT = u32;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
    }

    /// Blocks until a registered socket is ready or `timeout_ms`
    /// elapses, appending one [`Readiness`] per ready socket.
    pub fn poll_fds(
        fds: &mut [PollFd],
        tokens: &[usize],
        timeout_ms: i32,
        out: &mut Vec<Readiness>,
    ) -> io::Result<()> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd records for the duration of the call, and
        // the length passed is exactly the slice length. poll(2) writes
        // only the `revents` fields.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(()); // a signal; the caller just re-polls
            }
            return Err(err);
        }
        if rc == 0 {
            return Ok(()); // timeout
        }
        for (pfd, &token) in fds.iter().zip(tokens) {
            if pfd.revents == 0 {
                continue;
            }
            out.push(Readiness {
                token,
                readable: pfd.revents & POLLIN != 0,
                writable: pfd.revents & POLLOUT != 0,
                error: pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
            });
        }
        Ok(())
    }
}

/// A reusable level-triggered readiness set.
///
/// The server rebuilds the set each loop iteration ([`PollSet::clear`]
/// then [`PollSet::register`] per live connection) — with `poll(2)`
/// there is no kernel-side registration to amortise, and rebuilding
/// keeps the interest list trivially in sync with the connection table.
/// The internal buffers are reused across iterations, so a steady-state
/// loop does not allocate.
#[derive(Debug, Default)]
pub struct PollSet {
    #[cfg(unix)]
    fds: Vec<sys::PollFd>,
    tokens: Vec<usize>,
    ready: Vec<Readiness>,
}

impl PollSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> PollSet {
        PollSet::default()
    }

    /// Drops every registration (buffer capacity is kept).
    pub fn clear(&mut self) {
        #[cfg(unix)]
        self.fds.clear();
        self.tokens.clear();
    }

    /// Registered sockets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// `true` when nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Watches `fd`, reporting it back as `token`. At least one of
    /// `read`/`write` should be set; `error` conditions are always
    /// reported.
    pub fn register(&mut self, fd: Fd, token: usize, read: bool, write: bool) {
        #[cfg(unix)]
        {
            let mut events = 0i16;
            if read {
                events |= sys::POLLIN;
            }
            if write {
                events |= sys::POLLOUT;
            }
            self.fds.push(sys::PollFd {
                fd,
                events,
                revents: 0,
            });
        }
        #[cfg(not(unix))]
        let _ = (fd, read, write);
        self.tokens.push(token);
    }

    /// Waits up to `timeout` for readiness and returns the ready
    /// sockets (empty on timeout). The returned slice is valid until
    /// the next call.
    ///
    /// # Errors
    ///
    /// Fatal `poll(2)` failures (`EINVAL`, `ENOMEM`); interruption by a
    /// signal is not an error and returns an empty slice.
    pub fn poll(&mut self, timeout: Duration) -> io::Result<&[Readiness]> {
        self.ready.clear();
        let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
        #[cfg(unix)]
        {
            for pfd in &mut self.fds {
                pfd.revents = 0;
            }
            sys::poll_fds(&mut self.fds, &self.tokens, timeout_ms, &mut self.ready)?;
        }
        #[cfg(not(unix))]
        {
            // Busy-poll fallback: claim everything is ready after a
            // short sleep; nonblocking socket calls sort out the truth.
            std::thread::sleep(Duration::from_millis(timeout_ms.min(2) as u64));
            for &token in &self.tokens {
                self.ready.push(Readiness {
                    token,
                    readable: true,
                    writable: true,
                    error: false,
                });
            }
        }
        Ok(&self.ready)
    }
}

/// A self-pipe that wakes a [`PollSet::poll`] loop from another thread.
///
/// The event-driven server parks its shard threads in `poll(2)`; crypto
/// worker threads finishing a job have no socket to make readable, so
/// without help a completion would wait out the full poll timeout. The
/// classic fix is the *self-pipe trick*: the shard registers the read
/// end of a pipe in its poll set, and completers write one byte to the
/// write end — `poll` returns immediately, the shard drains the pipe and
/// services the finished session.
///
/// Built on [`std::os::unix::net::UnixStream::pair`] so no new FFI is
/// declared; both ends are nonblocking. A full pipe means a wake is
/// already pending, so `WouldBlock` on the write side is success. On
/// non-unix targets the type degrades to a no-op: the busy-poll fallback
/// already re-checks every connection each tick.
#[derive(Debug)]
pub struct WakePipe {
    #[cfg(unix)]
    read: std::os::unix::net::UnixStream,
    #[cfg(unix)]
    write: std::sync::Arc<std::os::unix::net::UnixStream>,
}

/// The cloneable waking half of a [`WakePipe`], handed to worker-pool
/// notifiers. Safe to call from any thread, never blocks.
#[derive(Debug, Clone)]
pub struct WakeNotifier {
    #[cfg(unix)]
    write: std::sync::Arc<std::os::unix::net::UnixStream>,
}

impl WakePipe {
    /// Opens the pipe. Returns `None` when the platform cannot provide
    /// one (socketpair exhaustion, non-unix targets) — callers fall back
    /// to timeout-based polling.
    #[must_use]
    pub fn new() -> Option<WakePipe> {
        #[cfg(unix)]
        {
            let (read, write) = std::os::unix::net::UnixStream::pair().ok()?;
            read.set_nonblocking(true).ok()?;
            write.set_nonblocking(true).ok()?;
            Some(WakePipe {
                read,
                write: std::sync::Arc::new(write),
            })
        }
        #[cfg(not(unix))]
        {
            Some(WakePipe {})
        }
    }

    /// The descriptor to [`PollSet::register`] for reads.
    #[must_use]
    pub fn fd(&self) -> Fd {
        #[cfg(unix)]
        {
            socket_fd(&self.read)
        }
        #[cfg(not(unix))]
        {
            -1
        }
    }

    /// A handle other threads use to wake this pipe's poller.
    #[must_use]
    pub fn notifier(&self) -> WakeNotifier {
        WakeNotifier {
            #[cfg(unix)]
            write: std::sync::Arc::clone(&self.write),
        }
    }

    /// Consumes every pending wake byte so the next `poll` blocks again.
    /// Call after the poll set reports the pipe readable.
    pub fn drain(&mut self) {
        #[cfg(unix)]
        {
            use std::io::Read;
            let mut buf = [0u8; 64];
            loop {
                match (&self.read).read(&mut buf) {
                    Ok(0) => break, // writer gone; nothing more to drain
                    Ok(_) => continue,
                    Err(_) => break, // WouldBlock: drained
                }
            }
        }
    }
}

impl WakeNotifier {
    /// Wakes the poller. A full pipe already guarantees a wake is
    /// pending, so every outcome is success; this never blocks.
    pub fn wake(&self) {
        #[cfg(unix)]
        {
            use std::io::Write;
            let _ = (&*self.write).write(&[1u8]);
        }
    }
}

/// Best-effort bump of the process `RLIMIT_NOFILE` soft limit to its
/// hard limit, returning the resulting soft limit. The event-driven
/// server holds one descriptor per connection, so the default soft
/// limit (often 1024) would cap admission far below the configured
/// connection budget. Failure is not an error — sandboxes routinely
/// deny `setrlimit` — the server simply admits fewer connections.
#[must_use]
pub fn raise_nofile_limit() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        #[repr(C)]
        struct RLimit {
            rlim_cur: u64,
            rlim_max: u64,
        }
        const RLIMIT_NOFILE: i32 = 7;
        extern "C" {
            fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
            fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
        }
        let mut lim = RLimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: `lim` is a valid, exclusively owned `#[repr(C)]`
        // rlimit record; getrlimit only writes into it.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return None;
        }
        if lim.rlim_cur < lim.rlim_max {
            let want = RLimit {
                rlim_cur: lim.rlim_max,
                rlim_max: lim.rlim_max,
            };
            // SAFETY: `want` is a valid rlimit record; setrlimit reads
            // it and mutates only process accounting state. EPERM just
            // leaves the old limit in place.
            if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
                lim.rlim_cur = lim.rlim_max;
            }
        }
        Some(lim.rlim_cur)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn poll_reports_pending_accepts_and_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();

        let mut set = PollSet::new();
        set.register(socket_fd(&listener), 0, true, false);
        // Nothing pending: a short poll times out empty (unix only; the
        // fallback reports everything ready by design).
        if cfg!(unix) {
            let ready = set.poll(Duration::from_millis(10)).unwrap();
            assert!(ready.is_empty(), "nothing connected yet: {ready:?}");
        }

        let mut client = TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut accepted = None;
        while accepted.is_none() && Instant::now() < deadline {
            let ready = set.poll(Duration::from_millis(50)).unwrap();
            if ready.iter().any(|r| r.token == 0 && r.readable) {
                let (stream, _) = listener.accept().unwrap();
                stream.set_nonblocking(true).unwrap();
                accepted = Some(stream);
            }
        }
        let mut server_side = accepted.expect("poll never reported the pending accept");

        client.write_all(b"ping").unwrap();
        let mut set = PollSet::new();
        set.register(socket_fd(&server_side), 7, true, true);
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < 4 && Instant::now() < deadline {
            let ready = set.poll(Duration::from_millis(50)).unwrap();
            let Some(r) = ready.iter().find(|r| r.token == 7) else {
                continue;
            };
            assert!(r.writable, "an idle socket's send buffer has room");
            if r.readable {
                let mut buf = [0u8; 16];
                match server_side.read(&mut buf) {
                    Ok(n) => got.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("read failed: {e}"),
                }
            }
        }
        assert_eq!(got, b"ping");
    }

    #[test]
    fn poll_reports_peer_hangup_as_error_or_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        drop(client);

        let mut set = PollSet::new();
        set.register(socket_fd(&server_side), 3, true, false);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            assert!(Instant::now() < deadline, "hangup never surfaced");
            let ready = set.poll(Duration::from_millis(50)).unwrap();
            let Some(r) = ready.iter().find(|r| r.token == 3) else {
                continue;
            };
            // Depending on the platform the hangup is POLLHUP, plain
            // POLLIN-with-EOF, or both; all collapse to "close it".
            if r.error {
                break;
            }
            if r.readable {
                let mut buf = [0u8; 8];
                match server_side.read(&mut buf) {
                    Ok(0) => break, // EOF
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(_) => break,
                }
            }
        }
    }

    #[test]
    fn wake_pipe_unblocks_a_parked_poll_from_another_thread() {
        let mut pipe = WakePipe::new().expect("platform provides a pipe");
        let notifier = pipe.notifier();
        let mut set = PollSet::new();
        set.register(pipe.fd(), 42, true, false);

        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            notifier.wake();
            notifier.wake(); // coalesces, never blocks
        });
        let start = Instant::now();
        let deadline = start + Duration::from_secs(5);
        let mut woken = false;
        while !woken && Instant::now() < deadline {
            let ready = set.poll(Duration::from_millis(250)).unwrap();
            woken = ready.iter().any(|r| r.token == 42 && r.readable);
        }
        waker.join().unwrap();
        assert!(woken, "wake byte never surfaced");
        if cfg!(unix) {
            assert!(
                start.elapsed() < Duration::from_millis(240),
                "poll should return on the wake, not the timeout"
            );
        }
        // Drained, the pipe goes quiet again.
        pipe.drain();
        if cfg!(unix) {
            let ready = set.poll(Duration::from_millis(10)).unwrap();
            assert!(ready.is_empty(), "{ready:?}");
        }
    }

    #[test]
    fn clear_reuses_the_set_and_limit_raise_is_best_effort() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut set = PollSet::new();
        set.register(socket_fd(&listener), 0, true, false);
        assert_eq!(set.len(), 1);
        set.clear();
        assert!(set.is_empty());
        set.register(socket_fd(&listener), 1, true, false);
        assert_eq!(set.len(), 1);
        let _ = set.poll(Duration::from_millis(1)).unwrap();

        // Must not panic or error out whatever the sandbox allows.
        if let Some(limit) = raise_nofile_limit() {
            assert!(limit > 0);
        }
    }
}

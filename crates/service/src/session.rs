//! Per-connection sessions: key management over an engine farm.
//!
//! A `SET_KEY` request creates a [`Session`]: a fresh [`Engine`] farm
//! keyed with the submitted key (every backend pays its real key-setup
//! cycles) plus a software [`TtableAes`] for the CMAC and key-wrap ops
//! and a dispatched [`Gcm`] lane for the authenticated-encryption ops.
//! Keys may be 16, 24 or 32 bytes (AES-128/192/256); the modeled IP
//! cores are AES-128-only, so longer keys divert their farm slots to
//! the software fallback backend. The key is never echoed on the wire
//! and the only raw copy kept is the worker pool's (it must key grown
//! and hot-swapped workers at runtime); when the session is dropped —
//! connection teardown, idle expiry, or a re-key replacing it — that
//! copy and the expanded schedules wipe themselves (`rijndael::zeroize`)
//! and the hardware backends reload an all-zero key.
//!
//! Every session engine publishes into the registry handed to
//! [`Session::new`] — the server passes its service-wide
//! [`telemetry::Registry`], so the `engine.core.*` counters a `GET_STATS`
//! reply carries aggregate over every session the server ever keyed.
//!
//! Deferred jobs ride the engine's bounded queue: [`Session::defer`]
//! surfaces [`SubmitError::Busy`] untranslated so the server can answer
//! `Busy` instead of queueing without limit, and [`Session::flush`]
//! drains results tagged with the sequence numbers of the requests that
//! submitted them.
//!
//! Pipelined (protocol v2) jobs ride the *same* bounded queue through a
//! separate lane: [`Session::submit`] tags a job with the request's
//! correlation id, and [`Session::collect`] drains the engine and
//! returns every finished pipelined result in **completion order** —
//! which across a multi-core farm is not submission order; that is the
//! out-of-order property the v2 wire format exists to carry. The two
//! lanes never mix: a drain triggered by either side stashes the other
//! side's finished jobs for its own collection call, so interleaving
//! pipelined, deferred and immediate traffic loses nothing.

use std::sync::Arc;

use engine::{
    BackendSpec, Engine, EngineBuilder, Error, JobError, JobId, Mode, PoolBuilder, ResizeAction,
    ResizePolicy, SubmitError, WorkerPool,
};
use rijndael::aead::{self, Aead, Gcm, Xts, NONCE_LEN};
use rijndael::dispatch::Kind;
use rijndael::modes::{Ctr, Ecb};
use rijndael::ttable::TtableAes;
use rijndael::{cmac, AutoCipher};
use telemetry::Registry;

/// Payload size (eight 16-byte blocks) from which immediate ECB/CTR
/// requests bypass the engine queue and run on the session's dispatched
/// bulk lane instead.
pub const BULK_THRESHOLD: usize = 8 * 16;

/// One keyed session: an engine farm, a CMAC cipher, a runtime-dispatched
/// bulk lane, and the bookkeeping for deferred jobs.
pub struct Session {
    id: u32,
    engine: Engine,
    mac: TtableAes,
    /// GCM lane for the SEAL/OPEN ops, keyed with the session key over
    /// the dispatch-selected cipher (the `Ttable` kind when the
    /// deployment is pinned to the batch-less `ip-core`).
    aead: Gcm<AutoCipher>,
    /// XTS lane for the sector-addressed wire ops. Single-key
    /// convention: both the data and tweak lanes are keyed with the
    /// session key (the wire carries exactly one key per session), so a
    /// client can reproduce the stream with
    /// `Xts::new(C::new(k), C::new(k))`.
    xts: Xts<AutoCipher>,
    /// Dispatched cipher for the bulk fast path: immediate ECB/CTR
    /// payloads of [`BULK_THRESHOLD`] bytes or more skip the engine
    /// queue and run here on whatever backend the startup micro-race
    /// picked (AES-NI where the CPU has it, the bitsliced planes
    /// otherwise). `None` when `RIJNDAEL_FORCE_BACKEND=ip-core` pins the
    /// whole deployment to the hardware model — bulk traffic then rides
    /// the engine farm like everything else.
    bulk: Option<AutoCipher>,
    /// Deferred jobs still in the engine queue: `(job, request seq)`.
    pending: Vec<(JobId, u32)>,
    /// Deferred jobs that were drained early because an immediate request
    /// forced a queue drain; delivered at the next flush.
    completed: Vec<(u32, Result<Vec<u8>, JobError>)>,
    /// Pipelined jobs still in the engine queue: `(job, correlation id)`.
    piped: Vec<(JobId, u32)>,
    /// Pipelined jobs finished by an earlier drain, in completion order,
    /// awaiting the next [`Session::collect`].
    piped_done: Vec<(u32, Result<Vec<u8>, JobError>)>,
    /// The thread worker pool behind the pipelined *bulk* lane: v2
    /// requests of [`BULK_THRESHOLD`] bytes or more run here, off the
    /// event-loop thread, so one large job no longer head-of-line-blocks
    /// every connection on the shard. Worker threads spawn lazily on the
    /// first such request, so small-traffic sessions cost none.
    pool: WorkerPool,
    /// Pool-lane jobs not yet collected: `(job, correlation id)`.
    pool_piped: Vec<(JobId, u32)>,
}

impl Session {
    /// Keys a new session: builds the engine farm, the CMAC/key-wrap
    /// cipher and the GCM lane from `key`, wiring the engine's telemetry
    /// into `registry`. The caller owns (and should wipe) its copy of
    /// the key bytes; this type keeps only expanded material, which
    /// self-wipes on drop.
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` is not 16, 24 or 32 bytes — the server
    /// validates lengths at the protocol boundary
    /// (`ErrorCode::BadKeyLength`) before constructing a session.
    #[must_use]
    pub fn new(
        id: u32,
        key: &[u8],
        farm: &[BackendSpec],
        queue_capacity: usize,
        registry: &Registry,
    ) -> Session {
        // The AEAD and XTS lanes always need a batch-capable software
        // cipher: when the deployment is pinned to ip-core the
        // dispatcher has no bulk selection, so they fall back to the
        // T-table kind.
        let aead_cipher = dispatched_cipher(key);
        Session {
            id,
            engine: EngineBuilder::new()
                .cores(farm)
                .capacity(queue_capacity)
                .registry(registry.clone())
                .build(key),
            mac: TtableAes::new(key).expect("key length validated by the caller"),
            aead: Gcm::new(aead_cipher),
            xts: Xts::new(dispatched_cipher(key), dispatched_cipher(key)),
            bulk: AutoCipher::new(key),
            pending: Vec::new(),
            completed: Vec::new(),
            piped: Vec::new(),
            piped_done: Vec::new(),
            pool: PoolBuilder::new()
                .cores(farm)
                .capacity(queue_capacity)
                .registry(registry.clone())
                .build(key),
            pool_piped: Vec::new(),
        }
    }

    /// Installs the completion callback the pool lane fires once per
    /// finished bulk job — the server points this at its shard's wake
    /// pipe so a parked `poll(2)` loop re-arms the connection without
    /// waiting out its timeout. Call after every re-key (a new session
    /// starts with no notifier).
    pub fn set_notifier(&self, notifier: Arc<dyn Fn() + Send + Sync>) {
        self.pool.set_notifier(notifier);
    }

    /// One elastic supervisor tick over the session's worker pool; see
    /// [`WorkerPool::autoscale_tick`]. Returns what changed, if anything.
    pub fn autoscale(&self, policy: &ResizePolicy) -> Option<ResizeAction> {
        self.pool.autoscale_tick(policy)
    }

    /// Waits (up to `timeout`) for every pool-lane bulk job still
    /// executing on the worker threads to finish, so a following
    /// [`Session::collect`] returns them. Returns `true` when the lane
    /// went quiet. The server's graceful-shutdown drain calls this
    /// before the goodbye frame — the pool lane of `collect` is
    /// non-blocking, and dropping the session mid-execution would
    /// silently discard an accepted request's reply.
    #[must_use]
    pub fn quiesce(&self, timeout: std::time::Duration) -> bool {
        self.pool.wait_idle_timeout(timeout)
    }

    /// The server-assigned session id carried in every frame.
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Deferred jobs not yet delivered (queued plus drained-early).
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.pending.len() + self.completed.len()
    }

    /// Pipelined jobs not yet delivered (queued plus drained-early, both
    /// lanes) — the per-session contribution to the server's in-flight
    /// gauge, and the server's cue to re-collect after a pool wakeup.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.piped.len() + self.piped_done.len() + self.pool_piped.len()
    }

    /// The engine's queue bound (the `Busy` detail value).
    #[must_use]
    pub fn queue_capacity(&self) -> usize {
        self.engine.capacity()
    }

    /// Runs one operation to completion and returns its output.
    ///
    /// ECB and CTR payloads of [`BULK_THRESHOLD`] bytes or more take the
    /// bulk lane: the session's dispatched cipher processes them inline
    /// through its widest batch path, without touching the engine queue
    /// (deferred jobs keep their slots and their ordering). Everything
    /// else — small payloads, the chained modes, and every mode when the
    /// deployment is pinned to `ip-core` — runs through the engine farm.
    ///
    /// Draining the engine may also complete deferred jobs that share the
    /// queue; their outputs are stashed for the next [`Session::flush`],
    /// so interleaving immediate and deferred traffic loses nothing.
    ///
    /// # Errors
    ///
    /// [`Error::Submit`] when the queue is full (flush first) or the
    /// buffer is ragged; [`Error::Job`] when a backend faults.
    pub fn execute(&mut self, mode: Mode, mut data: Vec<u8>) -> Result<Vec<u8>, Error> {
        if data.len() >= BULK_THRESHOLD {
            if let Some(bulk) = &self.bulk {
                match mode {
                    Mode::EcbEncrypt => {
                        Ecb::encrypt_batched(bulk, &mut data)?;
                        return Ok(data);
                    }
                    Mode::EcbDecrypt => {
                        Ecb::decrypt_batched(bulk, &mut data)?;
                        return Ok(data);
                    }
                    Mode::Ctr(nonce) => {
                        Ctr::apply_batched(bulk, &nonce, 0, &mut data);
                        return Ok(data);
                    }
                    _ => {}
                }
            }
        }
        let id = self.engine.try_submit(mode, data)?;
        let mut result = None;
        for out in self.engine.run() {
            if out.id == id {
                result = Some(out.data);
            } else {
                self.stash(out.id, out.data);
            }
        }
        result
            .expect("run() drains every queued job, including the one just submitted")
            .map_err(Error::from)
    }

    /// Enqueues a deferred job tagged with the request's `seq`.
    ///
    /// # Errors
    ///
    /// Propagates [`SubmitError`] verbatim — `Busy` here is the
    /// backpressure signal the server forwards to the client.
    pub fn defer(&mut self, seq: u32, mode: Mode, data: Vec<u8>) -> Result<JobId, SubmitError> {
        let id = self.engine.try_submit(mode, data)?;
        self.pending.push((id, seq));
        Ok(id)
    }

    /// Drains the engine and returns every undelivered deferred result in
    /// completion order, tagged with its submission `seq`.
    pub fn flush(&mut self) -> Vec<(u32, Result<Vec<u8>, JobError>)> {
        let drained = self.engine.run();
        for out in drained {
            self.stash(out.id, out.data);
        }
        std::mem::take(&mut self.completed)
    }

    /// Enqueues a pipelined job tagged with the request's correlation
    /// id; its result surfaces from a later [`Session::collect`].
    ///
    /// Payloads of [`BULK_THRESHOLD`] bytes or more go to the session's
    /// worker pool and execute on its threads — the event loop returns
    /// to `poll(2)` immediately and small neighbors stop queueing behind
    /// bulk crypto. Smaller payloads ride the engine queue as before
    /// (the engine drains them in microseconds; handing them to another
    /// thread would cost more than computing them).
    ///
    /// # Errors
    ///
    /// Propagates [`SubmitError`] verbatim — `Busy` is the per-session
    /// backpressure signal the server forwards as a typed reply.
    pub fn submit(&mut self, corr: u32, mode: Mode, data: Vec<u8>) -> Result<JobId, SubmitError> {
        if data.len() >= BULK_THRESHOLD {
            let id = self.pool.try_submit(mode, data)?;
            self.pool_piped.push((id, corr));
            return Ok(id);
        }
        let id = self.engine.try_submit(mode, data)?;
        self.piped.push((id, corr));
        Ok(id)
    }

    /// Drains both pipelined lanes — the inline engine and the thread
    /// pool — and returns every finished result in completion order,
    /// tagged with its correlation id. Deferred jobs completed by the
    /// same drain are stashed for the next flush.
    pub fn collect(&mut self) -> Vec<(u32, Result<Vec<u8>, JobError>)> {
        if !self.piped.is_empty() {
            let drained = self.engine.run();
            for out in drained {
                self.stash(out.id, out.data);
            }
        }
        while let Some(out) = self.pool.try_collect() {
            if let Some(pos) = self.pool_piped.iter().position(|&(jid, _)| jid == out.id) {
                let (_, corr) = self.pool_piped.remove(pos);
                self.piped_done.push((corr, out.data));
            }
        }
        std::mem::take(&mut self.piped_done)
    }

    /// Computes the AES-CMAC tag of `message` under the session key.
    #[must_use]
    pub fn cmac_tag(&self, message: &[u8]) -> [u8; 16] {
        cmac::cmac(&self.mac, message)
    }

    /// Constant-time verification of an AES-CMAC tag.
    #[must_use]
    pub fn cmac_verify(&self, message: &[u8], tag: &[u8; 16]) -> bool {
        cmac::verify(&self.mac, message, tag)
    }

    /// AES-GCM seal under the session key: returns ciphertext ‖ tag.
    #[must_use]
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        self.aead.seal(nonce, aad, plaintext)
    }

    /// AES-GCM open under the session key: verifies the tag in constant
    /// time before releasing any plaintext.
    ///
    /// # Errors
    ///
    /// [`aead::Error::TagMismatch`] on authentication failure;
    /// [`aead::Error::Truncated`] when `sealed` is shorter than a tag.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, aead::Error> {
        self.aead.open(nonce, aad, sealed)
    }

    /// Applies AES-XTS (IEEE 1619) over consecutive sectors: sector `i`
    /// of `data` (chunks of `sector_size` bytes) uses tweak
    /// `sector_base + i`, wrapping at `u64::MAX`. Ragged sector sizes
    /// use ciphertext stealing, so the output length equals the input
    /// length. The caller validates that `sector_size >= 16` and that
    /// `data` is a non-empty whole number of sectors (the protocol
    /// boundary answers `BadSectorSize` otherwise).
    ///
    /// # Errors
    ///
    /// [`aead::Error::SectorTooShort`] when a sector is under one block
    /// (unreachable after the boundary validation).
    pub fn xts_apply(
        &self,
        sector_base: u64,
        sector_size: usize,
        mut data: Vec<u8>,
        decrypt: bool,
    ) -> Result<Vec<u8>, aead::Error> {
        for (i, sector) in data.chunks_mut(sector_size).enumerate() {
            let number = sector_base.wrapping_add(i as u64);
            if decrypt {
                self.xts.decrypt_sector(number, sector)?;
            } else {
                self.xts.encrypt_sector(number, sector)?;
            }
        }
        Ok(data)
    }

    /// SP 800-38F / RFC 3394 key wrap with the session key as the KEK.
    ///
    /// # Errors
    ///
    /// [`aead::Error::BadWrapLength`] unless `key_data` is at least 16
    /// bytes and a multiple of 8.
    pub fn wrap_key(&self, key_data: &[u8]) -> Result<Vec<u8>, aead::Error> {
        aead::wrap(&self.mac, key_data)
    }

    /// RFC 3394 key unwrap with the session key as the KEK.
    ///
    /// # Errors
    ///
    /// [`aead::Error::TagMismatch`] when the integrity check fails;
    /// [`aead::Error::BadWrapLength`] on an impossible blob length.
    pub fn unwrap_key(&self, wrapped: &[u8]) -> Result<Vec<u8>, aead::Error> {
        aead::unwrap(&self.mac, wrapped)
    }

    fn stash(&mut self, id: JobId, data: Result<Vec<u8>, JobError>) {
        if let Some(pos) = self.pending.iter().position(|&(jid, _)| jid == id) {
            let (_, seq) = self.pending.remove(pos);
            self.completed.push((seq, data));
        } else if let Some(pos) = self.piped.iter().position(|&(jid, _)| jid == id) {
            let (_, corr) = self.piped.remove(pos);
            self.piped_done.push((corr, data));
        }
    }
}

/// The dispatch-selected software cipher for the session's non-engine
/// lanes, falling back to the always-available T-table kind when the
/// deployment is pinned to the batch-less `ip-core`.
fn dispatched_cipher(key: &[u8]) -> AutoCipher {
    AutoCipher::new(key).unwrap_or_else(|| {
        AutoCipher::for_kind(Kind::Ttable, key).expect("the T-table kind is always available")
    })
}

/// Test oracle: one ECB block under `key`, computed outside any
/// session so server tests can check the wire answer independently.
#[cfg(test)]
pub(crate) fn tests_expected_ecb(key: &[u8], block: &[u8; 16]) -> Vec<u8> {
    use rijndael::BlockCipher;
    let cipher = dispatched_cipher(key);
    let mut out = *block;
    cipher.encrypt_in_place(&mut out);
    out.to_vec()
}

/// Test oracle: the XTS stream for `body` carved into `sector_size`
/// sectors starting at `sector_base`, built from a fresh lane exactly
/// as [`Session::new`] builds its own.
#[cfg(test)]
pub(crate) fn tests_expected_xts(
    key: &[u8],
    sector_base: u64,
    sector_size: usize,
    body: &[u8],
) -> Vec<u8> {
    let lane = Xts::new(dispatched_cipher(key), dispatched_cipher(key));
    let mut out = body.to_vec();
    for (i, sector) in out.chunks_mut(sector_size).enumerate() {
        lane.encrypt_sector(sector_base.wrapping_add(i as u64), sector)
            .expect("oracle sectors are well-formed");
    }
    out
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("outstanding", &self.outstanding())
            .finish()
    }
}

/// The one-session-per-connection slot: allocates session ids and
/// guarantees a re-key drops (and thereby wipes) the previous session
/// before the new one answers traffic.
#[derive(Debug, Default)]
pub struct SessionSlot {
    current: Option<Session>,
    next_id: u32,
}

impl SessionSlot {
    /// An empty slot; crypto ops fail with `NoSession` until a re-key.
    #[must_use]
    pub fn new() -> SessionSlot {
        SessionSlot {
            current: None,
            next_id: 1,
        }
    }

    /// Replaces the session with a freshly keyed one and returns the new
    /// id (never 0, which the protocol reserves for "no session").
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` is not 16, 24 or 32 bytes (validated at the
    /// protocol boundary).
    pub fn rekey(
        &mut self,
        key: &[u8],
        farm: &[BackendSpec],
        queue_capacity: usize,
        registry: &Registry,
    ) -> u32 {
        let id = self.next_id.max(1);
        self.next_id = id.wrapping_add(1);
        // Assigning drops the previous session first-class: its engine
        // backends and cipher schedules wipe their key material on drop.
        self.current = Some(Session::new(id, key, farm, queue_capacity, registry));
        id
    }

    /// The live session, if any.
    #[must_use]
    pub fn session_mut(&mut self) -> Option<&mut Session> {
        self.current.as_mut()
    }

    /// Drops the live session (wiping its key material).
    pub fn clear(&mut self) {
        self.current = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rijndael::modes::{Cbc, Ctr, Ecb};
    use rijndael::{Aes128, Aes256, BlockCipher};

    const KEY: [u8; 16] = [
        0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F,
        0x3C,
    ];

    fn farm() -> Vec<BackendSpec> {
        vec![BackendSpec::EncDecCore, BackendSpec::Software]
    }

    fn session(queue: usize) -> Session {
        Session::new(1, &KEY, &farm(), queue, &Registry::new())
    }

    fn sample(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 13 + 1) as u8).collect()
    }

    #[test]
    fn execute_matches_the_software_reference() {
        let mut s = session(8);
        let reference = Aes128::new(&KEY);

        let data = sample(4 * 16);
        let ct = s.execute(Mode::EcbEncrypt, data.clone()).unwrap();
        let mut expect = data.clone();
        Ecb::encrypt(&reference, &mut expect).unwrap();
        assert_eq!(ct, expect);

        let iv = [9u8; 16];
        let ct = s.execute(Mode::CbcEncrypt(iv), data.clone()).unwrap();
        let mut expect = data.clone();
        Cbc::encrypt(&reference, &iv, &mut expect).unwrap();
        assert_eq!(ct, expect);

        let ct = s.execute(Mode::Ctr(iv), sample(37)).unwrap();
        let mut expect = sample(37);
        Ctr::apply(&reference, &iv, &mut expect);
        assert_eq!(ct, expect);
    }

    #[test]
    fn bulk_lane_matches_the_software_reference() {
        let mut s = session(8);
        let reference = Aes128::new(&KEY);

        // 24 blocks: well past the threshold, with a ragged granule tail.
        let data = sample(24 * 16);
        let ct = s.execute(Mode::EcbEncrypt, data.clone()).unwrap();
        let mut expect = data.clone();
        Ecb::encrypt(&reference, &mut expect).unwrap();
        assert_eq!(ct, expect);
        let pt = s.execute(Mode::EcbDecrypt, ct).unwrap();
        assert_eq!(pt, data);

        // CTR keeps its any-length contract on the bulk lane too.
        let nonce = [0xA5u8; 16];
        let data = sample(BULK_THRESHOLD + 5);
        let ct = s.execute(Mode::Ctr(nonce), data.clone()).unwrap();
        let mut expect = data;
        Ctr::apply(&reference, &nonce, &mut expect);
        assert_eq!(ct, expect);
    }

    #[test]
    fn bulk_lane_rejects_ragged_ecb_and_skips_the_engine_queue() {
        let mut s = session(2);
        assert_eq!(
            s.execute(Mode::EcbEncrypt, sample(BULK_THRESHOLD + 1)),
            Err(Error::Submit(SubmitError::RaggedLength {
                len: BULK_THRESHOLD + 1
            }))
        );

        // A deferred job keeps its queue slot and its pending status
        // while bulk traffic streams past it.
        s.defer(9, Mode::CbcEncrypt([0; 16]), sample(16)).unwrap();
        let _ = s.execute(Mode::EcbEncrypt, sample(BULK_THRESHOLD)).unwrap();
        assert_eq!(s.outstanding(), 1);
        let results = s.flush();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, 9);
    }

    #[test]
    fn defer_then_flush_returns_results_tagged_by_seq() {
        let mut s = session(8);
        s.defer(100, Mode::EcbEncrypt, sample(32)).unwrap();
        s.defer(200, Mode::Ctr([1; 16]), sample(5)).unwrap();
        assert_eq!(s.outstanding(), 2);

        let results = s.flush();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, 100);
        assert_eq!(results[1].0, 200);
        assert!(results.iter().all(|(_, r)| r.is_ok()));
        assert_eq!(s.outstanding(), 0);
        assert!(s.flush().is_empty(), "flush is idempotent once drained");
    }

    #[test]
    fn submit_then_collect_returns_results_tagged_by_corr() {
        let mut s = session(8);
        let reference = Aes128::new(&KEY);
        s.submit(0xA1, Mode::EcbEncrypt, sample(32)).unwrap();
        s.submit(0xB2, Mode::Ctr([1; 16]), sample(5)).unwrap();
        assert_eq!(s.in_flight(), 2);
        assert_eq!(s.outstanding(), 0, "pipelined jobs are not deferred");

        let results = s.collect();
        assert_eq!(s.in_flight(), 0);
        let tags: Vec<u32> = results.iter().map(|&(c, _)| c).collect();
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0xA1, 0xB2]);
        for (corr, data) in results {
            let data = data.unwrap();
            if corr == 0xA1 {
                let mut expect = sample(32);
                Ecb::encrypt(&reference, &mut expect).unwrap();
                assert_eq!(data, expect);
            } else {
                let mut expect = sample(5);
                Ctr::apply(&reference, &[1; 16], &mut expect);
                assert_eq!(data, expect);
            }
        }
        assert!(s.collect().is_empty(), "collect is idempotent once drained");
    }

    #[test]
    fn pipelined_and_deferred_lanes_never_mix() {
        let mut s = session(8);
        s.defer(100, Mode::EcbEncrypt, sample(16)).unwrap();
        s.submit(7, Mode::EcbEncrypt, sample(16)).unwrap();
        // Collect drains the whole engine, but the deferred result must
        // wait for its flush, and vice versa.
        let piped = s.collect();
        assert_eq!(piped.len(), 1);
        assert_eq!(piped[0].0, 7);
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.outstanding(), 1);
        let deferred = s.flush();
        assert_eq!(deferred.len(), 1);
        assert_eq!(deferred[0].0, 100);

        // And a flush-triggered drain stashes pipelined completions.
        s.submit(8, Mode::Ctr([0; 16]), sample(3)).unwrap();
        s.defer(200, Mode::EcbDecrypt, sample(16)).unwrap();
        assert_eq!(s.flush().len(), 1);
        assert_eq!(s.in_flight(), 1, "finished but uncollected");
        let piped = s.collect();
        assert_eq!(piped.len(), 1);
        assert_eq!(piped[0].0, 8);
    }

    #[test]
    fn bulk_pipelined_jobs_take_the_pool_lane_and_match_the_reference() {
        let mut s = session(8);
        let reference = Aes128::new(&KEY);
        let big = sample(64 * 16);
        let small = sample(2 * 16);
        s.submit(0xB16, Mode::EcbEncrypt, big.clone()).unwrap();
        s.submit(0x5A1, Mode::EcbEncrypt, small.clone()).unwrap();
        assert_eq!(s.in_flight(), 2);

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut got = Vec::new();
        while got.len() < 2 && std::time::Instant::now() < deadline {
            got.extend(s.collect());
        }
        assert_eq!(got.len(), 2, "both lanes deliver");
        assert_eq!(s.in_flight(), 0);
        for (corr, data) in got {
            let mut expect = if corr == 0xB16 {
                big.clone()
            } else {
                small.clone()
            };
            Ecb::encrypt(&reference, &mut expect).unwrap();
            assert_eq!(data.unwrap(), expect, "corr {corr:#x}");
        }
    }

    #[test]
    fn pool_lane_notifier_fires_on_bulk_completion() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut s = session(8);
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&fired);
        s.set_notifier(Arc::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        }));
        s.submit(1, Mode::Ctr([0; 16]), sample(BULK_THRESHOLD))
            .unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut got = Vec::new();
        while got.is_empty() && std::time::Instant::now() < deadline {
            got.extend(s.collect());
        }
        assert_eq!(got.len(), 1);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn quiesce_waits_out_pool_lane_jobs() {
        let mut s = session(8);
        s.submit(0xD1, Mode::EcbEncrypt, sample(64 * 16)).unwrap();
        assert!(
            s.quiesce(std::time::Duration::from_secs(10)),
            "the pool lane goes quiet"
        );
        // After a successful quiesce one collect is enough — no
        // retry loop, which is what the shutdown drain relies on.
        let got = s.collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 0xD1);
        assert!(got[0].1.is_ok());
    }

    #[test]
    fn autoscale_is_callable_through_the_session() {
        let s = session(8);
        // An idle, min-sized pool has nothing to do.
        assert_eq!(s.autoscale(&engine::ResizePolicy::default()), None);
    }

    #[test]
    fn busy_surfaces_at_the_submit_boundary() {
        let mut s = session(2);
        s.submit(1, Mode::Ctr([0; 16]), sample(4)).unwrap();
        s.submit(2, Mode::EcbEncrypt, sample(16)).unwrap();
        assert_eq!(
            s.submit(3, Mode::EcbEncrypt, sample(16)),
            Err(SubmitError::Busy { capacity: 2 })
        );
        assert_eq!(s.collect().len(), 2);
        assert!(s.submit(3, Mode::EcbEncrypt, sample(16)).is_ok());
    }

    #[test]
    fn busy_surfaces_at_the_defer_boundary() {
        let mut s = session(2);
        s.defer(1, Mode::Ctr([0; 16]), sample(4)).unwrap();
        s.defer(2, Mode::CbcEncrypt([0; 16]), sample(16)).unwrap();
        assert_eq!(
            s.defer(3, Mode::EcbEncrypt, sample(16)),
            Err(SubmitError::Busy { capacity: 2 })
        );
        assert_eq!(s.queue_capacity(), 2);
        // Flushing frees the queue again.
        assert_eq!(s.flush().len(), 2);
        assert!(s.defer(3, Mode::EcbEncrypt, sample(16)).is_ok());
    }

    #[test]
    fn immediate_execute_with_pending_jobs_stashes_their_results() {
        let mut s = session(8);
        s.defer(7, Mode::EcbEncrypt, sample(16)).unwrap();
        // The immediate op forces a drain; the deferred result must not
        // be lost, only delayed until the flush.
        let _ = s.execute(Mode::Ctr([3; 16]), sample(10)).unwrap();
        assert_eq!(s.outstanding(), 1);
        let results = s.flush();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, 7);

        let reference = Aes128::new(&KEY);
        let mut expect = sample(16);
        Ecb::encrypt(&reference, &mut expect).unwrap();
        assert_eq!(results[0].1.as_ref().unwrap(), &expect);
    }

    #[test]
    fn ragged_blocks_are_rejected_without_holding_a_slot() {
        let mut s = session(2);
        assert_eq!(
            s.execute(Mode::EcbEncrypt, sample(17)),
            Err(Error::Submit(SubmitError::RaggedLength { len: 17 }))
        );
        assert_eq!(s.outstanding(), 0);
    }

    #[test]
    fn sessions_sharing_a_registry_aggregate_their_engine_counters() {
        let reg = Registry::new();
        let mut a = Session::new(1, &KEY, &farm(), 8, &reg);
        let mut b = Session::new(2, &KEY, &farm(), 8, &reg);
        let _ = a.execute(Mode::EcbEncrypt, sample(4 * 16)).unwrap();
        let _ = b.execute(Mode::EcbEncrypt, sample(2 * 16)).unwrap();
        let snap = reg.snapshot();
        let stats = engine::FarmStats::from_snapshot(&snap);
        assert_eq!(stats.total_blocks(), 6);
        assert_eq!(snap.counter("engine.jobs.completed"), Some(2));
    }

    #[test]
    fn cmac_tag_and_verify_use_the_session_key() {
        let s = session(2);
        // RFC 4493 example 1: empty message.
        let tag = s.cmac_tag(b"");
        assert_eq!(tag[..4], [0xBB, 0x1D, 0x69, 0x29]);
        assert!(s.cmac_verify(b"", &tag));
        let mut bad = tag;
        bad[15] ^= 1;
        assert!(!s.cmac_verify(b"", &bad));
    }

    #[test]
    fn seal_and_open_roundtrip_for_every_key_size() {
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len as u8).collect();
            let s = Session::new(1, &key, &farm(), 8, &Registry::new());
            let nonce = [7u8; NONCE_LEN];
            let sealed = s.seal(&nonce, b"header", b"the plaintext");
            assert_eq!(sealed.len(), 13 + 16);
            assert_eq!(
                s.open(&nonce, b"header", &sealed).unwrap(),
                b"the plaintext"
            );
            let mut tampered = sealed;
            tampered[0] ^= 1;
            assert_eq!(
                s.open(&nonce, b"header", &tampered),
                Err(aead::Error::TagMismatch)
            );
        }
    }

    #[test]
    fn seal_matches_the_direct_gcm_construction() {
        let key = [0x42u8; 32];
        let s = Session::new(1, &key, &farm(), 8, &Registry::new());
        let direct = Gcm::new(Aes256::new(&key));
        let nonce = [9u8; NONCE_LEN];
        assert_eq!(
            s.seal(&nonce, b"aad", b"payload"),
            direct.seal(&nonce, b"aad", b"payload")
        );
    }

    #[test]
    fn xts_lane_matches_the_direct_construction_and_roundtrips() {
        use rijndael::BatchCipher;
        // AutoCipher and the direct reference must agree; build the
        // reference over the same dispatched cipher type so a forced
        // backend cannot desynchronise the comparison.
        fn reference(key: &[u8]) -> Xts<impl BatchCipher> {
            Xts::new(super::dispatched_cipher(key), super::dispatched_cipher(key))
        }
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len as u8)
                .map(|i| i.wrapping_mul(7) ^ 0x3A)
                .collect();
            let s = Session::new(1, &key, &farm(), 8, &Registry::new());
            // Three 20-byte sectors starting at sector 5: ciphertext
            // stealing on every sector, consecutive tweaks.
            let data = sample(3 * 20);
            let ct = s.xts_apply(5, 20, data.clone(), false).unwrap();
            assert_eq!(ct.len(), data.len());
            assert_ne!(ct, data);
            let mut expect = data.clone();
            let xts = reference(&key);
            for (i, sector) in expect.chunks_mut(20).enumerate() {
                xts.encrypt_sector(5 + i as u64, sector).unwrap();
            }
            assert_eq!(ct, expect, "key_len {key_len}");
            let pt = s.xts_apply(5, 20, ct, true).unwrap();
            assert_eq!(pt, data);
        }
    }

    #[test]
    fn xts_sector_numbering_wraps_instead_of_panicking() {
        let s = session(8);
        let data = sample(2 * 16);
        let ct = s.xts_apply(u64::MAX, 16, data.clone(), false).unwrap();
        let pt = s.xts_apply(u64::MAX, 16, ct, true).unwrap();
        assert_eq!(pt, data);
    }

    #[test]
    fn key_wrap_roundtrips_and_authenticates() {
        let s = session(2);
        let secret = [0x55u8; 24];
        let wrapped = s.wrap_key(&secret).unwrap();
        assert_eq!(wrapped.len(), secret.len() + 8);
        assert_eq!(s.unwrap_key(&wrapped).unwrap(), secret);
        let mut bad = wrapped;
        bad[3] ^= 0x80;
        assert_eq!(s.unwrap_key(&bad), Err(aead::Error::TagMismatch));
        assert_eq!(
            s.wrap_key(&[0u8; 7]),
            Err(aead::Error::BadWrapLength { len: 7 })
        );
    }

    #[test]
    fn long_keys_drive_the_engine_and_bulk_lanes() {
        let key: Vec<u8> = (0..32u8).map(|i| i.wrapping_mul(9) ^ 0x6C).collect();
        let mut s = Session::new(1, &key, &farm(), 8, &Registry::new());
        let reference = Aes256::new(key.as_slice().try_into().unwrap());

        // Small payload: engine farm (ip-core slots divert to software).
        let data = sample(2 * 16);
        let ct = s.execute(Mode::EcbEncrypt, data.clone()).unwrap();
        let mut expect = data.clone();
        Ecb::encrypt(&reference, &mut expect).unwrap();
        assert_eq!(ct, expect);

        // Bulk payload: the dispatched lane.
        let data = sample(24 * 16);
        let ct = s.execute(Mode::EcbEncrypt, data.clone()).unwrap();
        let mut expect = data;
        Ecb::encrypt(&reference, &mut expect).unwrap();
        assert_eq!(ct, expect);
    }

    #[test]
    fn rekey_replaces_the_session_and_advances_the_id() {
        let reg = Registry::new();
        let mut slot = SessionSlot::new();
        assert!(slot.session_mut().is_none());
        let a = slot.rekey(&KEY, &farm(), 4, &reg);
        slot.session_mut()
            .unwrap()
            .defer(1, Mode::EcbEncrypt, sample(16))
            .unwrap();
        let b = slot.rekey(&[5u8; 16], &farm(), 4, &reg);
        assert_ne!(a, b);
        assert_ne!(b, 0);
        // The pending job died with the old session.
        assert_eq!(slot.session_mut().unwrap().outstanding(), 0);
        // And the new session really uses the new key.
        let ct = slot
            .session_mut()
            .unwrap()
            .execute(Mode::EcbEncrypt, vec![0u8; 16])
            .unwrap();
        let mut expect = vec![0u8; 16];
        Aes128::new(&[5u8; 16]).encrypt_in_place(&mut expect);
        assert_eq!(ct, expect);
        slot.clear();
        assert!(slot.session_mut().is_none());
    }

    #[test]
    fn sessions_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Session>();
        assert_send::<SessionSlot>();
    }
}

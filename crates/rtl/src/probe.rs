//! Signal-history probes: record a signal's value over time and query the
//! trace — the scripting side of a logic analyzer, complementing the raw
//! [`crate::vcd`] dump.

use crate::logic::{Bit, LogicVec};
use crate::sim::{SignalId, Simulator};

/// One recorded change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Simulation time of the change.
    pub time: u64,
    /// The new value.
    pub value: LogicVec,
}

/// A recorded value history for one signal.
///
/// Build it by sampling the simulator between run steps; the recorder
/// stores only changes.
///
/// # Examples
///
/// ```
/// use rtl::{Simulator, Trigger};
/// use rtl::probe::History;
///
/// let mut sim = Simulator::new();
/// let clk = sim.add_clock("clk", 5);
/// let q = sim.add_signal("q", 1);
/// sim.set_u128(q, 0);
/// sim.add_process("t", Trigger::RisingEdge(clk), move |ctx| {
///     ctx.write(q, !ctx.read(q));
/// });
/// let mut hist = History::new(q);
/// for _ in 0..10 {
///     sim.run_cycles(clk, 1);
///     hist.sample(&sim);
/// }
/// // q toggles once per clock: samples read 1,0,1,0,... → four 0→1 edges.
/// assert_eq!(hist.rising_edges(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct History {
    signal: SignalId,
    samples: Vec<Sample>,
}

impl History {
    /// Creates an empty history for `signal`.
    #[must_use]
    pub fn new(signal: SignalId) -> Self {
        History {
            signal,
            samples: Vec::new(),
        }
    }

    /// The probed signal.
    #[must_use]
    pub fn signal(&self) -> SignalId {
        self.signal
    }

    /// Samples the current value; stores it only if it changed.
    pub fn sample(&mut self, sim: &Simulator) {
        let value = sim.get(self.signal);
        if self.samples.last().map(|s| s.value) != Some(value) {
            self.samples.push(Sample {
                time: sim.time(),
                value,
            });
        }
    }

    /// All recorded changes, oldest first.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of recorded 0→1 transitions of bit 0.
    #[must_use]
    pub fn rising_edges(&self) -> usize {
        self.samples
            .windows(2)
            .filter(|w| w[0].value.bit(0) != Bit::One && w[1].value.bit(0) == Bit::One)
            .count()
    }

    /// Number of recorded 1→0 transitions of bit 0.
    #[must_use]
    pub fn falling_edges(&self) -> usize {
        self.samples
            .windows(2)
            .filter(|w| w[0].value.bit(0) == Bit::One && w[1].value.bit(0) != Bit::One)
            .count()
    }

    /// The value most recently recorded at or before `time`, if any.
    #[must_use]
    pub fn value_at(&self, time: u64) -> Option<LogicVec> {
        self.samples
            .iter()
            .take_while(|s| s.time <= time)
            .last()
            .map(|s| s.value)
    }

    /// Time of the first sample whose value equals `value`.
    #[must_use]
    pub fn first_time_of(&self, value: u128) -> Option<u64> {
        self.samples
            .iter()
            .find(|s| s.value.to_u128() == Some(value))
            .map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Trigger;

    fn counter_sim() -> (Simulator, SignalId, SignalId) {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 5);
        let count = sim.add_signal("count", 8);
        sim.set_u128(count, 0);
        sim.add_process("count", Trigger::RisingEdge(clk), move |ctx| {
            let c = ctx.read_u128(count).expect("initialised");
            ctx.write_u128(count, (c + 1) & 0xFF);
        });
        (sim, clk, count)
    }

    #[test]
    fn history_records_changes_only() {
        let (mut sim, clk, count) = counter_sim();
        let mut hist = History::new(count);
        hist.sample(&sim); // initial 0
        for _ in 0..5 {
            sim.run_cycles(clk, 1);
            hist.sample(&sim);
            hist.sample(&sim); // duplicate sampling must not duplicate entries
        }
        assert_eq!(hist.samples().len(), 6); // 0,1,2,3,4,5
        assert_eq!(hist.samples()[5].value.to_u128(), Some(5));
    }

    #[test]
    fn value_at_and_first_time_of() {
        let (mut sim, clk, count) = counter_sim();
        let mut hist = History::new(count);
        hist.sample(&sim);
        for _ in 0..6 {
            sim.run_cycles(clk, 1);
            hist.sample(&sim);
        }
        let t3 = hist.first_time_of(3).expect("count reached 3");
        assert_eq!(hist.value_at(t3).and_then(|v| v.to_u128()), Some(3));
        assert_eq!(hist.value_at(t3 + 1).and_then(|v| v.to_u128()), Some(3));
        assert!(hist.first_time_of(200).is_none());
    }

    #[test]
    fn edge_counting_on_clock() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 5);
        let mut hist = History::new(clk);
        hist.sample(&sim);
        for _ in 0..40 {
            sim.run_for(5);
            hist.sample(&sim);
        }
        // 200 time units = 20 full periods.
        assert_eq!(hist.rising_edges(), 20);
        assert_eq!(hist.falling_edges(), 20);
    }
}

//! An event-driven digital-logic simulator with VHDL-style delta cycles.
//!
//! This crate is the ModelSim substitute of the reproduction: the paper's
//! soft IP was described in VHDL and simulated in ModelSim; here the same
//! architecture is described as [`Simulator`] processes over three-state
//! [`logic::LogicVec`] signals, with [`vcd`] waveform output for
//! inspection.
//!
//! # Semantics
//!
//! * Signals carry `0`, `1` or `X`; everything starts `X` until driven
//!   (uninitialised-register bugs surface as `X` at the outputs, exactly as
//!   in VHDL simulation).
//! * Process writes are nonblocking: they take effect in the next delta
//!   cycle, so clocked processes cannot race.
//! * Combinational processes declare a sensitivity list
//!   ([`Trigger::AnyChange`]); clocked processes trigger on clock edges
//!   ([`Trigger::RisingEdge`] / [`Trigger::FallingEdge`]).
//! * A delta-cycle limit converts combinational loops into a diagnostic
//!   panic instead of a hang.
//!
//! # Examples
//!
//! ```
//! use rtl::{Simulator, Trigger};
//!
//! let mut sim = Simulator::new();
//! let clk = sim.add_clock("clk", 5); // rising edges at t = 5, 15, 25, ...
//! let q = sim.add_signal("q", 8);
//! sim.set_u128(q, 0);
//! sim.add_process("increment", Trigger::RisingEdge(clk), move |ctx| {
//!     let v = ctx.read_u128(q).expect("q initialised");
//!     ctx.write_u128(q, (v + 1) & 0xFF);
//! });
//! sim.run_until(30);
//! assert_eq!(sim.get_u128(q), Some(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod logic;
pub mod probe;
pub mod sim;
pub mod vcd;

pub use logic::{Bit, LogicVec};
pub use sim::{ProcCtx, ProcessId, SignalId, SimStats, Simulator, Trigger};
pub use vcd::VcdWriter;

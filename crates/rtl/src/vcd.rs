//! Value-change-dump (VCD) waveform output.
//!
//! The paper's flow inspected ModelSim waveforms; this writer produces
//! standard VCD text that GTKWave (or any other viewer) opens, so the soft
//! IP's bus handshake can be inspected the same way.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::logic::LogicVec;
use crate::sim::SignalId;

/// Streaming VCD writer.
///
/// Drive it through [`crate::Simulator::attach_vcd`]; standalone use is
/// possible for tools that produce waveforms without the simulator.
///
/// # Examples
///
/// ```
/// use rtl::{Simulator, Trigger, vcd::VcdWriter, logic::LogicVec};
///
/// let mut sim = Simulator::new();
/// let clk = sim.add_clock("clk", 5);
/// sim.attach_vcd(VcdWriter::new("testbench"));
/// sim.run_for(20);
/// let vcd = sim.detach_vcd().unwrap().finish();
/// assert!(vcd.contains("$var wire 1"));
/// assert!(vcd.contains("#5"));
/// ```
#[derive(Debug)]
pub struct VcdWriter {
    scope: String,
    header: String,
    body: String,
    ids: HashMap<SignalId, String>,
    widths: HashMap<SignalId, u32>,
    last_time: Option<u64>,
    next_code: u32,
    started: bool,
}

impl VcdWriter {
    /// Creates a writer with the given module scope name.
    #[must_use]
    pub fn new(scope: impl Into<String>) -> Self {
        VcdWriter {
            scope: scope.into(),
            header: String::new(),
            body: String::new(),
            ids: HashMap::new(),
            widths: HashMap::new(),
            last_time: None,
            next_code: 0,
            started: false,
        }
    }

    fn code_for(mut n: u32) -> String {
        // Printable identifier alphabet per the VCD spec: '!'..='~'.
        let mut s = String::new();
        loop {
            s.push(char::from(b'!' + (n % 94) as u8));
            n /= 94;
            if n == 0 {
                break;
            }
        }
        s
    }

    /// Declares a signal. Must be called before [`VcdWriter::begin`].
    ///
    /// # Panics
    ///
    /// Panics if dumping has already started.
    pub fn declare(&mut self, sig: SignalId, name: &str, width: u32) {
        assert!(
            !self.started,
            "cannot declare signals after dumping started"
        );
        let code = Self::code_for(self.next_code);
        self.next_code += 1;
        // VCD identifiers must not contain whitespace; sanitise the name.
        let clean: String = name
            .chars()
            .map(|c| if c.is_whitespace() { '_' } else { c })
            .collect();
        let _ = writeln!(self.header, "$var wire {width} {code} {clean} $end");
        self.ids.insert(sig, code);
        self.widths.insert(sig, width);
    }

    /// Starts the dump at `time` with initial `values` (indexed by the
    /// declaration order of the signals).
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn begin(&mut self, time: u64, values: Vec<LogicVec>) {
        assert!(!self.started, "begin called twice");
        self.started = true;
        let _ = writeln!(self.body, "$dumpvars");
        let sigs: Vec<SignalId> = {
            let mut v: Vec<_> = self.ids.keys().copied().collect();
            v.sort();
            v
        };
        for (sig, value) in sigs.into_iter().zip(values) {
            self.emit(sig, value);
        }
        let _ = writeln!(self.body, "$end");
        self.last_time = Some(time);
        let _ = writeln!(self.body, "#{time}");
    }

    /// Moves the timestamp forward (no-op when unchanged).
    pub fn advance_time(&mut self, time: u64) {
        if self.last_time != Some(time) {
            self.last_time = Some(time);
            let _ = writeln!(self.body, "#{time}");
        }
    }

    /// Records a value change for a declared signal.
    ///
    /// # Panics
    ///
    /// Panics if the signal was never declared.
    pub fn change(&mut self, sig: SignalId, value: LogicVec) {
        assert!(self.ids.contains_key(&sig), "change on undeclared signal");
        self.emit(sig, value);
    }

    fn emit(&mut self, sig: SignalId, value: LogicVec) {
        let code = &self.ids[&sig];
        if value.width() == 1 {
            let _ = writeln!(self.body, "{}{}", value.bit(0), code);
        } else {
            let _ = writeln!(self.body, "b{value} {code}");
        }
    }

    /// Finalises and returns the VCD text.
    #[must_use]
    pub fn finish(self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {} $end", self.scope);
        out.push_str(&self.header);
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        out.push_str(&self.body);
        out
    }

    /// Finalises and writes the VCD text to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn save(self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::Bit;
    use crate::sim::{Simulator, Trigger};

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..500 {
            let code = VcdWriter::code_for(n);
            assert!(code.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(code));
        }
    }

    #[test]
    fn full_dump_structure() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 5);
        let q = sim.add_signal("q", 8);
        sim.set_u128(q, 0);
        sim.add_process("count", Trigger::RisingEdge(clk), move |ctx| {
            let v = ctx.read_u128(q).unwrap();
            ctx.write_u128(q, (v + 1) & 0xFF);
        });
        sim.attach_vcd(VcdWriter::new("tb"));
        sim.run_for(22);
        let text = sim.detach_vcd().unwrap().finish();
        assert!(text.starts_with("$timescale 1ns $end"));
        assert!(text.contains("$scope module tb $end"));
        assert!(text.contains("$var wire 1"));
        assert!(text.contains("$var wire 8"));
        assert!(text.contains("$dumpvars"));
        // Two rising edges by t=22 → q reaches 2.
        assert!(
            text.contains("b00000010 "),
            "missing q value change: {text}"
        );
        assert!(text.contains("#15"));
    }

    #[test]
    fn x_values_render() {
        let mut w = VcdWriter::new("s");
        let mut sim = Simulator::new();
        let s = sim.add_signal("bus", 4);
        w.declare(s, "bus", 4);
        w.begin(0, vec![LogicVec::unknown(4)]);
        w.advance_time(3);
        w.change(s, LogicVec::unknown(4).with_bit(0, Bit::One));
        let text = w.finish();
        assert!(text.contains("bxxxx "));
        assert!(text.contains("bxxx1 "));
    }

    #[test]
    fn names_are_sanitised() {
        let mut w = VcdWriter::new("s");
        let mut sim = Simulator::new();
        let s = sim.add_signal("a b", 1);
        w.declare(s, "a b", 1);
        w.begin(0, vec![LogicVec::zeros(1)]);
        assert!(w.finish().contains("a_b"));
    }

    #[test]
    #[should_panic(expected = "after dumping started")]
    fn late_declare_rejected() {
        let mut w = VcdWriter::new("s");
        w.begin(0, vec![]);
        let mut sim = Simulator::new();
        let s = sim.add_signal("x", 1);
        w.declare(s, "x", 1);
    }
}

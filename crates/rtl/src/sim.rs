//! The event-driven simulation kernel.
//!
//! The kernel follows the VHDL simulation cycle: signal updates are
//! *nonblocking* — a process reads the current values and schedules new
//! ones, which take effect in the next delta cycle; processes sensitive to
//! the changed signals then run, and so on until the time step is stable,
//! at which point simulated time advances to the next scheduled event.

use std::collections::BTreeMap;

use crate::logic::{Bit, LogicVec};
use crate::vcd::VcdWriter;

/// Handle to a signal owned by a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(usize);

/// Handle to a process owned by a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(usize);

/// What wakes a process up.
#[derive(Debug, Clone)]
pub enum Trigger {
    /// Run whenever any of the listed signals changes value
    /// (a combinational process's sensitivity list).
    AnyChange(Vec<SignalId>),
    /// Run on a 0→1 transition of the signal (a clocked process).
    RisingEdge(SignalId),
    /// Run on a 1→0 transition of the signal.
    FallingEdge(SignalId),
}

/// The read/write interface a process sees while running.
///
/// Reads observe the values at the start of the delta cycle; writes are
/// collected and applied together when the delta ends (nonblocking
/// assignment semantics).
pub struct ProcCtx<'a> {
    values: &'a [LogicVec],
    writes: Vec<(SignalId, LogicVec)>,
}

impl ProcCtx<'_> {
    /// Current value of a signal.
    #[must_use]
    pub fn read(&self, sig: SignalId) -> LogicVec {
        self.values[sig.0]
    }

    /// Current value as an integer; `None` if any bit is `X`.
    #[must_use]
    pub fn read_u128(&self, sig: SignalId) -> Option<u128> {
        self.values[sig.0].to_u128()
    }

    /// Current value of a 1-bit signal as a [`Bit`].
    ///
    /// # Panics
    ///
    /// Panics if the signal is wider than 1 bit.
    #[must_use]
    pub fn read_bit(&self, sig: SignalId) -> Bit {
        let v = self.values[sig.0];
        assert_eq!(v.width(), 1, "read_bit on a {}-bit signal", v.width());
        v.bit(0)
    }

    /// `true` when a 1-bit signal is a known `1`.
    #[must_use]
    pub fn is_high(&self, sig: SignalId) -> bool {
        self.read_bit(sig) == Bit::One
    }

    /// Schedules a new value for the next delta cycle.
    ///
    /// # Panics
    ///
    /// Panics if the value width differs from the signal width.
    pub fn write(&mut self, sig: SignalId, value: LogicVec) {
        assert_eq!(
            self.values[sig.0].width(),
            value.width(),
            "write width mismatch on signal {}",
            sig.0
        );
        self.writes.push((sig, value));
    }

    /// Schedules an integer value for the next delta cycle.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit the signal width.
    pub fn write_u128(&mut self, sig: SignalId, value: u128) {
        let width = self.values[sig.0].width();
        self.writes.push((sig, LogicVec::from_u128(width, value)));
    }

    /// Schedules a 1-bit value for the next delta cycle.
    pub fn write_bit(&mut self, sig: SignalId, bit: Bit) {
        self.write(sig, LogicVec::from_bit(bit));
    }
}

type Behavior = Box<dyn FnMut(&mut ProcCtx<'_>)>;

struct ProcessEntry {
    name: String,
    trigger: Trigger,
    behavior: Behavior,
}

struct SignalEntry {
    name: String,
    value: LogicVec,
}

enum TimedEvent {
    Write(SignalId, LogicVec),
    ClockToggle(usize),
}

struct ClockEntry {
    signal: SignalId,
    half_period: u64,
}

/// Simulation statistics, exposed for the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Delta cycles executed.
    pub delta_cycles: u64,
    /// Process activations.
    pub process_runs: u64,
    /// Signal value changes applied.
    pub signal_updates: u64,
}

/// An event-driven, delta-cycle digital-logic simulator.
///
/// # Examples
///
/// A toggling register driven by a clock:
///
/// ```
/// use rtl::{Simulator, Trigger, logic::{Bit, LogicVec}};
///
/// let mut sim = Simulator::new();
/// let clk = sim.add_clock("clk", 10);
/// let q = sim.add_signal("q", 1);
/// sim.set(q, LogicVec::from_u128(1, 0));
/// sim.add_process("toggle", Trigger::RisingEdge(clk), move |ctx| {
///     let cur = ctx.read(q);
///     ctx.write(q, !cur);
/// });
/// sim.run_for(25); // two rising edges (t=5 if clock starts low... see docs)
/// assert!(sim.get(q).is_fully_known());
/// ```
pub struct Simulator {
    signals: Vec<SignalEntry>,
    processes: Vec<ProcessEntry>,
    clocks: Vec<ClockEntry>,
    queue: BTreeMap<u64, Vec<TimedEvent>>,
    time: u64,
    stats: SimStats,
    vcd: Option<VcdWriter>,
    /// Delta-cycle safety valve; a combinational loop trips it.
    max_deltas_per_step: u32,
}

impl Simulator {
    /// Creates an empty simulator at time 0.
    #[must_use]
    pub fn new() -> Self {
        Simulator {
            signals: Vec::new(),
            processes: Vec::new(),
            clocks: Vec::new(),
            queue: BTreeMap::new(),
            time: 0,
            stats: SimStats::default(),
            vcd: None,
            max_deltas_per_step: 10_000,
        }
    }

    /// Declares a signal; its initial value is all-`X`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 128.
    pub fn add_signal(&mut self, name: impl Into<String>, width: u32) -> SignalId {
        let id = SignalId(self.signals.len());
        self.signals.push(SignalEntry {
            name: name.into(),
            value: LogicVec::unknown(width),
        });
        id
    }

    /// Declares a free-running clock that starts low and toggles every
    /// `half_period` time units (first rising edge at `half_period`).
    ///
    /// # Panics
    ///
    /// Panics if `half_period` is 0.
    pub fn add_clock(&mut self, name: impl Into<String>, half_period: u64) -> SignalId {
        assert!(half_period > 0, "clock half-period must be nonzero");
        let signal = self.add_signal(name, 1);
        self.signals[signal.0].value = LogicVec::from_u128(1, 0);
        let idx = self.clocks.len();
        self.clocks.push(ClockEntry {
            signal,
            half_period,
        });
        self.queue
            .entry(self.time + half_period)
            .or_default()
            .push(TimedEvent::ClockToggle(idx));
        signal
    }

    /// Registers a process. Every process runs once immediately when the
    /// simulation starts (the VHDL elaboration run) and then on its
    /// trigger.
    pub fn add_process(
        &mut self,
        name: impl Into<String>,
        trigger: Trigger,
        behavior: impl FnMut(&mut ProcCtx<'_>) + 'static,
    ) -> ProcessId {
        let id = ProcessId(self.processes.len());
        self.processes.push(ProcessEntry {
            name: name.into(),
            trigger,
            behavior: Box::new(behavior),
        });
        id
    }

    /// Current simulated time.
    #[inline]
    #[must_use]
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Accumulated kernel statistics.
    #[inline]
    #[must_use]
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Current value of a signal.
    #[must_use]
    pub fn get(&self, sig: SignalId) -> LogicVec {
        self.signals[sig.0].value
    }

    /// Current value as an integer; `None` if any bit is `X`.
    #[must_use]
    pub fn get_u128(&self, sig: SignalId) -> Option<u128> {
        self.signals[sig.0].value.to_u128()
    }

    /// Signal name (for reports and VCD).
    #[must_use]
    pub fn signal_name(&self, sig: SignalId) -> &str {
        &self.signals[sig.0].name
    }

    /// Immediately sets a signal (testbench poke) and settles the deltas it
    /// causes.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or a combinational oscillation.
    pub fn set(&mut self, sig: SignalId, value: LogicVec) {
        assert_eq!(
            self.signals[sig.0].value.width(),
            value.width(),
            "set width mismatch on signal {:?}",
            self.signals[sig.0].name
        );
        self.settle(vec![(sig, value)]);
    }

    /// Immediately sets a signal from an integer.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit the signal width.
    pub fn set_u128(&mut self, sig: SignalId, value: u128) {
        let width = self.signals[sig.0].value.width();
        self.set(sig, LogicVec::from_u128(width, value));
    }

    /// Schedules a future write at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or on width mismatch.
    pub fn schedule(&mut self, sig: SignalId, value: LogicVec, at: u64) {
        assert!(at >= self.time, "cannot schedule in the past");
        assert_eq!(self.signals[sig.0].value.width(), value.width());
        self.queue
            .entry(at)
            .or_default()
            .push(TimedEvent::Write(sig, value));
    }

    /// Attaches a VCD waveform writer; all signals declared so far are
    /// dumped from the current time on.
    pub fn attach_vcd(&mut self, mut vcd: VcdWriter) {
        for (i, s) in self.signals.iter().enumerate() {
            vcd.declare(SignalId(i), &s.name, s.value.width());
        }
        vcd.begin(self.time, self.signals.iter().map(|s| s.value).collect());
        self.vcd = Some(vcd);
    }

    /// Detaches and returns the VCD writer, flushing pending output.
    pub fn detach_vcd(&mut self) -> Option<VcdWriter> {
        self.vcd.take()
    }

    /// Runs the elaboration pass: every *combinational* process executes
    /// once so derived signals settle before time advances (edge-triggered
    /// processes model bodies guarded by `rising_edge(clk)` and stay
    /// quiescent). Called automatically by the first `run_*`; callable
    /// explicitly for tests.
    pub fn elaborate(&mut self) {
        let comb: Vec<usize> = self
            .processes
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p.trigger, Trigger::AnyChange(_)))
            .map(|(i, _)| i)
            .collect();
        let writes = self.run_processes(&comb);
        self.settle(writes);
    }

    /// Advances to the next scheduled event and settles it. Returns `false`
    /// when the event queue is empty.
    pub fn step_event(&mut self) -> bool {
        let Some((&at, _)) = self.queue.iter().next() else {
            return false;
        };
        let events = self.queue.remove(&at).expect("key just observed");
        self.time = at;
        let mut writes = Vec::new();
        for ev in events {
            match ev {
                TimedEvent::Write(sig, value) => writes.push((sig, value)),
                TimedEvent::ClockToggle(idx) => {
                    let ClockEntry {
                        signal,
                        half_period,
                    } = self.clocks[idx];
                    let cur = self.signals[signal.0].value;
                    let next = match cur.bit(0) {
                        Bit::One => LogicVec::from_u128(1, 0),
                        _ => LogicVec::from_u128(1, 1),
                    };
                    writes.push((signal, next));
                    self.queue
                        .entry(at + half_period)
                        .or_default()
                        .push(TimedEvent::ClockToggle(idx));
                }
            }
        }
        self.settle(writes);
        true
    }

    /// Runs until simulated time reaches `self.time() + duration` (events
    /// at the deadline itself are processed).
    pub fn run_for(&mut self, duration: u64) {
        let deadline = self.time + duration;
        self.run_until(deadline);
    }

    /// Runs until simulated time reaches `deadline`.
    pub fn run_until(&mut self, deadline: u64) {
        if self.stats.process_runs == 0 {
            self.elaborate();
        }
        while let Some((&at, _)) = self.queue.iter().next() {
            if at > deadline {
                break;
            }
            self.step_event();
        }
        self.time = self.time.max(deadline);
        if let Some(vcd) = &mut self.vcd {
            vcd.advance_time(self.time);
        }
    }

    /// Runs for `n` full periods of the given clock.
    ///
    /// # Panics
    ///
    /// Panics if `clk` was not created by [`Simulator::add_clock`].
    pub fn run_cycles(&mut self, clk: SignalId, n: u64) {
        let entry = self
            .clocks
            .iter()
            .find(|c| c.signal == clk)
            .expect("signal is not a clock");
        let period = entry.half_period * 2;
        self.run_for(period * n);
    }

    fn run_processes(&mut self, ids: &[usize]) -> Vec<(SignalId, LogicVec)> {
        let values: Vec<LogicVec> = self.signals.iter().map(|s| s.value).collect();
        let mut all_writes = Vec::new();
        for &pid in ids {
            let mut ctx = ProcCtx {
                values: &values,
                writes: Vec::new(),
            };
            (self.processes[pid].behavior)(&mut ctx);
            self.stats.process_runs += 1;
            all_writes.extend(ctx.writes);
        }
        all_writes
    }

    /// Applies writes and iterates delta cycles until no signal changes.
    fn settle(&mut self, mut writes: Vec<(SignalId, LogicVec)>) {
        let mut deltas = 0u32;
        while !writes.is_empty() {
            deltas += 1;
            assert!(
                deltas <= self.max_deltas_per_step,
                "delta-cycle limit exceeded at t={} — combinational loop? \
                 last writers touched {:?}",
                self.time,
                writes
                    .iter()
                    .map(|(s, _)| self.signals[s.0].name.clone())
                    .collect::<Vec<_>>()
            );
            self.stats.delta_cycles += 1;

            // Apply writes; later writes to the same signal win (last
            // assignment in a process, or a later process at equal delta).
            let mut changed: Vec<(usize, LogicVec)> = Vec::new();
            for (sig, value) in writes.drain(..) {
                let old = self.signals[sig.0].value;
                if old != value {
                    self.signals[sig.0].value = value;
                    match changed.iter_mut().find(|(i, _)| *i == sig.0) {
                        Some(entry) => entry.1 = old, // keep the oldest old value
                        None => changed.push((sig.0, old)),
                    }
                }
            }
            // Drop entries that ended up back at their original value.
            changed.retain(|&(i, old)| self.signals[i].value != old);
            if changed.is_empty() {
                break;
            }
            self.stats.signal_updates += changed.len() as u64;

            if let Some(vcd) = &mut self.vcd {
                vcd.advance_time(self.time);
                for &(i, _) in &changed {
                    vcd.change(SignalId(i), self.signals[i].value);
                }
            }

            // Wake processes.
            let mut woken: Vec<usize> = Vec::new();
            for (pid, proc_entry) in self.processes.iter().enumerate() {
                let fire = match &proc_entry.trigger {
                    Trigger::AnyChange(list) => {
                        list.iter().any(|s| changed.iter().any(|&(i, _)| i == s.0))
                    }
                    Trigger::RisingEdge(s) => changed.iter().any(|&(i, old)| {
                        i == s.0
                            && old.bit(0) != Bit::One
                            && self.signals[i].value.bit(0) == Bit::One
                    }),
                    Trigger::FallingEdge(s) => changed.iter().any(|&(i, old)| {
                        i == s.0
                            && old.bit(0) != Bit::Zero
                            && self.signals[i].value.bit(0) == Bit::Zero
                    }),
                };
                if fire {
                    woken.push(pid);
                }
            }
            writes = self.run_processes(&woken);
        }
    }

    /// Names of all processes (diagnostics).
    #[must_use]
    pub fn process_names(&self) -> Vec<&str> {
        self.processes.iter().map(|p| p.name.as_str()).collect()
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Simulator {{ t: {}, signals: {}, processes: {}, pending events: {} }}",
            self.time,
            self.signals.len(),
            self.processes.len(),
            self.queue.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_xor_settles() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 8);
        let b = sim.add_signal("b", 8);
        let y = sim.add_signal("y", 8);
        sim.add_process("xor", Trigger::AnyChange(vec![a, b]), move |ctx| {
            let v = ctx.read(a) ^ ctx.read(b);
            ctx.write(y, v);
        });
        sim.elaborate();
        sim.set_u128(a, 0x5A);
        sim.set_u128(b, 0x0F);
        assert_eq!(sim.get_u128(y), Some(0x55));
        sim.set_u128(b, 0x5A);
        assert_eq!(sim.get_u128(y), Some(0x00));
    }

    #[test]
    fn clocked_counter_counts_rising_edges() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 5);
        let count = sim.add_signal("count", 8);
        sim.set_u128(count, 0);
        sim.add_process("counter", Trigger::RisingEdge(clk), move |ctx| {
            let c = ctx.read_u128(count).expect("counter is initialised");
            ctx.write_u128(count, (c + 1) & 0xFF);
        });
        // Clock starts low; rising edges at t = 5, 15, 25, ...
        sim.run_until(52);
        assert_eq!(sim.get_u128(count), Some(5));
    }

    #[test]
    fn falling_edge_trigger() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 5);
        let count = sim.add_signal("count", 8);
        sim.set_u128(count, 0);
        sim.add_process("neg", Trigger::FallingEdge(clk), move |ctx| {
            let c = ctx.read_u128(count).unwrap();
            ctx.write_u128(count, (c + 1) & 0xFF);
        });
        // Falling edges at t = 10, 20, 30, 40.
        sim.run_until(44);
        assert_eq!(sim.get_u128(count), Some(4));
    }

    #[test]
    fn nonblocking_semantics_swap() {
        // Two registers swapping values every clock must not race.
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 5);
        let r1 = sim.add_signal("r1", 8);
        let r2 = sim.add_signal("r2", 8);
        sim.set_u128(r1, 0xAA);
        sim.set_u128(r2, 0x55);
        sim.add_process("swap1", Trigger::RisingEdge(clk), move |ctx| {
            ctx.write(r1, ctx.read(r2));
        });
        sim.add_process("swap2", Trigger::RisingEdge(clk), move |ctx| {
            ctx.write(r2, ctx.read(r1));
        });
        sim.run_until(7); // one rising edge at t=5
        assert_eq!(sim.get_u128(r1), Some(0x55));
        assert_eq!(sim.get_u128(r2), Some(0xAA));
        sim.run_until(17); // second edge
        assert_eq!(sim.get_u128(r1), Some(0xAA));
        assert_eq!(sim.get_u128(r2), Some(0x55));
    }

    #[test]
    fn chained_combinational_logic_propagates_through_deltas() {
        // a -> not -> n1 -> not -> n2: two deltas needed per change.
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        let n1 = sim.add_signal("n1", 1);
        let n2 = sim.add_signal("n2", 1);
        sim.add_process("inv1", Trigger::AnyChange(vec![a]), move |ctx| {
            ctx.write(n1, !ctx.read(a));
        });
        sim.add_process("inv2", Trigger::AnyChange(vec![n1]), move |ctx| {
            ctx.write(n2, !ctx.read(n1));
        });
        sim.elaborate();
        sim.set_u128(a, 1);
        assert_eq!(sim.get_u128(n1), Some(0));
        assert_eq!(sim.get_u128(n2), Some(1));
        sim.set_u128(a, 0);
        assert_eq!(sim.get_u128(n2), Some(0));
    }

    #[test]
    #[should_panic(expected = "combinational loop")]
    fn oscillator_is_detected() {
        let mut sim = Simulator::new();
        let a = sim.add_signal("a", 1);
        sim.add_process("selfinv", Trigger::AnyChange(vec![a]), move |ctx| {
            ctx.write(a, !ctx.read(a));
        });
        sim.elaborate();
        sim.set_u128(a, 0);
    }

    #[test]
    fn uninitialised_signals_read_x() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 4);
        assert_eq!(sim.get_u128(s), None);
        assert!(sim.get(s).all(Bit::X));
    }

    #[test]
    fn scheduled_writes_fire_in_order() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 8);
        sim.schedule(s, LogicVec::from_u128(8, 1), 10);
        sim.schedule(s, LogicVec::from_u128(8, 2), 20);
        sim.run_until(15);
        assert_eq!(sim.get_u128(s), Some(1));
        sim.run_until(25);
        assert_eq!(sim.get_u128(s), Some(2));
        assert_eq!(sim.time(), 25);
    }

    #[test]
    fn stats_accumulate() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 5);
        let q = sim.add_signal("q", 1);
        sim.set_u128(q, 0);
        sim.add_process("t", Trigger::RisingEdge(clk), move |ctx| {
            ctx.write(q, !ctx.read(q));
        });
        sim.run_until(100);
        let st = sim.stats();
        assert!(st.process_runs >= 10);
        assert!(st.signal_updates >= 20); // clock toggles + q toggles
        assert!(st.delta_cycles >= 20);
    }

    #[test]
    fn run_cycles_uses_clock_period() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 7);
        sim.run_cycles(clk, 3);
        assert_eq!(sim.time(), 42);
    }

    #[test]
    #[should_panic(expected = "not a clock")]
    fn run_cycles_rejects_non_clock() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 1);
        sim.run_cycles(s, 1);
    }

    #[test]
    fn set_width_mismatch_panics() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 8);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.set(s, LogicVec::from_u128(4, 0));
        }));
        assert!(result.is_err());
    }
}

//! Three-state logic values and bounded bit-vectors.
//!
//! The simulator models `0`, `1` and `X` (unknown). `X` captures
//! uninitialised registers and contaminated combinational outputs — the
//! same discipline ModelSim enforced on the paper's VHDL. High-impedance
//! `Z` is not modelled: the IP has no tristate buses.

use core::fmt;
use core::ops::{BitAnd, BitOr, BitXor, Not};

/// A single logic bit: `0`, `1` or unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Bit {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / uninitialised.
    #[default]
    X,
}

impl Bit {
    /// `true` when the bit is `0` or `1`.
    #[inline]
    #[must_use]
    pub const fn is_known(self) -> bool {
        !matches!(self, Bit::X)
    }

    /// Converts to `bool`, treating `X` as an error.
    #[inline]
    #[must_use]
    pub const fn to_bool(self) -> Option<bool> {
        match self {
            Bit::Zero => Some(false),
            Bit::One => Some(true),
            Bit::X => None,
        }
    }
}

impl From<bool> for Bit {
    #[inline]
    fn from(b: bool) -> Self {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Bit::Zero => '0',
            Bit::One => '1',
            Bit::X => 'x',
        };
        write!(f, "{c}")
    }
}

impl Not for Bit {
    type Output = Bit;
    fn not(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
            Bit::X => Bit::X,
        }
    }
}

impl BitAnd for Bit {
    type Output = Bit;
    fn bitand(self, rhs: Bit) -> Bit {
        match (self, rhs) {
            (Bit::Zero, _) | (_, Bit::Zero) => Bit::Zero,
            (Bit::One, Bit::One) => Bit::One,
            _ => Bit::X,
        }
    }
}

impl BitOr for Bit {
    type Output = Bit;
    fn bitor(self, rhs: Bit) -> Bit {
        match (self, rhs) {
            (Bit::One, _) | (_, Bit::One) => Bit::One,
            (Bit::Zero, Bit::Zero) => Bit::Zero,
            _ => Bit::X,
        }
    }
}

impl BitXor for Bit {
    type Output = Bit;
    fn bitxor(self, rhs: Bit) -> Bit {
        match (self, rhs) {
            (Bit::X, _) | (_, Bit::X) => Bit::X,
            (a, b) => Bit::from(a != b),
        }
    }
}

/// A logic vector of up to 128 bits with per-bit known/unknown tracking.
///
/// Bit 0 is the least-significant bit. Widths are fixed at construction;
/// binary operations panic on width mismatch (the same rule VHDL's strict
/// typing enforces).
///
/// # Examples
///
/// ```
/// use rtl::logic::LogicVec;
///
/// let a = LogicVec::from_u128(8, 0x5A);
/// let b = LogicVec::from_u128(8, 0x0F);
/// assert_eq!((a ^ b).to_u128(), Some(0x55));
/// assert_eq!(LogicVec::unknown(8).to_u128(), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LogicVec {
    width: u32,
    /// Bit values; unknown bits are stored as 0 here.
    value: u128,
    /// 1 = bit is known.
    known: u128,
}

impl LogicVec {
    /// Maximum supported width.
    pub const MAX_WIDTH: u32 = 128;

    fn mask(width: u32) -> u128 {
        if width == 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        }
    }

    /// An all-`X` vector.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds [`LogicVec::MAX_WIDTH`].
    #[must_use]
    pub fn unknown(width: u32) -> Self {
        assert!(
            (1..=Self::MAX_WIDTH).contains(&width),
            "width must be 1..=128"
        );
        LogicVec {
            width,
            value: 0,
            known: 0,
        }
    }

    /// An all-zero vector.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds [`LogicVec::MAX_WIDTH`].
    #[must_use]
    pub fn zeros(width: u32) -> Self {
        Self::from_u128(width, 0)
    }

    /// A fully-known vector from an integer.
    ///
    /// # Panics
    ///
    /// Panics if `width` is invalid or `value` does not fit in `width` bits.
    #[must_use]
    pub fn from_u128(width: u32, value: u128) -> Self {
        assert!(
            (1..=Self::MAX_WIDTH).contains(&width),
            "width must be 1..=128"
        );
        assert!(
            value & !Self::mask(width) == 0,
            "value 0x{value:x} does not fit in {width} bits"
        );
        LogicVec {
            width,
            value,
            known: Self::mask(width),
        }
    }

    /// A 1-bit vector from a [`Bit`].
    #[must_use]
    pub fn from_bit(bit: Bit) -> Self {
        match bit {
            Bit::Zero => Self::from_u128(1, 0),
            Bit::One => Self::from_u128(1, 1),
            Bit::X => Self::unknown(1),
        }
    }

    /// Width in bits.
    #[inline]
    #[must_use]
    pub const fn width(&self) -> u32 {
        self.width
    }

    /// The integer value if every bit is known.
    #[inline]
    #[must_use]
    pub fn to_u128(&self) -> Option<u128> {
        self.is_fully_known().then_some(self.value)
    }

    /// `true` when no bit is `X`.
    #[inline]
    #[must_use]
    pub fn is_fully_known(&self) -> bool {
        self.known == Self::mask(self.width)
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[must_use]
    pub fn bit(&self, i: u32) -> Bit {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        if (self.known >> i) & 1 == 0 {
            Bit::X
        } else if (self.value >> i) & 1 == 1 {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// Returns a copy with bit `i` set to `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    #[must_use]
    pub fn with_bit(mut self, i: u32, bit: Bit) -> Self {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        let m = 1u128 << i;
        match bit {
            Bit::Zero => {
                self.value &= !m;
                self.known |= m;
            }
            Bit::One => {
                self.value |= m;
                self.known |= m;
            }
            Bit::X => {
                self.value &= !m;
                self.known &= !m;
            }
        }
        self
    }

    /// Extracts the bit range `[lo, lo + width)` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds this vector's width or `width == 0`.
    #[must_use]
    pub fn slice(&self, lo: u32, width: u32) -> Self {
        assert!(width >= 1, "slice width must be nonzero");
        assert!(
            lo + width <= self.width,
            "slice [{lo}, {}) exceeds width {}",
            lo + width,
            self.width
        );
        let m = Self::mask(width);
        LogicVec {
            width,
            value: (self.value >> lo) & m,
            known: (self.known >> lo) & m,
        }
    }

    /// Concatenates `self` (low part) with `high` (high part).
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds [`LogicVec::MAX_WIDTH`].
    #[must_use]
    pub fn concat(&self, high: &LogicVec) -> Self {
        let width = self.width + high.width;
        assert!(width <= Self::MAX_WIDTH, "concatenation exceeds 128 bits");
        LogicVec {
            width,
            value: self.value | (high.value << self.width),
            known: self.known | (high.known << self.width),
        }
    }

    /// `true` if every bit equals the given bit value.
    #[must_use]
    pub fn all(&self, bit: Bit) -> bool {
        (0..self.width).all(|i| self.bit(i) == bit)
    }

    fn assert_same_width(&self, rhs: &LogicVec) {
        assert_eq!(
            self.width, rhs.width,
            "operand widths differ ({} vs {})",
            self.width, rhs.width
        );
    }
}

impl Not for LogicVec {
    type Output = LogicVec;
    fn not(self) -> LogicVec {
        let m = Self::mask(self.width);
        LogicVec {
            width: self.width,
            value: !self.value & self.known & m,
            known: self.known,
        }
    }
}

impl BitXor for LogicVec {
    type Output = LogicVec;
    /// # Panics
    ///
    /// Panics on width mismatch.
    fn bitxor(self, rhs: LogicVec) -> LogicVec {
        self.assert_same_width(&rhs);
        let known = self.known & rhs.known;
        LogicVec {
            width: self.width,
            value: (self.value ^ rhs.value) & known,
            known,
        }
    }
}

impl BitAnd for LogicVec {
    type Output = LogicVec;
    /// # Panics
    ///
    /// Panics on width mismatch.
    fn bitand(self, rhs: LogicVec) -> LogicVec {
        self.assert_same_width(&rhs);
        // Known when both known, or when either side is a known 0.
        let zero_l = self.known & !self.value;
        let zero_r = rhs.known & !rhs.value;
        let known = (self.known & rhs.known) | zero_l | zero_r;
        LogicVec {
            width: self.width,
            value: self.value & rhs.value & known,
            known,
        }
    }
}

impl BitOr for LogicVec {
    type Output = LogicVec;
    /// # Panics
    ///
    /// Panics on width mismatch.
    fn bitor(self, rhs: LogicVec) -> LogicVec {
        self.assert_same_width(&rhs);
        let one_l = self.known & self.value;
        let one_r = rhs.known & rhs.value;
        let known = (self.known & rhs.known) | one_l | one_r;
        LogicVec {
            width: self.width,
            value: (self.value | rhs.value) & known,
            known,
        }
    }
}

impl fmt::Debug for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LogicVec({}'b{self})", self.width)
    }
}

impl fmt::Display for LogicVec {
    /// Binary string, most-significant bit first, `x` for unknowns.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            write!(f, "{}", self.bit(i))?;
        }
        Ok(())
    }
}

impl From<Bit> for LogicVec {
    fn from(bit: Bit) -> Self {
        LogicVec::from_bit(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_truth_tables() {
        use Bit::{One, Zero, X};
        assert_eq!(Zero & X, Zero);
        assert_eq!(X & One, X);
        assert_eq!(One | X, One);
        assert_eq!(X | Zero, X);
        assert_eq!(One ^ X, X);
        assert_eq!(One ^ Zero, One);
        assert_eq!(!X, X);
        assert_eq!(!One, Zero);
        assert_eq!(Bit::from(true), One);
        assert_eq!(One.to_bool(), Some(true));
        assert_eq!(X.to_bool(), None);
    }

    #[test]
    fn construction_and_access() {
        let v = LogicVec::from_u128(16, 0xBEEF);
        assert_eq!(v.width(), 16);
        assert_eq!(v.to_u128(), Some(0xBEEF));
        assert_eq!(v.bit(0), Bit::One);
        assert_eq!(v.bit(4), Bit::Zero);
        assert!(v.is_fully_known());

        let u = LogicVec::unknown(4);
        assert_eq!(u.to_u128(), None);
        assert_eq!(u.bit(2), Bit::X);
        assert!(!u.is_fully_known());
    }

    #[test]
    fn with_bit_transitions() {
        let v = LogicVec::unknown(3)
            .with_bit(0, Bit::One)
            .with_bit(1, Bit::Zero);
        assert_eq!(v.bit(0), Bit::One);
        assert_eq!(v.bit(1), Bit::Zero);
        assert_eq!(v.bit(2), Bit::X);
        let w = v.with_bit(0, Bit::X);
        assert_eq!(w.bit(0), Bit::X);
    }

    #[test]
    fn xor_poisons_on_x() {
        let a = LogicVec::from_u128(4, 0b1010);
        let b = LogicVec::unknown(4).with_bit(0, Bit::One);
        let c = a ^ b;
        assert_eq!(c.bit(0), Bit::One); // 0 ^ 1
        assert_eq!(c.bit(1), Bit::X);
        assert_eq!(c.bit(3), Bit::X);
    }

    #[test]
    fn and_or_dominance_over_x() {
        let x = LogicVec::unknown(2);
        let zero = LogicVec::zeros(2);
        let ones = LogicVec::from_u128(2, 0b11);
        assert_eq!((x & zero).to_u128(), Some(0));
        assert_eq!((x | ones).to_u128(), Some(0b11));
        assert!(!(x & ones).is_fully_known());
        assert!(!(x | zero).is_fully_known());
    }

    #[test]
    fn not_preserves_unknownness() {
        let v = LogicVec::unknown(2).with_bit(0, Bit::Zero);
        let n = !v;
        assert_eq!(n.bit(0), Bit::One);
        assert_eq!(n.bit(1), Bit::X);
    }

    #[test]
    fn slice_and_concat() {
        let v = LogicVec::from_u128(32, 0xDEAD_BEEF);
        assert_eq!(v.slice(0, 16).to_u128(), Some(0xBEEF));
        assert_eq!(v.slice(16, 16).to_u128(), Some(0xDEAD));
        let r = v.slice(0, 16).concat(&v.slice(16, 16));
        assert_eq!(r.to_u128(), Some(0xDEAD_BEEF));
        assert_eq!(r.width(), 32);
    }

    #[test]
    fn full_width_vectors() {
        let v = LogicVec::from_u128(128, u128::MAX);
        assert_eq!(v.to_u128(), Some(u128::MAX));
        assert_eq!((!v).to_u128(), Some(0));
    }

    #[test]
    fn display_renders_x() {
        let v = LogicVec::unknown(4)
            .with_bit(0, Bit::One)
            .with_bit(3, Bit::Zero);
        assert_eq!(v.to_string(), "0xx1");
        assert_eq!(format!("{v:?}"), "LogicVec(4'b0xx1)");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_rejected() {
        let _ = LogicVec::from_u128(4, 0x10);
    }

    #[test]
    #[should_panic(expected = "operand widths differ")]
    fn width_mismatch_rejected() {
        let _ = LogicVec::zeros(4) ^ LogicVec::zeros(8);
    }

    #[test]
    fn all_predicate() {
        assert!(LogicVec::zeros(8).all(Bit::Zero));
        assert!(LogicVec::unknown(8).all(Bit::X));
        assert!(!LogicVec::from_u128(8, 1).all(Bit::Zero));
    }
}

//! Lock-free telemetry spine for the Rijndael IP stack.
//!
//! The paper's value proposition is quantitative — cycles per block, bus
//! occupancy, throughput per device (Table 2) — so the live stack must be
//! able to report the same numbers at runtime, not only in offline
//! benches. This crate provides the shared instrumentation layer:
//!
//! * [`Counter`] — a monotone `u64` (blocks processed, requests served);
//! * [`Gauge`] — a signed point-in-time level (queue depth, connections);
//! * [`Histogram`] — fixed-bucket distribution (latency cycles,
//!   occupancy, frame sizes) with count/sum for mean derivation;
//! * [`Registry`] — a named collection of instruments handing out cheap
//!   clonable handles; registration takes a lock once, the hot paths are
//!   pure atomics;
//! * [`Snapshot`] — a point-in-time copy that subtracts ([`Snapshot::delta`]),
//!   renders as aligned human text, and serializes to the stable
//!   `telemetry/1` JSON schema via [`testkit::json`] — the same writer the
//!   bench harness uses, so bench output and live stats cannot drift.
//!
//! Handles are `Arc`-backed: cloning one is a pointer copy, and updates
//! from any thread are visible to every snapshot. Instruments are
//! registered idempotently — asking the registry for an existing name
//! returns a handle to the *same* underlying instrument, which is how
//! independent layers (engine cores, service sessions) aggregate into one
//! coherent snapshot.
//!
//! ```
//! let reg = telemetry::Registry::new();
//! let hits = reg.counter("cache.hits");
//! hits.add(3);
//! reg.counter("cache.hits").incr(); // same instrument
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("cache.hits"), Some(4));
//! assert!(snap.to_json().starts_with("{\"schema\":\"telemetry/1\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use testkit::json::{json_f64, json_string};

/// A monotonically increasing event counter.
///
/// Cloning is cheap (an `Arc` bump); all clones share the same value.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed point-in-time level (queue depth, active connections).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative) and returns the new value.
    #[inline]
    pub fn add(&self, n: i64) -> i64 {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Subtracts `n` and returns the new value.
    #[inline]
    pub fn sub(&self, n: i64) -> i64 {
        self.add(-n)
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<u64>,
    /// One slot per bound plus a final overflow (`+Inf`) bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket distribution: latencies, occupancies, frame sizes.
///
/// Buckets are defined by inclusive upper bounds chosen at registration;
/// a value larger than every bound lands in the implicit overflow bucket.
/// Recording is a short linear scan plus three relaxed atomic adds — no
/// locks, no allocation.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &*self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations recorded so far.
    #[inline]
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations recorded so far.
    #[inline]
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of instruments.
///
/// The registry itself is clonable and shareable (`Arc` inside); the map
/// lock is taken only at registration and snapshot time, never on the
/// instrument hot paths. Registering a name twice returns a handle to the
/// existing instrument (and panics if the kinds disagree — one name, one
/// meaning).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    instruments: Arc<Mutex<BTreeMap<String, Instrument>>>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry used by library-level instrumentation
    /// (the `rijndael` mode and bitslice-lane counters).
    #[must_use]
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Returns the counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Counter::default()))
        {
            Instrument::Counter(c) => c.clone(),
            other => panic!("instrument {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Gauge::default()))
        {
            Instrument::Gauge(g) => g.clone(),
            other => panic!("instrument {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram named `name`, registering it with `bounds`
    /// (strictly increasing inclusive upper bounds) on first use. Later
    /// calls return the existing instrument; its original bounds win.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind, or if
    /// `bounds` is not strictly increasing.
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Histogram::new(bounds)))
        {
            Instrument::Histogram(h) => h.clone(),
            other => panic!("instrument {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Takes a point-in-time copy of every instrument, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let map = self.instruments.lock().unwrap();
        let entries = map
            .iter()
            .map(|(name, inst)| Entry {
                name: name.clone(),
                value: match inst {
                    Instrument::Counter(c) => Value::Counter(c.get()),
                    Instrument::Gauge(g) => Value::Gauge(g.get()),
                    Instrument::Histogram(h) => {
                        let inner = &*h.0;
                        Value::Histogram(HistogramSnapshot {
                            bounds: inner.bounds.clone(),
                            buckets: inner
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                            count: h.count(),
                            sum: h.sum(),
                        })
                    }
                },
            })
            .collect();
        Snapshot { entries }
    }
}

/// The captured value of one instrument inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A counter's total.
    Counter(u64),
    /// A gauge's level.
    Gauge(i64),
    /// A histogram's buckets, count and sum.
    Histogram(HistogramSnapshot),
}

/// Captured state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the finite buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one entry per bound plus the final overflow
    /// bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
}

/// A bucketed quantile estimate from [`HistogramSnapshot::quantile`].
///
/// Fixed-bucket histograms cannot name an exact quantile, only the
/// bucket it fell in. A quantile that lands in a finite bucket is
/// *at most* that bucket's bound; one that lands in the overflow
/// bucket is *at least* the last finite bound — still a real number a
/// dashboard can print, where the old `None` read as "no data" exactly
/// when the tail was hottest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantileEstimate {
    /// The quantile is at or below this finite bucket bound.
    AtMost(u64),
    /// The quantile landed in the overflow bucket: it is at least this
    /// value (the last finite bound, or 0 for a histogram with no
    /// finite buckets). Treat it as a lower bound, not an estimate.
    Overflow(u64),
}

impl QuantileEstimate {
    /// The bucket bound either way: an upper bound for
    /// [`QuantileEstimate::AtMost`], a lower bound for
    /// [`QuantileEstimate::Overflow`].
    #[must_use]
    pub fn bound(self) -> u64 {
        match self {
            QuantileEstimate::AtMost(b) | QuantileEstimate::Overflow(b) => b,
        }
    }

    /// `true` when the quantile fell in the overflow bucket and
    /// [`QuantileEstimate::bound`] is only a lower bound.
    #[must_use]
    pub fn is_overflow(self) -> bool {
        matches!(self, QuantileEstimate::Overflow(_))
    }
}

impl fmt::Display for QuantileEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantileEstimate::AtMost(b) => write!(f, "{b}"),
            QuantileEstimate::Overflow(b) => write!(f, ">{b}"),
        }
    }
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucketed estimate of the `q` quantile (`0.0 ..= 1.0`): the
    /// smallest bucket at which the cumulative count reaches
    /// `q * count`. Returns `None` only when the histogram is empty; a
    /// quantile that lands in the overflow bucket comes back as
    /// [`QuantileEstimate::Overflow`] carrying the last finite bound as
    /// a lower bound, so a hot p99 is still a number instead of
    /// reading as "no data".
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<QuantileEstimate> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Some(match self.bounds.get(i) {
                    Some(&b) => QuantileEstimate::AtMost(b),
                    None => QuantileEstimate::Overflow(self.bounds.last().copied().unwrap_or(0)),
                });
            }
        }
        // Unreachable in practice (count equals the bucket sum), but a
        // racing snapshot could observe count ahead of the buckets.
        Some(QuantileEstimate::Overflow(
            self.bounds.last().copied().unwrap_or(0),
        ))
    }
}

/// One named instrument captured in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The instrument's registered name.
    pub name: String,
    /// Its captured value.
    pub value: Value,
}

/// A point-in-time copy of a [`Registry`], sorted by instrument name.
///
/// Snapshots subtract: [`Snapshot::delta`] yields the activity between
/// two captures, which is how benches report per-phase figures from
/// process-lifetime instruments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    entries: Vec<Entry>,
}

impl Snapshot {
    /// The captured entries, sorted by name.
    #[must_use]
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of captured instruments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing was captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn find(&self, name: &str) -> Option<&Value> {
        self.entries
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].value)
    }

    /// The captured value of counter `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.find(name)? {
            Value::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The captured value of gauge `name`, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.find(name)? {
            Value::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The captured state of histogram `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.find(name)? {
            Value::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Sum of every counter whose name starts with `prefix` — how callers
    /// aggregate families like `engine.core.*.blocks`.
    #[must_use]
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name.starts_with(prefix))
            .filter_map(|e| match &e.value {
                Value::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// The activity between `earlier` and `self`: counters and histogram
    /// buckets subtract (saturating, so a restarted instrument reads as
    /// zero rather than wrapping), gauges keep their later level.
    /// Instruments absent from `earlier` pass through unchanged.
    #[must_use]
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let value = match (&e.value, earlier.find(&e.name)) {
                    (Value::Counter(now), Some(Value::Counter(then))) => {
                        Value::Counter(now.saturating_sub(*then))
                    }
                    (Value::Histogram(now), Some(Value::Histogram(then)))
                        if now.bounds == then.bounds =>
                    {
                        Value::Histogram(HistogramSnapshot {
                            bounds: now.bounds.clone(),
                            buckets: now
                                .buckets
                                .iter()
                                .zip(&then.buckets)
                                .map(|(n, t)| n.saturating_sub(*t))
                                .collect(),
                            count: now.count.saturating_sub(then.count),
                            sum: now.sum.saturating_sub(then.sum),
                        })
                    }
                    _ => e.value.clone(),
                };
                Entry {
                    name: e.name.clone(),
                    value,
                }
            })
            .collect();
        Snapshot { entries }
    }

    /// Renders the snapshot as aligned human-readable text, one
    /// instrument per line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let width = self.entries.iter().map(|e| e.name.len()).max().unwrap_or(0);
        let mut out = String::new();
        for e in &self.entries {
            match &e.value {
                Value::Counter(v) => {
                    out.push_str(&format!("counter    {:<width$}  {v}\n", e.name));
                }
                Value::Gauge(v) => {
                    out.push_str(&format!("gauge      {:<width$}  {v}\n", e.name));
                }
                Value::Histogram(h) => {
                    out.push_str(&format!(
                        "histogram  {:<width$}  count={} sum={} mean={:.1}",
                        e.name,
                        h.count,
                        h.sum,
                        h.mean()
                    ));
                    // Quantiles render even when they land in the
                    // overflow bucket (as ">last-finite-bound").
                    if let (Some(p50), Some(p99)) = (h.quantile(0.50), h.quantile(0.99)) {
                        out.push_str(&format!(" p50={p50} p99={p99}"));
                    }
                    for (i, c) in h.buckets.iter().enumerate() {
                        match h.bounds.get(i) {
                            Some(b) => out.push_str(&format!(" le{b}:{c}")),
                            None => out.push_str(&format!(" inf:{c}")),
                        }
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Serializes to the stable `telemetry/1` JSON schema:
    ///
    /// ```json
    /// {"schema":"telemetry/1","instruments":[
    ///   {"name":"a.hits","type":"counter","value":4},
    ///   {"name":"a.depth","type":"gauge","value":-1},
    ///   {"name":"a.lat","type":"histogram","count":2,"sum":70,"mean":35.000,
    ///    "buckets":[{"le":50,"count":2},{"le":null,"count":0}]}
    /// ]}
    /// ```
    ///
    /// Instruments appear sorted by name; the final histogram bucket is
    /// the overflow bucket with `"le":null`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let body = self
            .entries
            .iter()
            .map(|e| {
                let name = json_string(&e.name);
                match &e.value {
                    Value::Counter(v) => {
                        format!("{{\"name\":{name},\"type\":\"counter\",\"value\":{v}}}")
                    }
                    Value::Gauge(v) => {
                        format!("{{\"name\":{name},\"type\":\"gauge\",\"value\":{v}}}")
                    }
                    Value::Histogram(h) => {
                        let buckets = h
                            .buckets
                            .iter()
                            .enumerate()
                            .map(|(i, c)| match h.bounds.get(i) {
                                Some(b) => format!("{{\"le\":{b},\"count\":{c}}}"),
                                None => format!("{{\"le\":null,\"count\":{c}}}"),
                            })
                            .collect::<Vec<_>>()
                            .join(",");
                        format!(
                            "{{\"name\":{name},\"type\":\"histogram\",\"count\":{},\
                             \"sum\":{},\"mean\":{},\"buckets\":[{buckets}]}}",
                            h.count,
                            h.sum,
                            json_f64(h.mean()),
                        )
                    }
                }
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"schema\":\"telemetry/1\",\"instruments\":[{body}]}}")
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_gauges_and_histograms_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("c");
        c.add(2);
        c.incr();
        assert_eq!(c.get(), 3);

        let g = reg.gauge("g");
        g.set(5);
        assert_eq!(g.add(-2), 3);
        assert_eq!(g.sub(4), -1);
        assert_eq!(g.get(), -1);

        let h = reg.histogram("h", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(5000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 5055);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(3));
        assert_eq!(snap.gauge("g"), Some(-1));
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.buckets, vec![1, 1, 1]);
        assert_eq!(hs.quantile(0.5), Some(QuantileEstimate::AtMost(100)));
        // The top quantile lands in the overflow bucket: still a number
        // (the last finite bound, as a lower bound), never "no data".
        assert_eq!(hs.quantile(1.0), Some(QuantileEstimate::Overflow(100)));
        assert!((hs.mean() - 1685.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_survive_the_overflow_bucket() {
        let reg = Registry::new();
        let h = reg.histogram("hot", &[10, 20]);
        // Every observation overflows: p50 and p99 must still report.
        for _ in 0..100 {
            h.record(1_000);
        }
        let hs = reg.snapshot().histogram("hot").unwrap().clone();
        let p50 = hs.quantile(0.50).expect("p50 reports");
        let p99 = hs.quantile(0.99).expect("p99 reports");
        assert_eq!(p50, QuantileEstimate::Overflow(20));
        assert!(p99.is_overflow() && p99.bound() == 20);
        assert_eq!(p99.to_string(), ">20");
        // A mixed distribution: p50 finite, p99 overflowed.
        let h = reg.histogram("mixed", &[10, 20]);
        for _ in 0..95 {
            h.record(5);
        }
        for _ in 0..5 {
            h.record(99);
        }
        let hs = reg.snapshot().histogram("mixed").unwrap().clone();
        assert_eq!(hs.quantile(0.50), Some(QuantileEstimate::AtMost(10)));
        assert_eq!(hs.quantile(0.99), Some(QuantileEstimate::Overflow(20)));
        // Empty histograms are the only "no data" case.
        let empty = reg.histogram("empty", &[1]);
        assert_eq!(empty.count(), 0);
        assert_eq!(
            reg.snapshot().histogram("empty").unwrap().quantile(0.99),
            None
        );
        // Degenerate: no finite buckets at all still reports a bound.
        let bare = reg.histogram("bare", &[]);
        bare.record(7);
        assert_eq!(
            reg.snapshot().histogram("bare").unwrap().quantile(0.5),
            Some(QuantileEstimate::Overflow(0))
        );
        // render_text carries the quantile columns, overflow marked.
        let text = reg.snapshot().render_text();
        assert!(text.contains("p50=>20 p99=>20"), "got: {text}");
        assert!(text.contains("p50=10 p99=>20"), "got: {text}");
    }

    #[test]
    fn registration_is_idempotent_and_shares_the_instrument() {
        let reg = Registry::new();
        reg.counter("same").add(1);
        reg.counter("same").add(1);
        assert_eq!(reg.snapshot().counter("same"), Some(2));
        // Histogram bounds from the first registration win.
        let h1 = reg.histogram("lat", &[10]);
        let h2 = reg.histogram("lat", &[99, 100]);
        h1.record(7);
        assert_eq!(h2.count(), 1);
        assert_eq!(reg.snapshot().histogram("lat").unwrap().bounds, vec![10]);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn snapshot_accessors_reject_wrong_kinds_and_missing_names() {
        let reg = Registry::new();
        let _ = reg.counter("c");
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("c"), None);
        assert_eq!(snap.counter("missing"), None);
        assert!(snap.histogram("c").is_none());
        assert_eq!(snap.len(), 1);
        assert!(!snap.is_empty());
    }

    #[test]
    fn counter_sum_aggregates_by_prefix() {
        let reg = Registry::new();
        reg.counter("core.0.blocks").add(3);
        reg.counter("core.1.blocks").add(4);
        reg.counter("other").add(100);
        reg.gauge("core.depth").set(9); // gauges don't count
        assert_eq!(reg.snapshot().counter_sum("core."), 7);
    }

    #[test]
    fn delta_subtracts_counters_and_histograms_but_not_gauges() {
        let reg = Registry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h", &[10]);
        c.add(5);
        g.set(1);
        h.record(3);
        let before = reg.snapshot();
        c.add(2);
        g.set(9);
        h.record(30);
        let after = reg.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counter("c"), Some(2));
        assert_eq!(d.gauge("g"), Some(9));
        let hs = d.histogram("h").unwrap();
        assert_eq!((hs.count, hs.sum), (1, 30));
        assert_eq!(hs.buckets, vec![0, 1]);
        // An instrument born after `before` passes through unchanged.
        reg.counter("new").add(4);
        assert_eq!(reg.snapshot().delta(&before).counter("new"), Some(4));
    }

    #[test]
    fn text_and_json_are_stable() {
        let reg = Registry::new();
        reg.counter("b.count").add(4);
        reg.gauge("a.depth").set(-1);
        reg.histogram("c.lat", &[50]).record(20);
        let snap = reg.snapshot();
        let text = snap.render_text();
        // Sorted by name, one line each.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("gauge") && lines[0].contains("a.depth"));
        assert!(lines[1].starts_with("counter") && lines[1].contains("b.count  4"));
        assert!(lines[2].contains("le50:1") && lines[2].contains("inf:0"));
        assert_eq!(format!("{snap}"), text);

        let json = snap.to_json();
        assert_eq!(
            json,
            "{\"schema\":\"telemetry/1\",\"instruments\":[\
             {\"name\":\"a.depth\",\"type\":\"gauge\",\"value\":-1},\
             {\"name\":\"b.count\",\"type\":\"counter\",\"value\":4},\
             {\"name\":\"c.lat\",\"type\":\"histogram\",\"count\":1,\"sum\":20,\
             \"mean\":20.000,\"buckets\":[{\"le\":50,\"count\":1},\
             {\"le\":null,\"count\":0}]}]}"
        );
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let name = "telemetry.selftest.global";
        let c = Registry::global().counter(name);
        let before = c.get();
        Registry::global().counter(name).add(2);
        assert_eq!(c.get(), before + 2);
    }

    #[test]
    fn eight_threads_hammering_one_registry_keep_exact_totals() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let reg = Registry::new();
        // Pre-register so every thread shares the same instruments.
        let _ = reg.counter("hammer.count");
        let _ = reg.histogram("hammer.lat", &[2, 5]);

        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let reg = reg.clone();
                thread::spawn(move || {
                    let c = reg.counter("hammer.count");
                    let g = reg.gauge(&format!("hammer.level.{t}"));
                    let h = reg.histogram("hammer.lat", &[2, 5]);
                    let mut monotone_floor = 0u64;
                    for i in 0..PER_THREAD {
                        c.incr();
                        g.set(i as i64);
                        h.record(i % 7);
                        // Snapshots taken mid-hammer must be monotone in
                        // every counter (each thread checks the shared
                        // counter never goes backwards).
                        if i % 1000 == 0 {
                            let seen = reg.snapshot().counter("hammer.count").unwrap();
                            assert!(
                                seen >= monotone_floor,
                                "counter went backwards: {seen} < {monotone_floor}"
                            );
                            monotone_floor = seen;
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let snap = reg.snapshot();
        let total = THREADS as u64 * PER_THREAD;
        assert_eq!(snap.counter("hammer.count"), Some(total));
        let h = snap.histogram("hammer.lat").unwrap();
        assert_eq!(h.count, total);
        assert_eq!(h.buckets.iter().sum::<u64>(), total);
        // 0..PER_THREAD mod 7 per thread: values 0,1,2 -> le2 bucket, etc.
        let per_thread_le2 = (0..PER_THREAD).filter(|i| i % 7 <= 2).count() as u64;
        assert_eq!(h.buckets[0], THREADS as u64 * per_thread_le2);
        for t in 0..THREADS {
            assert_eq!(
                snap.gauge(&format!("hammer.level.{t}")),
                Some(PER_THREAD as i64 - 1)
            );
        }
    }
}

//! Per-family timing calibration.
//!
//! The delay constants below are calibrated against the era datasheets and
//! the paper's measured clock periods (Table 2). They are a *model* of
//! Quartus II's timing analyzer, not a replacement: the reproduction aims
//! at the right ordering and ratios (Cyclone ≈ 30% faster than Acex at the
//! same depth; the combined core ≈ 20% slower than encrypt-only), with
//! absolute values in the right neighbourhood.
//!
//! Calibration sources:
//! * ACEX 1K-1: LE combinational delay ≈ 0.9 ns, EAB asynchronous access
//!   ≈ 9 ns, typical row/column interconnect 1–2 ns;
//! * Cyclone C6: LE delay ≈ 0.65 ns, faster interconnect;
//! * FLEX 10KA / APEX 20K(E): between the two generations.

use netlist::sta::TimingParams;

use crate::device::Family;

/// Returns calibrated [`TimingParams`] for a family (fastest speed grade,
/// matching the `-1`/`C6` parts the paper uses).
#[must_use]
pub fn params_for(family: Family) -> TimingParams {
    match family {
        Family::Acex1k => TimingParams {
            lut_delay: 0.70,
            wire_base: 0.55,
            wire_per_fanout: 0.08,
            rom_access: 4.0,
            clk_to_q: 0.7,
            ff_setup: 0.6,
            pad_delay: 2.0,
        },
        Family::Cyclone => TimingParams {
            lut_delay: 0.45,
            wire_base: 0.32,
            wire_per_fanout: 0.05,
            // M4K cannot do asynchronous reads at all; the value is kept
            // for completeness (a flow that tried to use it should have
            // been rejected earlier).
            rom_access: 255.0,
            clk_to_q: 0.45,
            ff_setup: 0.35,
            pad_delay: 1.3,
        },
        Family::Flex10ka => TimingParams {
            lut_delay: 0.85,
            wire_base: 0.70,
            wire_per_fanout: 0.09,
            rom_access: 4.8,
            clk_to_q: 0.85,
            ff_setup: 0.75,
            pad_delay: 2.3,
        },
        Family::Apex20k => TimingParams {
            lut_delay: 0.60,
            wire_base: 0.48,
            wire_per_fanout: 0.07,
            rom_access: 3.4,
            clk_to_q: 0.6,
            ff_setup: 0.5,
            pad_delay: 1.8,
        },
        Family::Apex20ke => TimingParams {
            lut_delay: 0.55,
            wire_base: 0.45,
            wire_per_fanout: 0.07,
            rom_access: 3.2,
            clk_to_q: 0.55,
            ff_setup: 0.45,
            pad_delay: 1.7,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclone_logic_is_faster_than_acex() {
        let acex = params_for(Family::Acex1k);
        let cyc = params_for(Family::Cyclone);
        assert!(cyc.lut_delay < acex.lut_delay);
        assert!(cyc.wire_base < acex.wire_base);
        assert!(cyc.ff_setup < acex.ff_setup);
    }

    #[test]
    fn generations_order_sanely() {
        // Flex (oldest) slowest, Cyclone (newest) fastest.
        let flex = params_for(Family::Flex10ka).lut_delay;
        let acex = params_for(Family::Acex1k).lut_delay;
        let apex = params_for(Family::Apex20k).lut_delay;
        let cyc = params_for(Family::Cyclone).lut_delay;
        assert!(flex >= acex && acex >= apex && apex >= cyc);
    }

    #[test]
    fn all_families_have_positive_delays() {
        for f in [
            Family::Acex1k,
            Family::Cyclone,
            Family::Flex10ka,
            Family::Apex20k,
            Family::Apex20ke,
        ] {
            let p = params_for(f);
            assert!(p.lut_delay > 0.0);
            assert!(p.wire_base > 0.0);
            assert!(p.clk_to_q > 0.0);
        }
    }
}

//! Altera device models for the families the paper (and its Table 3
//! comparison points) target.

use core::fmt;

/// Device family, determining logic-cell timing and embedded-memory
/// capabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// ACEX 1K — 4-LUT LEs, EAB embedded memory with *asynchronous* ROM
    /// support (the paper's primary target).
    Acex1k,
    /// Cyclone — 4-LUT LEs, M4K memory that is synchronous-only: no
    /// asynchronous ROM, so S-boxes must burn logic cells (the effect the
    /// paper observes: "the memory is not implemented in Cyclone family").
    Cyclone,
    /// FLEX 10KA — the family of comparison \[13\].
    Flex10ka,
    /// APEX 20K — comparison \[1\].
    Apex20k,
    /// APEX 20KE — comparison \[15\].
    Apex20ke,
}

impl Family {
    /// Whether the family's embedded memory can implement asynchronous
    /// (combinational-read) ROM.
    #[must_use]
    pub const fn supports_async_rom(self) -> bool {
        match self {
            Family::Acex1k | Family::Flex10ka | Family::Apex20k | Family::Apex20ke => true,
            Family::Cyclone => false,
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Family::Acex1k => "ACEX 1K",
            Family::Cyclone => "Cyclone",
            Family::Flex10ka => "FLEX 10KA",
            Family::Apex20k => "APEX 20K",
            Family::Apex20ke => "APEX 20KE",
        };
        f.write_str(s)
    }
}

/// One concrete device (a part number with its resource budget).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Ordering part number.
    pub part: &'static str,
    /// Family.
    pub family: Family,
    /// Logic cells / logic elements.
    pub logic_cells: u32,
    /// Embedded memory bits.
    pub memory_bits: u32,
    /// User I/O pins.
    pub user_pins: u32,
}

/// ACEX 1K EP1K100FC484-1 — the paper's first target: 4992 LEs, 12 EABs
/// (49 Kibit), 333 user I/O.
pub const EP1K100: Device = Device {
    part: "EP1K100FC484-1",
    family: Family::Acex1k,
    logic_cells: 4992,
    memory_bits: 49_152,
    user_pins: 333,
};

/// Cyclone EP1C20F400C6 — the paper's second target: 20 060 LEs, 64 M4K
/// blocks (294 Kibit, synchronous only), 301 user I/O.
pub const EP1C20: Device = Device {
    part: "EP1C20F400C6",
    family: Family::Cyclone,
    logic_cells: 20_060,
    memory_bits: 294_912,
    user_pins: 301,
};

/// FLEX 10KA EPF10K100A — comparison \[13\]: 4992 LEs, 12 EABs (2 Kibit
/// each). The BGA600 package provides enough user I/O for the IP's
/// 261-pin interface.
pub const EPF10K100A: Device = Device {
    part: "EPF10K100ABC600-1",
    family: Family::Flex10ka,
    logic_cells: 4992,
    memory_bits: 24_576,
    user_pins: 406,
};

/// APEX 20K EP20K400 — comparison \[1\] (high-performance core).
pub const EP20K400: Device = Device {
    part: "EP20K400FC672-1X",
    family: Family::Apex20k,
    logic_cells: 16_640,
    memory_bits: 212_992,
    user_pins: 488,
};

/// APEX 20KE EP20K300E — comparison \[15\] (Hammercores processors).
pub const EP20K300E: Device = Device {
    part: "EP20K300EFC672-1X",
    family: Family::Apex20ke,
    logic_cells: 11_520,
    memory_bits: 147_456,
    user_pins: 408,
};

/// The full device list, paper targets first.
pub const ALL_DEVICES: &[Device] = &[EP1K100, EP1C20, EPF10K100A, EP20K400, EP20K300E];

impl Device {
    /// Looks a device up by part number (case-insensitive prefix match).
    #[must_use]
    pub fn by_part(part: &str) -> Option<Device> {
        let wanted = part.to_ascii_lowercase();
        ALL_DEVICES
            .iter()
            .find(|d| d.part.to_ascii_lowercase().starts_with(&wanted))
            .copied()
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.part, self.family)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_percentages_reconstruct() {
        // Table 2 reports 2114 LCs as 42% of the Acex device and
        // 4057 LEs as 20% of the Cyclone device; our capacities must make
        // those percentages come out right.
        assert_eq!(
            (2114.0_f64 / f64::from(EP1K100.logic_cells) * 100.0).round(),
            42.0
        );
        assert_eq!(
            (4057.0_f64 / f64::from(EP1C20.logic_cells) * 100.0).round(),
            20.0
        );
        // Memory: 16384 bits = 33% of the EABs; 32768 = 66%.
        assert_eq!(
            (16_384.0_f64 / f64::from(EP1K100.memory_bits) * 100.0).round(),
            33.0
        );
        assert_eq!(
            (32_768.0_f64 / f64::from(EP1K100.memory_bits) * 100.0).round(),
            67.0
        );
        // Pins: 261 = 78% of Acex, 87% of Cyclone.
        assert_eq!(
            (261.0_f64 / f64::from(EP1K100.user_pins) * 100.0).round(),
            78.0
        );
        assert_eq!(
            (261.0_f64 / f64::from(EP1C20.user_pins) * 100.0).round(),
            87.0
        );
    }

    #[test]
    fn async_rom_support_matches_the_paper() {
        assert!(EP1K100.family.supports_async_rom());
        assert!(
            !EP1C20.family.supports_async_rom(),
            "Cyclone M4K is synchronous-only"
        );
        assert!(EPF10K100A.family.supports_async_rom());
    }

    #[test]
    fn lookup_by_part() {
        assert_eq!(Device::by_part("EP1K100").unwrap().family, Family::Acex1k);
        assert_eq!(Device::by_part("ep1c20").unwrap().family, Family::Cyclone);
        assert!(Device::by_part("XC2V1000").is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(EP1K100.to_string(), "EP1K100FC484-1 (ACEX 1K)");
        assert_eq!(Family::Cyclone.to_string(), "Cyclone");
    }
}

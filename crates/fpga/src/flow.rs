//! The end-to-end synthesis flow: optimize → map → fit → time.
//!
//! One call produces everything a row of the paper's Table 2 contains:
//! logic cells, memory bits, pins (with occupation percentages), the
//! minimum clock period, and — given the core's block latency in cycles —
//! the latency in nanoseconds and the throughput in Mbit/s.

use core::fmt;

use netlist::ir::Netlist;
use netlist::mapper::{map, MapperConfig};
use netlist::opt::optimize;
use netlist::sta::{analyze, TimingReport};

use crate::device::Device;
use crate::fit::{fit, FitError, FitReport};
use crate::timing::params_for;

/// Flow options.
#[derive(Debug, Clone, Copy)]
pub struct FlowOptions {
    /// LUT mapper configuration.
    pub mapper: MapperConfig,
    /// Block latency in clock cycles (50 for the paper's IP); used to
    /// derive latency/throughput from the clock period.
    pub latency_cycles: u64,
    /// Block size in bits carried per latency period (128 for AES).
    pub block_bits: u64,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            mapper: MapperConfig::default(),
            latency_cycles: 50,
            block_bits: 128,
        }
    }
}

/// Everything a Table 2 row holds.
#[derive(Debug, Clone)]
pub struct SynthesisReport {
    /// Design name (from the netlist).
    pub design: String,
    /// Target device part.
    pub device: &'static str,
    /// Resource usage.
    pub fit: FitReport,
    /// Timing analysis result.
    pub timing: TimingReport,
    /// Clock period rounded the way the paper reports it (whole ns).
    pub clock_ns: f64,
    /// Block latency in nanoseconds.
    pub latency_ns: f64,
    /// Throughput in Mbit/s (`block_bits / latency`).
    pub throughput_mbps: f64,
    /// LUT depth of the mapped design.
    pub lut_depth: u32,
}

impl fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} on {}", self.design, self.device)?;
        writeln!(
            f,
            "  LC's      {:>6} / {:>4.0}%",
            self.fit.logic_cells, self.fit.logic_pct
        )?;
        writeln!(
            f,
            "  Memory    {:>6} / {:>4.0}%",
            self.fit.memory_bits, self.fit.memory_pct
        )?;
        writeln!(
            f,
            "  Pins      {:>6} / {:>4.0}%",
            self.fit.pins, self.fit.pin_pct
        )?;
        writeln!(f, "  Latency   {:>6.0} ns", self.latency_ns)?;
        writeln!(f, "  Clk       {:>6.1} ns", self.clock_ns)?;
        write!(f, "  Throughput {:>5.0} Mbps", self.throughput_mbps)
    }
}

/// Runs the full flow for one netlist on one device.
///
/// # Errors
///
/// Returns the fitter's [`FitError`] when the design does not fit (or uses
/// asynchronous ROM on a family without it).
pub fn synthesize(
    netlist: &Netlist,
    device: &Device,
    options: &FlowOptions,
) -> Result<SynthesisReport, FitError> {
    let (clean, _) = optimize(netlist);
    let mapped = map(&clean, &options.mapper);
    let fit_report = fit(&clean, &mapped, device)?;
    let timing = analyze(&clean, &mapped, &params_for(device.family));

    let clock_ns = timing.min_period;
    let latency_ns = clock_ns * options.latency_cycles as f64;
    let throughput_mbps = options.block_bits as f64 * 1000.0 / latency_ns;

    Ok(SynthesisReport {
        design: clean.name().to_string(),
        device: device.part,
        fit: fit_report,
        timing,
        clock_ns,
        latency_ns,
        throughput_mbps,
        lut_depth: mapped.depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{EP1C20, EP1K100};
    use netlist::ir::Netlist;

    /// A registered 32-bit XOR/rotate datapath, vaguely AES-ish.
    fn toy() -> Netlist {
        let mut nl = Netlist::new("toy-datapath");
        let a = nl.input_bus("a", 32);
        let b = nl.input_bus("b", 32);
        let ra = nl.dff_word(&a);
        let rb = nl.dff_word(&b);
        let x = nl.xor_word(&ra, &rb);
        let rot: Vec<_> = (0..32).map(|i| x[(i + 8) % 32]).collect();
        let y = nl.xor_word(&x, &rot);
        let q = nl.dff_word(&y);
        nl.output_bus("q", &q);
        nl
    }

    #[test]
    fn flow_produces_complete_report() {
        let report = synthesize(&toy(), &EP1K100, &FlowOptions::default()).unwrap();
        assert!(report.fit.logic_cells >= 64, "registers + xor planes");
        assert!(report.clock_ns > 0.0);
        assert!((report.latency_ns - report.clock_ns * 50.0).abs() < 1e-9);
        let expect_tp = 128_000.0 / report.latency_ns;
        assert!((report.throughput_mbps - expect_tp).abs() < 1e-9);
        let text = report.to_string();
        assert!(text.contains("LC's"));
        assert!(text.contains("Throughput"));
    }

    #[test]
    fn cyclone_is_faster_for_the_same_netlist() {
        let acex = synthesize(&toy(), &EP1K100, &FlowOptions::default()).unwrap();
        let cyclone = synthesize(&toy(), &EP1C20, &FlowOptions::default()).unwrap();
        assert!(
            cyclone.clock_ns < acex.clock_ns,
            "cyclone {} vs acex {}",
            cyclone.clock_ns,
            acex.clock_ns
        );
        // Same LUT structure on both (identical mapping).
        assert_eq!(cyclone.fit.logic_cells, acex.fit.logic_cells);
    }
}

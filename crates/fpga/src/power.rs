//! Per-family electrical parameters for the activity-based power model —
//! the paper's §6 future work ("we propose a power analysis of the
//! architecture. As one of the possible applications area \[is\] mobile
//! systems, this feature is very interesting").
//!
//! Calibration: ACEX 1K is a 2.5 V, 0.22 µm family; Cyclone is a 1.5 V,
//! 0.13 µm family — the voltage difference alone gives Cyclone a ~2.8×
//! advantage in switching energy, which is the dominant effect the model
//! reproduces. Capacitance constants are order-of-magnitude figures for
//! the respective processes.

use netlist::power::PowerParams;

use crate::device::Family;

/// Returns calibrated [`PowerParams`] for a family.
#[must_use]
pub fn power_params_for(family: Family) -> PowerParams {
    match family {
        Family::Acex1k => PowerParams {
            voltage: 2.5,
            cell_cap_pf: 0.030,
            wire_cap_per_fanout_pf: 0.008,
            rom_access_energy_pj: 6.0,
            clock_energy_per_ff_pj: 0.09,
        },
        Family::Cyclone => PowerParams {
            voltage: 1.5,
            cell_cap_pf: 0.018,
            wire_cap_per_fanout_pf: 0.005,
            rom_access_energy_pj: 3.0,
            clock_energy_per_ff_pj: 0.05,
        },
        Family::Flex10ka => PowerParams {
            voltage: 3.3,
            cell_cap_pf: 0.038,
            wire_cap_per_fanout_pf: 0.010,
            rom_access_energy_pj: 8.0,
            clock_energy_per_ff_pj: 0.12,
        },
        Family::Apex20k => PowerParams {
            voltage: 2.5,
            cell_cap_pf: 0.026,
            wire_cap_per_fanout_pf: 0.007,
            rom_access_energy_pj: 5.0,
            clock_energy_per_ff_pj: 0.08,
        },
        Family::Apex20ke => PowerParams {
            voltage: 1.8,
            cell_cap_pf: 0.022,
            wire_cap_per_fanout_pf: 0.006,
            rom_access_energy_pj: 4.0,
            clock_energy_per_ff_pj: 0.06,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newer_families_run_at_lower_voltage() {
        let flex = power_params_for(Family::Flex10ka).voltage;
        let acex = power_params_for(Family::Acex1k).voltage;
        let cyc = power_params_for(Family::Cyclone).voltage;
        assert!(flex > acex && acex > cyc);
    }

    #[test]
    fn all_parameters_positive() {
        for f in [
            Family::Acex1k,
            Family::Cyclone,
            Family::Flex10ka,
            Family::Apex20k,
            Family::Apex20ke,
        ] {
            let p = power_params_for(f);
            assert!(p.voltage > 0.0);
            assert!(p.cell_cap_pf > 0.0);
            assert!(p.rom_access_energy_pj > 0.0);
        }
    }
}

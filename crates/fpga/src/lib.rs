//! Altera device models, fitting and timing estimation — the Quartus II
//! substitute of the reproduction.
//!
//! * [`device`] — resource budgets of the paper's targets (ACEX 1K
//!   EP1K100, Cyclone EP1C20) and the Table 3 comparison families;
//! * [`timing`] — calibrated per-family delay parameters feeding the
//!   [`netlist::sta`] analyzer;
//! * [`fit`] — occupation accounting (logic cells, memory bits, pins) with
//!   overflow and async-ROM-capability checks;
//! * [`flow`] — the optimize → map → fit → time pipeline producing a
//!   complete Table 2 row per design/device pair.
//!
//! # Examples
//!
//! ```
//! use fpga::device::EP1K100;
//! use fpga::flow::{synthesize, FlowOptions};
//! use netlist::ir::Netlist;
//!
//! let mut nl = Netlist::new("reg8");
//! let a = nl.input_bus("a", 8);
//! let q = nl.dff_word(&a);
//! nl.output_bus("q", &q);
//! let report = synthesize(&nl, &EP1K100, &FlowOptions::default())?;
//! assert_eq!(report.fit.logic_cells, 8);
//! # Ok::<(), fpga::fit::FitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod fit;
pub mod flow;
pub mod power;
pub mod timing;

pub use device::{Device, Family, ALL_DEVICES, EP1C20, EP1K100};
pub use fit::{FitError, FitReport};
pub use flow::{synthesize, FlowOptions, SynthesisReport};

//! The fitter: places a mapped design's resource demand against a device's
//! budget and reports occupation the way the paper's Table 2 does.

use core::fmt;

use netlist::ir::Netlist;
use netlist::mapper::MappedDesign;

use crate::device::Device;

/// Resource overflow diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// More logic cells than the device has.
    LogicOverflow {
        /// Cells required.
        needed: u32,
        /// Cells available.
        available: u32,
    },
    /// More embedded memory than the device has.
    MemoryOverflow {
        /// Bits required.
        needed: u32,
        /// Bits available.
        available: u32,
    },
    /// More pins than the device has.
    PinOverflow {
        /// Pins required.
        needed: u32,
        /// Pins available.
        available: u32,
    },
    /// Asynchronous ROM macros on a family without async-ROM-capable
    /// memory (the Cyclone case — regenerate the netlist with
    /// logic-cell S-boxes instead).
    AsyncRomUnsupported {
        /// Offending ROM macro count.
        roms: usize,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::LogicOverflow { needed, available } => {
                write!(
                    f,
                    "design needs {needed} logic cells, device has {available}"
                )
            }
            FitError::MemoryOverflow { needed, available } => {
                write!(
                    f,
                    "design needs {needed} memory bits, device has {available}"
                )
            }
            FitError::PinOverflow { needed, available } => {
                write!(f, "design needs {needed} pins, device has {available}")
            }
            FitError::AsyncRomUnsupported { roms } => write!(
                f,
                "{roms} asynchronous ROM macros cannot be placed: this family's \
                 embedded memory is synchronous-only"
            ),
        }
    }
}

impl std::error::Error for FitError {}

/// A successful fit: the paper's Table 2 row minus timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitReport {
    /// Logic cells used.
    pub logic_cells: u32,
    /// Percentage of the device's logic.
    pub logic_pct: f64,
    /// Embedded memory bits used.
    pub memory_bits: u32,
    /// Percentage of the device's memory.
    pub memory_pct: f64,
    /// Pins used (one per primary input/output bit, plus the clock).
    pub pins: u32,
    /// Percentage of the device's user I/O.
    pub pin_pct: f64,
}

/// Fits a mapped design onto a device.
///
/// Pin demand counts every primary input and output bit plus one clock
/// pin (the convention that reproduces the paper's 261/262 pin counts).
///
/// # Errors
///
/// Returns a [`FitError`] when any budget is exceeded or the family cannot
/// realise asynchronous ROMs.
pub fn fit(
    netlist: &Netlist,
    mapped: &MappedDesign,
    device: &Device,
) -> Result<FitReport, FitError> {
    if !mapped.roms.is_empty() && !device.family.supports_async_rom() {
        return Err(FitError::AsyncRomUnsupported {
            roms: mapped.roms.len(),
        });
    }
    let logic_cells = u32::try_from(mapped.logic_cells).expect("LC count fits u32");
    let memory_bits = u32::try_from(mapped.memory_bits()).expect("memory bits fit u32");
    let pins = u32::try_from(netlist.inputs().len() + netlist.outputs().len() + 1)
        .expect("pin count fits u32");

    if logic_cells > device.logic_cells {
        return Err(FitError::LogicOverflow {
            needed: logic_cells,
            available: device.logic_cells,
        });
    }
    if memory_bits > device.memory_bits {
        return Err(FitError::MemoryOverflow {
            needed: memory_bits,
            available: device.memory_bits,
        });
    }
    if pins > device.user_pins {
        return Err(FitError::PinOverflow {
            needed: pins,
            available: device.user_pins,
        });
    }

    Ok(FitReport {
        logic_cells,
        logic_pct: f64::from(logic_cells) / f64::from(device.logic_cells) * 100.0,
        memory_bits,
        memory_pct: f64::from(memory_bits) / f64::from(device.memory_bits) * 100.0,
        pins,
        pin_pct: f64::from(pins) / f64::from(device.user_pins) * 100.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{EP1C20, EP1K100};
    use netlist::mapper::{map, MapperConfig};

    fn toy_design(with_rom: bool) -> (Netlist, MappedDesign) {
        let mut nl = Netlist::new("toy");
        let a = nl.input_bus("a", 8);
        let b = nl.input_bus("b", 8);
        let x = nl.xor_word(&a, &b);
        let q = nl.dff_word(&x);
        if with_rom {
            let contents: [u8; 256] = core::array::from_fn(|i| i as u8);
            let d = nl.rom256x8(&q, &contents);
            nl.output_bus("d", &d);
        } else {
            nl.output_bus("q", &q);
        }
        let mapped = map(&nl, &MapperConfig::default());
        (nl, mapped)
    }

    #[test]
    fn fits_and_reports_percentages() {
        let (nl, mapped) = toy_design(false);
        let r = fit(&nl, &mapped, &EP1K100).unwrap();
        assert_eq!(r.logic_cells, 8);
        assert_eq!(r.pins, 8 + 8 + 8 + 1); // a, b, q, clk
        assert!(r.logic_pct > 0.0 && r.logic_pct < 1.0);
        assert_eq!(r.memory_bits, 0);
    }

    #[test]
    fn rom_fits_on_acex_not_on_cyclone() {
        let (nl, mapped) = toy_design(true);
        let acex = fit(&nl, &mapped, &EP1K100).unwrap();
        assert_eq!(acex.memory_bits, 2048);
        let err = fit(&nl, &mapped, &EP1C20).unwrap_err();
        assert!(matches!(err, FitError::AsyncRomUnsupported { roms: 1 }));
        assert!(err.to_string().contains("synchronous-only"));
    }

    #[test]
    fn overflow_detection() {
        let (nl, mapped) = toy_design(false);
        let tiny = Device {
            logic_cells: 4,
            ..EP1K100
        };
        assert!(matches!(
            fit(&nl, &mapped, &tiny),
            Err(FitError::LogicOverflow {
                needed: 8,
                available: 4
            })
        ));
        let pinless = Device {
            user_pins: 3,
            ..EP1K100
        };
        assert!(matches!(
            fit(&nl, &mapped, &pinless),
            Err(FitError::PinOverflow { .. })
        ));
    }
}

//! The four Rijndael round transformations and their inverses
//! (paper Figures 4–7).
//!
//! Encryption applies `ByteSub → ShiftRow → MixColumn → AddKey`; decryption
//! applies `AddKey → IMixColumn → IShiftRow → IByteSub` (the order the paper
//! gives in §3). The final encryption round and the first decryption round
//! skip the (inverse) `MixColumn`.

use gf256::{poly::GfPoly4, sbox};

use crate::state::State;

/// Row-shift offsets `(C1, C2, C3)` for a given block width `NB`
/// (Rijndael specification table 4.1; constant for the AES subset).
///
/// ```
/// use rijndael::transform::shift_offsets;
/// assert_eq!(shift_offsets(4), [0, 1, 2, 3]);
/// assert_eq!(shift_offsets(8), [0, 1, 3, 4]);
/// ```
///
/// # Panics
///
/// Panics if `nb` is not in `4..=8`.
#[must_use]
pub const fn shift_offsets(nb: usize) -> [usize; 4] {
    match nb {
        4..=6 => [0, 1, 2, 3],
        7 => [0, 1, 2, 4],
        8 => [0, 1, 3, 4],
        _ => panic!("Rijndael block width must be 4..=8 columns"),
    }
}

/// `ByteSub` (Figure 4): substitutes every state byte through the S-box.
pub fn byte_sub<const NB: usize>(state: &mut State<NB>) {
    state.map_bytes(sbox::sub);
}

/// `IByteSub`: the inverse substitution.
pub fn inv_byte_sub<const NB: usize>(state: &mut State<NB>) {
    state.map_bytes(sbox::inv_sub);
}

/// `ShiftRow` (Figure 6 shows the inverse): rotates row `r` left by the
/// offset `C_r` that depends on the block width.
pub fn shift_row<const NB: usize>(state: &mut State<NB>) {
    let offs = shift_offsets(NB);
    for r in 1..4 {
        let row = state.row(r);
        let shifted: [u8; NB] = core::array::from_fn(|c| row[(c + offs[r]) % NB]);
        state.set_row(r, shifted);
    }
}

/// `IShiftRow`: rotates row `r` right by `C_r`.
pub fn inv_shift_row<const NB: usize>(state: &mut State<NB>) {
    let offs = shift_offsets(NB);
    for r in 1..4 {
        let row = state.row(r);
        let shifted: [u8; NB] = core::array::from_fn(|c| row[(c + NB - offs[r]) % NB]);
        state.set_row(r, shifted);
    }
}

/// `MixColumn` (Figure 7): multiplies every column by
/// `c(x) = {03}x³ + {01}x² + {01}x + {02}` modulo `x⁴ + 1`.
pub fn mix_column<const NB: usize>(state: &mut State<NB>) {
    for c in 0..NB {
        state.set_column(c, GfPoly4::MIX_COLUMN.apply_column(state.column(c)));
    }
}

/// `IMixColumn`: multiplies every column by the inverse polynomial
/// `d(x) = {0B}x³ + {0D}x² + {09}x + {0E}`.
pub fn inv_mix_column<const NB: usize>(state: &mut State<NB>) {
    for c in 0..NB {
        state.set_column(c, GfPoly4::INV_MIX_COLUMN.apply_column(state.column(c)));
    }
}

/// `AddKey`: XORs a round key (as `NB` big-endian column words) into the
/// state. Self-inverse, as the paper notes.
pub fn add_round_key<const NB: usize>(state: &mut State<NB>, round_key: &[u32]) {
    assert_eq!(round_key.len(), NB, "round key must provide NB words");
    for (c, &w) in round_key.iter().enumerate() {
        state.set_column_word(c, state.column_word(c) ^ w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_from(bytes: [u8; 16]) -> State<4> {
        State::from_bytes(&bytes)
    }

    #[test]
    fn byte_sub_roundtrip() {
        let bytes: [u8; 16] = core::array::from_fn(|i| (i * 17) as u8);
        let mut st = state_from(bytes);
        byte_sub(&mut st);
        inv_byte_sub(&mut st);
        assert_eq!(st.to_bytes(), bytes);
    }

    #[test]
    fn byte_sub_matches_sbox() {
        let mut st = state_from([0x53; 16]);
        byte_sub(&mut st);
        assert_eq!(st.to_bytes(), [0xED; 16]);
    }

    #[test]
    fn shift_row_pattern() {
        // Rows shift left by 0,1,2,3 for NB = 4.
        let bytes: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut st = state_from(bytes);
        shift_row(&mut st);
        assert_eq!(st.row(0), [0, 4, 8, 12]); // unchanged
        assert_eq!(st.row(1), [5, 9, 13, 1]); // left by 1
        assert_eq!(st.row(2), [10, 14, 2, 6]); // left by 2
        assert_eq!(st.row(3), [15, 3, 7, 11]); // left by 3
    }

    #[test]
    fn shift_row_roundtrip_all_widths() {
        fn check<const NB: usize>() {
            let bytes: Vec<u8> = (0..4 * NB as u8).collect();
            let mut st = State::<NB>::from_bytes(&bytes);
            shift_row(&mut st);
            inv_shift_row(&mut st);
            assert_eq!(st.to_vec(), bytes);
        }
        check::<4>();
        check::<5>();
        check::<6>();
        check::<7>();
        check::<8>();
    }

    #[test]
    fn mix_column_roundtrip() {
        let bytes: [u8; 16] = core::array::from_fn(|i| (i * 31 + 7) as u8);
        let mut st = state_from(bytes);
        mix_column(&mut st);
        inv_mix_column(&mut st);
        assert_eq!(st.to_bytes(), bytes);
    }

    #[test]
    fn add_round_key_is_self_inverse() {
        let bytes: [u8; 16] = core::array::from_fn(|i| i as u8);
        let key = [0xDEAD_BEEF, 0x0123_4567, 0x89AB_CDEF, 0xFFFF_0000];
        let mut st = state_from(bytes);
        add_round_key(&mut st, &key);
        add_round_key(&mut st, &key);
        assert_eq!(st.to_bytes(), bytes);
    }

    #[test]
    fn fips197_round1_sequence() {
        // FIPS-197 Appendix B round 1: start_of_round state after AddKey(0).
        let start: [u8; 16] = [
            0x19, 0x3D, 0xE3, 0xBE, 0xA0, 0xF4, 0xE2, 0x2B, 0x9A, 0xC6, 0x8D, 0x2A, 0xE9, 0xF8,
            0x48, 0x08,
        ];
        let mut st = state_from(start);
        byte_sub(&mut st);
        let after_sub: [u8; 16] = [
            0xD4, 0x27, 0x11, 0xAE, 0xE0, 0xBF, 0x98, 0xF1, 0xB8, 0xB4, 0x5D, 0xE5, 0x1E, 0x41,
            0x52, 0x30,
        ];
        assert_eq!(st.to_bytes(), after_sub);
        shift_row(&mut st);
        let after_shift: [u8; 16] = [
            0xD4, 0xBF, 0x5D, 0x30, 0xE0, 0xB4, 0x52, 0xAE, 0xB8, 0x41, 0x11, 0xF1, 0x1E, 0x27,
            0x98, 0xE5,
        ];
        assert_eq!(st.to_bytes(), after_shift);
        mix_column(&mut st);
        let after_mix: [u8; 16] = [
            0x04, 0x66, 0x81, 0xE5, 0xE0, 0xCB, 0x19, 0x9A, 0x48, 0xF8, 0xD3, 0x7A, 0x28, 0x06,
            0x26, 0x4C,
        ];
        assert_eq!(st.to_bytes(), after_mix);
    }

    #[test]
    #[should_panic(expected = "round key must provide NB words")]
    fn add_round_key_wrong_width() {
        let mut st = State::<4>::zero();
        add_round_key(&mut st, &[0u32; 3]);
    }
}

//! The AES subset of Rijndael: 128-bit blocks with 128-, 192- or 256-bit
//! keys (the paper's §3 — "The AES specified a subset of Rijndael, fixing
//! the block size on 128").

use core::fmt;

use crate::cipher::{BatchCipher, BlockCipher, Rijndael};

macro_rules! aes_variant {
    ($(#[$doc:meta])* $name:ident, $key_bytes:literal, $rounds:literal) => {
        $(#[$doc])*
        #[derive(Clone)]
        pub struct $name {
            inner: Rijndael<4>,
        }

        impl $name {
            /// Key size in bytes.
            pub const KEY_LEN: usize = $key_bytes;
            /// Block size in bytes (always 16 for AES).
            pub const BLOCK_LEN: usize = 16;
            /// Number of rounds.
            pub const ROUNDS: usize = $rounds;

            /// Constructs the cipher from a fixed-size key. Infallible:
            /// the key length is enforced by the type.
            #[must_use]
            pub fn new(key: &[u8; $key_bytes]) -> Self {
                $name {
                    inner: Rijndael::new(key).expect("statically valid key length"),
                }
            }

            /// Encrypts one 16-byte block.
            #[must_use]
            pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
                let mut out = *block;
                self.inner.encrypt(&mut out);
                out
            }

            /// Decrypts one 16-byte block.
            #[must_use]
            pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
                let mut out = *block;
                self.inner.decrypt(&mut out);
                out
            }

            /// Access to the underlying generic cipher (and through it the
            /// key schedule).
            #[must_use]
            pub fn as_rijndael(&self) -> &Rijndael<4> {
                &self.inner
            }
        }

        impl BlockCipher for $name {
            fn block_len(&self) -> usize {
                16
            }
            fn encrypt_in_place(&self, block: &mut [u8]) {
                self.inner.encrypt(block);
            }
            fn decrypt_in_place(&self, block: &mut [u8]) {
                self.inner.decrypt(block);
            }
        }

        // Default batch implementation: one block per call. Still useful
        // as the baseline the bitsliced backend is compared against.
        impl BatchCipher for $name {}

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), " {{ rounds: {} }}"), Self::ROUNDS)
            }
        }
    };
}

aes_variant!(
    /// AES-128: 128-bit key, 10 rounds — the mode the paper's IP implements
    /// ("this Rijndael implementation run its symmetric cipher algorithm
    /// using a key size of 128, mode called AES128").
    ///
    /// # Examples
    ///
    /// ```
    /// use rijndael::Aes128;
    ///
    /// let aes = Aes128::new(&[0u8; 16]);
    /// let ct = aes.encrypt_block(&[0u8; 16]);
    /// assert_eq!(aes.decrypt_block(&ct), [0u8; 16]);
    /// ```
    Aes128, 16, 10
);

aes_variant!(
    /// AES-192: 192-bit key, 12 rounds.
    Aes192, 24, 12
);

aes_variant!(
    /// AES-256: 256-bit key, 14 rounds.
    Aes256, 32, 14
);

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS-197 Appendix C common plaintext and key pattern.
    fn c_plaintext() -> [u8; 16] {
        core::array::from_fn(|i| (i as u8) * 0x11)
    }

    #[test]
    fn fips197_c1_aes128() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let aes = Aes128::new(&key);
        let ct = aes.encrypt_block(&c_plaintext());
        assert_eq!(
            ct,
            [
                0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4,
                0xC5, 0x5A
            ]
        );
        assert_eq!(aes.decrypt_block(&ct), c_plaintext());
    }

    #[test]
    fn fips197_c2_aes192() {
        let key: [u8; 24] = core::array::from_fn(|i| i as u8);
        let aes = Aes192::new(&key);
        let ct = aes.encrypt_block(&c_plaintext());
        assert_eq!(
            ct,
            [
                0xDD, 0xA9, 0x7C, 0xA4, 0x86, 0x4C, 0xDF, 0xE0, 0x6E, 0xAF, 0x70, 0xA0, 0xEC, 0x0D,
                0x71, 0x91
            ]
        );
        assert_eq!(aes.decrypt_block(&ct), c_plaintext());
    }

    #[test]
    fn fips197_c3_aes256() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let aes = Aes256::new(&key);
        let ct = aes.encrypt_block(&c_plaintext());
        assert_eq!(
            ct,
            [
                0x8E, 0xA2, 0xB7, 0xCA, 0x51, 0x67, 0x45, 0xBF, 0xEA, 0xFC, 0x49, 0x90, 0x4B, 0x49,
                0x60, 0x89
            ]
        );
        assert_eq!(aes.decrypt_block(&ct), c_plaintext());
    }

    #[test]
    fn round_counts() {
        assert_eq!(Aes128::ROUNDS, 10);
        assert_eq!(Aes192::ROUNDS, 12);
        assert_eq!(Aes256::ROUNDS, 14);
        let aes = Aes128::new(&[0; 16]);
        assert_eq!(aes.as_rijndael().schedule().rounds(), 10);
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(
            format!("{:?}", Aes128::new(&[0; 16])),
            "Aes128 { rounds: 10 }"
        );
    }
}

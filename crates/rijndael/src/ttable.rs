//! The 32-bit table-lookup ("T-table") AES implementation.
//!
//! Era-typical software AES merged `ByteSub`, `ShiftRow` and `MixColumn`
//! into four 256×32-bit lookup tables so a round costs 16 table lookups and
//! 16 XORs. The paper's introduction motivates hardware by the cost of
//! "running cryptography algorithms in general software" — this module is
//! that software baseline, benchmarked against the cycle-accurate IP model
//! in the `bench` crate.
//!
//! Tables are derived at compile time from the S-box and GF(2^8) constants;
//! nothing is hand-copied.

use core::fmt;

use gf256::{sbox, Gf256};

use crate::cipher::BlockCipher;
use crate::key_schedule::{sub_word, InvalidKeyLength, KeySchedule};

/// Encryption T-table 0: `Te0[x] = [{02}·S(x), S(x), S(x), {03}·S(x)]` as a
/// big-endian word; `Te1..Te3` are byte rotations of it.
pub const TE0: [u32; 256] = build_te0();
/// Decryption T-table 0:
/// `Td0[x] = [{0E}·S⁻¹(x), {09}·S⁻¹(x), {0D}·S⁻¹(x), {0B}·S⁻¹(x)]`.
pub const TD0: [u32; 256] = build_td0();

const fn build_te0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut x = 0usize;
    while x < 256 {
        let s = Gf256::new(sbox::SBOX[x]);
        let s2 = s.mul_slow(Gf256::new(2)).value() as u32;
        let s1 = s.value() as u32;
        let s3 = s.mul_slow(Gf256::new(3)).value() as u32;
        t[x] = (s2 << 24) | (s1 << 16) | (s1 << 8) | s3;
        x += 1;
    }
    t
}

const fn build_td0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut x = 0usize;
    while x < 256 {
        let s = Gf256::new(sbox::INV_SBOX[x]);
        let e = s.mul_slow(Gf256::new(0x0E)).value() as u32;
        let n9 = s.mul_slow(Gf256::new(0x09)).value() as u32;
        let d = s.mul_slow(Gf256::new(0x0D)).value() as u32;
        let b = s.mul_slow(Gf256::new(0x0B)).value() as u32;
        t[x] = (e << 24) | (n9 << 16) | (d << 8) | b;
        x += 1;
    }
    t
}

#[inline]
fn te(i: usize, x: u8) -> u32 {
    TE0[x as usize].rotate_right(8 * i as u32)
}

#[inline]
fn td(i: usize, x: u8) -> u32 {
    TD0[x as usize].rotate_right(8 * i as u32)
}

/// Applies `IMixColumn` to a single big-endian column word (used to derive
/// the equivalent-inverse-cipher round keys).
#[must_use]
pub fn inv_mix_word(w: u32) -> u32 {
    let b = w.to_be_bytes().map(Gf256::new);
    let m = |c0: u8, c1: u8, c2: u8, c3: u8| {
        (b[0] * Gf256::new(c0)
            + b[1] * Gf256::new(c1)
            + b[2] * Gf256::new(c2)
            + b[3] * Gf256::new(c3))
        .value()
    };
    u32::from_be_bytes([
        m(0x0E, 0x0B, 0x0D, 0x09),
        m(0x09, 0x0E, 0x0B, 0x0D),
        m(0x0D, 0x09, 0x0E, 0x0B),
        m(0x0B, 0x0D, 0x09, 0x0E),
    ])
}

/// AES implemented with 32-bit T-table lookups.
///
/// Supports all three AES key sizes. Functionally identical to
/// [`crate::Rijndael<4>`]; the point of the type is performance and the
/// software-baseline role described in the module docs.
///
/// # Examples
///
/// ```
/// use rijndael::ttable::TtableAes;
/// use rijndael::Aes128;
///
/// let key = [0x42u8; 16];
/// let fast = TtableAes::new(&key)?;
/// let slow = Aes128::new(&key);
/// let pt = [7u8; 16];
/// let mut block = pt;
/// fast.encrypt_block(&mut block);
/// assert_eq!(block, slow.encrypt_block(&pt));
/// # Ok::<(), rijndael::key_schedule::InvalidKeyLength>(())
/// ```
#[derive(Clone)]
pub struct TtableAes {
    /// Encryption round keys, 4 words per round.
    enc_keys: Vec<u32>,
    /// Equivalent-inverse-cipher round keys, already in decryption order.
    dec_keys: Vec<u32>,
    rounds: usize,
}

impl TtableAes {
    /// Expands `key` (16, 24 or 32 bytes).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLength`] for any other length (including the
    /// non-AES Rijndael sizes 20 and 28, which the T-table subset does not
    /// cover).
    pub fn new(key: &[u8]) -> Result<Self, InvalidKeyLength> {
        if !matches!(key.len(), 16 | 24 | 32) {
            return Err(InvalidKeyLength { len: key.len() });
        }
        let schedule = KeySchedule::expand(key, 4)?;
        let rounds = schedule.rounds();
        let enc_keys = schedule.words().to_vec();

        // Equivalent inverse cipher: reverse round order; apply IMixColumn
        // to every round key except the first and last.
        let mut dec_keys = Vec::with_capacity(enc_keys.len());
        for round in (0..=rounds).rev() {
            for i in 0..4 {
                let w = enc_keys[round * 4 + i];
                dec_keys.push(if round == 0 || round == rounds {
                    w
                } else {
                    inv_mix_word(w)
                });
            }
        }
        Ok(TtableAes {
            enc_keys,
            dec_keys,
            rounds,
        })
    }

    /// Number of rounds (10/12/14).
    #[inline]
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Encrypts one 16-byte block in place.
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != 16`.
    pub fn encrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 16);
        let rk = &self.enc_keys;
        let mut s: [u32; 4] = core::array::from_fn(|c| {
            u32::from_be_bytes([
                block[4 * c],
                block[4 * c + 1],
                block[4 * c + 2],
                block[4 * c + 3],
            ]) ^ rk[c]
        });

        for round in 1..self.rounds {
            let t: [u32; 4] = core::array::from_fn(|j| {
                te(0, (s[j] >> 24) as u8)
                    ^ te(1, (s[(j + 1) % 4] >> 16) as u8)
                    ^ te(2, (s[(j + 2) % 4] >> 8) as u8)
                    ^ te(3, s[(j + 3) % 4] as u8)
                    ^ rk[4 * round + j]
            });
            s = t;
        }

        // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        let last = self.rounds;
        let t: [u32; 4] = core::array::from_fn(|j| {
            let w = u32::from_be_bytes([
                sbox::sub((s[j] >> 24) as u8),
                sbox::sub((s[(j + 1) % 4] >> 16) as u8),
                sbox::sub((s[(j + 2) % 4] >> 8) as u8),
                sbox::sub(s[(j + 3) % 4] as u8),
            ]);
            w ^ rk[4 * last + j]
        });
        for (c, w) in t.iter().enumerate() {
            block[4 * c..4 * c + 4].copy_from_slice(&w.to_be_bytes());
        }
    }

    /// Decrypts one 16-byte block in place (equivalent inverse cipher).
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != 16`.
    pub fn decrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 16);
        let rk = &self.dec_keys;
        let mut s: [u32; 4] = core::array::from_fn(|c| {
            u32::from_be_bytes([
                block[4 * c],
                block[4 * c + 1],
                block[4 * c + 2],
                block[4 * c + 3],
            ]) ^ rk[c]
        });

        for round in 1..self.rounds {
            let t: [u32; 4] = core::array::from_fn(|j| {
                td(0, (s[j] >> 24) as u8)
                    ^ td(1, (s[(j + 3) % 4] >> 16) as u8)
                    ^ td(2, (s[(j + 2) % 4] >> 8) as u8)
                    ^ td(3, s[(j + 1) % 4] as u8)
                    ^ rk[4 * round + j]
            });
            s = t;
        }

        let last = self.rounds;
        let t: [u32; 4] = core::array::from_fn(|j| {
            let w = u32::from_be_bytes([
                sbox::inv_sub((s[j] >> 24) as u8),
                sbox::inv_sub((s[(j + 3) % 4] >> 16) as u8),
                sbox::inv_sub((s[(j + 2) % 4] >> 8) as u8),
                sbox::inv_sub(s[(j + 1) % 4] as u8),
            ]);
            w ^ rk[4 * last + j]
        });
        for (c, w) in t.iter().enumerate() {
            block[4 * c..4 * c + 4].copy_from_slice(&w.to_be_bytes());
        }
    }

    /// Sanity helper used by tests: rebuild `sub_word` through the tables.
    #[doc(hidden)]
    #[must_use]
    pub fn sub_word_via_tables(w: u32) -> u32 {
        sub_word(w)
    }
}

impl BlockCipher for TtableAes {
    fn block_len(&self) -> usize {
        16
    }
    fn encrypt_in_place(&self, block: &mut [u8]) {
        self.encrypt_block(block);
    }
    fn decrypt_in_place(&self, block: &mut [u8]) {
        self.decrypt_block(block);
    }
}

// Default batch implementation: the T-table path has no multi-block pass.
impl crate::cipher::BatchCipher for TtableAes {}

impl Drop for TtableAes {
    /// Wipes both round-key arrays (best effort; see [`crate::zeroize`]).
    fn drop(&mut self) {
        crate::zeroize::wipe_words(&mut self.enc_keys);
        crate::zeroize::wipe_words(&mut self.dec_keys);
    }
}

impl fmt::Debug for TtableAes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TtableAes {{ rounds: {} }}", self.rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cipher::Rijndael;

    #[test]
    fn matches_reference_on_fips_vectors() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let t = TtableAes::new(&key).unwrap();
        let mut block: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        t.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4,
                0xC5, 0x5A
            ]
        );
        t.decrypt_block(&mut block);
        assert_eq!(block, core::array::from_fn(|i| (i as u8) * 0x11));
    }

    #[test]
    fn matches_reference_on_many_random_like_inputs() {
        // Deterministic pseudo-random sweep across all three key sizes.
        let mut x: u64 = 0x1234_5678_9ABC_DEF0;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for key_len in [16usize, 24, 32] {
            for _ in 0..50 {
                let key: Vec<u8> = (0..key_len).map(|_| next() as u8).collect();
                let pt: Vec<u8> = (0..16).map(|_| next() as u8).collect();
                let fast = TtableAes::new(&key).unwrap();
                let slow = Rijndael::<4>::new(&key).unwrap();

                let mut a = pt.clone();
                fast.encrypt_block(&mut a);
                let mut b = pt.clone();
                slow.encrypt(&mut b);
                assert_eq!(a, b, "encrypt mismatch, key_len={key_len}");

                fast.decrypt_block(&mut a);
                assert_eq!(a, pt, "decrypt roundtrip failed, key_len={key_len}");
            }
        }
    }

    #[test]
    fn te0_consistency_with_first_principles() {
        for x in 0..=255u8 {
            let s = Gf256::new(sbox::sub(x));
            let expect = u32::from_be_bytes([
                (s * Gf256::new(2)).value(),
                s.value(),
                s.value(),
                (s * Gf256::new(3)).value(),
            ]);
            assert_eq!(TE0[x as usize], expect);
        }
    }

    #[test]
    fn td_inverts_te_through_the_cipher() {
        // TD/TE are only indirectly inverse; check via one full round pair
        // using inv_mix_word.
        for w in [0u32, 0xFFFF_FFFF, 0x0123_4567, 0xDEAD_BEEF] {
            let mixed = {
                let b = w.to_be_bytes();
                u32::from_be_bytes(gf256::GfPoly4::MIX_COLUMN.apply_column(b))
            };
            assert_eq!(inv_mix_word(mixed), w);
        }
    }

    #[test]
    fn rejects_non_aes_key_sizes() {
        assert!(TtableAes::new(&[0u8; 20]).is_err());
        assert!(TtableAes::new(&[0u8; 28]).is_err());
        assert!(TtableAes::new(&[0u8; 17]).is_err());
    }
}

//! Runtime CPU-feature detection and backend dispatch.
//!
//! The crate used to pick its fastest software path at *compile* time
//! (`target-cpu=native` in `.cargo/config.toml` statically enabling the
//! AVX2 bitsliced plane), which pins a release binary to the build host.
//! This module replaces that with a runtime decision made once per
//! process:
//!
//! 1. **Probe** — [`cpu`] runs the std feature probes
//!    (`is_x86_feature_detected!` on x86_64,
//!    `is_aarch64_feature_detected!` on aarch64) exactly once and caches
//!    the result.
//! 2. **Micro-race** — [`selection`] builds every *available,
//!    constant-time* candidate ([`Kind::AesNi`], [`Kind::Neon`], the
//!    bitsliced planes) with a throwaway key and times a 64-block batch
//!    encrypt (the **bulk** lane) and a single-block encrypt (the
//!    **block** lane), taking the minimum over a few repetitions. The
//!    winner of each lane is cached for the life of the process.
//! 3. **Publish** — the decision lands in the global telemetry registry
//!    under `rijndael.dispatch.*` (see [`selection`]), so `GET_STATS`
//!    shows exactly which implementation serves traffic.
//!
//! Backends that index lookup tables with secret data ([`Kind::Ttable`],
//! [`Kind::Reference`]) and the cycle-accurate IP-core simulation
//! ([`Kind::IpCore`]) never enter the race; they are reachable only
//! through the explicit override below. The constant-time bitsliced
//! portable plane is always available, so the race never comes up empty:
//! that is the fallback policy.
//!
//! # Forcing a backend
//!
//! Setting [`FORCE_ENV`] (`RIJNDAEL_FORCE_BACKEND`) to a [`Kind`] token
//! skips the race and pins both lanes. An unknown token or a backend the
//! CPU cannot run **panics** — a forced backend that silently fell back
//! would invalidate exactly the test sweeps the override exists for.

use std::sync::OnceLock;

use crate::bitslice::{Bitsliced8, WideLane};
use crate::cipher::{BatchCipher, BlockCipher, Rijndael};
use crate::ttable::TtableAes;

/// Environment variable that pins the dispatch decision to one [`Kind`]
/// token (see the module docs for the failure semantics).
pub const FORCE_ENV: &str = "RIJNDAEL_FORCE_BACKEND";

/// Blocks per timing sample in the bulk lane of the micro-race (one full
/// bitsliced wide pass).
const RACE_BULK_BLOCKS: usize = 64;

/// Timing repetitions per lane; the minimum is kept, which rejects
/// scheduler noise on a loaded host.
const RACE_REPS: usize = 5;

/// CPU features relevant to backend choice, probed once per process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuFeatures {
    /// x86 AES-NI instructions (`is_x86_feature_detected!("aes")`).
    pub aesni: bool,
    /// x86 AVX2 vector extensions (drives the wide bitsliced plane).
    pub avx2: bool,
    /// ARMv8 Cryptography Extension AES instructions.
    pub neon_aes: bool,
    /// x86 `PCLMULQDQ` carry-less multiply (drives the GHASH fast path
    /// in [`crate::gf128`]).
    pub pclmul: bool,
}

/// The cached result of the one-time CPU probe.
pub fn cpu() -> CpuFeatures {
    static CPU: OnceLock<CpuFeatures> = OnceLock::new();
    *CPU.get_or_init(probe)
}

#[cfg(target_arch = "x86_64")]
fn probe() -> CpuFeatures {
    CpuFeatures {
        aesni: std::arch::is_x86_feature_detected!("aes"),
        avx2: std::arch::is_x86_feature_detected!("avx2"),
        neon_aes: false,
        pclmul: std::arch::is_x86_feature_detected!("pclmulqdq"),
    }
}

#[cfg(target_arch = "aarch64")]
fn probe() -> CpuFeatures {
    CpuFeatures {
        aesni: false,
        avx2: false,
        neon_aes: std::arch::is_aarch64_feature_detected!("aes"),
        pclmul: false,
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn probe() -> CpuFeatures {
    CpuFeatures::default()
}

/// Every dispatchable AES implementation in the workspace. All software
/// kinds key with 16, 24, or 32 bytes; only [`Kind::IpCore`] (the
/// paper's AES-128-only hardware model) is fixed to 16.
///
/// `Kind` is the currency of the dispatch layer: the force override names
/// one by [`Kind::token`], the engine maps one to a farm slot, and
/// telemetry reports one per lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// x86 AES-NI instructions ([`crate::aesni`]).
    AesNi,
    /// ARMv8 Cryptography Extension ([`crate::neon`]).
    Neon,
    /// Bitsliced, AVX2 wide plane ([`crate::bitslice`]).
    BitslicedWide,
    /// Bitsliced, portable `[u64; 4]` wide plane.
    BitslicedPortable,
    /// Bitsliced, `u32` 8-block granules only (no wide pass).
    BitslicedNarrow,
    /// The era-typical T-table implementation (not constant-time).
    Ttable,
    /// The golden software reference (not constant-time).
    Reference,
    /// The paper's cycle-accurate IP-core simulation behind its bus.
    IpCore,
}

impl Kind {
    /// Every kind, in probe order (fastest plausible first).
    pub const ALL: [Kind; 8] = [
        Kind::AesNi,
        Kind::Neon,
        Kind::BitslicedWide,
        Kind::BitslicedPortable,
        Kind::BitslicedNarrow,
        Kind::Ttable,
        Kind::Reference,
        Kind::IpCore,
    ];

    /// The stable token naming this kind in [`FORCE_ENV`] and telemetry.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Kind::AesNi => "aesni",
            Kind::Neon => "neon",
            Kind::BitslicedWide => "bitsliced-wide",
            Kind::BitslicedPortable => "bitsliced-portable",
            Kind::BitslicedNarrow => "bitsliced-narrow",
            Kind::Ttable => "ttable",
            Kind::Reference => "reference",
            Kind::IpCore => "ip-core",
        }
    }

    /// The backend name this kind surfaces as in `engine.core.<i>.<name>`
    /// telemetry when an engine farm slot dispatches to it.
    #[must_use]
    pub fn backend_name(self) -> &'static str {
        match self {
            Kind::AesNi => "soft-aesni",
            Kind::Neon => "soft-neon",
            Kind::BitslicedWide => "soft-bitsliced-wide",
            Kind::BitslicedPortable => "soft-bitsliced-portable",
            Kind::BitslicedNarrow => "soft-bitsliced-narrow",
            Kind::Ttable => "soft-ttable",
            Kind::Reference => "soft-ref",
            Kind::IpCore => "ip-encdec",
        }
    }

    /// Parses a [`Kind::token`] back into a kind.
    ///
    /// # Errors
    ///
    /// [`UnknownBackend`] when `token` names nothing; the caller decides
    /// how loudly to fail ([`forced`] panics).
    pub fn from_token(token: &str) -> Result<Kind, UnknownBackend> {
        Kind::ALL
            .into_iter()
            .find(|k| k.token() == token)
            .ok_or_else(|| UnknownBackend {
                token: token.to_string(),
            })
    }

    /// `true` when this CPU (and compilation target) can run the kind.
    #[must_use]
    pub fn available(self) -> bool {
        match self {
            Kind::AesNi => cpu().aesni,
            Kind::Neon => cpu().neon_aes,
            Kind::BitslicedWide => cpu().avx2,
            Kind::BitslicedPortable
            | Kind::BitslicedNarrow
            | Kind::Ttable
            | Kind::Reference
            | Kind::IpCore => true,
        }
    }

    /// `true` when the kind's per-block path is branch-free and free of
    /// secret-indexed loads. Only constant-time kinds enter the
    /// [`selection`] micro-race; the others require the explicit
    /// [`FORCE_ENV`] override.
    #[must_use]
    pub fn constant_time(self) -> bool {
        !matches!(self, Kind::Ttable | Kind::Reference | Kind::IpCore)
    }

    /// Every kind available on this host, in [`Kind::ALL`] order.
    #[must_use]
    pub fn detected() -> Vec<Kind> {
        Kind::ALL.into_iter().filter(|k| k.available()).collect()
    }
}

/// A [`FORCE_ENV`]/[`Kind::from_token`] token that names no backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBackend {
    /// The token that failed to parse.
    pub token: String,
}

impl std::fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown backend token {:?}; valid tokens: ", self.token)?;
        for (i, k) in Kind::ALL.into_iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(k.token())?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownBackend {}

/// The backend pinned by [`FORCE_ENV`], if the variable is set
/// (cached; an empty value counts as unset).
///
/// # Panics
///
/// Panics on an unknown token or on a kind this CPU cannot run — a
/// forced backend must never silently fall back to something else.
pub fn forced() -> Option<Kind> {
    static FORCED: OnceLock<Option<Kind>> = OnceLock::new();
    *FORCED.get_or_init(|| {
        let token = std::env::var(FORCE_ENV).ok()?;
        if token.is_empty() {
            return None;
        }
        let kind = match Kind::from_token(&token) {
            Ok(kind) => kind,
            Err(e) => panic!("{FORCE_ENV}: {e}"),
        };
        assert!(
            kind.available(),
            "{FORCE_ENV}={token}: backend is not available on this CPU \
             (detected: {:?})",
            cpu()
        );
        Some(kind)
    })
}

/// The per-process dispatch decision (see [`selection`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// Winner of the 64-block batch lane — what bulk ECB/CTR runs on.
    pub bulk: Kind,
    /// Winner of the single-block lane — what chained modes run on.
    pub block: Kind,
    /// `true` when [`FORCE_ENV`] pinned the decision instead of the race.
    pub forced: bool,
}

/// The cached dispatch decision: the [`FORCE_ENV`] override if set,
/// otherwise the winners of the startup micro-race over every available
/// constant-time [`Kind`].
///
/// The first call publishes the decision into the global telemetry
/// registry:
///
/// * `rijndael.dispatch.backend.<token>` = 1 — the bulk-lane winner (the
///   headline choice);
/// * `rijndael.dispatch.lane.bulk.<token>` / `...lane.block.<token>` = 1
///   — the per-lane winners;
/// * `rijndael.dispatch.race.<token>.bulk_ns` / `.block_ns` — each
///   candidate's best time (absent when forced);
/// * `rijndael.dispatch.forced` gauge — 1 when pinned by [`FORCE_ENV`].
pub fn selection() -> Selection {
    static SELECTION: OnceLock<Selection> = OnceLock::new();
    *SELECTION.get_or_init(|| {
        let reg = telemetry::Registry::global();
        let sel = if let Some(kind) = forced() {
            Selection {
                bulk: kind,
                block: kind,
                forced: true,
            }
        } else {
            race(reg)
        };
        reg.counter(&format!("rijndael.dispatch.backend.{}", sel.bulk.token()))
            .incr();
        reg.counter(&format!("rijndael.dispatch.lane.bulk.{}", sel.bulk.token()))
            .incr();
        reg.counter(&format!(
            "rijndael.dispatch.lane.block.{}",
            sel.block.token()
        ))
        .incr();
        reg.gauge("rijndael.dispatch.forced")
            .set(i64::from(sel.forced));
        sel
    })
}

/// Times every available constant-time candidate on both lanes and picks
/// the fastest per lane.
fn race(reg: &telemetry::Registry) -> Selection {
    // The throwaway race key: any fixed value works, timing does not
    // depend on key bytes for constant-time candidates.
    let key = [0x5Au8; 16];
    let mut bulk_best: Option<(u64, Kind)> = None;
    let mut block_best: Option<(u64, Kind)> = None;
    for kind in Kind::ALL {
        if !kind.available() || !kind.constant_time() {
            continue;
        }
        let cipher =
            AutoCipher::for_kind(kind, &key).expect("constant-time kinds always build a cipher");
        let bulk_ns = time_min(|| {
            let mut blocks = [[0xC3u8; 16]; RACE_BULK_BLOCKS];
            cipher.encrypt_blocks(&mut blocks);
            blocks
        });
        let block_ns = time_min(|| {
            let mut block = [0xC3u8; 16];
            cipher.encrypt_in_place(&mut block);
            block
        });
        reg.counter(&format!("rijndael.dispatch.race.{}.bulk_ns", kind.token()))
            .add(bulk_ns);
        reg.counter(&format!("rijndael.dispatch.race.{}.block_ns", kind.token()))
            .add(block_ns);
        if bulk_best.is_none_or(|(best, _)| bulk_ns < best) {
            bulk_best = Some((bulk_ns, kind));
        }
        if block_best.is_none_or(|(best, _)| block_ns < best) {
            block_best = Some((block_ns, kind));
        }
    }
    // BitslicedPortable is unconditionally available, so the race cannot
    // come up empty.
    let (_, bulk) = bulk_best.expect("the portable bitsliced plane always races");
    let (_, block) = block_best.expect("the portable bitsliced plane always races");
    Selection {
        bulk,
        block,
        forced: false,
    }
}

/// Minimum wall-clock nanoseconds over [`RACE_REPS`] runs of `f` (plus
/// one untimed warmup), with the result black-boxed so the work is not
/// optimised away.
fn time_min<T>(mut f: impl FnMut() -> T) -> u64 {
    core::hint::black_box(f());
    let mut best = u64::MAX;
    for _ in 0..RACE_REPS {
        let start = std::time::Instant::now();
        core::hint::black_box(f());
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        best = best.min(ns);
    }
    best
}

/// The dispatched cipher: whatever [`Kind`] won (or was forced), behind
/// the ordinary [`BlockCipher`]/[`BatchCipher`] traits.
///
/// This is what the service session's bulk lane and the engine's
/// `BackendSpec::Auto` farm slots actually hold.
#[derive(Clone)]
pub struct AutoCipher {
    kind: Kind,
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    // Boxed: the two max-15-entry round-key schedules are ~480 bytes
    // inline, dwarfing every other variant.
    #[cfg(target_arch = "x86_64")]
    AesNi(Box<crate::aesni::AesNi>),
    #[cfg(target_arch = "aarch64")]
    Neon(Box<crate::neon::NeonAes>),
    Bitsliced(Bitsliced8),
    Ttable(TtableAes),
    Reference(Rijndael<4>),
}

impl AutoCipher {
    /// Builds the cipher the process-wide [`selection`] picked for the
    /// bulk lane, or `None` when the selection (necessarily forced) is
    /// [`Kind::IpCore`], which has no in-crate cipher — callers then
    /// route everything through an engine farm instead. `key` is 16, 24,
    /// or 32 bytes (AES-128/192/256).
    ///
    /// # Panics
    ///
    /// Panics on an invalid key length — lengths are validated at the
    /// service boundary before any backend is keyed.
    #[must_use]
    pub fn new(key: &[u8]) -> Option<Self> {
        Self::for_kind(selection().bulk, key)
    }

    /// Builds a specific kind, or `None` for [`Kind::IpCore`].
    ///
    /// # Panics
    ///
    /// Panics when `kind` is not [`Kind::available`] — forcing an absent
    /// backend must fail loudly, never silently substitute — and on an
    /// invalid key length, as in [`Self::new`].
    #[must_use]
    pub fn for_kind(kind: Kind, key: &[u8]) -> Option<Self> {
        assert!(
            kind.available(),
            "backend {} is not available on this CPU (detected: {:?})",
            kind.token(),
            cpu()
        );
        let inner = match kind {
            Kind::IpCore => return None,
            #[cfg(target_arch = "x86_64")]
            Kind::AesNi => Inner::AesNi(Box::new(
                crate::aesni::AesNi::new(key).expect("availability checked above"),
            )),
            #[cfg(not(target_arch = "x86_64"))]
            Kind::AesNi => unreachable!("AES-NI is never available off x86_64"),
            #[cfg(target_arch = "aarch64")]
            Kind::Neon => Inner::Neon(Box::new(
                crate::neon::NeonAes::new(key).expect("availability checked above"),
            )),
            #[cfg(not(target_arch = "aarch64"))]
            Kind::Neon => unreachable!("NEON is never available off aarch64"),
            Kind::BitslicedWide => Inner::Bitsliced(Bitsliced8::with_lane(key, WideLane::Avx2)),
            Kind::BitslicedPortable => {
                Inner::Bitsliced(Bitsliced8::with_lane(key, WideLane::Portable))
            }
            Kind::BitslicedNarrow => Inner::Bitsliced(Bitsliced8::with_lane(key, WideLane::Narrow)),
            Kind::Ttable => {
                Inner::Ttable(TtableAes::new(key).expect("key must be 16, 24, or 32 bytes"))
            }
            Kind::Reference => {
                Inner::Reference(Rijndael::new(key).expect("key must be 16, 24, or 32 bytes"))
            }
        };
        Some(AutoCipher { kind, inner })
    }

    /// Which implementation this cipher dispatches to.
    #[must_use]
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// Shorthand for `self.kind().backend_name()`.
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        self.kind.backend_name()
    }
}

impl BlockCipher for AutoCipher {
    fn block_len(&self) -> usize {
        16
    }

    fn encrypt_in_place(&self, block: &mut [u8]) {
        match &self.inner {
            #[cfg(target_arch = "x86_64")]
            Inner::AesNi(c) => c.encrypt_in_place(block),
            #[cfg(target_arch = "aarch64")]
            Inner::Neon(c) => c.encrypt_in_place(block),
            Inner::Bitsliced(c) => c.encrypt_in_place(block),
            Inner::Ttable(c) => c.encrypt_in_place(block),
            Inner::Reference(c) => c.encrypt_in_place(block),
        }
    }

    fn decrypt_in_place(&self, block: &mut [u8]) {
        match &self.inner {
            #[cfg(target_arch = "x86_64")]
            Inner::AesNi(c) => c.decrypt_in_place(block),
            #[cfg(target_arch = "aarch64")]
            Inner::Neon(c) => c.decrypt_in_place(block),
            Inner::Bitsliced(c) => c.decrypt_in_place(block),
            Inner::Ttable(c) => c.decrypt_in_place(block),
            Inner::Reference(c) => c.decrypt_in_place(block),
        }
    }
}

impl BatchCipher for AutoCipher {
    fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        match &self.inner {
            #[cfg(target_arch = "x86_64")]
            Inner::AesNi(c) => c.encrypt_blocks(blocks),
            #[cfg(target_arch = "aarch64")]
            Inner::Neon(c) => c.encrypt_blocks(blocks),
            Inner::Bitsliced(c) => c.encrypt_blocks(blocks),
            Inner::Ttable(c) => BatchCipher::encrypt_blocks(c, blocks),
            Inner::Reference(c) => BatchCipher::encrypt_blocks(c, blocks),
        }
    }

    fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        match &self.inner {
            #[cfg(target_arch = "x86_64")]
            Inner::AesNi(c) => c.decrypt_blocks(blocks),
            #[cfg(target_arch = "aarch64")]
            Inner::Neon(c) => c.decrypt_blocks(blocks),
            Inner::Bitsliced(c) => c.decrypt_blocks(blocks),
            Inner::Ttable(c) => BatchCipher::decrypt_blocks(c, blocks),
            Inner::Reference(c) => BatchCipher::decrypt_blocks(c, blocks),
        }
    }
}

impl core::fmt::Debug for AutoCipher {
    /// Never prints key material.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "AutoCipher {{ kind: {} }}", self.kind.token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS-197 Appendix C.1.
    const KEY: [u8; 16] = [
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E,
        0x0F,
    ];
    const PT: [u8; 16] = [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE,
        0xFF,
    ];
    const CT: [u8; 16] = [
        0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4, 0xC5,
        0x5A,
    ];

    #[test]
    fn tokens_roundtrip_and_unknowns_fail() {
        for kind in Kind::ALL {
            assert_eq!(Kind::from_token(kind.token()), Ok(kind));
        }
        let err = Kind::from_token("not-a-real-backend").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("not-a-real-backend"), "{msg}");
        assert!(msg.contains("bitsliced-portable"), "{msg}");
    }

    #[test]
    fn the_portable_fallback_is_always_detected() {
        let detected = Kind::detected();
        assert!(detected.contains(&Kind::BitslicedPortable));
        assert!(detected.contains(&Kind::IpCore));
        for kind in detected {
            assert!(kind.available());
        }
    }

    #[test]
    fn probe_gates_match_the_kind_availability() {
        assert_eq!(Kind::AesNi.available(), cpu().aesni);
        assert_eq!(Kind::BitslicedWide.available(), cpu().avx2);
        assert_eq!(Kind::Neon.available(), cpu().neon_aes);
    }

    #[test]
    fn selection_is_available_constant_time_and_stable() {
        let first = selection();
        assert!(first.bulk.available());
        assert!(first.block.available());
        if !first.forced {
            assert!(first.bulk.constant_time());
            assert!(first.block.constant_time());
        }
        assert_eq!(selection(), first, "cached decision must not change");
    }

    #[test]
    fn every_available_cipher_kind_passes_the_fips_kat() {
        for kind in Kind::detected() {
            let Some(cipher) = AutoCipher::for_kind(kind, &KEY) else {
                assert_eq!(kind, Kind::IpCore);
                continue;
            };
            assert_eq!(cipher.kind(), kind);
            let mut blocks = vec![PT; 11];
            cipher.encrypt_blocks(&mut blocks);
            assert!(blocks.iter().all(|b| *b == CT), "{}", kind.token());
            cipher.decrypt_blocks(&mut blocks);
            assert!(blocks.iter().all(|b| *b == PT), "{}", kind.token());

            let mut one = PT;
            cipher.encrypt_in_place(&mut one);
            assert_eq!(one, CT, "{} single block", kind.token());
        }
    }

    #[test]
    fn every_available_cipher_kind_passes_the_long_key_kats() {
        // FIPS-197 C.2/C.3: sequential key bytes, same plaintext.
        let ct192: [u8; 16] = [
            0xDD, 0xA9, 0x7C, 0xA4, 0x86, 0x4C, 0xDF, 0xE0, 0x6E, 0xAF, 0x70, 0xA0, 0xEC, 0x0D,
            0x71, 0x91,
        ];
        let ct256: [u8; 16] = [
            0x8E, 0xA2, 0xB7, 0xCA, 0x51, 0x67, 0x45, 0xBF, 0xEA, 0xFC, 0x49, 0x90, 0x4B, 0x49,
            0x60, 0x89,
        ];
        for (len, expect) in [(24usize, ct192), (32, ct256)] {
            let key: Vec<u8> = (0..len as u8).collect();
            for kind in Kind::detected() {
                let Some(cipher) = AutoCipher::for_kind(kind, &key) else {
                    assert_eq!(kind, Kind::IpCore);
                    continue;
                };
                let mut blocks = vec![PT; 11];
                cipher.encrypt_blocks(&mut blocks);
                assert!(
                    blocks.iter().all(|b| *b == expect),
                    "AES-{} {}",
                    len * 8,
                    kind.token()
                );
                cipher.decrypt_blocks(&mut blocks);
                assert!(
                    blocks.iter().all(|b| *b == PT),
                    "AES-{} {} inverse",
                    len * 8,
                    kind.token()
                );
            }
        }
    }

    #[test]
    fn auto_cipher_matches_the_selection_and_the_kat() {
        match AutoCipher::new(&KEY) {
            Some(cipher) => {
                assert_eq!(cipher.kind(), selection().bulk);
                let mut block = PT;
                cipher.encrypt_in_place(&mut block);
                assert_eq!(block, CT);
            }
            None => assert_eq!(selection().bulk, Kind::IpCore),
        }
    }

    #[test]
    #[should_panic(expected = "is not available on this CPU")]
    fn forcing_an_absent_backend_panics() {
        // At most one of AES-NI / NEON exists on any real machine, so one
        // of these constructions must panic.
        let _ = AutoCipher::for_kind(Kind::AesNi, &KEY);
        let _ = AutoCipher::for_kind(Kind::Neon, &KEY);
        unreachable!("no CPU runs both AES-NI and the ARMv8 AES extension");
    }

    #[test]
    fn debug_never_leaks_key_material() {
        let cipher = AutoCipher::for_kind(Kind::BitslicedPortable, &KEY).unwrap();
        let s = format!("{cipher:?}");
        assert!(!s.contains("00"), "{s}");
    }
}

//! The generic Rijndael cipher and the [`BlockCipher`] abstraction used by
//! the [modes of operation](crate::modes).

use core::fmt;

use crate::key_schedule::{InvalidKeyLength, KeySchedule};
use crate::state::State;
use crate::transform;

/// A block cipher operating on fixed-size blocks in place.
///
/// The trait is object-safe so heterogeneous cipher collections (e.g. the
/// benchmark harness comparing reference, T-table and hardware-model
/// implementations) can be built.
pub trait BlockCipher {
    /// Block size in bytes.
    fn block_len(&self) -> usize;

    /// Encrypts one block in place.
    ///
    /// # Panics
    ///
    /// Implementations panic if `block.len() != self.block_len()`.
    fn encrypt_in_place(&self, block: &mut [u8]);

    /// Decrypts one block in place.
    ///
    /// # Panics
    ///
    /// Implementations panic if `block.len() != self.block_len()`.
    fn decrypt_in_place(&self, block: &mut [u8]);
}

/// Batch extension of [`BlockCipher`] for 16-byte-block ciphers.
///
/// The provided methods fall back to one [`BlockCipher`] call per block,
/// so any AES-128-shaped cipher can opt in with an empty `impl`; ciphers
/// with a genuine multi-block pass
/// ([`Bitsliced8`](crate::bitslice::Bitsliced8)) override them. The modes
/// of operation ([`crate::modes`]) and the engine's batch submission path
/// route bulk work through this trait, so the override is what turns a
/// big ECB/CTR payload into full bitsliced passes.
pub trait BatchCipher: BlockCipher {
    /// Encrypts every block in place.
    ///
    /// # Panics
    ///
    /// Implementations panic if `self.block_len() != 16`.
    fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        assert_eq!(self.block_len(), 16, "batch API is fixed to AES blocks");
        for block in blocks {
            self.encrypt_in_place(block);
        }
    }

    /// Decrypts every block in place.
    ///
    /// # Panics
    ///
    /// Implementations panic if `self.block_len() != 16`.
    fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        assert_eq!(self.block_len(), 16, "batch API is fixed to AES blocks");
        for block in blocks {
            self.decrypt_in_place(block);
        }
    }
}

impl BatchCipher for crate::bitslice::Bitsliced8 {
    fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        Self::encrypt_blocks(self, blocks);
    }

    fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        Self::decrypt_blocks(self, blocks);
    }
}

// `Rijndael<4>` is the 16-byte-block subset (AES-128/192/256 by key
// length), so the default block-at-a-time batch loop applies. Wider
// blocks stay off the batch API, whose layout is fixed to AES blocks.
impl BatchCipher for Rijndael<4> {}

/// The Rijndael cipher with a block of `NB` 32-bit columns.
///
/// The key size is chosen at runtime (16–32 bytes in 4-byte steps); the
/// block size is a compile-time parameter because the state layout depends
/// on it. `Rijndael<4>` with a 16-byte key is AES-128.
///
/// # Examples
///
/// ```
/// use rijndael::Rijndael;
///
/// // A 160-bit block, 256-bit key Rijndael instance — outside the AES
/// // subset but inside the design space of the original cipher.
/// let cipher = Rijndael::<5>::new(&[0u8; 32])?;
/// let mut block = [0u8; 20];
/// cipher.encrypt(&mut block);
/// cipher.decrypt(&mut block);
/// assert_eq!(block, [0u8; 20]);
/// # Ok::<(), rijndael::key_schedule::InvalidKeyLength>(())
/// ```
#[derive(Clone)]
pub struct Rijndael<const NB: usize> {
    schedule: KeySchedule,
}

impl<const NB: usize> Rijndael<NB> {
    /// Block size in bytes.
    pub const BLOCK_LEN: usize = 4 * NB;

    /// Expands `key` and constructs the cipher.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLength`] if `key.len()` is not 16, 20, 24, 28 or
    /// 32 bytes.
    pub fn new(key: &[u8]) -> Result<Self, InvalidKeyLength> {
        Ok(Rijndael {
            schedule: KeySchedule::expand(key, NB)?,
        })
    }

    /// The expanded key schedule.
    #[inline]
    #[must_use]
    pub fn schedule(&self) -> &KeySchedule {
        &self.schedule
    }

    /// Encrypts a state in place, following the paper's Figure 2: an
    /// initial `AddKey`, `NR - 1` full rounds, and a final round without
    /// `MixColumn`.
    pub fn encrypt_state(&self, state: &mut State<NB>) {
        let nr = self.schedule.rounds();
        transform::add_round_key(state, self.schedule.round_key(0));
        for round in 1..nr {
            transform::byte_sub(state);
            transform::shift_row(state);
            transform::mix_column(state);
            transform::add_round_key(state, self.schedule.round_key(round));
        }
        transform::byte_sub(state);
        transform::shift_row(state);
        transform::add_round_key(state, self.schedule.round_key(nr));
    }

    /// Decrypts a state in place: the inverse functions in inverse order
    /// (`AddKey → IMixColumn → IShiftRow → IByteSub` per round, with the
    /// first round skipping `IMixColumn`, as in the paper's §3).
    pub fn decrypt_state(&self, state: &mut State<NB>) {
        let nr = self.schedule.rounds();
        transform::add_round_key(state, self.schedule.round_key(nr));
        transform::inv_shift_row(state);
        transform::inv_byte_sub(state);
        for round in (1..nr).rev() {
            transform::add_round_key(state, self.schedule.round_key(round));
            transform::inv_mix_column(state);
            transform::inv_shift_row(state);
            transform::inv_byte_sub(state);
        }
        transform::add_round_key(state, self.schedule.round_key(0));
    }

    /// Encrypts one block in place.
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != 4 * NB`.
    pub fn encrypt(&self, block: &mut [u8]) {
        let mut st = State::<NB>::from_bytes(block);
        self.encrypt_state(&mut st);
        st.write_bytes(block);
    }

    /// Decrypts one block in place.
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != 4 * NB`.
    pub fn decrypt(&self, block: &mut [u8]) {
        let mut st = State::<NB>::from_bytes(block);
        self.decrypt_state(&mut st);
        st.write_bytes(block);
    }
}

impl<const NB: usize> BlockCipher for Rijndael<NB> {
    fn block_len(&self) -> usize {
        Self::BLOCK_LEN
    }

    fn encrypt_in_place(&self, block: &mut [u8]) {
        self.encrypt(block);
    }

    fn decrypt_in_place(&self, block: &mut [u8]) {
        self.decrypt(block);
    }
}

impl<const NB: usize> fmt::Debug for Rijndael<NB> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Rijndael<{NB}> {{ key bits: {}, rounds: {} }}",
            32 * self.schedule.key_words(),
            self.schedule.rounds()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rijndael_spec_appendix_b_vector() {
        // The worked example of the Rijndael submission document:
        // key 2b7e151628aed2a6abf7158809cf4f3c,
        // plaintext 3243f6a8885a308d313198a2e0370734.
        let key = [
            0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF,
            0x4F, 0x3C,
        ];
        let mut block = [
            0x32, 0x43, 0xF6, 0xA8, 0x88, 0x5A, 0x30, 0x8D, 0x31, 0x31, 0x98, 0xA2, 0xE0, 0x37,
            0x07, 0x34,
        ];
        let cipher = Rijndael::<4>::new(&key).unwrap();
        cipher.encrypt(&mut block);
        assert_eq!(
            block,
            [
                0x39, 0x25, 0x84, 0x1D, 0x02, 0xDC, 0x09, 0xFB, 0xDC, 0x11, 0x85, 0x97, 0x19, 0x6A,
                0x0B, 0x32
            ]
        );
        cipher.decrypt(&mut block);
        assert_eq!(block[0], 0x32);
        assert_eq!(block[15], 0x34);
    }

    #[test]
    fn all_block_and_key_size_combinations_roundtrip() {
        fn check<const NB: usize>() {
            for key_len in [16usize, 20, 24, 28, 32] {
                let key: Vec<u8> = (0..key_len as u8).map(|b| b.wrapping_mul(37)).collect();
                let cipher = Rijndael::<NB>::new(&key).unwrap();
                let original: Vec<u8> = (0..4 * NB as u8)
                    .map(|b| b.wrapping_mul(11) ^ 0x5A)
                    .collect();
                let mut block = original.clone();
                cipher.encrypt(&mut block);
                assert_ne!(block, original, "encryption must change the block");
                cipher.decrypt(&mut block);
                assert_eq!(block, original, "roundtrip failed NB={NB} NK={key_len}");
            }
        }
        check::<4>();
        check::<5>();
        check::<6>();
        check::<7>();
        check::<8>();
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let c1 = Rijndael::<4>::new(&[0u8; 16]).unwrap();
        let c2 = Rijndael::<4>::new(&[1u8; 16]).unwrap();
        let mut b1 = [0u8; 16];
        let mut b2 = [0u8; 16];
        c1.encrypt(&mut b1);
        c2.encrypt(&mut b2);
        assert_ne!(b1, b2);
    }

    #[test]
    fn block_cipher_trait_dispatch() {
        let cipher: Box<dyn BlockCipher> = Box::new(Rijndael::<4>::new(&[0u8; 16]).unwrap());
        assert_eq!(cipher.block_len(), 16);
        let mut block = [7u8; 16];
        cipher.encrypt_in_place(&mut block);
        cipher.decrypt_in_place(&mut block);
        assert_eq!(block, [7u8; 16]);
    }

    #[test]
    fn debug_formats() {
        let cipher = Rijndael::<4>::new(&[0u8; 24]).unwrap();
        let s = format!("{cipher:?}");
        assert!(s.contains("key bits: 192"));
        assert!(s.contains("rounds: 12"));
    }

    #[test]
    #[should_panic(expected = "state requires exactly")]
    fn wrong_block_length_panics() {
        let cipher = Rijndael::<4>::new(&[0u8; 16]).unwrap();
        let mut short = [0u8; 8];
        cipher.encrypt(&mut short);
    }
}

//! Round-key generation, including the `KStran` sub-function of the paper's
//! Figure 3.
//!
//! The schedule expands the cipher key into `NB × (NR + 1)` 32-bit words.
//! Word `i` depends on words `i-1` and `i-NK`; every `NK`-th word first
//! passes through `KStran` — rotate left one byte, substitute each byte
//! through the S-box, then XOR a round constant. The paper's IP computes
//! these words *on the fly* with 4 dedicated S-boxes; this module is the
//! stored-schedule reference it is checked against.

use core::fmt;

use gf256::{sbox, Gf256};

/// Round constant `Rcon[i] = x^(i-1)` in GF(2^8), placed in the
/// most-significant byte of the word.
///
/// ```
/// use rijndael::key_schedule::rcon;
/// assert_eq!(rcon(1), 0x0100_0000);
/// assert_eq!(rcon(9), 0x1B00_0000); // first wrap through the reduction poly
/// ```
///
/// # Panics
///
/// Panics if `i == 0` (round constants are 1-indexed).
#[must_use]
pub fn rcon(i: usize) -> u32 {
    assert!(i >= 1, "round constants are 1-indexed");
    let byte = Gf256::new(2).pow((i - 1) as u32).value();
    u32::from(byte) << 24
}

/// Rotates a word left by one byte: `[a0,a1,a2,a3] -> [a1,a2,a3,a0]`
/// (`RotWord` / the first step of `KStran`).
#[inline]
#[must_use]
pub const fn rot_word(w: u32) -> u32 {
    w.rotate_left(8)
}

/// Substitutes each byte of a word through the S-box (`SubWord`).
#[inline]
#[must_use]
pub fn sub_word(w: u32) -> u32 {
    let b = w.to_be_bytes();
    u32::from_be_bytes([
        sbox::sub(b[0]),
        sbox::sub(b[1]),
        sbox::sub(b[2]),
        sbox::sub(b[3]),
    ])
}

/// The `KStran` sub-function (paper Figure 3): shift the word left one
/// byte, substitute every byte, then XOR the round constant for `round`.
///
/// ```
/// use rijndael::key_schedule::kstran;
/// // FIPS-197 Appendix A.1, i = 4: temp = 09cf4f3c,
/// // after RotWord = cf4f3c09, after SubWord = 8a84eb01,
/// // after Rcon(1) = 8b84eb01.
/// assert_eq!(kstran(0x09CF4F3C, 1), 0x8B84_EB01);
/// ```
#[inline]
#[must_use]
pub fn kstran(w: u32, round: usize) -> u32 {
    sub_word(rot_word(w)) ^ rcon(round)
}

/// Error returned when a key has a length Rijndael does not accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidKeyLength {
    /// The offending length in bytes.
    pub len: usize,
}

impl fmt::Display for InvalidKeyLength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid Rijndael key length {} (expected 16, 20, 24, 28 or 32 bytes)",
            self.len
        )
    }
}

impl std::error::Error for InvalidKeyLength {}

/// An expanded Rijndael key schedule.
///
/// # Examples
///
/// ```
/// use rijndael::KeySchedule;
///
/// let key = [0u8; 16];
/// let ks = KeySchedule::expand(&key, 4)?;
/// assert_eq!(ks.rounds(), 10);
/// assert_eq!(ks.round_key(0).len(), 4);
/// # Ok::<(), rijndael::key_schedule::InvalidKeyLength>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct KeySchedule {
    words: Vec<u32>,
    nb: usize,
    nk: usize,
    nr: usize,
}

impl KeySchedule {
    /// Expands `key` for a block width of `nb` columns.
    ///
    /// `key.len()` must be 16, 20, 24, 28 or 32 bytes (`NK = len/4` words);
    /// `nb` must be in `4..=8`. The number of rounds is
    /// `NR = max(NB, NK) + 6` (Rijndael specification).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLength`] when the key length is not a supported
    /// Rijndael key size.
    ///
    /// # Panics
    ///
    /// Panics if `nb` is outside `4..=8`.
    pub fn expand(key: &[u8], nb: usize) -> Result<Self, InvalidKeyLength> {
        assert!((4..=8).contains(&nb), "block width must be 4..=8 columns");
        if !key.len().is_multiple_of(4) || !(4..=8).contains(&(key.len() / 4)) {
            return Err(InvalidKeyLength { len: key.len() });
        }
        let nk = key.len() / 4;
        let nr = nb.max(nk) + 6;
        let total = nb * (nr + 1);

        let mut words = Vec::with_capacity(total);
        for chunk in key.chunks_exact(4) {
            words.push(u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        for i in nk..total {
            let mut temp = words[i - 1];
            if i % nk == 0 {
                temp = kstran(temp, i / nk);
            } else if nk > 6 && i % nk == 4 {
                temp = sub_word(temp);
            }
            words.push(words[i - nk] ^ temp);
        }
        Ok(KeySchedule { words, nb, nk, nr })
    }

    /// Number of cipher rounds `NR`.
    #[inline]
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.nr
    }

    /// Block width `NB` in 32-bit columns.
    #[inline]
    #[must_use]
    pub fn block_words(&self) -> usize {
        self.nb
    }

    /// Key width `NK` in 32-bit words.
    #[inline]
    #[must_use]
    pub fn key_words(&self) -> usize {
        self.nk
    }

    /// The round key for `round` (0 = the initial `AddKey`), as `NB` words.
    ///
    /// # Panics
    ///
    /// Panics if `round > NR`.
    #[inline]
    #[must_use]
    pub fn round_key(&self, round: usize) -> &[u32] {
        assert!(round <= self.nr, "round {round} exceeds NR = {}", self.nr);
        &self.words[round * self.nb..(round + 1) * self.nb]
    }

    /// All expanded words (`w[i]` of FIPS-197 §5.2).
    #[inline]
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }
}

impl Drop for KeySchedule {
    /// Wipes the expanded round keys (best effort; see
    /// [`crate::zeroize`]). The raw cipher key is recoverable from the
    /// first `NK` words, so the schedule is key material in full.
    fn drop(&mut self) {
        crate::zeroize::wipe_words(&mut self.words);
    }
}

impl fmt::Debug for KeySchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KeySchedule {{ nb: {}, nk: {}, nr: {}, words: [..{} words] }}",
            self.nb,
            self.nk,
            self.nr,
            self.words.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIPS_KEY_128: [u8; 16] = [
        0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F,
        0x3C,
    ];

    #[test]
    fn rcon_sequence() {
        let expected: [u8; 14] = [
            0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rcon(i + 1), u32::from(e) << 24, "rcon({})", i + 1);
        }
    }

    #[test]
    #[should_panic(expected = "1-indexed")]
    fn rcon_zero_panics() {
        let _ = rcon(0);
    }

    #[test]
    fn fips197_appendix_a1_expansion() {
        // Spot anchors from the FIPS-197 Appendix A.1 key expansion table.
        let ks = KeySchedule::expand(&FIPS_KEY_128, 4).unwrap();
        assert_eq!(ks.rounds(), 10);
        let w = ks.words();
        assert_eq!(w[0], 0x2B7E_1516);
        assert_eq!(w[3], 0x09CF_4F3C);
        assert_eq!(w[4], 0xA0FA_FE17);
        assert_eq!(w[5], 0x8854_2CB1);
        assert_eq!(w[8], 0xF2C2_95F2);
        assert_eq!(w[9], 0x7A96_B943);
        assert_eq!(w[43], 0xB663_0CA6);
    }

    #[test]
    fn fips197_aes192_and_256_anchors() {
        // Appendix A.2 (AES-192) and A.3 (AES-256) spot values.
        let key192: [u8; 24] = [
            0x8E, 0x73, 0xB0, 0xF7, 0xDA, 0x0E, 0x64, 0x52, 0xC8, 0x10, 0xF3, 0x2B, 0x80, 0x90,
            0x79, 0xE5, 0x62, 0xF8, 0xEA, 0xD2, 0x52, 0x2C, 0x6B, 0x7B,
        ];
        let ks = KeySchedule::expand(&key192, 4).unwrap();
        assert_eq!(ks.rounds(), 12);
        assert_eq!(ks.words()[6], 0xFE0C_91F7);

        let key256: [u8; 32] = [
            0x60, 0x3D, 0xEB, 0x10, 0x15, 0xCA, 0x71, 0xBE, 0x2B, 0x73, 0xAE, 0xF0, 0x85, 0x7D,
            0x77, 0x81, 0x1F, 0x35, 0x2C, 0x07, 0x3B, 0x61, 0x08, 0xD7, 0x2D, 0x98, 0x10, 0xA3,
            0x09, 0x14, 0xDF, 0xF4,
        ];
        let ks = KeySchedule::expand(&key256, 4).unwrap();
        assert_eq!(ks.rounds(), 14);
        assert_eq!(ks.words()[8], 0x9BA3_5411);
    }

    #[test]
    fn kstran_matches_manual_decomposition() {
        for (w, round) in [(0x09CF_4F3Cu32, 1usize), (0x1234_5678, 5), (0, 10)] {
            assert_eq!(kstran(w, round), sub_word(rot_word(w)) ^ rcon(round));
        }
    }

    #[test]
    fn invalid_key_lengths_rejected() {
        for len in [0usize, 1, 15, 17, 33, 64] {
            let key = vec![0u8; len];
            let err = KeySchedule::expand(&key, 4).unwrap_err();
            assert_eq!(err.len, len);
            assert!(err.to_string().contains("invalid Rijndael key length"));
        }
    }

    #[test]
    fn valid_rijndael_sizes_accepted() {
        for nk_bytes in [16usize, 20, 24, 28, 32] {
            for nb in 4..=8usize {
                let key = vec![0u8; nk_bytes];
                let ks = KeySchedule::expand(&key, nb).unwrap();
                assert_eq!(ks.rounds(), nb.max(nk_bytes / 4) + 6);
                assert_eq!(ks.words().len(), nb * (ks.rounds() + 1));
                assert_eq!(ks.block_words(), nb);
                assert_eq!(ks.key_words(), nk_bytes / 4);
            }
        }
    }

    #[test]
    fn round_key_slicing() {
        let ks = KeySchedule::expand(&FIPS_KEY_128, 4).unwrap();
        assert_eq!(ks.round_key(0), &ks.words()[0..4]);
        assert_eq!(ks.round_key(10), &ks.words()[40..44]);
    }

    #[test]
    #[should_panic(expected = "exceeds NR")]
    fn round_key_out_of_range() {
        let ks = KeySchedule::expand(&FIPS_KEY_128, 4).unwrap();
        let _ = ks.round_key(11);
    }
}

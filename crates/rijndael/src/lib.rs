//! Golden software reference for the Rijndael block cipher.
//!
//! This crate is the specification-level model against which the
//! cycle-accurate soft IP of the DATE 2003 paper is verified. It covers the
//! *whole* Rijndael design space the paper's §2–3 describe, not just the
//! AES-128 subset the IP implements:
//!
//! * [`state`] — the `state_t` working variable (Figure 1 of the paper): a
//!   4-row matrix of bytes with 4–8 columns;
//! * [`transform`] — the four round transformations (`ByteSub`, `ShiftRow`,
//!   `MixColumn`, `AddKey`) and their inverses (Figures 4–7);
//! * [`key_schedule`] — the round-key generation including the `KStran`
//!   sub-function (Figure 3);
//! * [`cipher`] — the generic cipher for every block/key size combination
//!   (128–256 bits in 32-bit steps);
//! * [`aes`] — the AES-128/192/256 subset standardised by NIST;
//! * [`ttable`] — the 32-bit table-lookup ("T-table") implementation that
//!   era-typical software used, kept as a software performance baseline;
//! * [`bitslice`] — a constant-time bitsliced AES-128 that encrypts many
//!   blocks per pass through bit-plane arithmetic (no secret-indexed
//!   loads), the constant-time bulk fallback on hosts without AES
//!   hardware;
//! * `aesni` *(x86_64)* / `neon` *(aarch64)* — hardware AES backends on
//!   the native AES instructions, constructible only after a runtime CPU
//!   probe succeeds;
//! * [`dispatch`] — the runtime CPU-feature probe, the
//!   `RIJNDAEL_FORCE_BACKEND` override, and the startup micro-race that
//!   picks the fastest available backend per mode ([`AutoCipher`]);
//! * [`modes`] — block-cipher modes of operation (ECB, CBC, CTR, CFB, OFB),
//!   with both monomorphized inherent functions and the object-safe
//!   [`modes::Mode`] trait the engine and service route through;
//! * [`gf128`] / [`ghash`] / [`aead`] — the authenticated layer:
//!   GF(2^128) carry-less multiplication (portable 4-bit table plus a
//!   `PCLMULQDQ` fast path), the GHASH universal hash, and AES-GCM /
//!   XTS-AES / RFC 3394 key wrap built on the batched backends;
//! * [`error`] — the crate-level [`Error`] the dynamic mode surface
//!   reports instead of panicking;
//! * [`trace`] — round-by-round execution traces (used to reproduce the
//!   paper's Figure 2 and to debug the hardware model);
//! * [`vectors`] — published known-answer vectors.
//!
//! # Examples
//!
//! ```
//! use rijndael::Aes128;
//!
//! // FIPS-197 Appendix C.1
//! let key: [u8; 16] = (0..16).collect::<Vec<u8>>().try_into().unwrap();
//! let pt: [u8; 16] = (0..16).map(|i| i * 0x11).collect::<Vec<u8>>().try_into().unwrap();
//! let aes = Aes128::new(&key);
//! assert_eq!(
//!     aes.encrypt_block(&pt),
//!     [0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30,
//!      0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4, 0xC5, 0x5A]
//! );
//! ```

// `unsafe` is denied rather than forbidden: the exceptions are the SIMD
// kernels — the AVX2 plane inside [`bitslice`] and the hardware-AES
// backends in `aesni`/`neon` — each a module-scoped `#[allow(unsafe_code)]`
// whose intrinsics are reachable only after a *runtime* CPU-feature probe
// succeeds (see [`dispatch`]); the only pointer operations are unaligned
// 16-byte loads/stores of caller-provided buffers. Everything else in the
// crate remains `unsafe`-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod aes;
#[cfg(target_arch = "x86_64")]
pub mod aesni;
pub mod bitslice;
pub mod cipher;
pub mod cmac;
pub mod diffusion;
pub mod dispatch;
pub mod error;
pub mod gf128;
pub mod ghash;
pub mod key_schedule;
pub mod mct;
pub mod modes;
#[cfg(target_arch = "aarch64")]
pub mod neon;
pub mod state;
pub mod trace;
pub mod transform;
pub mod ttable;
pub mod vectors;
pub mod zeroize;

pub use aead::{Aead, Gcm, Xts};
pub use aes::{Aes128, Aes192, Aes256};
pub use bitslice::Bitsliced8;
pub use cipher::{BatchCipher, BlockCipher, Rijndael};
pub use dispatch::AutoCipher;
pub use error::Error;
pub use ghash::Ghash;
pub use key_schedule::KeySchedule;
pub use modes::{Iv, Mode};
pub use state::State;

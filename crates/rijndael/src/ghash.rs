//! GHASH — the universal hash of GCM (NIST SP 800-38D §6.4).
//!
//! `GHASH_H(X)` folds 128-bit blocks into an accumulator with one
//! GF(2^128) multiplication by the hash subkey `H = E_K(0^128)` per
//! block: `Y_i = (Y_{i-1} ⊕ X_i) · H`. The multiplier core is a runtime
//! decision in the style of [`crate::dispatch`]: `PCLMULQDQ` when the
//! CPU probe finds it, otherwise the portable 4-bit table
//! ([`crate::gf128::GfTable`]). Both cores are kept compiled and
//! cross-checked; benches pin one with [`Ghash::with_impl`].
//!
//! The subkey (and its derived table) is key material: it is wiped on
//! drop via [`crate::zeroize`], and [`core::fmt::Debug`] never prints
//! it.

use crate::gf128::{pclmul, GfTable};

/// Which GF(2^128) multiplier core a [`Ghash`] instance runs — a
/// runtime decision like [`crate::bitslice::WideLane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GhashImpl {
    /// The x86 `PCLMULQDQ` carry-less multiplier.
    Pclmul,
    /// The portable Shoup 4-bit table walk.
    Portable,
}

impl GhashImpl {
    /// The stable name reported in telemetry and bench output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GhashImpl::Pclmul => "pclmul",
            GhashImpl::Portable => "table4",
        }
    }

    /// `true` when this CPU can run the core.
    #[must_use]
    pub fn available(self) -> bool {
        match self {
            GhashImpl::Pclmul => pclmul::available(),
            GhashImpl::Portable => true,
        }
    }

    /// The dispatch decision for this process: `PCLMULQDQ` when the
    /// probe finds it, the table walk otherwise.
    #[must_use]
    pub fn detect() -> GhashImpl {
        if crate::dispatch::cpu().pclmul {
            GhashImpl::Pclmul
        } else {
            GhashImpl::Portable
        }
    }
}

/// Streaming GHASH accumulator keyed by the hash subkey `H`.
///
/// # Examples
///
/// ```
/// use rijndael::ghash::Ghash;
///
/// // H from the GCM validation suite (E_K(0) of the zero AES-128 key).
/// let h = [
///     0x66, 0xE9, 0x4B, 0xD4, 0xEF, 0x8A, 0x2C, 0x3B,
///     0x88, 0x4C, 0xFA, 0x59, 0xCA, 0x34, 0x2B, 0x2E,
/// ];
/// let mut ghash = Ghash::new(&h);
/// ghash.update(&[
///     0x03, 0x88, 0xDA, 0xCE, 0x60, 0xB6, 0xA3, 0x92,
///     0xF3, 0x28, 0xC2, 0xB9, 0x71, 0xB2, 0xFE, 0x78,
/// ]);
/// assert_eq!(ghash.clone().finalize()[..2], [0x5E, 0x2E]);
/// ```
#[derive(Clone)]
pub struct Ghash {
    /// Table core state; also holds the multiples for the pclmul path's
    /// subkey (entry 8 is `H` itself).
    table: GfTable,
    /// The raw subkey for the `PCLMULQDQ` core.
    h: u128,
    /// Descending subkey powers `H^FOLD_WIDTH … H^1`, feeding the
    /// aggregated-reduction fast path of [`Self::update_padded`].
    hpow: [u128; pclmul::FOLD_WIDTH],
    y: u128,
    which: GhashImpl,
}

impl Ghash {
    /// Keys the accumulator with subkey `h`, multiplier core chosen by
    /// [`GhashImpl::detect`].
    #[must_use]
    pub fn new(h: &[u8; 16]) -> Self {
        Self::with_impl(h, GhashImpl::detect())
    }

    /// Like [`Self::new`] but pins the multiplier core.
    ///
    /// # Panics
    ///
    /// Panics when `which` is not [`GhashImpl::available`] on this CPU —
    /// pinning an absent core must fail loudly, never silently
    /// substitute (the same contract as
    /// [`crate::bitslice::Bitsliced8::with_lane`]).
    #[must_use]
    pub fn with_impl(h: &[u8; 16], which: GhashImpl) -> Self {
        assert!(
            which.available(),
            "GHASH {} core is not available on this CPU",
            which.name()
        );
        let table = GfTable::new(h);
        let hv = u128::from_be_bytes(*h);
        // hpow[i] = H^(FOLD_WIDTH - i): ascending powers via the table
        // (table.mul multiplies by H), stored descending so a span of n
        // blocks uses the tail `hpow[FOLD_WIDTH - n..]`.
        let mut hpow = [0u128; pclmul::FOLD_WIDTH];
        let mut power = hv;
        for slot in hpow.iter_mut().rev() {
            *slot = power;
            power = table.mul(power);
        }
        Ghash {
            table,
            h: hv,
            hpow,
            y: 0,
            which,
        }
    }

    /// The multiplier core this instance runs.
    #[must_use]
    pub fn implementation(&self) -> GhashImpl {
        self.which
    }

    #[inline]
    fn mul_h(&self, v: u128) -> u128 {
        match self.which {
            GhashImpl::Pclmul => pclmul::mul(v, self.h),
            GhashImpl::Portable => self.table.mul(v),
        }
    }

    /// Folds one complete block into the accumulator.
    #[inline]
    pub fn update(&mut self, block: &[u8; 16]) {
        self.y = self.mul_h(self.y ^ u128::from_be_bytes(*block));
    }

    /// Folds a byte string, zero-padding the final partial block to a
    /// full one (the SP 800-38D padding for both AAD and ciphertext).
    ///
    /// On the `PCLMULQDQ` core, full blocks advance through the
    /// aggregated fold ([`crate::gf128::pclmul::fold`]) — one reduction
    /// per [`crate::gf128::pclmul::FOLD_WIDTH`]-block span — so the hash
    /// keeps pace with pipelined hardware keystream.
    pub fn update_padded(&mut self, data: &[u8]) {
        let (blocks, tail) = data.as_chunks::<16>();
        match self.which {
            GhashImpl::Pclmul => {
                const W: usize = pclmul::FOLD_WIDTH;
                let mut xs = [0u128; W];
                for span in blocks.chunks(W) {
                    for (slot, block) in xs.iter_mut().zip(span) {
                        *slot = u128::from_be_bytes(*block);
                    }
                    self.y = pclmul::fold(self.y, &xs[..span.len()], &self.hpow[W - span.len()..]);
                }
            }
            GhashImpl::Portable => {
                for block in blocks {
                    self.update(block);
                }
            }
        }
        if !tail.is_empty() {
            let mut last = [0u8; 16];
            last[..tail.len()].copy_from_slice(tail);
            self.update(&last);
        }
    }

    /// Returns the accumulator as a block, consuming the instance.
    #[must_use]
    pub fn finalize(self) -> [u8; 16] {
        self.y.to_be_bytes()
    }
}

impl core::fmt::Debug for Ghash {
    /// Never prints the subkey or the running accumulator.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Ghash {{ impl: {} }}", self.which.name())
    }
}

impl Drop for Ghash {
    /// Wipes the raw subkey and accumulator; the derived table wipes
    /// itself ([`GfTable`]'s own `Drop`).
    fn drop(&mut self) {
        let mut words = [self.h as u64, (self.h >> 64) as u64];
        crate::zeroize::wipe_words64(&mut words);
        crate::zeroize::wipe_u128(&mut self.hpow);
        self.h = core::hint::black_box(0);
        self.y = core::hint::black_box(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf128::mul_bitwise;

    const H: [u8; 16] = [
        0x66, 0xE9, 0x4B, 0xD4, 0xEF, 0x8A, 0x2C, 0x3B, 0x88, 0x4C, 0xFA, 0x59, 0xCA, 0x34, 0x2B,
        0x2E,
    ];

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut s = seed | 1;
        (0..n).map(|_| (xorshift(&mut s) >> 24) as u8).collect()
    }

    /// Blockwise reference: Y_i = (Y_{i-1} ⊕ X_i) · H via the bitwise
    /// multiplier.
    fn reference_ghash(h: &[u8; 16], data: &[u8]) -> [u8; 16] {
        let hv = u128::from_be_bytes(*h);
        let mut y = 0u128;
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            y = mul_bitwise(y ^ u128::from_be_bytes(block), hv);
        }
        y.to_be_bytes()
    }

    #[test]
    fn both_cores_match_the_bitwise_reference() {
        // Lengths straddle every aggregation boundary of the pclmul
        // fold (8 blocks = 128 bytes): partial spans, exact spans,
        // multi-span runs and ragged tails.
        for len in [
            0usize, 1, 15, 16, 17, 32, 47, 64, 112, 127, 128, 129, 143, 144, 256, 257, 400,
        ] {
            let data = random_bytes(len, 0xAB1E + len as u64);
            let expect = reference_ghash(&H, &data);
            for which in [GhashImpl::Pclmul, GhashImpl::Portable] {
                if !which.available() {
                    continue;
                }
                let mut g = Ghash::with_impl(&H, which);
                g.update_padded(&data);
                assert_eq!(g.finalize(), expect, "len {len} impl {}", which.name());
            }
        }
    }

    #[test]
    fn chunked_updates_equal_one_shot() {
        let data = random_bytes(80, 0x5EED);
        let mut one_shot = Ghash::new(&H);
        one_shot.update_padded(&data);
        let mut chunked = Ghash::new(&H);
        chunked.update_padded(&data[..32]);
        chunked.update_padded(&data[32..]);
        assert_eq!(one_shot.finalize(), chunked.finalize());
    }

    #[test]
    fn detect_prefers_pclmul_when_present() {
        let detected = GhashImpl::detect();
        assert!(detected.available());
        if crate::dispatch::cpu().pclmul {
            assert_eq!(detected, GhashImpl::Pclmul);
        } else {
            assert_eq!(detected, GhashImpl::Portable);
        }
    }

    #[test]
    fn rekeying_after_drop_yields_a_fresh_correct_accumulator() {
        let data = random_bytes(48, 0xD00D);
        let expect = reference_ghash(&H, &data);
        let mut first = Ghash::new(&H);
        first.update_padded(&data);
        assert_eq!(first.finalize(), expect);
        let mut second = Ghash::new(&H);
        second.update_padded(&data);
        assert_eq!(second.finalize(), expect);
    }

    #[test]
    fn debug_never_leaks_the_subkey() {
        let g = Ghash::new(&H);
        let s = format!("{g:?}");
        assert!(!s.to_lowercase().contains("66e9"), "{s}");
    }
}

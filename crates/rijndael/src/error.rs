//! Crate-level error type unifying the mode-layer failure cases.
//!
//! The mode implementations historically reported ragged buffers through
//! [`modes::LengthError`](crate::modes::LengthError) and IV mismatches by
//! panicking. The object-safe [`Mode`](crate::modes::Mode) surface (used
//! by the multi-core engine and the TCP service, where inputs arrive from
//! the wire) reports both through this one enum so callers match a single
//! type; [`From`] conversions lift the legacy error into it.

use core::fmt;

use crate::modes::LengthError;

/// Unified error for the mode layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The data buffer is not a whole number of cipher blocks (modes that
    /// require full blocks: ECB, CBC).
    RaggedLength {
        /// Offending buffer length.
        len: usize,
        /// Required granularity in bytes.
        block: usize,
    },
    /// The IV/nonce length does not match the cipher's block length.
    BadIv {
        /// Offending IV length.
        len: usize,
        /// Required length in bytes.
        block: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::RaggedLength { len, block } => write!(
                f,
                "buffer length {len} is not a multiple of the {block}-byte block"
            ),
            Error::BadIv { len, block } => {
                write!(f, "IV length {len} does not match the {block}-byte block")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<LengthError> for Error {
    fn from(e: LengthError) -> Self {
        Error::RaggedLength {
            len: e.len,
            block: e.block,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion_from_length_error() {
        let legacy = LengthError { len: 17, block: 16 };
        let lifted: Error = legacy.into();
        assert_eq!(lifted, Error::RaggedLength { len: 17, block: 16 });
        assert_eq!(lifted.to_string(), legacy.to_string());
        assert!(Error::BadIv { len: 3, block: 16 }
            .to_string()
            .contains("IV length 3"));
        // The std trait object works (source-less leaf error).
        let boxed: Box<dyn std::error::Error> = Box::new(lifted);
        assert!(boxed.source().is_none());
    }
}

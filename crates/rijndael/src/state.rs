//! The Rijndael working variable `state_t` (paper Figure 1).
//!
//! The state is a matrix of bytes with four rows and `NB` columns
//! (`NB` = block bits / 32, i.e. 4 for AES). Input bytes fill the state
//! column by column: byte `i` lands at row `i % 4`, column `i / 4`
//! (FIPS-197 §3.4).

use core::fmt;

/// A Rijndael state with `NB` columns of 4 bytes.
///
/// `NB` ranges over 4..=8 (block sizes 128..256 bits in 32-bit steps); the
/// AES subset fixes `NB = 4`, which is the `state_t` of the paper's
/// Figure 1.
///
/// # Examples
///
/// ```
/// use rijndael::State;
///
/// let bytes: [u8; 16] = core::array::from_fn(|i| i as u8);
/// let st = State::<4>::from_bytes(&bytes);
/// assert_eq!(st.get(1, 0), 0x01); // row 1, column 0 = input byte 1
/// assert_eq!(st.get(0, 1), 0x04); // row 0, column 1 = input byte 4
/// assert_eq!(st.to_bytes(), bytes);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct State<const NB: usize> {
    /// Column-major storage: `cols[c][r]`.
    cols: [[u8; 4]; NB],
}

impl<const NB: usize> State<NB> {
    /// Number of bytes in a block with `NB` columns.
    pub const BYTES: usize = 4 * NB;

    /// The all-zero state.
    #[inline]
    #[must_use]
    pub const fn zero() -> Self {
        State { cols: [[0; 4]; NB] }
    }

    /// Creates a new all-zero state (alias of [`State::zero`]).
    #[inline]
    #[must_use]
    pub const fn new() -> Self {
        Self::zero()
    }

    /// Loads a state from a byte block, column by column.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != 4 * NB`.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(
            bytes.len(),
            Self::BYTES,
            "state requires exactly {} bytes",
            Self::BYTES
        );
        let mut st = Self::zero();
        for (i, &b) in bytes.iter().enumerate() {
            st.cols[i / 4][i % 4] = b;
        }
        st
    }

    /// Serialises the state back to bytes, column by column.
    ///
    /// The fixed-size array form is only available for the AES block size
    /// (`NB = 4`); wider blocks use [`State::write_bytes`] / [`State::to_vec`].
    ///
    /// # Panics
    ///
    /// Panics if `NB != 4`.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; 16] {
        assert_eq!(NB, 4, "array form is only available for NB = 4");
        let mut out = [0u8; 16];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = self.cols[i / 4][i % 4];
        }
        out
    }

    /// Writes the state into a caller-provided buffer, column by column.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != 4 * NB`.
    pub fn write_bytes(&self, out: &mut [u8]) {
        assert_eq!(out.len(), Self::BYTES);
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = self.cols[i / 4][i % 4];
        }
    }

    /// The state as a vector of bytes (general-`NB` counterpart of
    /// [`State::to_bytes`]).
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        let mut v = vec![0u8; Self::BYTES];
        self.write_bytes(&mut v);
        v
    }

    /// Byte at `row`, `col`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= 4` or `col >= NB`.
    #[inline]
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> u8 {
        self.cols[col][row]
    }

    /// Sets the byte at `row`, `col`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= 4` or `col >= NB`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: u8) {
        self.cols[col][row] = value;
    }

    /// Column `c` as a 4-byte array (top row first).
    ///
    /// # Panics
    ///
    /// Panics if `c >= NB`.
    #[inline]
    #[must_use]
    pub fn column(&self, c: usize) -> [u8; 4] {
        self.cols[c]
    }

    /// Replaces column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= NB`.
    #[inline]
    pub fn set_column(&mut self, c: usize, col: [u8; 4]) {
        self.cols[c] = col;
    }

    /// Column `c` as a big-endian 32-bit word (`s0c` in the most-significant
    /// byte), the word form used by the 32-bit datapath slices of the IP.
    #[inline]
    #[must_use]
    pub fn column_word(&self, c: usize) -> u32 {
        u32::from_be_bytes(self.cols[c])
    }

    /// Sets column `c` from a big-endian 32-bit word.
    #[inline]
    pub fn set_column_word(&mut self, c: usize, word: u32) {
        self.cols[c] = word.to_be_bytes();
    }

    /// Row `r` as `NB` bytes (column 0 first).
    ///
    /// # Panics
    ///
    /// Panics if `r >= 4`.
    #[must_use]
    pub fn row(&self, r: usize) -> [u8; NB] {
        core::array::from_fn(|c| self.cols[c][r])
    }

    /// Replaces row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 4`.
    pub fn set_row(&mut self, r: usize, row: [u8; NB]) {
        for (c, &b) in row.iter().enumerate() {
            self.cols[c][r] = b;
        }
    }

    /// Applies a byte-wise function to every cell.
    pub fn map_bytes(&mut self, mut f: impl FnMut(u8) -> u8) {
        for col in &mut self.cols {
            for b in col {
                *b = f(*b);
            }
        }
    }

    /// XORs another state into this one (the `AddKey` primitive).
    pub fn xor_assign(&mut self, other: &Self) {
        for (c, oc) in self.cols.iter_mut().zip(&other.cols) {
            for (b, ob) in c.iter_mut().zip(oc) {
                *b ^= ob;
            }
        }
    }
}

impl<const NB: usize> Default for State<NB> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<const NB: usize> fmt::Debug for State<NB> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "State<{NB}> [")?;
        for r in 0..4 {
            write!(f, " ")?;
            for c in 0..NB {
                write!(f, " {:02x}", self.cols[c][r])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl<const NB: usize> fmt::Display for State<NB> {
    /// Hex dump in input-byte order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..Self::BYTES {
            write!(f, "{:02x}", self.cols[i / 4][i % 4])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_major_loading() {
        let bytes: [u8; 16] = core::array::from_fn(|i| i as u8);
        let st = State::<4>::from_bytes(&bytes);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(st.get(r, c), (r + 4 * c) as u8);
            }
        }
        assert_eq!(st.to_bytes(), bytes);
    }

    #[test]
    fn wide_blocks_roundtrip() {
        let bytes: Vec<u8> = (0..24).collect();
        let st = State::<6>::from_bytes(&bytes);
        assert_eq!(st.to_vec(), bytes);
        assert_eq!(st.get(3, 5), 23);
    }

    #[test]
    fn rows_and_columns() {
        let bytes: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut st = State::<4>::from_bytes(&bytes);
        assert_eq!(st.row(0), [0, 4, 8, 12]);
        assert_eq!(st.column(1), [4, 5, 6, 7]);
        st.set_row(0, [0xAA; 4]);
        assert_eq!(st.get(0, 2), 0xAA);
        st.set_column(2, [1, 2, 3, 4]);
        assert_eq!(st.row(3)[2], 4);
    }

    #[test]
    fn column_words_are_big_endian() {
        let mut st = State::<4>::zero();
        st.set_column_word(0, 0x0102_0304);
        assert_eq!(st.column(0), [1, 2, 3, 4]);
        assert_eq!(st.column_word(0), 0x0102_0304);
    }

    #[test]
    fn xor_assign_is_addkey() {
        let a_bytes: [u8; 16] = core::array::from_fn(|i| i as u8);
        let b_bytes: [u8; 16] = core::array::from_fn(|i| (i as u8) << 4);
        let mut a = State::<4>::from_bytes(&a_bytes);
        let b = State::<4>::from_bytes(&b_bytes);
        a.xor_assign(&b);
        for i in 0..16 {
            assert_eq!(a.to_bytes()[i], a_bytes[i] ^ b_bytes[i]);
        }
    }

    #[test]
    #[should_panic(expected = "state requires exactly 16 bytes")]
    fn wrong_length_panics() {
        let _ = State::<4>::from_bytes(&[0u8; 15]);
    }

    #[test]
    fn display_matches_hex_dump() {
        let bytes: [u8; 16] = core::array::from_fn(|i| i as u8);
        let st = State::<4>::from_bytes(&bytes);
        assert_eq!(st.to_string(), "000102030405060708090a0b0c0d0e0f");
        assert!(format!("{st:?}").contains("State<4>"));
    }
}

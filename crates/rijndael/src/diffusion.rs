//! Avalanche / diffusion measurements over any [`BlockCipher`].
//!
//! A block cipher should flip about half the output bits when one input
//! bit changes (the strict avalanche criterion). The AES contest scored
//! candidates on security properties like this (paper §2); these
//! measurements also power the SEU analysis interpretation — an upset in
//! the datapath diffuses exactly like a plaintext bit-flip from that
//! round onward.

use crate::cipher::BlockCipher;

/// Avalanche statistics from a measurement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvalancheStats {
    /// Mean flipped output bits per single-bit input change.
    pub mean_flipped_bits: f64,
    /// Minimum observed.
    pub min_flipped_bits: u32,
    /// Maximum observed.
    pub max_flipped_bits: u32,
    /// Trials performed.
    pub trials: u32,
}

impl AvalancheStats {
    /// `true` when the statistics satisfy a loose strict-avalanche
    /// criterion for a `bits`-bit block: mean within `bits/2 ± tolerance`
    /// and no degenerate (0-flip) trials.
    #[must_use]
    pub fn satisfies_sac(&self, bits: u32, tolerance: f64) -> bool {
        let half = f64::from(bits) / 2.0;
        (self.mean_flipped_bits - half).abs() <= tolerance && self.min_flipped_bits > 0
    }
}

fn hamming(a: &[u8], b: &[u8]) -> u32 {
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
}

/// Measures plaintext avalanche: flip every bit of `trial` deterministic
/// plaintexts (one at a time) and count ciphertext bit flips.
///
/// # Panics
///
/// Panics if `trials == 0` or the cipher block is not 16 bytes.
#[must_use]
pub fn plaintext_avalanche<C: BlockCipher>(cipher: &C, trials: u32) -> AvalancheStats {
    assert!(trials > 0, "need at least one trial");
    assert_eq!(cipher.block_len(), 16, "measurement assumes AES blocks");
    let mut total: u64 = 0;
    let mut min = u32::MAX;
    let mut max = 0u32;
    let mut count = 0u32;

    for t in 0..trials {
        let base: [u8; 16] =
            core::array::from_fn(|i| (i as u8).wrapping_mul(29).wrapping_add(t as u8 ^ 0x5A));
        let mut base_ct = base;
        cipher.encrypt_in_place(&mut base_ct);
        // One flipped bit per trial, spread across positions.
        let bit = t % 128;
        let mut flipped = base;
        flipped[(bit / 8) as usize] ^= 1 << (bit % 8);
        cipher.encrypt_in_place(&mut flipped);
        let d = hamming(&base_ct, &flipped);
        total += u64::from(d);
        min = min.min(d);
        max = max.max(d);
        count += 1;
    }

    AvalancheStats {
        mean_flipped_bits: total as f64 / f64::from(count),
        min_flipped_bits: min,
        max_flipped_bits: max,
        trials: count,
    }
}

/// Measures key avalanche: flip single key bits and compare ciphertexts
/// of a fixed plaintext. `make_cipher` builds the cipher for each key.
///
/// # Panics
///
/// Panics if `trials == 0`.
#[must_use]
pub fn key_avalanche<C: BlockCipher>(
    trials: u32,
    mut make_cipher: impl FnMut(&[u8; 16]) -> C,
) -> AvalancheStats {
    assert!(trials > 0, "need at least one trial");
    let pt = [0x6Bu8; 16];
    let mut total: u64 = 0;
    let mut min = u32::MAX;
    let mut max = 0u32;

    for t in 0..trials {
        let base_key: [u8; 16] =
            core::array::from_fn(|i| (i as u8).wrapping_mul(53).wrapping_add(t as u8));
        let mut base_ct = pt;
        make_cipher(&base_key).encrypt_in_place(&mut base_ct);

        let bit = t % 128;
        let mut key = base_key;
        key[(bit / 8) as usize] ^= 1 << (bit % 8);
        let mut ct = pt;
        make_cipher(&key).encrypt_in_place(&mut ct);

        let d = hamming(&base_ct, &ct);
        total += u64::from(d);
        min = min.min(d);
        max = max.max(d);
    }

    AvalancheStats {
        mean_flipped_bits: total as f64 / f64::from(trials),
        min_flipped_bits: min,
        max_flipped_bits: max,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;

    #[test]
    fn aes_satisfies_the_avalanche_criterion() {
        let aes = Aes128::new(&[7u8; 16]);
        let stats = plaintext_avalanche(&aes, 256);
        assert!(
            stats.satisfies_sac(128, 3.0),
            "mean {} out of tolerance",
            stats.mean_flipped_bits
        );
        assert!(stats.min_flipped_bits >= 40, "weak diffusion: {stats:?}");
        assert!(stats.max_flipped_bits <= 90, "suspicious: {stats:?}");
    }

    #[test]
    fn key_avalanche_is_full() {
        let stats = key_avalanche(128, Aes128::new);
        assert!(stats.satisfies_sac(128, 3.0), "{stats:?}");
    }

    #[test]
    fn broken_cipher_fails_sac() {
        // The identity "cipher" flips exactly the one input bit.
        struct Identity;
        impl BlockCipher for Identity {
            fn block_len(&self) -> usize {
                16
            }
            fn encrypt_in_place(&self, _block: &mut [u8]) {}
            fn decrypt_in_place(&self, _block: &mut [u8]) {}
        }
        let stats = plaintext_avalanche(&Identity, 64);
        assert_eq!(stats.mean_flipped_bits, 1.0);
        assert!(!stats.satisfies_sac(128, 3.0));
    }
}

//! Carry-less multiplication in GF(2^128) for GHASH (NIST SP 800-38D).
//!
//! The GHASH field is GF(2)[x] / (x^128 + x^7 + x^2 + x + 1) with SP
//! 800-38D's *reflected* bit order: bit 0 of a block (the MSB of byte 0)
//! is the coefficient of x^0, and bit 127 (the LSB of byte 15) is the
//! coefficient of x^127. Loading a block with `u128::from_be_bytes` puts
//! the coefficient of x^i at u128 bit `127 - i`, so *multiplying by x*
//! is a **right** shift with a conditional reduction by
//! `0xE1 << 120` (x^7 + x^2 + x + 1 at the top of the word).
//!
//! Two multiplier cores share one public surface, mirroring the way
//! [`crate::bitslice`] and [`crate::aesni`] split the AES data path:
//!
//! * [`GfTable`] — Shoup's 4-bit table method: 16 precomputed multiples
//!   of the (secret) hash subkey `H`, walked nibble-by-nibble with a
//!   16-entry reduction table. The table *indices* come from GHASH input
//!   (AAD and ciphertext — public values in GCM), never from `H`
//!   itself, so the secret-dependent-lookup objection to the T-tables
//!   does not apply here. This is the sibling of the in-repo
//!   [`gf256`-style](crate::diffusion) table fields, lifted to 128 bits.
//! * [`pclmul`] — the x86 `PCLMULQDQ` carry-less multiplier behind the
//!   same runtime-probe contract as [`crate::aesni`]: the
//!   [`crate::dispatch::cpu`] probe gains a `pclmul` flag, and the
//!   kernel is only reachable once [`pclmul::available`] returned true.
//!
//! Correctness of both cores is anchored to [`mul_bitwise`], a 128-step
//! shift-and-add reference, and to the NIST GCM vectors in
//! `tests/aead_kats.rs`.

/// The reduction constant: x^7 + x^2 + x + 1 in the reflected layout,
/// applied when a multiplication by x shifts a set bit out of x^127.
const R: u128 = 0xE1 << 120;

/// Multiplies a field element by x (degree +1): right shift in the
/// reflected representation, reducing when x^128 appears.
#[inline]
#[must_use]
pub fn mul_x(v: u128) -> u128 {
    let carry = v & 1;
    (v >> 1) ^ (R * carry)
}

/// Bitwise shift-and-add product — the reference the table and
/// `PCLMULQDQ` cores are tested against. 128 steps, branch-free.
#[must_use]
pub fn mul_bitwise(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = y;
    for i in 0..128 {
        // Bit i of the block string = u128 bit 127 - i = coefficient x^i.
        let coeff = (x >> (127 - i)) & 1;
        z ^= v * coeff;
        v = mul_x(v);
    }
    z
}

/// Per-nibble reduction for the 4-bit table walk: entry `r` is the field
/// value of `r`'s overflow bits (degrees 128..=131) folded back below
/// x^128, as the top 16 bits of the reflected word.
///
/// Entry `r` with nibble bit 3 (value 8) set contributes x^128, bit 0
/// (value 1) contributes x^131.
const REM_4BIT: [u16; 16] = [
    0x0000, 0x1C20, 0x3840, 0x2460, 0x7080, 0x6CA0, 0x48C0, 0x54E0, 0xE100, 0xFD20, 0xD940, 0xC560,
    0x9180, 0x8DA0, 0xA9C0, 0xB5E0,
];

/// Shoup's 4-bit table for a fixed multiplicand `H`: the 16 products
/// `n · H` for every 4-bit polynomial `n`, plus the walk that evaluates
/// `X · H` in 32 nibble steps (Horner in x^4).
///
/// The table caches 256 bytes of key-derived material, so [`Drop`] wipes
/// it through [`crate::zeroize`] exactly like a round-key schedule.
pub struct GfTable {
    /// `table[n] = poly(n) · H` where nibble bit 3 (value 8) is the
    /// constant term: `table[8] = H`, `table[4] = H·x`, `table[2] =
    /// H·x²`, `table[1] = H·x³`.
    table: [u128; 16],
}

impl GfTable {
    /// Precomputes the 16 multiples of `h` (a block in GHASH byte
    /// order).
    #[must_use]
    pub fn new(h: &[u8; 16]) -> Self {
        let h = u128::from_be_bytes(*h);
        let mut table = [0u128; 16];
        table[8] = h;
        table[4] = mul_x(table[8]);
        table[2] = mul_x(table[4]);
        table[1] = mul_x(table[2]);
        // Composites: XOR of the single-bit entries.
        for n in 1..16usize {
            if !n.is_power_of_two() {
                let low = n & n.wrapping_neg();
                table[n] = table[low] ^ table[n ^ low];
            }
        }
        GfTable { table }
    }

    /// `X · H` via the 4-bit walk: nibbles of `x` from the highest
    /// degree (low nibble of byte 15) down, shifting the accumulator by
    /// x^4 and folding the four overflow bits with [`REM_4BIT`].
    #[must_use]
    pub fn mul(&self, x: u128) -> u128 {
        let bytes = x.to_be_bytes();
        let mut z = 0u128;
        let mut first = true;
        for i in (0..16).rev() {
            for nibble in [bytes[i] & 0x0F, bytes[i] >> 4] {
                if !first {
                    let rem = (z & 0x0F) as usize;
                    z >>= 4;
                    z ^= u128::from(REM_4BIT[rem]) << 112;
                }
                first = false;
                z ^= self.table[nibble as usize];
            }
        }
        z
    }
}

impl core::fmt::Debug for GfTable {
    /// Never prints the (key-derived) table contents.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("GfTable { entries: 16 }")
    }
}

impl Clone for GfTable {
    fn clone(&self) -> Self {
        GfTable { table: self.table }
    }
}

impl Drop for GfTable {
    /// Wipes the key-derived multiples (see [`crate::zeroize`];
    /// `wipe_u128` is the 128-bit sibling added for this table).
    fn drop(&mut self) {
        crate::zeroize::wipe_u128(&mut self.table);
    }
}

/// One of the `unsafe`-bearing modules of the crate (with
/// [`crate::aesni`] and the AVX2 lane of [`crate::bitslice`]): the x86
/// `PCLMULQDQ` carry-less multiplier behind a **runtime** feature gate.
///
/// Soundness argument: the only entry point is [`pclmul::mul`], which is
/// safe because it asserts the cached [`available`](pclmul::available)
/// probe before entering the `#[target_feature]` kernel; all intrinsics
/// used are pure value operations plus unaligned loads/stores of local
/// `[u8; 16]` buffers.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub mod pclmul {
    use core::arch::x86_64::{
        __m128i, _mm_clmulepi64_si128, _mm_loadu_si128, _mm_or_si128, _mm_setzero_si128,
        _mm_slli_epi32, _mm_slli_si128, _mm_srli_epi32, _mm_srli_si128, _mm_storeu_si128,
        _mm_xor_si128,
    };

    /// `true` when this CPU executes `PCLMULQDQ` (cached probe).
    #[must_use]
    pub fn available() -> bool {
        static PROBE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *PROBE.get_or_init(|| std::arch::is_x86_feature_detected!("pclmulqdq"))
    }

    /// GHASH product of two field elements in the reflected (`u128`
    /// big-endian block) representation.
    ///
    /// # Panics
    ///
    /// Panics when the CPU lacks `PCLMULQDQ` — callers gate on
    /// [`available`], and reaching the kernel without the instruction
    /// must fail loudly.
    #[must_use]
    pub fn mul(x: u128, y: u128) -> u128 {
        assert!(available(), "PCLMULQDQ kernel invoked without CPU support");
        // SAFETY: the runtime probe above confirmed PCLMULQDQ.
        unsafe { gfmul(x, y) }
    }

    /// How many blocks [`fold`] aggregates per reduction; callers keep
    /// this many descending subkey powers on hand.
    pub const FOLD_WIDTH: usize = 8;

    /// Aggregated GHASH fold (Gueron's aggregated reduction): returns
    ///
    /// `(y ⊕ x₁)·h₁ ⊕ x₂·h₂ ⊕ … ⊕ xₙ·hₙ`
    ///
    /// with a **single** polynomial reduction for the whole span. When
    /// the caller passes descending subkey powers `hᵢ = H^(n-i+1)` this
    /// advances the GHASH accumulator by `n` blocks in one call — the
    /// throughput trick that lets GHASH keep pace with pipelined
    /// hardware AES keystream.
    ///
    /// # Panics
    ///
    /// Panics when the CPU lacks `PCLMULQDQ`, when `xs` and `hs` differ
    /// in length, or when more than [`FOLD_WIDTH`] blocks are passed.
    #[must_use]
    pub fn fold(y: u128, xs: &[u128], hs: &[u128]) -> u128 {
        assert!(available(), "PCLMULQDQ kernel invoked without CPU support");
        assert_eq!(xs.len(), hs.len(), "one subkey power per block");
        assert!(xs.len() <= FOLD_WIDTH, "fold span exceeds FOLD_WIDTH");
        // SAFETY: the runtime probe above confirmed PCLMULQDQ.
        unsafe { gffold(y, xs, hs) }
    }

    /// Carry-less multiply + reduction (Gueron & Kounavis, "Intel
    /// Carry-Less Multiplication Instruction and its Usage for Computing
    /// the GCM Mode", Algorithm 2).
    ///
    /// The GHASH bit order is the reverse of the `PCLMULQDQ` bit order,
    /// so operands are fed in **byte-reversed** (`to_le_bytes` of the
    /// big-endian-loaded value); the 256-bit product is then one bit
    /// short of byte-reversed and is fixed with a shift-left-by-1 before
    /// reducing modulo the reflected polynomial.
    ///
    /// # Safety
    ///
    /// The CPU must support `PCLMULQDQ` (checked by [`mul`]).
    #[target_feature(enable = "pclmulqdq")]
    unsafe fn gfmul(x: u128, y: u128) -> u128 {
        // Byte-reverse into PCLMUL's little-endian bit order.
        let xb = x.to_le_bytes();
        let yb = y.to_le_bytes();
        let a = _mm_loadu_si128(xb.as_ptr().cast::<__m128i>());
        let b = _mm_loadu_si128(yb.as_ptr().cast::<__m128i>());

        // 256-bit carry-less product in (tmp3 = low, tmp6 = high).
        let mut tmp3 = _mm_clmulepi64_si128(a, b, 0x00);
        let tmp4 = _mm_clmulepi64_si128(a, b, 0x10);
        let tmp5 = _mm_clmulepi64_si128(a, b, 0x01);
        let mut tmp6 = _mm_clmulepi64_si128(a, b, 0x11);
        let mid = _mm_xor_si128(tmp4, tmp5);
        tmp3 = _mm_xor_si128(tmp3, _mm_slli_si128(mid, 8));
        tmp6 = _mm_xor_si128(tmp6, _mm_srli_si128(mid, 8));

        shift_reduce(tmp3, tmp6)
    }

    /// Accumulated Karatsuba products over up to [`FOLD_WIDTH`] blocks,
    /// one [`shift_reduce`] at the end. Each block costs three `clmul`s
    /// (low, high, and the folded middle term); the middle terms are
    /// recovered from the accumulated low/high sums after the loop.
    ///
    /// # Safety
    ///
    /// The CPU must support `PCLMULQDQ` (checked by [`fold`]).
    #[target_feature(enable = "pclmulqdq")]
    unsafe fn gffold(y: u128, xs: &[u128], hs: &[u128]) -> u128 {
        let mut acc_lo = _mm_setzero_si128();
        let mut acc_hi = _mm_setzero_si128();
        let mut acc_mid = _mm_setzero_si128();
        let mut first = y;
        for (&x, &h) in xs.iter().zip(hs) {
            let xb = (x ^ first).to_le_bytes();
            first = 0;
            let hb = h.to_le_bytes();
            let a = _mm_loadu_si128(xb.as_ptr().cast::<__m128i>());
            let b = _mm_loadu_si128(hb.as_ptr().cast::<__m128i>());
            acc_lo = _mm_xor_si128(acc_lo, _mm_clmulepi64_si128(a, b, 0x00));
            acc_hi = _mm_xor_si128(acc_hi, _mm_clmulepi64_si128(a, b, 0x11));
            // Karatsuba middle: (a₀⊕a₁)·(b₀⊕b₁) accumulated raw; the
            // missing a₀b₀ ⊕ a₁b₁ correction is linear, so it is applied
            // once to the sums below instead of per block.
            let am = _mm_xor_si128(a, _mm_srli_si128(a, 8));
            let bm = _mm_xor_si128(b, _mm_srli_si128(b, 8));
            acc_mid = _mm_xor_si128(acc_mid, _mm_clmulepi64_si128(am, bm, 0x00));
        }
        let mid = _mm_xor_si128(acc_mid, _mm_xor_si128(acc_lo, acc_hi));
        let tmp3 = _mm_xor_si128(acc_lo, _mm_slli_si128(mid, 8));
        let tmp6 = _mm_xor_si128(acc_hi, _mm_srli_si128(mid, 8));
        shift_reduce(tmp3, tmp6)
    }

    /// Bit-order fixup and one reduction of a 256-bit carry-less product
    /// (`tmp3` low, `tmp6` high) back to the field.
    ///
    /// # Safety
    ///
    /// The CPU must support `PCLMULQDQ` (callers sit behind the probe).
    #[target_feature(enable = "pclmulqdq")]
    unsafe fn shift_reduce(mut tmp3: __m128i, mut tmp6: __m128i) -> u128 {
        // Shift the whole 256-bit product left by one bit: the product
        // of two 128-bit reflected operands occupies bits 0..255 of a
        // 256-bit reflection, i.e. everything sits one bit low.
        let tmp7 = _mm_srli_epi32(tmp3, 31);
        let tmp8 = _mm_srli_epi32(tmp6, 31);
        tmp3 = _mm_slli_epi32(tmp3, 1);
        tmp6 = _mm_slli_epi32(tmp6, 1);
        let tmp9 = _mm_srli_si128(tmp7, 12);
        let tmp8 = _mm_slli_si128(tmp8, 4);
        let tmp7 = _mm_slli_si128(tmp7, 4);
        tmp3 = _mm_or_si128(tmp3, tmp7);
        tmp6 = _mm_or_si128(tmp6, tmp8);
        tmp6 = _mm_or_si128(tmp6, tmp9);

        // Reduce modulo x^128 + x^127 + x^126 + x^121 + 1 (the GHASH
        // polynomial seen through the bit reflection).
        let tmp7 = _mm_slli_epi32(tmp3, 31);
        let tmp8 = _mm_slli_epi32(tmp3, 30);
        let tmp9 = _mm_slli_epi32(tmp3, 25);
        let folded = _mm_xor_si128(_mm_xor_si128(tmp7, tmp8), tmp9);
        let tmp8 = _mm_srli_si128(folded, 4);
        let tmp7 = _mm_slli_si128(folded, 12);
        tmp3 = _mm_xor_si128(tmp3, tmp7);
        let t2 = _mm_srli_epi32(tmp3, 1);
        let t4 = _mm_srli_epi32(tmp3, 2);
        let t5 = _mm_srli_epi32(tmp3, 7);
        let t2 = _mm_xor_si128(_mm_xor_si128(t2, t4), _mm_xor_si128(t5, tmp8));
        tmp3 = _mm_xor_si128(tmp3, t2);
        tmp6 = _mm_xor_si128(tmp6, tmp3);

        let mut out = [0u8; 16];
        _mm_storeu_si128(out.as_mut_ptr().cast::<__m128i>(), tmp6);
        u128::from_le_bytes(out)
    }
}

/// Stub so callers can write one `pclmul::available()` gate on every
/// architecture; always `false` off x86_64.
#[cfg(not(target_arch = "x86_64"))]
pub mod pclmul {
    /// `PCLMULQDQ` is an x86 instruction; never available here.
    #[must_use]
    pub fn available() -> bool {
        false
    }

    /// Unreachable off x86_64 — callers gate on [`available`].
    #[must_use]
    pub fn mul(_x: u128, _y: u128) -> u128 {
        unreachable!("PCLMULQDQ kernel invoked on a non-x86_64 build")
    }

    /// Mirror of the x86_64 aggregation width so callers size their
    /// subkey-power arrays identically on every architecture.
    pub const FOLD_WIDTH: usize = 8;

    /// Unreachable off x86_64 — callers gate on [`available`].
    #[must_use]
    pub fn fold(_y: u128, _xs: &[u128], _hs: &[u128]) -> u128 {
        unreachable!("PCLMULQDQ kernel invoked on a non-x86_64 build")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_u128(state: &mut u64) -> u128 {
        (u128::from(xorshift(state)) << 64) | u128::from(xorshift(state))
    }

    // The worked multiplication from the GCM spec's validation suite:
    // H = 66e94bd4ef8a2c3b884cfa59ca342b2e (E_K(0) for the all-zero
    // AES-128 key), X = 0388dace60b6a392f328c2b971b2fe78 (first
    // ciphertext block of test case 2); X · H =
    // 5e2ec746917062882c85b0685353deb7.
    const H: u128 = 0x66E9_4BD4_EF8A_2C3B_884C_FA59_CA34_2B2E;
    const X: u128 = 0x0388_DACE_60B6_A392_F328_C2B9_71B2_FE78;
    const XH: u128 = 0x5E2E_C746_9170_6288_2C85_B068_5353_DEB7;

    #[test]
    fn bitwise_core_matches_the_nist_worked_example() {
        assert_eq!(mul_bitwise(X, H), XH);
        // The field is commutative.
        assert_eq!(mul_bitwise(H, X), XH);
    }

    #[test]
    fn multiplication_identities_hold() {
        // 1 in the reflected representation is the MSB (x^0 coefficient).
        let one = 1u128 << 127;
        let mut s = 0x9E37_79B9;
        for _ in 0..64 {
            let a = random_u128(&mut s);
            let b = random_u128(&mut s);
            let c = random_u128(&mut s);
            assert_eq!(mul_bitwise(a, one), a, "right identity");
            assert_eq!(mul_bitwise(one, a), a, "left identity");
            assert_eq!(mul_bitwise(a, 0), 0, "absorbing zero");
            assert_eq!(mul_bitwise(a, b), mul_bitwise(b, a), "commutativity");
            assert_eq!(
                mul_bitwise(a, b ^ c),
                mul_bitwise(a, b) ^ mul_bitwise(a, c),
                "distributivity"
            );
        }
    }

    #[test]
    fn table_core_matches_the_bitwise_reference() {
        let mut s = 0xC0FF_EE11;
        for _ in 0..128 {
            let h = random_u128(&mut s);
            let table = GfTable::new(&h.to_be_bytes());
            for _ in 0..8 {
                let x = random_u128(&mut s);
                assert_eq!(table.mul(x), mul_bitwise(x, h), "h={h:032x} x={x:032x}");
            }
        }
    }

    #[test]
    fn table_core_matches_the_nist_worked_example() {
        let table = GfTable::new(&H.to_be_bytes());
        assert_eq!(table.mul(X), XH);
    }

    #[test]
    fn pclmul_core_matches_the_bitwise_reference() {
        if !pclmul::available() {
            return;
        }
        assert_eq!(pclmul::mul(X, H), XH);
        let mut s = 0xB16B_00B5;
        for _ in 0..256 {
            let a = random_u128(&mut s);
            let b = random_u128(&mut s);
            assert_eq!(
                pclmul::mul(a, b),
                mul_bitwise(a, b),
                "a={a:032x} b={b:032x}"
            );
        }
    }

    #[test]
    fn sparse_and_boundary_operands_agree_across_cores() {
        let patterns: [u128; 8] = [
            0,
            1,
            1 << 127,
            u128::MAX,
            R,
            0x8000_0000_0000_0000_0000_0000_0000_0001,
            0x0101_0101_0101_0101_0101_0101_0101_0101,
            0xFFFF_0000_FFFF_0000_FFFF_0000_FFFF_0000,
        ];
        for &a in &patterns {
            let table = GfTable::new(&a.to_be_bytes());
            for &b in &patterns {
                let expect = mul_bitwise(b, a);
                assert_eq!(table.mul(b), expect, "table a={a:032x} b={b:032x}");
                if pclmul::available() {
                    assert_eq!(pclmul::mul(b, a), expect, "pclmul a={a:032x} b={b:032x}");
                }
            }
        }
    }

    #[test]
    fn debug_never_leaks_table_contents() {
        let table = GfTable::new(&H.to_be_bytes());
        let s = format!("{table:?}");
        assert!(!s.contains("66e9"), "{s}");
        assert!(!s.contains("66E9"), "{s}");
    }
}

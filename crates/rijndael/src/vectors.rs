//! Published known-answer vectors used across the workspace test suites.
//!
//! Sources: FIPS-197 Appendix C (the official AES example vectors), the
//! Rijndael submission document Appendix B, and the first NIST AESAVS
//! GFSbox vector. Each vector carries its provenance so a failing test
//! names the external authority it disagrees with.

/// One known-answer encryption vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnownAnswer {
    /// Where the vector was published.
    pub source: &'static str,
    /// Cipher key (16, 24 or 32 bytes used).
    pub key: &'static [u8],
    /// 16-byte plaintext block.
    pub plaintext: [u8; 16],
    /// 16-byte expected ciphertext block.
    pub ciphertext: [u8; 16],
}

/// FIPS-197 Appendix C.1 — AES-128.
pub const FIPS197_C1: KnownAnswer = KnownAnswer {
    source: "FIPS-197 Appendix C.1",
    key: &[
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E,
        0x0F,
    ],
    plaintext: [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE,
        0xFF,
    ],
    ciphertext: [
        0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4, 0xC5,
        0x5A,
    ],
};

/// FIPS-197 Appendix C.2 — AES-192.
pub const FIPS197_C2: KnownAnswer = KnownAnswer {
    source: "FIPS-197 Appendix C.2",
    key: &[
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E,
        0x0F, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17,
    ],
    plaintext: [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE,
        0xFF,
    ],
    ciphertext: [
        0xDD, 0xA9, 0x7C, 0xA4, 0x86, 0x4C, 0xDF, 0xE0, 0x6E, 0xAF, 0x70, 0xA0, 0xEC, 0x0D, 0x71,
        0x91,
    ],
};

/// FIPS-197 Appendix C.3 — AES-256.
pub const FIPS197_C3: KnownAnswer = KnownAnswer {
    source: "FIPS-197 Appendix C.3",
    key: &[
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E,
        0x0F, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19, 0x1A, 0x1B, 0x1C, 0x1D,
        0x1E, 0x1F,
    ],
    plaintext: [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE,
        0xFF,
    ],
    ciphertext: [
        0x8E, 0xA2, 0xB7, 0xCA, 0x51, 0x67, 0x45, 0xBF, 0xEA, 0xFC, 0x49, 0x90, 0x4B, 0x49, 0x60,
        0x89,
    ],
};

/// Rijndael submission document Appendix B — AES-128 worked example.
pub const RIJNDAEL_SPEC_B: KnownAnswer = KnownAnswer {
    source: "Rijndael submission Appendix B",
    key: &[
        0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F,
        0x3C,
    ],
    plaintext: [
        0x32, 0x43, 0xF6, 0xA8, 0x88, 0x5A, 0x30, 0x8D, 0x31, 0x31, 0x98, 0xA2, 0xE0, 0x37, 0x07,
        0x34,
    ],
    ciphertext: [
        0x39, 0x25, 0x84, 0x1D, 0x02, 0xDC, 0x09, 0xFB, 0xDC, 0x11, 0x85, 0x97, 0x19, 0x6A, 0x0B,
        0x32,
    ],
};

/// NIST AESAVS GFSbox, AES-128, vector #1 (all-zero key).
pub const AESAVS_GFSBOX_128_1: KnownAnswer = KnownAnswer {
    source: "NIST AESAVS GFSbox AES-128 #1",
    key: &[0u8; 16],
    plaintext: [
        0xF3, 0x44, 0x81, 0xEC, 0x3C, 0xC6, 0x27, 0xBA, 0xCD, 0x5D, 0xC3, 0xFB, 0x08, 0xF2, 0x73,
        0xE6,
    ],
    ciphertext: [
        0x03, 0x36, 0x76, 0x3E, 0x96, 0x6D, 0x92, 0x59, 0x5A, 0x56, 0x7C, 0xC9, 0xCE, 0x53, 0x7F,
        0x5E,
    ],
};

/// All-zero key, all-zero plaintext — the ubiquitous smoke-test vector.
pub const ZERO_VECTOR_128: KnownAnswer = KnownAnswer {
    source: "AES-128 zero key / zero plaintext",
    key: &[0u8; 16],
    plaintext: [0u8; 16],
    ciphertext: [
        0x66, 0xE9, 0x4B, 0xD4, 0xEF, 0x8A, 0x2C, 0x3B, 0x88, 0x4C, 0xFA, 0x59, 0xCA, 0x34, 0x2B,
        0x2E,
    ],
};

/// Every AES-128 vector in this module (the size the paper's IP runs).
pub const AES128_VECTORS: &[KnownAnswer] = &[
    FIPS197_C1,
    RIJNDAEL_SPEC_B,
    AESAVS_GFSBOX_128_1,
    ZERO_VECTOR_128,
];

/// Every vector in this module, across all key sizes.
pub const ALL_VECTORS: &[KnownAnswer] = &[
    FIPS197_C1,
    FIPS197_C2,
    FIPS197_C3,
    RIJNDAEL_SPEC_B,
    AESAVS_GFSBOX_128_1,
    ZERO_VECTOR_128,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cipher::Rijndael;
    use crate::ttable::TtableAes;

    #[test]
    fn reference_cipher_passes_all_vectors() {
        for v in ALL_VECTORS {
            let cipher = Rijndael::<4>::new(v.key).expect("vector key length");
            let mut block = v.plaintext;
            cipher.encrypt(&mut block);
            assert_eq!(block, v.ciphertext, "encrypt failed: {}", v.source);
            cipher.decrypt(&mut block);
            assert_eq!(block, v.plaintext, "decrypt failed: {}", v.source);
        }
    }

    #[test]
    fn ttable_cipher_passes_all_vectors() {
        for v in ALL_VECTORS {
            let cipher = TtableAes::new(v.key).expect("vector key length");
            let mut block = v.plaintext;
            cipher.encrypt_block(&mut block);
            assert_eq!(block, v.ciphertext, "T-table encrypt failed: {}", v.source);
            cipher.decrypt_block(&mut block);
            assert_eq!(block, v.plaintext, "T-table decrypt failed: {}", v.source);
        }
    }

    #[test]
    fn aes128_vector_list_is_aes128_only() {
        for v in AES128_VECTORS {
            assert_eq!(v.key.len(), 16, "{}", v.source);
        }
    }
}

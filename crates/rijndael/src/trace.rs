//! Round-by-round execution traces.
//!
//! The paper's Figure 2 is the encryption schedule: initial `AddKey`,
//! `NR - 1` identical rounds, and a final round without `MixColumn`. These
//! traces make that schedule observable — the `figures` binary prints them,
//! and the hardware model's per-round registers are checked against them.

use crate::cipher::Rijndael;
use crate::state::State;
use crate::transform;

/// Snapshot of one encryption round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundTrace<const NB: usize> {
    /// Round number, 1-based (round `NR` is the final round).
    pub round: usize,
    /// State after `ByteSub`.
    pub after_byte_sub: State<NB>,
    /// State after `ShiftRow`.
    pub after_shift_row: State<NB>,
    /// State after `MixColumn`; `None` in the final round, which skips it.
    pub after_mix_column: Option<State<NB>>,
    /// State after `AddKey` (the round output).
    pub after_add_key: State<NB>,
    /// The round key that was added.
    pub round_key: Vec<u32>,
}

/// A complete encryption trace (Figure 2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptionTrace<const NB: usize> {
    /// The plaintext state.
    pub input: State<NB>,
    /// State after the initial `AddKey` with round key 0.
    pub after_initial_add_key: State<NB>,
    /// One entry per round, in execution order.
    pub rounds: Vec<RoundTrace<NB>>,
}

impl<const NB: usize> EncryptionTrace<NB> {
    /// The ciphertext state (output of the last round).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty (cannot happen for traces produced by
    /// [`trace_encrypt`]).
    #[must_use]
    pub fn output(&self) -> &State<NB> {
        &self
            .rounds
            .last()
            .expect("trace has at least one round")
            .after_add_key
    }
}

/// Runs an encryption while recording every intermediate state.
///
/// # Examples
///
/// ```
/// use rijndael::{Rijndael, trace::trace_encrypt, State};
///
/// let cipher = Rijndael::<4>::new(&[0u8; 16])?;
/// let trace = trace_encrypt(&cipher, &State::from_bytes(&[0u8; 16]));
/// assert_eq!(trace.rounds.len(), 10);
/// assert!(trace.rounds[9].after_mix_column.is_none()); // final round
/// # Ok::<(), rijndael::key_schedule::InvalidKeyLength>(())
/// ```
#[must_use]
pub fn trace_encrypt<const NB: usize>(
    cipher: &Rijndael<NB>,
    input: &State<NB>,
) -> EncryptionTrace<NB> {
    let schedule = cipher.schedule();
    let nr = schedule.rounds();
    let mut st = *input;
    transform::add_round_key(&mut st, schedule.round_key(0));
    let after_initial_add_key = st;

    let mut rounds = Vec::with_capacity(nr);
    for round in 1..=nr {
        transform::byte_sub(&mut st);
        let after_byte_sub = st;
        transform::shift_row(&mut st);
        let after_shift_row = st;
        let after_mix_column = if round < nr {
            transform::mix_column(&mut st);
            Some(st)
        } else {
            None
        };
        transform::add_round_key(&mut st, schedule.round_key(round));
        rounds.push(RoundTrace {
            round,
            after_byte_sub,
            after_shift_row,
            after_mix_column,
            after_add_key: st,
            round_key: schedule.round_key(round).to_vec(),
        });
    }

    EncryptionTrace {
        input: *input,
        after_initial_add_key,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIPS_KEY: [u8; 16] = [
        0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F,
        0x3C,
    ];
    const FIPS_PT: [u8; 16] = [
        0x32, 0x43, 0xF6, 0xA8, 0x88, 0x5A, 0x30, 0x8D, 0x31, 0x31, 0x98, 0xA2, 0xE0, 0x37, 0x07,
        0x34,
    ];

    #[test]
    fn trace_matches_plain_encwhile_recording() {
        let cipher = Rijndael::<4>::new(&FIPS_KEY).unwrap();
        let trace = trace_encrypt(&cipher, &State::from_bytes(&FIPS_PT));
        let mut expect = FIPS_PT;
        cipher.encrypt(&mut expect);
        assert_eq!(trace.output().to_bytes(), expect);
    }

    #[test]
    fn only_final_round_skips_mix_column() {
        let cipher = Rijndael::<4>::new(&FIPS_KEY).unwrap();
        let trace = trace_encrypt(&cipher, &State::from_bytes(&FIPS_PT));
        for r in &trace.rounds[..9] {
            assert!(
                r.after_mix_column.is_some(),
                "round {} missing MixColumn",
                r.round
            );
        }
        assert!(trace.rounds[9].after_mix_column.is_none());
    }

    #[test]
    fn appendix_b_round1_intermediates() {
        let cipher = Rijndael::<4>::new(&FIPS_KEY).unwrap();
        let trace = trace_encrypt(&cipher, &State::from_bytes(&FIPS_PT));
        assert_eq!(
            trace.after_initial_add_key.to_string(),
            "193de3bea0f4e22b9ac68d2ae9f84808"
        );
        let r1 = &trace.rounds[0];
        assert_eq!(
            r1.after_byte_sub.to_string(),
            "d42711aee0bf98f1b8b45de51e415230"
        );
        assert_eq!(
            r1.after_shift_row.to_string(),
            "d4bf5d30e0b452aeb84111f11e2798e5"
        );
        assert_eq!(
            r1.after_mix_column.unwrap().to_string(),
            "046681e5e0cb199a48f8d37a2806264c"
        );
        assert_eq!(
            r1.after_add_key.to_string(),
            "a49c7ff2689f352b6b5bea43026a5049"
        );
    }

    #[test]
    fn trace_records_round_keys() {
        let cipher = Rijndael::<4>::new(&FIPS_KEY).unwrap();
        let trace = trace_encrypt(&cipher, &State::from_bytes(&FIPS_PT));
        for (i, r) in trace.rounds.iter().enumerate() {
            assert_eq!(r.round, i + 1);
            assert_eq!(&r.round_key[..], cipher.schedule().round_key(i + 1));
        }
    }
}

//! AES-128/192/256 on the x86 AES-NI instruction set.
//!
//! One `AESENC` retires a whole round (`ByteSub ∘ ShiftRow ∘ MixColumn ∘
//! AddKey`) in hardware, so this backend encrypts a block in one
//! instruction per round and, with eight blocks interleaved per loop
//! iteration to cover the instruction latency, sustains several blocks
//! per cycle of throughput — the fastest software-visible path this
//! crate has. The round instruction is key-size-agnostic: AES-192 and
//! AES-256 are the same chain run for 12 or 14 rounds, so one kernel
//! serves every `NK` (the round count rides in the schedule length).
//! Decryption uses the equivalent inverse cipher: the decryption round
//! keys are the encryption schedule reversed with `AESIMC`
//! (`InvMixColumn`) applied to the interior rounds, exactly the
//! transformation [`crate::ttable`] performs in arithmetic.
//!
//! # Availability
//!
//! The module only compiles on `x86_64`, and an [`AesNi`] instance can
//! only be constructed after [`available`] — a cached
//! `is_x86_feature_detected!("aes")` probe — returns `true` **at
//! runtime**. Nothing here relies on compile-time `target_feature`
//! flags: the binary stays a portable baseline-x86_64 artifact and the
//! [`crate::dispatch`] micro-race decides per host whether this backend
//! runs. Like the hardware AES round itself, execution is constant-time:
//! no table lookups, no secret-dependent branches.
//!
//! # Safety
//!
//! This is one of the two `unsafe`-bearing modules of the crate (the
//! other is the AVX2 kernel in [`crate::bitslice`]). Every intrinsic
//! sits inside a `#[target_feature(enable = "aes")]` function, and every
//! path into those functions is fenced by the runtime probe: [`AesNi`]
//! cannot exist on a CPU without the extension, so the feature
//! precondition holds whenever they execute. The only pointer operations
//! are unaligned 16-byte loads/stores of caller-provided `[u8; 16]`
//! buffers.

#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m128i, _mm_aesdec_si128, _mm_aesdeclast_si128, _mm_aesenc_si128, _mm_aesenclast_si128,
    _mm_aesimc_si128, _mm_loadu_si128, _mm_setzero_si128, _mm_storeu_si128, _mm_xor_si128,
};

use crate::cipher::{BatchCipher, BlockCipher};
use crate::key_schedule::KeySchedule;

/// Round keys for the largest variant (AES-256: the initial whitening
/// key plus fourteen rounds). Smaller keys use a prefix.
const MAX_ROUND_KEYS: usize = 15;

/// Blocks interleaved per batch loop iteration. `AESENC` has a multi-cycle
/// latency but single-cycle throughput on every AES-NI-capable
/// microarchitecture, so running eight independent blocks through the
/// round chain keeps the unit saturated.
const STRIDE: usize = 8;

/// `true` when this CPU executes the AES-NI extension (cached probe).
#[must_use]
pub fn available() -> bool {
    std::arch::is_x86_feature_detected!("aes")
}

/// Unaligned 16-byte load. Safe: the reference guarantees a readable
/// 16-byte buffer and `loadu` has no alignment requirement (SSE2 is
/// baseline on `x86_64`).
#[inline(always)]
fn loadu(block: &[u8; 16]) -> __m128i {
    // SAFETY: `block` is a valid 16-byte read; no alignment needed.
    unsafe { _mm_loadu_si128(block.as_ptr().cast()) }
}

/// Unaligned 16-byte store (same argument as [`loadu`]).
#[inline(always)]
fn storeu(block: &mut [u8; 16], v: __m128i) {
    // SAFETY: `block` is a valid 16-byte write; no alignment needed.
    unsafe { _mm_storeu_si128(block.as_mut_ptr().cast(), v) }
}

/// Derives the equivalent-inverse-cipher round keys from the encryption
/// schedule (`enc.len() - 1` rounds): reverse the order and pass the
/// interior keys through `AESIMC`.
///
/// # Safety
///
/// The CPU must support AES-NI (checked by the caller via [`available`]).
#[target_feature(enable = "aes")]
unsafe fn invert_keys(enc: &[[u8; 16]]) -> [[u8; 16]; MAX_ROUND_KEYS] {
    let rounds = enc.len() - 1;
    let mut dec = [[0u8; 16]; MAX_ROUND_KEYS];
    dec[0] = enc[rounds];
    for i in 1..rounds {
        storeu(&mut dec[i], _mm_aesimc_si128(loadu(&enc[rounds - i])));
    }
    dec[rounds] = enc[0];
    dec
}

/// Loads a schedule into registers, returning the register file and the
/// index of the last round key.
///
/// # Safety
///
/// The CPU must support AES-NI (checked by the caller via [`available`]).
#[target_feature(enable = "aes")]
unsafe fn load_keys(schedule: &[[u8; 16]]) -> ([__m128i; MAX_ROUND_KEYS], usize) {
    let mut rk = [_mm_setzero_si128(); MAX_ROUND_KEYS];
    for (slot, key) in rk.iter_mut().zip(schedule) {
        *slot = loadu(key);
    }
    (rk, schedule.len() - 1)
}

/// Encrypts every block in place, [`STRIDE`] interleaved blocks at a time.
/// `enc` holds the whitening key plus one key per round.
///
/// # Safety
///
/// The CPU must support AES-NI (checked by the caller via [`available`]).
#[target_feature(enable = "aes")]
unsafe fn encrypt_batch(enc: &[[u8; 16]], blocks: &mut [[u8; 16]]) {
    let (rk, last) = load_keys(enc);
    let (groups, tail) = blocks.as_chunks_mut::<STRIDE>();
    for group in groups {
        let mut s: [__m128i; STRIDE] = core::array::from_fn(|i| loadu(&group[i]));
        for x in &mut s {
            *x = _mm_xor_si128(*x, rk[0]);
        }
        for key in &rk[1..last] {
            for x in &mut s {
                *x = _mm_aesenc_si128(*x, *key);
            }
        }
        for (dst, x) in group.iter_mut().zip(s) {
            storeu(dst, _mm_aesenclast_si128(x, rk[last]));
        }
    }
    for block in tail {
        let mut x = _mm_xor_si128(loadu(block), rk[0]);
        for key in &rk[1..last] {
            x = _mm_aesenc_si128(x, *key);
        }
        storeu(block, _mm_aesenclast_si128(x, rk[last]));
    }
}

/// Decrypts every block in place (equivalent inverse cipher; same
/// interleave as [`encrypt_batch`]).
///
/// # Safety
///
/// The CPU must support AES-NI (checked by the caller via [`available`]).
#[target_feature(enable = "aes")]
unsafe fn decrypt_batch(dec: &[[u8; 16]], blocks: &mut [[u8; 16]]) {
    let (rk, last) = load_keys(dec);
    let (groups, tail) = blocks.as_chunks_mut::<STRIDE>();
    for group in groups {
        let mut s: [__m128i; STRIDE] = core::array::from_fn(|i| loadu(&group[i]));
        for x in &mut s {
            *x = _mm_xor_si128(*x, rk[0]);
        }
        for key in &rk[1..last] {
            for x in &mut s {
                *x = _mm_aesdec_si128(*x, *key);
            }
        }
        for (dst, x) in group.iter_mut().zip(s) {
            storeu(dst, _mm_aesdeclast_si128(x, rk[last]));
        }
    }
    for block in tail {
        let mut x = _mm_xor_si128(loadu(block), rk[0]);
        for key in &rk[1..last] {
            x = _mm_aesdec_si128(x, *key);
        }
        storeu(block, _mm_aesdeclast_si128(x, rk[last]));
    }
}

/// AES-128/192/256 through the x86 AES-NI instructions.
///
/// Construction is fallible precisely because dispatch is a runtime
/// decision: [`AesNi::new`] returns `None` on CPUs without the extension,
/// and the instance itself is the proof of availability every kernel call
/// relies on.
///
/// # Examples
///
/// ```
/// use rijndael::{Aes256, BatchCipher};
///
/// let key = [0x2Bu8; 32];
/// if let Some(fast) = rijndael::aesni::AesNi::new(&key) {
///     let reference = Aes256::new(&key);
///     let mut blocks = [[0x5Au8; 16]; 3];
///     fast.encrypt_blocks(&mut blocks);
///     assert_eq!(blocks[1], reference.encrypt_block(&[0x5Au8; 16]));
/// }
/// ```
pub struct AesNi {
    enc: [[u8; 16]; MAX_ROUND_KEYS],
    dec: [[u8; 16]; MAX_ROUND_KEYS],
    rounds: usize,
}

impl AesNi {
    /// Expands `key` (16, 24, or 32 bytes) and derives both round-key
    /// schedules, or returns `None` when the CPU lacks AES-NI.
    ///
    /// # Panics
    ///
    /// Panics on an invalid key length — lengths are validated at the
    /// service boundary before any backend is keyed.
    #[must_use]
    pub fn new(key: &[u8]) -> Option<Self> {
        if !available() {
            return None;
        }
        let schedule = KeySchedule::expand(key, 4).expect("key must be 16, 24, or 32 bytes");
        let rounds = schedule.rounds();
        let mut enc = [[0u8; 16]; MAX_ROUND_KEYS];
        for (round, rk) in enc[..=rounds].iter_mut().enumerate() {
            for (c, word) in schedule.round_key(round).iter().enumerate() {
                rk[4 * c..4 * c + 4].copy_from_slice(&word.to_be_bytes());
            }
        }
        // SAFETY: `available()` returned true above, so the `aes` target
        // feature is present on this CPU.
        let dec = unsafe { invert_keys(&enc[..=rounds]) };
        Some(AesNi { enc, dec, rounds })
    }

    /// Number of cipher rounds (10, 12, or 14).
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Encrypts any number of blocks in place.
    pub fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        // SAFETY: this instance exists, so `AesNi::new` saw the runtime
        // probe succeed on this CPU.
        unsafe { encrypt_batch(&self.enc[..=self.rounds], blocks) }
    }

    /// Decrypts any number of blocks in place.
    pub fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        // SAFETY: as in [`Self::encrypt_blocks`].
        unsafe { decrypt_batch(&self.dec[..=self.rounds], blocks) }
    }
}

impl BlockCipher for AesNi {
    fn block_len(&self) -> usize {
        16
    }

    fn encrypt_in_place(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 16, "AesNi encrypts 16-byte blocks");
        let mut b = [0u8; 16];
        b.copy_from_slice(block);
        self.encrypt_blocks(core::slice::from_mut(&mut b));
        block.copy_from_slice(&b);
    }

    fn decrypt_in_place(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 16, "AesNi decrypts 16-byte blocks");
        let mut b = [0u8; 16];
        b.copy_from_slice(block);
        self.decrypt_blocks(core::slice::from_mut(&mut b));
        block.copy_from_slice(&b);
    }
}

impl BatchCipher for AesNi {
    fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        Self::encrypt_blocks(self, blocks);
    }

    fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        Self::decrypt_blocks(self, blocks);
    }
}

impl Clone for AesNi {
    fn clone(&self) -> Self {
        AesNi {
            enc: self.enc,
            dec: self.dec,
            rounds: self.rounds,
        }
    }
}

impl core::fmt::Debug for AesNi {
    /// Never prints key material.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "AesNi {{ rounds: {} }}", self.rounds)
    }
}

impl Drop for AesNi {
    /// Wipes both round-key schedules (see [`crate::zeroize`]).
    fn drop(&mut self) {
        crate::zeroize::wipe_bytes(self.enc.as_flattened_mut());
        crate::zeroize::wipe_bytes(self.dec.as_flattened_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aes128, Aes192, Aes256};

    // FIPS-197 Appendix C.1.
    const KEY: [u8; 16] = [
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E,
        0x0F,
    ];
    const PT: [u8; 16] = [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE,
        0xFF,
    ];
    const CT: [u8; 16] = [
        0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4, 0xC5,
        0x5A,
    ];
    // FIPS-197 Appendix C.2 (AES-192) and C.3 (AES-256) ciphertexts for
    // the same plaintext under the 24- and 32-byte extensions of KEY.
    const CT_192: [u8; 16] = [
        0xDD, 0xA9, 0x7C, 0xA4, 0x86, 0x4C, 0xDF, 0xE0, 0x6E, 0xAF, 0x70, 0xA0, 0xEC, 0x0D, 0x71,
        0x91,
    ];
    const CT_256: [u8; 16] = [
        0x8E, 0xA2, 0xB7, 0xCA, 0x51, 0x67, 0x45, 0xBF, 0xEA, 0xFC, 0x49, 0x90, 0x4B, 0x49, 0x60,
        0x89,
    ];

    fn long_key(len: usize) -> Vec<u8> {
        (0..len as u8).collect()
    }

    fn cipher() -> Option<AesNi> {
        let c = AesNi::new(&KEY);
        assert_eq!(c.is_some(), available());
        c
    }

    fn random_blocks(n: usize, seed: u64) -> Vec<[u8; 16]> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                core::array::from_fn(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    (s >> 32) as u8
                })
            })
            .collect()
    }

    #[test]
    fn fips197_c1_known_answer_and_inverse() {
        let Some(cipher) = cipher() else { return };
        assert_eq!(cipher.rounds(), 10);
        let mut blocks = vec![PT; 19];
        cipher.encrypt_blocks(&mut blocks);
        assert!(blocks.iter().all(|b| *b == CT), "interleaved + tail KAT");
        cipher.decrypt_blocks(&mut blocks);
        assert!(blocks.iter().all(|b| *b == PT), "inverse");
    }

    #[test]
    fn fips197_c2_and_c3_known_answers_for_the_long_keys() {
        if !available() {
            return;
        }
        for (len, rounds, expect) in [(24usize, 12usize, CT_192), (32, 14, CT_256)] {
            let cipher = AesNi::new(&long_key(len)).unwrap();
            assert_eq!(cipher.rounds(), rounds, "AES-{}", len * 8);
            let mut blocks = vec![PT; 19];
            cipher.encrypt_blocks(&mut blocks);
            assert!(
                blocks.iter().all(|b| *b == expect),
                "AES-{} interleaved + tail KAT",
                len * 8
            );
            cipher.decrypt_blocks(&mut blocks);
            assert!(blocks.iter().all(|b| *b == PT), "AES-{} inverse", len * 8);
        }
    }

    #[test]
    fn agrees_with_the_reference_on_random_batches() {
        let Some(cipher) = cipher() else { return };
        let reference = Aes128::new(&KEY);
        for n in [1usize, 7, 8, 9, 64, 100] {
            let original = random_blocks(n, 0xAE5_1D00 + n as u64);
            let mut got = original.clone();
            cipher.encrypt_blocks(&mut got);
            for (i, (g, pt)) in got.iter().zip(&original).enumerate() {
                assert_eq!(*g, reference.encrypt_block(pt), "n={n} block {i}");
            }
            cipher.decrypt_blocks(&mut got);
            assert_eq!(got, original, "n={n} roundtrip");
        }
    }

    #[test]
    fn agrees_with_the_reference_for_every_key_size() {
        if !available() {
            return;
        }
        let original = random_blocks(13, 0xA11_4E75);
        for len in [16usize, 24, 32] {
            let key = long_key(len);
            let fast = AesNi::new(&key).unwrap();
            let mut got = original.clone();
            fast.encrypt_blocks(&mut got);
            let expect: Vec<[u8; 16]> = match len {
                16 => {
                    let r = Aes128::new(&key.try_into().unwrap());
                    original.iter().map(|b| r.encrypt_block(b)).collect()
                }
                24 => {
                    let r = Aes192::new(&key.try_into().unwrap());
                    original.iter().map(|b| r.encrypt_block(b)).collect()
                }
                _ => {
                    let r = Aes256::new(&key.try_into().unwrap());
                    original.iter().map(|b| r.encrypt_block(b)).collect()
                }
            };
            assert_eq!(got, expect, "AES-{}", len * 8);
            fast.decrypt_blocks(&mut got);
            assert_eq!(got, original, "AES-{} roundtrip", len * 8);
        }
    }

    #[test]
    fn block_cipher_impl_matches_the_batch_path() {
        let Some(cipher) = cipher() else { return };
        let mut block = PT;
        cipher.encrypt_in_place(&mut block);
        assert_eq!(block, CT);
        cipher.decrypt_in_place(&mut block);
        assert_eq!(block, PT);
    }

    #[test]
    fn rekeying_after_drop_yields_a_fresh_correct_cipher() {
        let Some(first) = cipher() else { return };
        let mut b = [PT];
        first.encrypt_blocks(&mut b);
        assert_eq!(b[0], CT);
        drop(first);
        let second = AesNi::new(&KEY).unwrap();
        let mut b = [PT];
        second.encrypt_blocks(&mut b);
        assert_eq!(b[0], CT);
    }

    #[test]
    fn dropping_a_clone_leaves_the_original_usable() {
        let Some(original) = cipher() else { return };
        drop(original.clone());
        let mut b = [PT];
        original.encrypt_blocks(&mut b);
        assert_eq!(b[0], CT);
    }

    #[test]
    fn debug_never_leaks_key_material() {
        let Some(cipher) = cipher() else { return };
        let s = format!("{cipher:?}");
        assert!(!s.contains("00"), "{s}");
    }
}

//! Best-effort clearing of key material.
//!
//! The paper's deployment scenarios (smart cards, banking backbones) key
//! and re-key the IP constantly, so expanded schedules must not outlive
//! the session that owned them. This crate denies `unsafe` (the only
//! exception is the audited SIMD kernel in [`crate::bitslice`]), so a true
//! `write_volatile` wipe is unavailable; instead the buffer is zeroed and
//! then routed through [`core::hint::black_box`], which tells the
//! optimiser the zeroed bytes are observed and removes its licence to
//! elide the stores as dead writes. That is a *best-effort* hygiene
//! measure against accidental key reuse and heap-dump scraping, not a
//! hard guarantee against a determined local attacker.
//!
//! [`KeySchedule`](crate::KeySchedule) and
//! [`TtableAes`](crate::ttable::TtableAes) wipe themselves on drop using
//! these helpers, which also makes every cipher built on them
//! ([`Rijndael`](crate::Rijndael), [`Aes128`](crate::Aes128), ...)
//! self-wiping.

/// Zeroes a byte buffer and pins the stores with a `black_box` barrier.
pub fn wipe_bytes(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        *b = 0;
    }
    core::hint::black_box(buf);
}

/// Zeroes a buffer of 32-bit words (round keys, expanded schedules) and
/// pins the stores with a `black_box` barrier.
pub fn wipe_words(buf: &mut [u32]) {
    for w in buf.iter_mut() {
        *w = 0;
    }
    core::hint::black_box(buf);
}

/// Zeroes a buffer of 64-bit words (the bitsliced backend's broadcast
/// round-key masks) and pins the stores with a `black_box` barrier.
pub fn wipe_words64(buf: &mut [u64]) {
    for w in buf.iter_mut() {
        *w = 0;
    }
    core::hint::black_box(buf);
}

/// Zeroes a buffer of 128-bit words (the GHASH subkey table in
/// [`crate::gf128`]) and pins the stores with a `black_box` barrier.
pub fn wipe_u128(buf: &mut [u128]) {
    for w in buf.iter_mut() {
        *w = 0;
    }
    core::hint::black_box(buf);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wipe_bytes_clears_everything() {
        let mut buf = [0xA5u8; 32];
        wipe_bytes(&mut buf);
        assert_eq!(buf, [0u8; 32]);
    }

    #[test]
    fn wipe_words_clears_everything() {
        let mut buf = vec![0xDEAD_BEEFu32; 44];
        wipe_words(&mut buf);
        assert!(buf.iter().all(|&w| w == 0));
    }

    #[test]
    fn wipe_words64_clears_everything() {
        let mut buf = vec![0xDEAD_BEEF_CAFE_F00Du64; 19];
        wipe_words64(&mut buf);
        assert!(buf.iter().all(|&w| w == 0));
    }

    #[test]
    fn wipe_u128_clears_everything() {
        let mut buf = vec![0xDEAD_BEEF_CAFE_F00D_0123_4567_89AB_CDEFu128; 16];
        wipe_u128(&mut buf);
        assert!(buf.iter().all(|&w| w == 0));
    }

    // FIPS-197 Appendix C.1.
    const KEY: [u8; 16] = [
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E,
        0x0F,
    ];
    const PT: [u8; 16] = [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE,
        0xFF,
    ];
    const CT: [u8; 16] = [
        0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4, 0xC5,
        0x5A,
    ];

    #[test]
    fn rekeying_after_drop_yields_a_fresh_correct_cipher() {
        // The on-drop wipe must clear only the dropped schedule — never
        // shared tables or anything a later expansion depends on.
        let first = crate::Aes128::new(&KEY);
        assert_eq!(first.encrypt_block(&PT), CT);
        drop(first);
        let second = crate::Aes128::new(&KEY);
        assert_eq!(second.encrypt_block(&PT), CT);
        assert_eq!(second.decrypt_block(&CT), PT);
    }

    #[test]
    fn ttable_rekeying_after_drop_yields_a_fresh_correct_cipher() {
        let first = crate::ttable::TtableAes::new(&KEY).unwrap();
        let mut block = PT;
        first.encrypt_block(&mut block);
        assert_eq!(block, CT);
        drop(first);
        let second = crate::ttable::TtableAes::new(&KEY).unwrap();
        let mut block = PT;
        second.encrypt_block(&mut block);
        assert_eq!(block, CT);
        second.decrypt_block(&mut block);
        assert_eq!(block, PT);
    }

    #[test]
    fn dropping_a_clone_leaves_the_original_usable() {
        // Drop runs per-instance: wiping a clone's buffers must not
        // corrupt the original's independent allocation.
        let original = crate::Aes128::new(&KEY);
        drop(original.clone());
        assert_eq!(original.encrypt_block(&PT), CT);
    }
}

//! Authenticated encryption and disk/key-protection modes: AES-GCM
//! (NIST SP 800-38D), XTS-AES (IEEE 1619), and AES Key Wrap (RFC 3394 /
//! NIST SP 800-38F).
//!
//! The service's raw block modes leave integrity to the caller; this
//! module is the crate's authenticated layer, built from the same
//! primitives the rest of the stack already dispatches over:
//!
//! * **GCM** — CTR keystream with the SP 800-38D `inc32` counter
//!   (only the low 32 bits of the counter block increment, unlike the
//!   full-block add of [`crate::modes::Ctr`]), batched through
//!   [`BatchCipher::encrypt_blocks`] in 64-block spans so the
//!   bitsliced/AES-NI wide kernels — the same ones behind the engine's
//!   `Backend::process_batch` — do the bulk work; GHASH over AAD and
//!   ciphertext via [`crate::ghash`] (PCLMULQDQ or 4-bit table, a
//!   runtime decision). Nonces are **96-bit only**, enforced by type:
//!   SP 800-38D's non-96-bit nonce path (GHASH over the IV) is easy to
//!   misuse and deliberately unsupported.
//! * **XTS** — the sector-tweakable mode for disk workloads: per-sector
//!   tweak `E_K2(sector)`, per-block multiplication by α in the
//!   little-endian XTS convention, ciphertext stealing for ragged
//!   sectors. Not authenticated — it detects nothing, it only binds
//!   ciphertext to its sector.
//! * **Key wrap** — RFC 3394's 6·n-round shuffle with the `A6A6...`
//!   integrity check value, for moving session keys between nodes (the
//!   roadmap's cluster mode); [`Error::TagMismatch`] on any corruption.
//!
//! Tag and ICV comparisons reuse [`crate::cmac::ct_eq`] — one
//! constant-time comparison path for the whole crate. Hash subkeys and
//! derived tweaks are wiped via [`crate::zeroize`].
//!
//! Per-mode telemetry lands next to the classic modes:
//! `rijndael.mode.{gcm,xts,kw}.{blocks,bytes}`.

use crate::cipher::{BatchCipher, BlockCipher};
use crate::cmac::ct_eq;
use crate::ghash::{Ghash, GhashImpl};
use crate::modes::stats;
use crate::zeroize::wipe_bytes;

/// GCM tag length in bytes (full-length tags only; truncated tags
/// weaken GCM disproportionately and are not offered).
pub const TAG_LEN: usize = 16;

/// GCM nonce length in bytes (96-bit nonces only; see the module docs).
pub const NONCE_LEN: usize = 12;

/// Blocks per keystream batch: one bitsliced wide pass
/// ([`crate::bitslice::WIDE`]), which also keeps AES-NI's 8-block
/// interleave saturated.
const KEYSTREAM_BATCH: usize = 64;

/// Typed failures of the authenticated layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The authentication tag (GCM) or integrity check value (key wrap)
    /// did not verify. No plaintext is ever returned alongside this.
    TagMismatch,
    /// A sealed GCM message shorter than one tag.
    Truncated {
        /// Actual length supplied.
        len: usize,
    },
    /// An XTS sector shorter than one cipher block (IEEE 1619 requires
    /// at least 128 bits per data unit).
    SectorTooShort {
        /// Actual length supplied.
        len: usize,
    },
    /// A key-wrap payload that is not a whole number of 64-bit
    /// semiblocks, or has too few of them (RFC 3394 needs n ≥ 2 to
    /// wrap, n ≥ 3 to unwrap).
    BadWrapLength {
        /// Actual length supplied.
        len: usize,
    },
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::TagMismatch => write!(f, "authentication tag mismatch"),
            Error::Truncated { len } => {
                write!(f, "sealed message of {len} bytes is shorter than one tag")
            }
            Error::SectorTooShort { len } => {
                write!(f, "XTS sector of {len} bytes is shorter than one block")
            }
            Error::BadWrapLength { len } => {
                write!(f, "key-wrap payload of {len} bytes is not valid")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Object-safe authenticated-encryption surface, the AEAD sibling of
/// [`crate::modes::Mode`]: seal produces `ciphertext || tag`, open
/// verifies before returning plaintext.
pub trait Aead {
    /// Stable mode name (telemetry, service opcode tables).
    fn name(&self) -> &'static str;

    /// Tag bytes appended by [`Self::seal`].
    fn tag_len(&self) -> usize {
        TAG_LEN
    }

    /// Encrypts `plaintext` bound to `aad`, returning
    /// `ciphertext || tag`. Never reuse a `(key, nonce)` pair.
    fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8>;

    /// Verifies and decrypts `sealed` (`ciphertext || tag`). Returns
    /// [`Error::TagMismatch`] without any plaintext on corruption of
    /// ciphertext, tag, AAD, or nonce.
    fn open(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, Error>;
}

/// AES-GCM over any block cipher that batches (SP 800-38D).
///
/// The hash subkey `H = E_K(0)` is derived once at construction and
/// lives only inside the [`Ghash`] template, which wipes it on drop.
///
/// # Examples
///
/// ```
/// use rijndael::aead::{Aead, Gcm};
/// use rijndael::Aes256;
///
/// let gcm = Gcm::new(Aes256::new(&[0u8; 32]));
/// let sealed = gcm.seal(&[0u8; 12], b"header", b"payload");
/// assert_eq!(gcm.open(&[0u8; 12], b"header", &sealed).unwrap(), b"payload");
/// assert!(gcm.open(&[0u8; 12], b"tampered", &sealed).is_err());
/// ```
pub struct Gcm<C> {
    cipher: C,
    /// Zero-state GHASH keyed with `H`; cloned per message.
    ghash: Ghash,
}

impl<C: BlockCipher + BatchCipher> Gcm<C> {
    /// Wraps `cipher`, deriving the hash subkey `H = E_K(0^128)`.
    #[must_use]
    pub fn new(cipher: C) -> Self {
        Self::with_ghash_impl(cipher, GhashImpl::detect())
    }

    /// Like [`Self::new`] but pins the GHASH multiplier core (bench and
    /// test sweeps; see [`Ghash::with_impl`] for the panic contract).
    #[must_use]
    pub fn with_ghash_impl(cipher: C, which: GhashImpl) -> Self {
        let mut h = [0u8; 16];
        cipher.encrypt_in_place(&mut h);
        let ghash = Ghash::with_impl(&h, which);
        wipe_bytes(&mut h);
        Gcm { cipher, ghash }
    }

    /// The GHASH multiplier core this instance runs.
    #[must_use]
    pub fn ghash_impl(&self) -> GhashImpl {
        self.ghash.implementation()
    }

    /// The pre-counter block `J0 = nonce || 0^31 || 1` for a 96-bit
    /// nonce.
    fn j0(nonce: &[u8; NONCE_LEN]) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[..NONCE_LEN].copy_from_slice(nonce);
        block[15] = 1;
        block
    }

    /// XORs the GCTR keystream starting at counter value `ctr` of `j0`
    /// into `data`, batching [`KEYSTREAM_BATCH`] counter blocks per
    /// [`BatchCipher::encrypt_blocks`] pass. The counter uses SP
    /// 800-38D `inc32`: only the low 32 bits increment (and wrap).
    fn ctr_xor(&self, j0: &[u8; 16], mut ctr: u32, data: &mut [u8]) {
        let mut batch = [[0u8; 16]; KEYSTREAM_BATCH];
        for span in data.chunks_mut(16 * KEYSTREAM_BATCH) {
            let n = span.len().div_ceil(16);
            for block in &mut batch[..n] {
                block.copy_from_slice(j0);
                block[12..].copy_from_slice(&ctr.to_be_bytes());
                ctr = ctr.wrapping_add(1);
            }
            self.cipher.encrypt_blocks(&mut batch[..n]);
            for (chunk, keystream) in span.chunks_mut(16).zip(&batch) {
                for (byte, k) in chunk.iter_mut().zip(keystream) {
                    *byte ^= k;
                }
            }
        }
        // Keystream blocks are as secret as the key while unconsumed.
        wipe_bytes(batch.as_flattened_mut());
    }

    /// `GHASH(AAD || pad, C || pad, len(AAD) || len(C))`, then masked
    /// with `E_K(J0)` — the full-length tag.
    fn tag(&self, j0: &[u8; 16], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
        let mut ghash = self.ghash.clone();
        ghash.update_padded(aad);
        ghash.update_padded(ciphertext);
        let mut lengths = [0u8; 16];
        lengths[..8].copy_from_slice(&(aad.len() as u64 * 8).to_be_bytes());
        lengths[8..].copy_from_slice(&(ciphertext.len() as u64 * 8).to_be_bytes());
        ghash.update(&lengths);
        let mut tag = ghash.finalize();
        let mut mask = *j0;
        self.cipher.encrypt_in_place(&mut mask);
        for (t, m) in tag.iter_mut().zip(&mask) {
            *t ^= m;
        }
        wipe_bytes(&mut mask);
        tag
    }
}

impl<C: BlockCipher + BatchCipher> Aead for Gcm<C> {
    fn name(&self) -> &'static str {
        "gcm"
    }

    fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        stats::gcm().record(plaintext.len(), 16);
        let j0 = Self::j0(nonce);
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        // Data blocks start at inc32(J0), i.e. counter value 2.
        self.ctr_xor(&j0, 2, &mut out);
        let tag = self.tag(&j0, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    fn open(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, Error> {
        let Some(split) = sealed.len().checked_sub(TAG_LEN) else {
            return Err(Error::Truncated { len: sealed.len() });
        };
        let (ciphertext, tag) = sealed.split_at(split);
        stats::gcm().record(ciphertext.len(), 16);
        let j0 = Self::j0(nonce);
        // Verify first — the keystream is never spent on a forgery.
        let expect = self.tag(&j0, aad, ciphertext);
        if !ct_eq(&expect, tag) {
            return Err(Error::TagMismatch);
        }
        let mut out = ciphertext.to_vec();
        self.ctr_xor(&j0, 2, &mut out);
        Ok(out)
    }
}

impl<C: core::fmt::Debug> core::fmt::Debug for Gcm<C> {
    /// Never prints key material (delegates to the cipher's own
    /// key-free `Debug`).
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Gcm {{ cipher: {:?}, ghash: {} }}",
            self.cipher,
            self.ghash.implementation().name()
        )
    }
}

/// XTS-AES for sector-addressed storage (IEEE 1619).
///
/// Two independent keys: `data` encrypts blocks, `tweak` encrypts the
/// sector number into the starting tweak. Both cipher instances wipe
/// their schedules on drop, which is what "zeroize the tweak key" means
/// in this crate's ownership model. Sectors must be at least one block
/// (16 bytes); ragged lengths use ciphertext stealing, so output length
/// always equals input length.
///
/// # Examples
///
/// ```
/// use rijndael::aead::Xts;
/// use rijndael::Aes128;
///
/// let xts = Xts::new(Aes128::new(&[1u8; 16]), Aes128::new(&[2u8; 16]));
/// let mut sector = *b"sector payload of 20";
/// xts.encrypt_sector(7, &mut sector).unwrap();
/// xts.decrypt_sector(7, &mut sector).unwrap();
/// assert_eq!(&sector, b"sector payload of 20");
/// ```
pub struct Xts<C> {
    data: C,
    tweak: C,
}

/// Multiplies an XTS tweak by α: left shift in the little-endian XTS
/// convention, reducing with 0x87 on overflow (IEEE 1619 §5.2).
fn mul_alpha(t: &mut [u8; 16]) {
    let mut carry = 0u8;
    for byte in t.iter_mut() {
        let next = *byte >> 7;
        *byte = (*byte << 1) | carry;
        carry = next;
    }
    // Branch-free reduction: 0x87 or 0x00.
    t[0] ^= 0x87 * carry;
}

impl<C: BlockCipher + BatchCipher> Xts<C> {
    /// Pairs the data-path cipher with the tweak cipher (two
    /// independently keyed instances of the same variant).
    #[must_use]
    pub fn new(data: C, tweak: C) -> Self {
        Xts { data, tweak }
    }

    /// The starting tweak of `sector`: `E_K2(sector as 128-bit LE)`.
    fn sector_tweak(&self, sector: u64) -> [u8; 16] {
        let mut t = [0u8; 16];
        t[..8].copy_from_slice(&sector.to_le_bytes());
        self.tweak.encrypt_in_place(&mut t);
        t
    }

    /// Encrypts one sector in place. `data.len()` must be ≥ 16; a
    /// non-multiple of 16 engages ciphertext stealing.
    ///
    /// # Errors
    ///
    /// [`Error::SectorTooShort`] when the sector is under one block.
    pub fn encrypt_sector(&self, sector: u64, data: &mut [u8]) -> Result<(), Error> {
        self.process_sector(sector, data, false)
    }

    /// Decrypts one sector in place (inverse of
    /// [`Self::encrypt_sector`]).
    ///
    /// # Errors
    ///
    /// [`Error::SectorTooShort`] when the sector is under one block.
    pub fn decrypt_sector(&self, sector: u64, data: &mut [u8]) -> Result<(), Error> {
        self.process_sector(sector, data, true)
    }

    fn process_sector(&self, sector: u64, data: &mut [u8], decrypt: bool) -> Result<(), Error> {
        if data.len() < 16 {
            return Err(Error::SectorTooShort { len: data.len() });
        }
        stats::xts().record(data.len(), 16);
        let full = data.len() / 16;
        let tail = data.len() % 16;
        // Bulk prefix: every block that is NOT involved in ciphertext
        // stealing. With a ragged tail the last full block joins the
        // stealing dance, so the prefix shrinks by one.
        let bulk = if tail == 0 { full } else { full - 1 };

        let mut t = self.sector_tweak(sector);
        let mut tweaks = vec![[0u8; 16]; bulk];
        for slot in tweaks.iter_mut() {
            *slot = t;
            mul_alpha(&mut t);
        }
        // t is now T_bulk, the first stealing tweak.

        let (blocks, _) = data.as_chunks_mut::<16>();
        let span = &mut blocks[..bulk];
        for (block, tw) in span.iter_mut().zip(&tweaks) {
            for (b, k) in block.iter_mut().zip(tw) {
                *b ^= k;
            }
        }
        if decrypt {
            self.data.decrypt_blocks(span);
        } else {
            self.data.encrypt_blocks(span);
        }
        for (block, tw) in span.iter_mut().zip(&tweaks) {
            for (b, k) in block.iter_mut().zip(tw) {
                *b ^= k;
            }
        }
        wipe_bytes(tweaks.as_flattened_mut());

        if tail != 0 {
            self.steal(data, t, decrypt);
        }
        wipe_bytes(&mut t);
        Ok(())
    }

    /// Ciphertext stealing over the last full block and the `tail`
    /// partial block (IEEE 1619 §5.3.2/§5.4.2). `t` is the tweak of the
    /// last full block; encryption uses `(t, t·α)` in that order,
    /// decryption swaps them.
    fn steal(&self, data: &mut [u8], t: [u8; 16], decrypt: bool) {
        let tail = data.len() % 16;
        let split = data.len() - tail - 16;
        let mut t2 = t;
        mul_alpha(&mut t2);
        let (first_t, second_t) = if decrypt { (t2, t) } else { (t, t2) };

        let one_block = |block: &mut [u8; 16], tw: &[u8; 16]| {
            for (b, k) in block.iter_mut().zip(tw) {
                *b ^= k;
            }
            if decrypt {
                self.data.decrypt_in_place(block);
            } else {
                self.data.encrypt_in_place(block);
            }
            for (b, k) in block.iter_mut().zip(tw) {
                *b ^= k;
            }
        };

        // CC = cipher(P_{m-1}, T_first): full output of the last full
        // input block.
        let mut cc: [u8; 16] = data[split..split + 16].try_into().expect("16-byte slice");
        one_block(&mut cc, &first_t);
        // The stolen suffix of CC completes the partial block; CC's
        // prefix becomes the final partial output.
        let mut pp = [0u8; 16];
        pp[..tail].copy_from_slice(&data[split + 16..]);
        pp[tail..].copy_from_slice(&cc[tail..]);
        one_block(&mut pp, &second_t);
        data[split..split + 16].copy_from_slice(&pp);
        data[split + 16..].copy_from_slice(&cc[..tail]);
        wipe_bytes(&mut cc);
        wipe_bytes(&mut pp);
    }
}

impl<C: core::fmt::Debug> core::fmt::Debug for Xts<C> {
    /// Never prints key material.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Xts {{ data: {:?}, tweak: {:?} }}",
            self.data, self.tweak
        )
    }
}

/// The RFC 3394 integrity check value.
const KW_IV: [u8; 8] = [0xA6; 8];

/// Wraps `key_data` (n ≥ 2 whole 64-bit semiblocks) under `kek`,
/// returning `8 + key_data.len()` bytes (RFC 3394 §2.2.1, the 6·n-step
/// index-mixed shuffle).
///
/// # Errors
///
/// [`Error::BadWrapLength`] when `key_data` is not 16/24/32/... bytes.
pub fn wrap<C: BlockCipher>(kek: &C, key_data: &[u8]) -> Result<Vec<u8>, Error> {
    if key_data.len() < 16 || !key_data.len().is_multiple_of(8) {
        return Err(Error::BadWrapLength {
            len: key_data.len(),
        });
    }
    stats::kw().record(key_data.len(), 8);
    let n = key_data.len() / 8;
    let mut a = KW_IV;
    let mut r = key_data.to_vec();
    let mut block = [0u8; 16];
    for j in 0..6u64 {
        for i in 0..n {
            block[..8].copy_from_slice(&a);
            block[8..].copy_from_slice(&r[8 * i..8 * i + 8]);
            kek.encrypt_in_place(&mut block);
            let t = (n as u64) * j + (i as u64) + 1;
            a.copy_from_slice(&block[..8]);
            for (byte, tb) in a.iter_mut().zip(t.to_be_bytes()) {
                *byte ^= tb;
            }
            r[8 * i..8 * i + 8].copy_from_slice(&block[8..]);
        }
    }
    wipe_bytes(&mut block);
    let mut out = Vec::with_capacity(8 + r.len());
    out.extend_from_slice(&a);
    out.append(&mut r);
    Ok(out)
}

/// Unwraps RFC 3394 `wrapped` data (n ≥ 3 semiblocks) under `kek`,
/// verifying the integrity check value through [`crate::cmac::ct_eq`].
///
/// # Errors
///
/// [`Error::BadWrapLength`] on a malformed length;
/// [`Error::TagMismatch`] when the integrity check fails (wrong KEK or
/// corrupted data) — no key material is returned.
pub fn unwrap<C: BlockCipher>(kek: &C, wrapped: &[u8]) -> Result<Vec<u8>, Error> {
    if wrapped.len() < 24 || !wrapped.len().is_multiple_of(8) {
        return Err(Error::BadWrapLength { len: wrapped.len() });
    }
    stats::kw().record(wrapped.len() - 8, 8);
    let n = wrapped.len() / 8 - 1;
    let mut a: [u8; 8] = wrapped[..8].try_into().expect("8-byte slice");
    let mut r = wrapped[8..].to_vec();
    let mut block = [0u8; 16];
    for j in (0..6u64).rev() {
        for i in (0..n).rev() {
            let t = (n as u64) * j + (i as u64) + 1;
            block[..8].copy_from_slice(&a);
            for (byte, tb) in block[..8].iter_mut().zip(t.to_be_bytes()) {
                *byte ^= tb;
            }
            block[8..].copy_from_slice(&r[8 * i..8 * i + 8]);
            kek.decrypt_in_place(&mut block);
            a.copy_from_slice(&block[..8]);
            r[8 * i..8 * i + 8].copy_from_slice(&block[8..]);
        }
    }
    wipe_bytes(&mut block);
    if !ct_eq(&a, &KW_IV) {
        wipe_bytes(&mut r);
        return Err(Error::TagMismatch);
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aes128, Aes192, Aes256};

    #[test]
    fn gcm_empty_plaintext_empty_aad_roundtrips() {
        let gcm = Gcm::new(Aes128::new(&[0u8; 16]));
        let sealed = gcm.seal(&[0u8; 12], b"", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(gcm.open(&[0u8; 12], b"", &sealed).unwrap(), b"");
    }

    #[test]
    fn gcm_roundtrips_across_lengths_and_key_sizes() {
        let nonce = [7u8; 12];
        let aad = b"associated data";
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 1024, 1039] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let g128 = Gcm::new(Aes128::new(&[0x11; 16]));
            let g192 = Gcm::new(Aes192::new(&[0x22; 24]));
            let g256 = Gcm::new(Aes256::new(&[0x33; 32]));
            for (name, gcm) in [
                ("128", &g128 as &dyn Aead),
                ("192", &g192 as &dyn Aead),
                ("256", &g256 as &dyn Aead),
            ] {
                let sealed = gcm.seal(&nonce, aad, &pt);
                assert_eq!(sealed.len(), len + TAG_LEN, "aes-{name} len {len}");
                let opened = gcm.open(&nonce, aad, &sealed).unwrap();
                assert_eq!(opened, pt, "aes-{name} len {len}");
            }
        }
    }

    #[test]
    fn gcm_open_rejects_every_single_bit_flip_of_the_tag() {
        // The all-bit-flip sweep of cmac::verify, applied to GCM: no
        // bit of the constant-time comparison may be ignored.
        let gcm = Gcm::new(Aes128::new(&[0x42; 16]));
        let nonce = [9u8; 12];
        let sealed = gcm.seal(&nonce, b"aad", b"sixteen byte msg");
        assert!(gcm.open(&nonce, b"aad", &sealed).is_ok());
        let tag_start = sealed.len() - TAG_LEN;
        for byte in tag_start..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.clone();
                bad[byte] ^= 1 << bit;
                assert_eq!(
                    gcm.open(&nonce, b"aad", &bad),
                    Err(Error::TagMismatch),
                    "accepted tag corrupted at byte {byte} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn gcm_open_rejects_flipped_ciphertext_aad_and_nonce() {
        let gcm = Gcm::new(Aes256::new(&[0x5A; 32]));
        let nonce = [1u8; 12];
        let sealed = gcm.seal(&nonce, b"aad", b"some longer plaintext payload");
        let mut bad = sealed.clone();
        bad[0] ^= 0x80;
        assert_eq!(gcm.open(&nonce, b"aad", &bad), Err(Error::TagMismatch));
        assert_eq!(gcm.open(&nonce, b"axd", &sealed), Err(Error::TagMismatch));
        let mut other_nonce = nonce;
        other_nonce[11] ^= 1;
        assert_eq!(
            gcm.open(&other_nonce, b"aad", &sealed),
            Err(Error::TagMismatch)
        );
        assert_eq!(
            gcm.open(&nonce, b"aad", &sealed[..TAG_LEN - 1]),
            Err(Error::Truncated { len: TAG_LEN - 1 })
        );
    }

    #[test]
    fn gcm_counter_wraps_inc32_not_the_full_block() {
        // A nonce whose derived counter starts near 2^32 forces the low
        // 32 bits to wrap; the full-block add of modes::Ctr would carry
        // into the nonce bytes and diverge. The KAT cross-check against
        // a one-block-at-a-time reference pins the inc32 behavior.
        let cipher = Aes128::new(&[0xC4; 16]);
        let gcm = Gcm::new(Aes128::new(&[0xC4; 16]));
        let nonce = [0xFF; 12];
        let pt = vec![0xA5u8; 160];
        let sealed = gcm.seal(&nonce, b"", &pt);

        // Reference: E(nonce || ctr) one block at a time, ctr from 2.
        let mut expect = pt.clone();
        for (i, chunk) in expect.chunks_mut(16).enumerate() {
            let mut block = [0xFFu8; 16];
            block[12..].copy_from_slice(&(2u32.wrapping_add(i as u32)).to_be_bytes());
            let k = cipher.encrypt_block(&block);
            for (b, kb) in chunk.iter_mut().zip(&k) {
                *b ^= kb;
            }
        }
        assert_eq!(&sealed[..160], &expect[..]);
    }

    #[test]
    fn gcm_both_ghash_cores_interoperate() {
        let seal_side = Gcm::with_ghash_impl(Aes128::new(&[0x77; 16]), GhashImpl::Portable);
        let nonce = [3u8; 12];
        let sealed = seal_side.seal(&nonce, b"hdr", b"cross-core payload");
        for which in [GhashImpl::Pclmul, GhashImpl::Portable] {
            if !which.available() {
                continue;
            }
            let open_side = Gcm::with_ghash_impl(Aes128::new(&[0x77; 16]), which);
            assert_eq!(
                open_side.open(&nonce, b"hdr", &sealed).unwrap(),
                b"cross-core payload",
                "impl {}",
                which.name()
            );
        }
    }

    #[test]
    fn xts_roundtrips_whole_and_ragged_sectors() {
        let xts = Xts::new(Aes128::new(&[0x01; 16]), Aes128::new(&[0x02; 16]));
        for len in [16usize, 17, 31, 32, 33, 512, 520, 4096] {
            let original: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let mut sector = original.clone();
            xts.encrypt_sector(42, &mut sector).unwrap();
            assert_ne!(sector, original, "len {len}");
            xts.decrypt_sector(42, &mut sector).unwrap();
            assert_eq!(sector, original, "len {len}");
        }
    }

    #[test]
    fn xts_binds_ciphertext_to_its_sector() {
        let xts = Xts::new(Aes256::new(&[0x0A; 32]), Aes256::new(&[0x0B; 32]));
        let mut a = vec![0x5Au8; 512];
        let mut b = vec![0x5Au8; 512];
        xts.encrypt_sector(1, &mut a).unwrap();
        xts.encrypt_sector(2, &mut b).unwrap();
        assert_ne!(a, b, "identical sectors must encrypt differently");
        // Decrypting under the wrong sector yields garbage, not the
        // original.
        xts.decrypt_sector(2, &mut a).unwrap();
        assert_ne!(a, vec![0x5Au8; 512]);
    }

    #[test]
    fn xts_rejects_sub_block_sectors() {
        let xts = Xts::new(Aes128::new(&[0x01; 16]), Aes128::new(&[0x02; 16]));
        let mut short = [0u8; 15];
        assert_eq!(
            xts.encrypt_sector(0, &mut short),
            Err(Error::SectorTooShort { len: 15 })
        );
        assert_eq!(
            xts.decrypt_sector(0, &mut short),
            Err(Error::SectorTooShort { len: 15 })
        );
    }

    #[test]
    fn mul_alpha_matches_the_doubling_identity() {
        // α in the XTS little-endian convention equals the CMAC dbl()
        // constant read in the opposite byte order; doubling [1, 0...]
        // must give [2, 0...] and shift a top bit into the reduction.
        let mut t = [0u8; 16];
        t[0] = 1;
        mul_alpha(&mut t);
        assert_eq!(t[0], 2);
        let mut top = [0u8; 16];
        top[15] = 0x80;
        mul_alpha(&mut top);
        assert_eq!(top[0], 0x87);
        assert_eq!(top[15], 0x00);
    }

    #[test]
    fn key_wrap_roundtrips_and_rejects_corruption() {
        let kek = Aes256::new(&[0x37; 32]);
        for len in [16usize, 24, 32, 40] {
            let key: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let wrapped = wrap(&kek, &key).unwrap();
            assert_eq!(wrapped.len(), len + 8);
            assert_eq!(unwrap(&kek, &wrapped).unwrap(), key, "len {len}");
            for byte in 0..wrapped.len() {
                let mut bad = wrapped.clone();
                bad[byte] ^= 0x01;
                assert_eq!(
                    unwrap(&kek, &bad),
                    Err(Error::TagMismatch),
                    "len {len} byte {byte}"
                );
            }
        }
    }

    #[test]
    fn key_wrap_rejects_bad_lengths() {
        let kek = Aes128::new(&[0u8; 16]);
        assert_eq!(wrap(&kek, &[0u8; 8]), Err(Error::BadWrapLength { len: 8 }));
        assert_eq!(
            wrap(&kek, &[0u8; 17]),
            Err(Error::BadWrapLength { len: 17 })
        );
        assert_eq!(
            unwrap(&kek, &[0u8; 16]),
            Err(Error::BadWrapLength { len: 16 })
        );
        assert_eq!(
            unwrap(&kek, &[0u8; 25]),
            Err(Error::BadWrapLength { len: 25 })
        );
    }

    #[test]
    fn wrong_kek_fails_the_integrity_check() {
        let kek = Aes128::new(&[0x01; 16]);
        let other = Aes128::new(&[0x02; 16]);
        let wrapped = wrap(&kek, &[0xEE; 16]).unwrap();
        assert_eq!(unwrap(&other, &wrapped), Err(Error::TagMismatch));
    }
}

//! Constant-time bitsliced AES-128/192/256 processing many blocks per
//! pass.
//!
//! The table-driven implementations in this crate ([`crate::aes`],
//! [`crate::ttable`]) index lookup tables with secret bytes, which leaks
//! key material through cache timing on era-typical and modern CPUs
//! alike. This module takes the opposite approach, after Biham's
//! bitslicing construction: the cipher state of a whole *batch* of blocks
//! is transposed into **bit planes**, and every round transformation is
//! computed with pure XOR/AND/NOT word arithmetic — no secret-indexed
//! loads anywhere on the per-block path.
//!
//! # Bit-plane layout
//!
//! A batch of `8 × G` blocks becomes 32 plane words (8 bit positions × 4
//! state rows). Plane word `(b, r)` holds bit `b` of the four state bytes
//! of row `r`: its lane `c ∈ 0..4` covers state slot `j = r + 4c`
//! (FIPS-197 column-major order), and the `8 × G` bits inside a lane are
//! the blocks of the batch. Three widths share one generic core:
//!
//! * `u32` — 8-bit lanes, 8 blocks per pass: the [`Bitsliced8::encrypt8`]
//!   granule and ragged-tail fallback;
//! * `[u64; 4]` — 64-bit lanes, 64 blocks per pass: portable wide path;
//! * `__m256i` — the same 64-block pass in four AVX2 registers per plane,
//!   selected **at runtime** when [`crate::dispatch`] detects AVX2 (the
//!   binary itself stays portable baseline-x86_64). `ShiftRow` is one
//!   lane permute per row and `MixColumn`'s row rotations are free index
//!   renames, which is what makes the wide pass beat the T-table
//!   baseline by >2×.
//!
//! Which width drives the wide lane of a given cipher instance is a
//! [`WideLane`] value fixed at construction: [`Bitsliced8::new`] takes
//! the dispatch decision ([`WideLane::detect`]), and
//! [`Bitsliced8::with_lane`] pins one explicitly (the forced-backend
//! test sweeps use this).
//!
//! `ByteSub` evaluates the Boyar–Peralta 113-gate AES S-box circuit over
//! the eight planes of each row word; its inverse needs no second circuit
//! because `InvByteSub = A⁻¹ ∘ S ∘ A⁻¹` where `A` is the Rijndael affine
//! step, and `A⁻¹` is three plane XORs plus two NOTs.
//!
//! # Constant time
//!
//! Per-block processing is branch-free and index-free in secret data: the
//! pack/unpack transposes, the S-box circuit, and the linear layers touch
//! memory at addresses that depend only on batch length. Key *setup*
//! reuses the crate's [`KeySchedule`], which (like every backend here)
//! indexes the S-box table with key bytes once per re-key.
//!
//! Round keys are broadcast into per-bit lane masks and wiped on drop via
//! [`crate::zeroize::wipe_words64`].

// Bit-plane code is index arithmetic over fixed 4×8 state arrays; the
// loop-counter style mirrors the round-transform equations and is kept.
#![allow(clippy::needless_range_loop)]

use crate::cipher::BlockCipher;
use crate::key_schedule::KeySchedule;

/// Blocks per [`Bitsliced8::encrypt8`] granule.
pub const GRANULE: usize = 8;

/// Blocks per wide pass (AVX2 or portable `[u64; 4]`).
pub const WIDE: usize = 64;

/// One round's key broadcast to bit-plane masks: `rk[bit][row][lane]` is
/// all-ones when that key bit is set, all-zeroes otherwise. A schedule is
/// a slice of `rounds + 1` of these (11/13/15 for AES-128/192/256) — the
/// pass functions read the round count from the slice length.
type RkRound = [[[u64; 4]; 4]; 8];

/// One plane word: 4 lanes of `8 × GROUPS` block bits each. The round
/// core is written once against this trait; each width supplies only the
/// lane plumbing (broadcast, extract, lane rotation).
trait PlaneWord: Copy {
    /// 8-block groups per lane bit-run (1 → 8-block pass, 8 → 64-block).
    const GROUPS: usize;
    fn zero() -> Self;
    fn xor(self, other: Self) -> Self;
    fn and(self, other: Self) -> Self;
    fn not(self) -> Self;
    /// Lane rotation `out lane c = in lane (c + K) % 4`.
    fn rot_lanes<const K: u32>(self) -> Self;
    /// Packs four lane values (low `8 × GROUPS` bits each are used).
    fn from_lanes(lanes: [u64; 4]) -> Self;
    fn to_lanes(self) -> [u64; 4];
}

impl PlaneWord for u32 {
    const GROUPS: usize = 1;
    #[inline(always)]
    fn zero() -> Self {
        0
    }
    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
    #[inline(always)]
    fn and(self, other: Self) -> Self {
        self & other
    }
    #[inline(always)]
    fn not(self) -> Self {
        !self
    }
    #[inline(always)]
    fn rot_lanes<const K: u32>(self) -> Self {
        self.rotate_right(8 * K)
    }
    #[inline(always)]
    fn from_lanes(lanes: [u64; 4]) -> Self {
        (lanes[0] & 0xFF) as u32
            | (((lanes[1] & 0xFF) as u32) << 8)
            | (((lanes[2] & 0xFF) as u32) << 16)
            | (((lanes[3] & 0xFF) as u32) << 24)
    }
    #[inline(always)]
    fn to_lanes(self) -> [u64; 4] {
        [
            u64::from(self & 0xFF),
            u64::from((self >> 8) & 0xFF),
            u64::from((self >> 16) & 0xFF),
            u64::from((self >> 24) & 0xFF),
        ]
    }
}

/// Portable 64-block plane word: one `u64` per lane. When runtime
/// detection finds AVX2 the wide path uses [`simd::Avx2`] instead, but
/// this stays compiled everywhere as the [`WideLane::Portable`] plane —
/// the constant-time fallback on hosts without AVX2.
#[derive(Clone, Copy)]
struct Quad([u64; 4]);

impl PlaneWord for Quad {
    const GROUPS: usize = 8;
    // Every method is `#[inline(always)]` and closure-free so the whole
    // plane algebra flattens into the pass functions — see `xtimes`.
    #[inline(always)]
    fn zero() -> Self {
        Quad([0; 4])
    }
    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        let (a, b) = (self.0, other.0);
        Quad([a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]])
    }
    #[inline(always)]
    fn and(self, other: Self) -> Self {
        let (a, b) = (self.0, other.0);
        Quad([a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]])
    }
    #[inline(always)]
    fn not(self) -> Self {
        let a = self.0;
        Quad([!a[0], !a[1], !a[2], !a[3]])
    }
    #[inline(always)]
    fn rot_lanes<const K: u32>(self) -> Self {
        let a = self.0;
        let k = K as usize;
        Quad([a[k % 4], a[(1 + k) % 4], a[(2 + k) % 4], a[(3 + k) % 4]])
    }
    #[inline(always)]
    fn from_lanes(lanes: [u64; 4]) -> Self {
        Quad(lanes)
    }
    #[inline(always)]
    fn to_lanes(self) -> [u64; 4] {
        self.0
    }
}

/// One of the two `unsafe`-bearing modules of the crate (the other is
/// [`crate::aesni`]): value-only AVX2 intrinsics behind a **runtime**
/// feature gate.
///
/// Soundness argument: the only entry point is [`simd::run_wide`], which
/// asserts `is_x86_feature_detected!("avx2")` before entering the
/// `#[target_feature(enable = "avx2")]` pass functions, so every
/// intrinsic precondition holds on any CPU that reaches them — no
/// compile-time `target_feature` flags are involved, and the binary
/// stays a portable baseline-x86_64 artifact. All intrinsics used are
/// pure value operations (`xor`/`and`/`permute`/`set`/`extract`) — no
/// raw pointers, no aliasing, no transmutes — so no other safety
/// obligations exist. The round core is `#[inline(always)]` end to end,
/// so the whole generic pass monomorphizes *inside* the gated functions
/// and is compiled with AVX2 codegen.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use super::{PlaneWord, RkRound};
    use core::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_extract_epi64, _mm256_permute4x64_epi64,
        _mm256_set1_epi64x, _mm256_set_epi64x, _mm256_setzero_si256, _mm256_xor_si256,
    };

    /// 64-block plane word held in one AVX2 register (lane = 64 blocks/4).
    #[derive(Clone, Copy)]
    pub(super) struct Avx2(__m256i);

    impl PlaneWord for Avx2 {
        const GROUPS: usize = 8;
        #[inline(always)]
        fn zero() -> Self {
            // SAFETY: value-only intrinsic; reached only through
            // `run_wide`, which verified AVX2 at runtime.
            Avx2(unsafe { _mm256_setzero_si256() })
        }
        #[inline(always)]
        fn xor(self, other: Self) -> Self {
            // SAFETY: as above.
            Avx2(unsafe { _mm256_xor_si256(self.0, other.0) })
        }
        #[inline(always)]
        fn and(self, other: Self) -> Self {
            // SAFETY: as above.
            Avx2(unsafe { _mm256_and_si256(self.0, other.0) })
        }
        #[inline(always)]
        fn not(self) -> Self {
            // SAFETY: as above.
            Avx2(unsafe { _mm256_xor_si256(self.0, _mm256_set1_epi64x(-1)) })
        }
        #[inline(always)]
        fn rot_lanes<const K: u32>(self) -> Self {
            // SAFETY: as above; the immediate selects lane (c + K) % 4.
            Avx2(unsafe {
                match K {
                    1 => _mm256_permute4x64_epi64(self.0, 0x39),
                    2 => _mm256_permute4x64_epi64(self.0, 0x4E),
                    3 => _mm256_permute4x64_epi64(self.0, 0x93),
                    _ => self.0,
                }
            })
        }
        #[inline(always)]
        fn from_lanes(lanes: [u64; 4]) -> Self {
            // SAFETY: as above.
            Avx2(unsafe {
                _mm256_set_epi64x(
                    lanes[3] as i64,
                    lanes[2] as i64,
                    lanes[1] as i64,
                    lanes[0] as i64,
                )
            })
        }
        #[inline(always)]
        fn to_lanes(self) -> [u64; 4] {
            // SAFETY: as above.
            unsafe {
                [
                    _mm256_extract_epi64(self.0, 0) as u64,
                    _mm256_extract_epi64(self.0, 1) as u64,
                    _mm256_extract_epi64(self.0, 2) as u64,
                    _mm256_extract_epi64(self.0, 3) as u64,
                ]
            }
        }
    }

    /// The AVX2 instantiation of the encrypt pass, compiled with the
    /// feature enabled so the `#[inline(always)]` round core vectorises.
    /// Takes *all* the 64-block chunks of a batch so the chunk loop
    /// itself lives inside the gated region — one feature-gate crossing
    /// (and one `vzeroupper`) per batch instead of per chunk, and the
    /// round-key plane loads optimise across chunks.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (checked by [`run_wide`]).
    #[target_feature(enable = "avx2")]
    unsafe fn encrypt_wide_avx2(rk: &[RkRound], chunks: &mut [[[u8; 16]; super::WIDE]]) {
        for chunk in chunks {
            super::encrypt_pass::<Avx2>(rk, chunk);
        }
    }

    /// The AVX2 instantiation of the decrypt pass (see
    /// [`encrypt_wide_avx2`]).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (checked by [`run_wide`]).
    #[target_feature(enable = "avx2")]
    unsafe fn decrypt_wide_avx2(rk: &[RkRound], chunks: &mut [[[u8; 16]; super::WIDE]]) {
        for chunk in chunks {
            super::decrypt_pass::<Avx2>(rk, chunk);
        }
    }

    /// Runs every 64-block AVX2 pass of a batch. Safe because it
    /// re-checks the cached runtime probe before entering the gated
    /// functions — constructing an AVX2-lane [`super::Bitsliced8`]
    /// already verified it, so the assert never fires in practice.
    pub(super) fn run_wide(rk: &[RkRound], chunks: &mut [[[u8; 16]; super::WIDE]], decrypt: bool) {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "AVX2 lane invoked on a CPU without AVX2"
        );
        // SAFETY: the runtime probe above confirmed AVX2 on this CPU.
        unsafe {
            if decrypt {
                decrypt_wide_avx2(rk, chunks);
            } else {
                encrypt_wide_avx2(rk, chunks);
            }
        }
    }
}

/// Which plane implementation drives the 64-block wide lane of a
/// [`Bitsliced8`] instance — a **runtime** decision, not a compile-time
/// one (see [`crate::dispatch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WideLane {
    /// Four AVX2 registers per plane ([`simd::Avx2`]); requires the
    /// runtime probe to find AVX2.
    Avx2,
    /// The portable `[u64; 4]` plane; available everywhere.
    Portable,
    /// No wide pass at all: every batch runs 8-block `u32` granules.
    /// Exists for forced sweeps and as a measurement baseline.
    Narrow,
}

impl WideLane {
    /// The stable lane name reported in telemetry
    /// (`rijndael.bitslice.lane.wide.kind.<name>`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WideLane::Avx2 => "avx2",
            WideLane::Portable => "quad",
            WideLane::Narrow => "narrow",
        }
    }

    /// `true` when this CPU can run the lane.
    #[must_use]
    pub fn available(self) -> bool {
        match self {
            WideLane::Avx2 => cfg!(target_arch = "x86_64") && crate::dispatch::cpu().avx2,
            WideLane::Portable | WideLane::Narrow => true,
        }
    }

    /// The dispatch decision for this process: a bitsliced
    /// [`crate::dispatch::forced`] override wins, otherwise AVX2 when the
    /// runtime probe finds it, otherwise the portable plane.
    #[must_use]
    pub fn detect() -> WideLane {
        use crate::dispatch::Kind;
        match crate::dispatch::forced() {
            Some(Kind::BitslicedWide) => WideLane::Avx2,
            Some(Kind::BitslicedPortable) => WideLane::Portable,
            Some(Kind::BitslicedNarrow) => WideLane::Narrow,
            _ => {
                if WideLane::Avx2.available() {
                    WideLane::Avx2
                } else {
                    WideLane::Portable
                }
            }
        }
    }
}

/// 8×8 bit-matrix transpose: byte `b` of the result collects bit `b` of
/// each input byte (Hacker's Delight §7-3, three exchange rounds).
#[inline]
fn transpose8(mut x: u64) -> u64 {
    let t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

/// Transposes `8 * T::GROUPS` blocks into bit-plane state.
#[inline(always)]
fn pack<T: PlaneWord>(blocks: &[[u8; 16]], st: &mut [[T; 4]; 8]) {
    debug_assert_eq!(blocks.len(), 8 * T::GROUPS);
    let mut planes = [[0u64; 16]; 8];
    for j in 0..16 {
        for m in 0..T::GROUPS {
            let mut w = 0u64;
            for k in 0..8 {
                w |= u64::from(blocks[8 * m + k][j]) << (8 * k);
            }
            let t = transpose8(w);
            for b in 0..8 {
                planes[b][j] |= ((t >> (8 * b)) & 0xFF) << (8 * m);
            }
        }
    }
    for b in 0..8 {
        for r in 0..4 {
            st[b][r] = T::from_lanes([
                planes[b][r],
                planes[b][r + 4],
                planes[b][r + 8],
                planes[b][r + 12],
            ]);
        }
    }
}

/// Inverse of [`pack`].
#[inline(always)]
fn unpack<T: PlaneWord>(st: &[[T; 4]; 8], blocks: &mut [[u8; 16]]) {
    debug_assert_eq!(blocks.len(), 8 * T::GROUPS);
    let mut planes = [[0u64; 16]; 8];
    for b in 0..8 {
        for r in 0..4 {
            let lanes = st[b][r].to_lanes();
            planes[b][r] = lanes[0];
            planes[b][r + 4] = lanes[1];
            planes[b][r + 8] = lanes[2];
            planes[b][r + 12] = lanes[3];
        }
    }
    for j in 0..16 {
        for m in 0..T::GROUPS {
            let mut w = 0u64;
            for b in 0..8 {
                w |= ((planes[b][j] >> (8 * m)) & 0xFF) << (8 * b);
            }
            let t = transpose8(w);
            for k in 0..8 {
                blocks[8 * m + k][j] = ((t >> (8 * k)) & 0xFF) as u8;
            }
        }
    }
}

/// The Boyar–Peralta 113-gate AES S-box over one row's eight planes.
///
/// `v[b]` is plane `b` (bit significance `b`); the circuit's `u0..u7`
/// convention is MSB-first, hence the index reversal at entry and exit.
#[inline(always)]
#[allow(clippy::similar_names)]
fn bp_sbox<T: PlaneWord>(v: [T; 8]) -> [T; 8] {
    let (u0, u1, u2, u3, u4, u5, u6, u7) = (v[7], v[6], v[5], v[4], v[3], v[2], v[1], v[0]);
    // Top linear layer.
    let y14 = u3.xor(u5);
    let y13 = u0.xor(u6);
    let y9 = u0.xor(u3);
    let y8 = u0.xor(u5);
    let t0 = u1.xor(u2);
    let y1 = t0.xor(u7);
    let y4 = y1.xor(u3);
    let y12 = y13.xor(y14);
    let y2 = y1.xor(u0);
    let y5 = y1.xor(u6);
    let y3 = y5.xor(y8);
    let t1 = u4.xor(y12);
    let y15 = t1.xor(u5);
    let y20 = t1.xor(u1);
    let y6 = y15.xor(u7);
    let y10 = y15.xor(t0);
    let y11 = y20.xor(y9);
    let y7 = u7.xor(y11);
    let y17 = y10.xor(y11);
    let y19 = y10.xor(y8);
    let y16 = t0.xor(y11);
    let y21 = y13.xor(y16);
    let y18 = u0.xor(y16);
    // Middle nonlinear layer (GF(2^4) inversion tower).
    let t2 = y12.and(y15);
    let t3 = y3.and(y6);
    let t4 = t3.xor(t2);
    let t5 = y4.and(u7);
    let t6 = t5.xor(t2);
    let t7 = y13.and(y16);
    let t8 = y5.and(y1);
    let t9 = t8.xor(t7);
    let t10 = y2.and(y7);
    let t11 = t10.xor(t7);
    let t12 = y9.and(y11);
    let t13 = y14.and(y17);
    let t14 = t13.xor(t12);
    let t15 = y8.and(y10);
    let t16 = t15.xor(t12);
    let t17 = t4.xor(t14);
    let t18 = t6.xor(t16);
    let t19 = t9.xor(t14);
    let t20 = t11.xor(t16);
    let t21 = t17.xor(y20);
    let t22 = t18.xor(y19);
    let t23 = t19.xor(y21);
    let t24 = t20.xor(y18);
    let t25 = t21.xor(t22);
    let t26 = t21.and(t23);
    let t27 = t24.xor(t26);
    let t28 = t25.and(t27);
    let t29 = t28.xor(t22);
    let t30 = t23.xor(t24);
    let t31 = t22.xor(t26);
    let t32 = t31.and(t30);
    let t33 = t32.xor(t24);
    let t34 = t23.xor(t33);
    let t35 = t27.xor(t33);
    let t36 = t24.and(t35);
    let t37 = t36.xor(t34);
    let t38 = t27.xor(t36);
    let t39 = t29.and(t38);
    let t40 = t25.xor(t39);
    let t41 = t40.xor(t37);
    let t42 = t29.xor(t33);
    let t43 = t29.xor(t40);
    let t44 = t33.xor(t37);
    let t45 = t42.xor(t41);
    let z0 = t44.and(y15);
    let z1 = t37.and(y6);
    let z2 = t33.and(u7);
    let z3 = t43.and(y16);
    let z4 = t40.and(y1);
    let z5 = t29.and(y7);
    let z6 = t42.and(y11);
    let z7 = t45.and(y17);
    let z8 = t41.and(y10);
    let z9 = t44.and(y12);
    let z10 = t37.and(y3);
    let z11 = t33.and(y4);
    let z12 = t43.and(y13);
    let z13 = t40.and(y5);
    let z14 = t29.and(y2);
    let z15 = t42.and(y9);
    let z16 = t45.and(y14);
    let z17 = t41.and(y8);
    // Bottom linear layer (output affine step folded in).
    let t46 = z15.xor(z16);
    let t47 = z10.xor(z11);
    let t48 = z5.xor(z13);
    let t49 = z9.xor(z10);
    let t50 = z2.xor(z12);
    let t51 = z2.xor(z5);
    let t52 = z7.xor(z8);
    let t53 = z0.xor(z3);
    let t54 = z6.xor(z7);
    let t55 = z16.xor(z17);
    let t56 = z12.xor(t48);
    let t57 = t50.xor(t53);
    let t58 = z4.xor(t46);
    let t59 = z3.xor(t54);
    let t60 = t46.xor(t57);
    let t61 = z14.xor(t57);
    let t62 = t52.xor(t58);
    let t63 = t49.xor(t58);
    let t64 = z4.xor(t59);
    let t65 = t61.xor(t62);
    let t66 = z1.xor(t63);
    let s0 = t59.xor(t63);
    let s6 = t56.xor(t62).not();
    let s7 = t48.xor(t60).not();
    let t67 = t64.xor(t65);
    let s3 = t53.xor(t66);
    let s4 = t51.xor(t66);
    let s5 = t47.xor(t65);
    let s1 = t64.xor(s3).not();
    let s2 = t55.xor(t67).not();
    [s7, s6, s5, s4, s3, s2, s1, s0]
}

/// Inverse Rijndael affine step on bit planes: `out_i = in_{i+2} ⊕
/// in_{i+5} ⊕ in_{i+7}` (indices mod 8), then complement planes 0 and 2.
#[inline(always)]
fn inv_affine<T: PlaneWord>(v: [T; 8]) -> [T; 8] {
    // Loop instead of `core::array::from_fn` — see `xtimes` for why.
    let mut out = [T::zero(); 8];
    for (i, o) in out.iter_mut().enumerate() {
        *o = v[(i + 2) % 8].xor(v[(i + 5) % 8]).xor(v[(i + 7) % 8]);
    }
    out[0] = out[0].not();
    out[2] = out[2].not();
    out
}

#[inline(always)]
fn sub_bytes<T: PlaneWord>(st: &mut [[T; 4]; 8]) {
    for r in 0..4 {
        let v = bp_sbox([
            st[0][r], st[1][r], st[2][r], st[3][r], st[4][r], st[5][r], st[6][r], st[7][r],
        ]);
        for (b, plane) in v.into_iter().enumerate() {
            st[b][r] = plane;
        }
    }
}

#[inline(always)]
fn inv_sub_bytes<T: PlaneWord>(st: &mut [[T; 4]; 8]) {
    for r in 0..4 {
        let v = inv_affine(bp_sbox(inv_affine([
            st[0][r], st[1][r], st[2][r], st[3][r], st[4][r], st[5][r], st[6][r], st[7][r],
        ])));
        for (b, plane) in v.into_iter().enumerate() {
            st[b][r] = plane;
        }
    }
}

#[inline(always)]
fn shift_rows<T: PlaneWord>(st: &mut [[T; 4]; 8]) {
    for planes in st.iter_mut() {
        planes[1] = planes[1].rot_lanes::<1>();
        planes[2] = planes[2].rot_lanes::<2>();
        planes[3] = planes[3].rot_lanes::<3>();
    }
}

#[inline(always)]
fn inv_shift_rows<T: PlaneWord>(st: &mut [[T; 4]; 8]) {
    for planes in st.iter_mut() {
        planes[1] = planes[1].rot_lanes::<3>();
        planes[2] = planes[2].rot_lanes::<2>();
        planes[3] = planes[3].rot_lanes::<1>();
    }
}

/// GF(2⁸) multiply-by-x of every state byte, as a plane permutation plus
/// three XORs with the modulus plane (x⁸ ≡ x⁴ + x³ + x + 1).
///
/// Plain loops, no `core::array::from_fn`: the closure thunks inside
/// `from_fn` monomorphize outside the `#[target_feature(enable =
/// "avx2")]` wrappers and are not reliably inlined back in, which left
/// non-vectorized calls in the middle of the hottest per-round function
/// (measured ~30% off the whole wide pass).
#[inline(always)]
fn xtimes<T: PlaneWord>(p: &[[T; 4]; 8]) -> [[T; 4]; 8] {
    let mut out = [[T::zero(); 4]; 8];
    for r in 0..4 {
        out[0][r] = p[7][r];
        out[1][r] = p[0][r].xor(p[7][r]);
        out[2][r] = p[1][r];
        out[3][r] = p[2][r].xor(p[7][r]);
        out[4][r] = p[3][r].xor(p[7][r]);
        out[5][r] = p[4][r];
        out[6][r] = p[5][r];
        out[7][r] = p[6][r];
    }
    out
}

/// `MixColumn`: with the column bytes renamed `a_r`, the output row is
/// `b_r = xtimes(a_r ⊕ a_{r+1}) ⊕ a_{r+1} ⊕ a_{r+2} ⊕ a_{r+3}` — the row
/// rotations are free index renames in this layout.
#[inline(always)]
fn mix_columns<T: PlaneWord>(st: &mut [[T; 4]; 8]) {
    let mut t = [[T::zero(); 4]; 8];
    let mut u = [[T::zero(); 4]; 8];
    for b in 0..8 {
        for r in 0..4 {
            let a1 = st[b][(r + 1) % 4];
            t[b][r] = st[b][r].xor(a1);
            u[b][r] = a1.xor(st[b][(r + 2) % 4]).xor(st[b][(r + 3) % 4]);
        }
    }
    let x = xtimes(&t);
    for b in 0..8 {
        for r in 0..4 {
            st[b][r] = x[b][r].xor(u[b][r]);
        }
    }
}

/// `IMixColumn` via the standard decomposition `InvMix = Mix ∘ (I ⊕ x²·E)`
/// with `E` pairing rows two apart: add `xtimes²(a_r ⊕ a_{r+2})`, then run
/// the forward `MixColumn`.
#[inline(always)]
fn inv_mix_columns<T: PlaneWord>(st: &mut [[T; 4]; 8]) {
    let mut d = [[T::zero(); 4]; 8];
    for b in 0..8 {
        for r in 0..4 {
            d[b][r] = st[b][r].xor(st[b][(r + 2) % 4]);
        }
    }
    let dd = xtimes(&xtimes(&d));
    for b in 0..8 {
        for r in 0..4 {
            st[b][r] = st[b][r].xor(dd[b][r]);
        }
    }
    mix_columns(st);
}

#[inline(always)]
fn add_round_key<T: PlaneWord>(st: &mut [[T; 4]; 8], rk: &[[[u64; 4]; 4]; 8]) {
    for b in 0..8 {
        for r in 0..4 {
            st[b][r] = st[b][r].xor(T::from_lanes(rk[b][r]));
        }
    }
}

/// Encrypts `8 * T::GROUPS` blocks through one bitsliced pass of
/// `rk.len() - 1` rounds.
#[inline(always)]
fn encrypt_pass<T: PlaneWord>(rk: &[RkRound], blocks: &mut [[u8; 16]]) {
    let last = rk.len() - 1;
    let mut st = [[T::zero(); 4]; 8];
    pack(blocks, &mut st);
    add_round_key(&mut st, &rk[0]);
    for round in &rk[1..last] {
        sub_bytes(&mut st);
        shift_rows(&mut st);
        mix_columns(&mut st);
        add_round_key(&mut st, round);
    }
    sub_bytes(&mut st);
    shift_rows(&mut st);
    add_round_key(&mut st, &rk[last]);
    unpack(&st, blocks);
}

/// Decrypts `8 * T::GROUPS` blocks through one bitsliced pass of
/// `rk.len() - 1` rounds.
#[inline(always)]
fn decrypt_pass<T: PlaneWord>(rk: &[RkRound], blocks: &mut [[u8; 16]]) {
    let last = rk.len() - 1;
    let mut st = [[T::zero(); 4]; 8];
    pack(blocks, &mut st);
    add_round_key(&mut st, &rk[last]);
    inv_shift_rows(&mut st);
    inv_sub_bytes(&mut st);
    for round in rk[1..last].iter().rev() {
        add_round_key(&mut st, round);
        inv_mix_columns(&mut st);
        inv_shift_rows(&mut st);
        inv_sub_bytes(&mut st);
    }
    add_round_key(&mut st, &rk[0]);
    unpack(&st, blocks);
}

/// Broadcasts byte-wise round keys into all-ones/all-zeroes lane masks,
/// one [`RkRound`] per round key (`rounds + 1` in total).
fn broadcast_keys(schedule: &KeySchedule) -> Box<[RkRound]> {
    let mut out: Box<[RkRound]> =
        vec![[[[0u64; 4]; 4]; 8]; schedule.rounds() + 1].into_boxed_slice();
    for (round, masks) in out.iter_mut().enumerate() {
        let mut bytes = [0u8; 16];
        for (c, word) in schedule.round_key(round).iter().enumerate() {
            bytes[4 * c..4 * c + 4].copy_from_slice(&word.to_be_bytes());
        }
        for (j, byte) in bytes.iter().enumerate() {
            let (r, c) = (j % 4, j / 4);
            for (b, plane) in masks.iter_mut().enumerate() {
                plane[r][c] = 0u64.wrapping_sub(u64::from((byte >> b) & 1));
            }
        }
    }
    out
}

/// Constant-time bitsliced AES-128/192/256 over batches of blocks (the
/// key length picks the round count; the round core is shared).
///
/// The natural granule is [`GRANULE`] (8) blocks — [`Self::encrypt8`] /
/// [`Self::decrypt8`] — and the bulk entry points [`Self::encrypt_blocks`]
/// / [`Self::decrypt_blocks`] split arbitrary batches into 64-block wide
/// passes, 8-block granules, and one zero-padded granule for a ragged
/// tail. Throughput comes from the wide pass: sizing batches in multiples
/// of [`WIDE`] keeps every lane full.
///
/// Implements [`BlockCipher`] (via a padded single-block granule) so it
/// drops into every mode and backend slot the other software ciphers fit,
/// and [`crate::cipher::BatchCipher`] for the multi-block fast paths.
///
/// # Examples
///
/// ```
/// use rijndael::{Aes128, Bitsliced8};
///
/// let key = [0x2Bu8; 16];
/// let reference = Aes128::new(&key);
/// let sliced = Bitsliced8::new(&key);
/// let mut blocks = [[0x5Au8; 16]; 8];
/// sliced.encrypt8(&mut blocks);
/// assert_eq!(blocks[3], reference.encrypt_block(&[0x5Au8; 16]));
/// ```
pub struct Bitsliced8 {
    rk: Box<[RkRound]>,
    lane: WideLane,
}

impl Bitsliced8 {
    /// Expands `key` (16, 24, or 32 bytes) and broadcasts the schedule
    /// into bit-plane masks, with the wide lane chosen by the runtime
    /// dispatch decision ([`WideLane::detect`]).
    ///
    /// # Panics
    ///
    /// Panics on an invalid key length — lengths are validated at the
    /// service boundary before any backend is keyed.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        Self::with_lane(key, WideLane::detect())
    }

    /// Like [`Self::new`] but pins the wide lane explicitly.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is not [`WideLane::available`] on this CPU —
    /// pinning a lane the hardware cannot run must fail loudly, never
    /// silently substitute another plane. Also panics on an invalid key
    /// length, as in [`Self::new`].
    #[must_use]
    pub fn with_lane(key: &[u8], lane: WideLane) -> Self {
        assert!(
            lane.available(),
            "bitsliced {} lane is not available on this CPU",
            lane.name()
        );
        let schedule = KeySchedule::expand(key, 4).expect("key must be 16, 24, or 32 bytes");
        Bitsliced8 {
            rk: broadcast_keys(&schedule),
            lane,
        }
    }

    /// The wide lane this instance was constructed with.
    #[must_use]
    pub fn lane(&self) -> WideLane {
        self.lane
    }

    /// Number of cipher rounds (10, 12, or 14).
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rk.len() - 1
    }

    /// Encrypts 8 blocks in one constant-time pass.
    pub fn encrypt8(&self, blocks: &mut [[u8; 16]; GRANULE]) {
        encrypt_pass::<u32>(&self.rk, blocks);
    }

    /// Decrypts 8 blocks in one constant-time pass.
    pub fn decrypt8(&self, blocks: &mut [[u8; 16]; GRANULE]) {
        decrypt_pass::<u32>(&self.rk, blocks);
    }

    /// Encrypts any number of blocks: [`WIDE`] blocks per wide pass, then
    /// 8-block granules, then one zero-padded granule for the tail.
    pub fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        self.process(blocks, false);
    }

    /// Decrypts any number of blocks (same splitting as
    /// [`Self::encrypt_blocks`]).
    pub fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        self.process(blocks, true);
    }

    fn process(&self, blocks: &mut [[u8; 16]], decrypt: bool) {
        lane_stats().record(blocks.len(), self.lane);
        let run8 = |chunk: &mut [[u8; 16]]| {
            if decrypt {
                decrypt_pass::<u32>(&self.rk, chunk);
            } else {
                encrypt_pass::<u32>(&self.rk, chunk);
            }
        };
        let rest: &mut [[u8; 16]] = match self.lane {
            // The narrow lane skips the wide split entirely.
            WideLane::Narrow => blocks,
            lane => {
                let (wide, rest) = blocks.as_chunks_mut::<WIDE>();
                match lane {
                    #[cfg(target_arch = "x86_64")]
                    WideLane::Avx2 => simd::run_wide(&self.rk, wide, decrypt),
                    #[cfg(not(target_arch = "x86_64"))]
                    WideLane::Avx2 => {
                        unreachable!("the AVX2 lane cannot be constructed off x86_64")
                    }
                    _ => {
                        for chunk in wide {
                            if decrypt {
                                decrypt_pass::<Quad>(&self.rk, chunk);
                            } else {
                                encrypt_pass::<Quad>(&self.rk, chunk);
                            }
                        }
                    }
                }
                rest
            }
        };
        let (granules, tail) = rest.as_chunks_mut::<GRANULE>();
        for chunk in granules {
            run8(chunk);
        }
        if !tail.is_empty() {
            let mut padded = [[0u8; 16]; GRANULE];
            padded[..tail.len()].copy_from_slice(tail);
            run8(&mut padded);
            tail.copy_from_slice(&padded[..tail.len()]);
        }
    }
}

/// Which implementation backs the wide lane of a default-constructed
/// [`Bitsliced8`] on this host: the **runtime** dispatch decision
/// ([`WideLane::detect`]), not a compile-time `cfg!` answer.
#[must_use]
pub fn wide_lane() -> &'static str {
    WideLane::detect().name()
}

/// Global-registry counters for the lane split of [`Bitsliced8::process`]:
/// `rijndael.bitslice.lane.wide.blocks` counts blocks that rode a full
/// [`WIDE`] pass (the `avx2`/`quad` plane — see
/// `rijndael.bitslice.lane.wide.kind`, which names the *detected* lane of
/// this process), `...lane.narrow.blocks` counts blocks handled by the
/// 8-block `u32` granule path (padded tails count the real blocks only;
/// on a [`WideLane::Narrow`] instance every block counts as narrow).
struct LaneStats {
    wide: telemetry::Counter,
    narrow: telemetry::Counter,
}

impl LaneStats {
    fn record(&self, blocks: usize, lane: WideLane) {
        let wide = if lane == WideLane::Narrow {
            0
        } else {
            blocks - blocks % WIDE
        };
        if wide > 0 {
            self.wide.add(wide as u64);
        }
        if blocks > wide {
            self.narrow.add((blocks - wide) as u64);
        }
    }
}

fn lane_stats() -> &'static LaneStats {
    static STATS: std::sync::OnceLock<LaneStats> = std::sync::OnceLock::new();
    STATS.get_or_init(|| {
        let reg = telemetry::Registry::global();
        // A gauge has no natural string value, so the lane kind is encoded
        // in a counter name holding 1 — stable to scrape, zero overhead.
        reg.counter(&format!("rijndael.bitslice.lane.wide.kind.{}", wide_lane()))
            .incr();
        LaneStats {
            wide: reg.counter("rijndael.bitslice.lane.wide.blocks"),
            narrow: reg.counter("rijndael.bitslice.lane.narrow.blocks"),
        }
    })
}

impl Clone for Bitsliced8 {
    fn clone(&self) -> Self {
        Bitsliced8 {
            rk: self.rk.clone(),
            lane: self.lane,
        }
    }
}

impl core::fmt::Debug for Bitsliced8 {
    /// Never prints key material.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Bitsliced8 {{ rounds: {}, wide: 64 }}", self.rounds())
    }
}

impl Drop for Bitsliced8 {
    /// Wipes the broadcast round-key masks (see [`crate::zeroize`]).
    fn drop(&mut self) {
        crate::zeroize::wipe_words64(
            self.rk
                .as_flattened_mut()
                .as_flattened_mut()
                .as_flattened_mut(),
        );
    }
}

impl BlockCipher for Bitsliced8 {
    fn block_len(&self) -> usize {
        16
    }

    fn encrypt_in_place(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 16, "Bitsliced8 encrypts 16-byte blocks");
        let mut padded = [[0u8; 16]; GRANULE];
        padded[0].copy_from_slice(block);
        self.encrypt8(&mut padded);
        block.copy_from_slice(&padded[0]);
    }

    fn decrypt_in_place(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 16, "Bitsliced8 decrypts 16-byte blocks");
        let mut padded = [[0u8; 16]; GRANULE];
        padded[0].copy_from_slice(block);
        self.decrypt8(&mut padded);
        block.copy_from_slice(&padded[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Aes128;

    // FIPS-197 Appendix C.1.
    const KEY: [u8; 16] = [
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E,
        0x0F,
    ];
    const PT: [u8; 16] = [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE,
        0xFF,
    ];
    const CT: [u8; 16] = [
        0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4, 0xC5,
        0x5A,
    ];

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_blocks(n: usize, seed: u64) -> Vec<[u8; 16]> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| core::array::from_fn(|_| (xorshift(&mut s) >> 32) as u8))
            .collect()
    }

    #[test]
    fn sbox_circuit_matches_table_for_all_bytes() {
        // Eight granules of 8 distinct bytes apiece sweep a plane-aligned
        // slice of inputs; four sweeps with different offsets cover all
        // 256 bytes in every state slot position 0 and 5.
        let cipher = Bitsliced8::new(&KEY);
        let reference = Aes128::new(&KEY);
        for base in 0..32u16 {
            let mut group: [[u8; 16]; 8] = core::array::from_fn(|k| {
                let v = (base as u8).wrapping_mul(8).wrapping_add(k as u8);
                let mut b = [v; 16];
                b[5] = v.wrapping_add(97);
                b
            });
            let expect: Vec<[u8; 16]> = group.iter().map(|b| reference.encrypt_block(b)).collect();
            cipher.encrypt8(&mut group);
            assert_eq!(group.to_vec(), expect, "granule base {base}");
        }
    }

    #[test]
    fn fips197_c1_known_answer_through_both_cores() {
        let cipher = Bitsliced8::new(&KEY);

        let mut granule = [PT; 8];
        cipher.encrypt8(&mut granule);
        assert!(granule.iter().all(|b| *b == CT), "8-block core KAT");
        cipher.decrypt8(&mut granule);
        assert!(granule.iter().all(|b| *b == PT), "8-block core inverse");

        let mut wide = vec![PT; WIDE];
        cipher.encrypt_blocks(&mut wide);
        assert!(wide.iter().all(|b| *b == CT), "wide core KAT");
        cipher.decrypt_blocks(&mut wide);
        assert!(wide.iter().all(|b| *b == PT), "wide core inverse");
    }

    #[test]
    fn wide_and_granule_cores_agree_with_the_reference() {
        let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(37) ^ 0xC3);
        let cipher = Bitsliced8::new(&key);
        let reference = Aes128::new(&key);
        let original = random_blocks(WIDE, 0xB17_51ED);

        let mut wide = original.clone();
        cipher.encrypt_blocks(&mut wide);
        for (i, (got, pt)) in wide.iter().zip(&original).enumerate() {
            assert_eq!(*got, reference.encrypt_block(pt), "block {i}");
        }

        let mut granules = original.clone();
        for chunk in granules.chunks_exact_mut(GRANULE) {
            encrypt_pass::<u32>(&cipher.rk, chunk);
        }
        assert_eq!(granules, wide, "u32 core diverges from wide core");
    }

    #[test]
    fn portable_quad_core_agrees_with_the_dispatched_wide_core() {
        // On AVX2 hosts the detected lane is `Avx2` and the portable core
        // sits idle in production; keep it honest by cross-checking both
        // directions.
        let cipher = Bitsliced8::new(&KEY);
        let original = random_blocks(WIDE, 0x0DD5EED);
        let mut via_dispatch = original.clone();
        cipher.encrypt_blocks(&mut via_dispatch);
        let mut via_quad = original.clone();
        encrypt_pass::<Quad>(&cipher.rk, &mut via_quad);
        assert_eq!(via_quad, via_dispatch);
        decrypt_pass::<Quad>(&cipher.rk, &mut via_quad);
        assert_eq!(via_quad, original);
    }

    #[test]
    fn every_available_lane_agrees_on_ragged_batches() {
        let expected = {
            let reference = Aes128::new(&KEY);
            random_blocks(WIDE + GRANULE + 3, 0x1A_4E5)
                .iter()
                .map(|b| reference.encrypt_block(b))
                .collect::<Vec<_>>()
        };
        let original = random_blocks(WIDE + GRANULE + 3, 0x1A_4E5);
        for lane in [WideLane::Avx2, WideLane::Portable, WideLane::Narrow] {
            if !lane.available() {
                continue;
            }
            let cipher = Bitsliced8::with_lane(&KEY, lane);
            assert_eq!(cipher.lane(), lane);
            let mut got = original.clone();
            cipher.encrypt_blocks(&mut got);
            assert_eq!(got, expected, "lane {}", lane.name());
            cipher.decrypt_blocks(&mut got);
            assert_eq!(got, original, "lane {} inverse", lane.name());
        }
    }

    #[test]
    #[cfg(not(target_arch = "x86_64"))]
    fn pinning_the_avx2_lane_off_x86_panics() {
        let caught = std::panic::catch_unwind(|| Bitsliced8::with_lane(&KEY, WideLane::Avx2));
        assert!(caught.is_err());
    }

    #[test]
    fn fips197_long_key_known_answers_on_every_available_lane() {
        // FIPS-197 C.2 (AES-192) and C.3 (AES-256) for the sequential
        // key bytes, swept across every lane and both split paths.
        let cases: [(usize, usize, [u8; 16]); 2] = [
            (
                24,
                12,
                [
                    0xDD, 0xA9, 0x7C, 0xA4, 0x86, 0x4C, 0xDF, 0xE0, 0x6E, 0xAF, 0x70, 0xA0, 0xEC,
                    0x0D, 0x71, 0x91,
                ],
            ),
            (
                32,
                14,
                [
                    0x8E, 0xA2, 0xB7, 0xCA, 0x51, 0x67, 0x45, 0xBF, 0xEA, 0xFC, 0x49, 0x90, 0x4B,
                    0x49, 0x60, 0x89,
                ],
            ),
        ];
        for (len, rounds, expect) in cases {
            let key: Vec<u8> = (0..len as u8).collect();
            for lane in [WideLane::Avx2, WideLane::Portable, WideLane::Narrow] {
                if !lane.available() {
                    continue;
                }
                let cipher = Bitsliced8::with_lane(&key, lane);
                assert_eq!(cipher.rounds(), rounds);
                let mut blocks = vec![PT; WIDE + 3];
                cipher.encrypt_blocks(&mut blocks);
                assert!(
                    blocks.iter().all(|b| *b == expect),
                    "AES-{} lane {} KAT",
                    len * 8,
                    lane.name()
                );
                cipher.decrypt_blocks(&mut blocks);
                assert!(
                    blocks.iter().all(|b| *b == PT),
                    "AES-{} lane {} inverse",
                    len * 8,
                    lane.name()
                );
            }
        }
    }

    #[test]
    fn long_keys_agree_with_the_reference_on_random_batches() {
        let key192: Vec<u8> = (0..24u8).map(|i| i.wrapping_mul(7) ^ 0x1D).collect();
        let key256: Vec<u8> = (0..32u8).map(|i| i.wrapping_mul(5) ^ 0xB2).collect();
        let original = random_blocks(WIDE + 5, 0x256_192);

        let cipher = Bitsliced8::new(&key192);
        let reference = crate::Aes192::new(&key192.clone().try_into().unwrap());
        let mut got = original.clone();
        cipher.encrypt_blocks(&mut got);
        for (i, (g, pt)) in got.iter().zip(&original).enumerate() {
            assert_eq!(*g, reference.encrypt_block(pt), "aes-192 block {i}");
        }
        cipher.decrypt_blocks(&mut got);
        assert_eq!(got, original, "aes-192 roundtrip");

        let cipher = Bitsliced8::new(&key256);
        let reference = crate::Aes256::new(&key256.clone().try_into().unwrap());
        let mut got = original.clone();
        cipher.encrypt_blocks(&mut got);
        for (i, (g, pt)) in got.iter().zip(&original).enumerate() {
            assert_eq!(*g, reference.encrypt_block(pt), "aes-256 block {i}");
        }
        cipher.decrypt_blocks(&mut got);
        assert_eq!(got, original, "aes-256 roundtrip");
    }

    #[test]
    fn ragged_tails_match_the_reference_both_directions() {
        let cipher = Bitsliced8::new(&KEY);
        let reference = Aes128::new(&KEY);
        for n in 1..=23usize {
            let original = random_blocks(n, 0xDEAD + n as u64);
            let mut enc = original.clone();
            cipher.encrypt_blocks(&mut enc);
            for (got, pt) in enc.iter().zip(&original) {
                assert_eq!(*got, reference.encrypt_block(pt), "encrypt n={n}");
            }
            let mut dec = enc.clone();
            cipher.decrypt_blocks(&mut dec);
            assert_eq!(dec, original, "decrypt n={n}");
        }
    }

    #[test]
    fn block_cipher_impl_roundtrips_single_blocks() {
        let cipher = Bitsliced8::new(&KEY);
        let mut block = PT;
        cipher.encrypt_in_place(&mut block);
        assert_eq!(block, CT);
        cipher.decrypt_in_place(&mut block);
        assert_eq!(block, PT);
    }

    #[test]
    fn rekeying_after_drop_yields_a_fresh_correct_cipher() {
        let first = Bitsliced8::new(&KEY);
        let mut g = [PT; 8];
        first.encrypt8(&mut g);
        assert_eq!(g[0], CT);
        drop(first);
        let second = Bitsliced8::new(&KEY);
        let mut g = [PT; 8];
        second.encrypt8(&mut g);
        assert_eq!(g[0], CT);
    }

    #[test]
    fn dropping_a_clone_leaves_the_original_usable() {
        let original = Bitsliced8::new(&KEY);
        drop(original.clone());
        let mut g = [PT; 8];
        original.encrypt8(&mut g);
        assert_eq!(g[0], CT);
    }

    #[test]
    fn debug_never_leaks_key_material() {
        let cipher = Bitsliced8::new(&KEY);
        let s = format!("{cipher:?}");
        assert!(!s.contains("00"), "{s}");
    }
}

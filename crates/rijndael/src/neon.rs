//! AES-128/192/256 on the ARMv8 Cryptography Extension (NEON
//! `AESE`/`AESD`).
//!
//! The aarch64 counterpart of [`crate::aesni`], behind the same
//! [`BlockCipher`]/[`BatchCipher`] traits and the same runtime-probe
//! contract: the module only compiles on `aarch64`, and a [`NeonAes`]
//! instance can only be constructed after [`available`] — a cached
//! `is_aarch64_feature_detected!("aes")` probe — returns `true`. The
//! [`crate::dispatch`] micro-race decides per host whether it runs. As
//! on x86, the round instruction is key-size-agnostic, so AES-192/256
//! are the same chain run for 12 or 14 rounds.
//!
//! Unlike x86, `AESE` folds `AddRoundKey` *before* `SubBytes ∘
//! ShiftRows`, so the round loop XORs each key ahead of the S-box pass
//! and the final round key is applied with a plain `EOR`. Decryption uses
//! the equivalent inverse cipher with `AESIMC`-transformed interior keys,
//! mirroring [`crate::aesni`]'s `invert_keys`.
//!
//! # Safety
//!
//! Every intrinsic sits inside a `#[target_feature(enable = "aes")]`
//! function reachable only through a constructed [`NeonAes`], which is
//! itself the proof that the runtime probe succeeded on this CPU. The
//! only pointer operations are unaligned 16-byte loads/stores of
//! caller-provided `[u8; 16]` buffers.

#![allow(unsafe_code)]

use core::arch::aarch64::{
    uint8x16_t, vaesdq_u8, vaeseq_u8, vaesimcq_u8, vaesmcq_u8, vdupq_n_u8, veorq_u8, vld1q_u8,
    vst1q_u8,
};

use crate::cipher::{BatchCipher, BlockCipher};
use crate::key_schedule::KeySchedule;

/// Round keys for the largest variant (AES-256: the initial whitening
/// key plus fourteen rounds). Smaller keys use a prefix.
const MAX_ROUND_KEYS: usize = 15;

/// `true` when this CPU executes the ARMv8 AES instructions (cached
/// probe).
#[must_use]
pub fn available() -> bool {
    std::arch::is_aarch64_feature_detected!("aes")
}

/// Unaligned 16-byte load (`vld1q` has no alignment requirement).
#[inline(always)]
fn loadu(block: &[u8; 16]) -> uint8x16_t {
    // SAFETY: `block` is a valid 16-byte read; NEON is baseline aarch64.
    unsafe { vld1q_u8(block.as_ptr()) }
}

/// Unaligned 16-byte store (same argument as [`loadu`]).
#[inline(always)]
fn storeu(block: &mut [u8; 16], v: uint8x16_t) {
    // SAFETY: `block` is a valid 16-byte write; NEON is baseline aarch64.
    unsafe { vst1q_u8(block.as_mut_ptr(), v) }
}

/// Derives the equivalent-inverse-cipher round keys (`enc.len() - 1`
/// rounds): reverse the order and pass the interior keys through
/// `AESIMC`.
///
/// # Safety
///
/// The CPU must support the ARMv8 AES extension (checked by the caller
/// via [`available`]).
#[target_feature(enable = "aes")]
unsafe fn invert_keys(enc: &[[u8; 16]]) -> [[u8; 16]; MAX_ROUND_KEYS] {
    let rounds = enc.len() - 1;
    let mut dec = [[0u8; 16]; MAX_ROUND_KEYS];
    dec[0] = enc[rounds];
    for i in 1..rounds {
        storeu(&mut dec[i], vaesimcq_u8(loadu(&enc[rounds - i])));
    }
    dec[rounds] = enc[0];
    dec
}

/// Loads a schedule into registers, returning the register file and the
/// index of the last round key.
///
/// # Safety
///
/// The CPU must support the ARMv8 AES extension (checked by the caller
/// via [`available`]).
#[target_feature(enable = "aes")]
unsafe fn load_keys(schedule: &[[u8; 16]]) -> ([uint8x16_t; MAX_ROUND_KEYS], usize) {
    let mut rk = [vdupq_n_u8(0); MAX_ROUND_KEYS];
    for (slot, key) in rk.iter_mut().zip(schedule) {
        *slot = loadu(key);
    }
    (rk, schedule.len() - 1)
}

/// Encrypts every block in place. `enc` holds the whitening key plus one
/// key per round.
///
/// # Safety
///
/// The CPU must support the ARMv8 AES extension (checked by the caller
/// via [`available`]).
#[target_feature(enable = "aes")]
unsafe fn encrypt_batch(enc: &[[u8; 16]], blocks: &mut [[u8; 16]]) {
    let (rk, last) = load_keys(enc);
    for block in blocks {
        let mut x = loadu(block);
        for key in &rk[..last - 1] {
            // AESE = AddRoundKey + SubBytes + ShiftRows; AESMC completes
            // the full round.
            x = vaesmcq_u8(vaeseq_u8(x, *key));
        }
        // Final round: no MixColumns; the last key is a plain XOR.
        storeu(block, veorq_u8(vaeseq_u8(x, rk[last - 1]), rk[last]));
    }
}

/// Decrypts every block in place (equivalent inverse cipher).
///
/// # Safety
///
/// The CPU must support the ARMv8 AES extension (checked by the caller
/// via [`available`]).
#[target_feature(enable = "aes")]
unsafe fn decrypt_batch(dec: &[[u8; 16]], blocks: &mut [[u8; 16]]) {
    let (rk, last) = load_keys(dec);
    for block in blocks {
        let mut x = loadu(block);
        for key in &rk[..last - 1] {
            // AESD = AddRoundKey + InvShiftRows + InvSubBytes; AESIMC
            // completes the inverse round against IMC-transformed keys.
            x = vaesimcq_u8(vaesdq_u8(x, *key));
        }
        storeu(block, veorq_u8(vaesdq_u8(x, rk[last - 1]), rk[last]));
    }
}

/// AES-128/192/256 through the ARMv8 Cryptography Extension.
///
/// Construction is fallible precisely because dispatch is a runtime
/// decision: [`NeonAes::new`] returns `None` on CPUs without the
/// extension, and the instance itself is the proof of availability every
/// kernel call relies on.
pub struct NeonAes {
    enc: [[u8; 16]; MAX_ROUND_KEYS],
    dec: [[u8; 16]; MAX_ROUND_KEYS],
    rounds: usize,
}

impl NeonAes {
    /// Expands `key` (16, 24, or 32 bytes) and derives both round-key
    /// schedules, or returns `None` when the CPU lacks the AES
    /// extension.
    ///
    /// # Panics
    ///
    /// Panics on an invalid key length — lengths are validated at the
    /// service boundary before any backend is keyed.
    #[must_use]
    pub fn new(key: &[u8]) -> Option<Self> {
        if !available() {
            return None;
        }
        let schedule = KeySchedule::expand(key, 4).expect("key must be 16, 24, or 32 bytes");
        let rounds = schedule.rounds();
        let mut enc = [[0u8; 16]; MAX_ROUND_KEYS];
        for (round, rk) in enc[..=rounds].iter_mut().enumerate() {
            for (c, word) in schedule.round_key(round).iter().enumerate() {
                rk[4 * c..4 * c + 4].copy_from_slice(&word.to_be_bytes());
            }
        }
        // SAFETY: `available()` returned true above, so the `aes` target
        // feature is present on this CPU.
        let dec = unsafe { invert_keys(&enc[..=rounds]) };
        Some(NeonAes { enc, dec, rounds })
    }

    /// Number of cipher rounds (10, 12, or 14).
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Encrypts any number of blocks in place.
    pub fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        // SAFETY: this instance exists, so `NeonAes::new` saw the runtime
        // probe succeed on this CPU.
        unsafe { encrypt_batch(&self.enc[..=self.rounds], blocks) }
    }

    /// Decrypts any number of blocks in place.
    pub fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        // SAFETY: as in [`Self::encrypt_blocks`].
        unsafe { decrypt_batch(&self.dec[..=self.rounds], blocks) }
    }
}

impl BlockCipher for NeonAes {
    fn block_len(&self) -> usize {
        16
    }

    fn encrypt_in_place(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 16, "NeonAes encrypts 16-byte blocks");
        let mut b = [0u8; 16];
        b.copy_from_slice(block);
        self.encrypt_blocks(core::slice::from_mut(&mut b));
        block.copy_from_slice(&b);
    }

    fn decrypt_in_place(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 16, "NeonAes decrypts 16-byte blocks");
        let mut b = [0u8; 16];
        b.copy_from_slice(block);
        self.decrypt_blocks(core::slice::from_mut(&mut b));
        block.copy_from_slice(&b);
    }
}

impl BatchCipher for NeonAes {
    fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        Self::encrypt_blocks(self, blocks);
    }

    fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        Self::decrypt_blocks(self, blocks);
    }
}

impl Clone for NeonAes {
    fn clone(&self) -> Self {
        NeonAes {
            enc: self.enc,
            dec: self.dec,
            rounds: self.rounds,
        }
    }
}

impl core::fmt::Debug for NeonAes {
    /// Never prints key material.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "NeonAes {{ rounds: {} }}", self.rounds)
    }
}

impl Drop for NeonAes {
    /// Wipes both round-key schedules (see [`crate::zeroize`]).
    fn drop(&mut self) {
        crate::zeroize::wipe_bytes(self.enc.as_flattened_mut());
        crate::zeroize::wipe_bytes(self.dec.as_flattened_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aes128, Aes192, Aes256};

    // FIPS-197 Appendix C.1.
    const KEY: [u8; 16] = [
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E,
        0x0F,
    ];
    const PT: [u8; 16] = [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE,
        0xFF,
    ];
    const CT: [u8; 16] = [
        0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4, 0xC5,
        0x5A,
    ];
    // FIPS-197 Appendix C.2 (AES-192) and C.3 (AES-256).
    const CT_192: [u8; 16] = [
        0xDD, 0xA9, 0x7C, 0xA4, 0x86, 0x4C, 0xDF, 0xE0, 0x6E, 0xAF, 0x70, 0xA0, 0xEC, 0x0D, 0x71,
        0x91,
    ];
    const CT_256: [u8; 16] = [
        0x8E, 0xA2, 0xB7, 0xCA, 0x51, 0x67, 0x45, 0xBF, 0xEA, 0xFC, 0x49, 0x90, 0x4B, 0x49, 0x60,
        0x89,
    ];

    #[test]
    fn fips197_c1_known_answer_and_inverse() {
        let Some(cipher) = NeonAes::new(&KEY) else {
            return;
        };
        assert_eq!(cipher.rounds(), 10);
        let mut blocks = vec![PT; 19];
        cipher.encrypt_blocks(&mut blocks);
        assert!(blocks.iter().all(|b| *b == CT), "KAT");
        cipher.decrypt_blocks(&mut blocks);
        assert!(blocks.iter().all(|b| *b == PT), "inverse");
    }

    #[test]
    fn fips197_c2_and_c3_known_answers_for_the_long_keys() {
        if !available() {
            return;
        }
        for (len, rounds, expect) in [(24usize, 12usize, CT_192), (32, 14, CT_256)] {
            let key: Vec<u8> = (0..len as u8).collect();
            let cipher = NeonAes::new(&key).unwrap();
            assert_eq!(cipher.rounds(), rounds, "AES-{}", len * 8);
            let mut blocks = vec![PT; 19];
            cipher.encrypt_blocks(&mut blocks);
            assert!(blocks.iter().all(|b| *b == expect), "AES-{} KAT", len * 8);
            cipher.decrypt_blocks(&mut blocks);
            assert!(blocks.iter().all(|b| *b == PT), "AES-{} inverse", len * 8);
        }
    }

    #[test]
    fn agrees_with_the_reference_on_a_batch() {
        let Some(cipher) = NeonAes::new(&KEY) else {
            return;
        };
        let reference = Aes128::new(&KEY);
        let original: Vec<[u8; 16]> = (0..23u8).map(|i| [i.wrapping_mul(11) ^ 0x3C; 16]).collect();
        let mut got = original.clone();
        cipher.encrypt_blocks(&mut got);
        for (g, pt) in got.iter().zip(&original) {
            assert_eq!(*g, reference.encrypt_block(pt));
        }
        cipher.decrypt_blocks(&mut got);
        assert_eq!(got, original);
    }

    #[test]
    fn agrees_with_the_reference_for_every_key_size() {
        if !available() {
            return;
        }
        let original: Vec<[u8; 16]> = (0..13u8).map(|i| [i.wrapping_mul(17) ^ 0xC3; 16]).collect();
        for len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..len as u8).collect();
            let fast = NeonAes::new(&key).unwrap();
            let mut got = original.clone();
            fast.encrypt_blocks(&mut got);
            let expect: Vec<[u8; 16]> = match len {
                16 => {
                    let r = Aes128::new(&key.try_into().unwrap());
                    original.iter().map(|b| r.encrypt_block(b)).collect()
                }
                24 => {
                    let r = Aes192::new(&key.try_into().unwrap());
                    original.iter().map(|b| r.encrypt_block(b)).collect()
                }
                _ => {
                    let r = Aes256::new(&key.try_into().unwrap());
                    original.iter().map(|b| r.encrypt_block(b)).collect()
                }
            };
            assert_eq!(got, expect, "AES-{}", len * 8);
            fast.decrypt_blocks(&mut got);
            assert_eq!(got, original, "AES-{} roundtrip", len * 8);
        }
    }
}

//! Block-cipher modes of operation over any [`BlockCipher`].
//!
//! The paper positions the IP for "backbone communication channels" and
//! "Internet Banking" traffic; real deployments wrap the raw block cipher
//! in a mode. ECB, CBC, CTR, CFB and OFB are provided, generic over the
//! cipher so the same workload code drives the software reference, the
//! T-table baseline and the cycle-accurate hardware model.

use core::fmt;

use crate::cipher::BlockCipher;

/// Error for buffers whose length does not fit the requested mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LengthError {
    /// Offending buffer length.
    pub len: usize,
    /// Required granularity in bytes.
    pub block: usize,
}

impl fmt::Display for LengthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer length {} is not a multiple of the {}-byte block",
            self.len, self.block
        )
    }
}

impl std::error::Error for LengthError {}

/// Electronic codebook: each block enciphered independently.
///
/// # Examples
///
/// ```
/// use rijndael::{Aes128, modes::Ecb};
///
/// let aes = Aes128::new(&[0u8; 16]);
/// let mut data = vec![0u8; 32];
/// Ecb::encrypt(&aes, &mut data)?;
/// Ecb::decrypt(&aes, &mut data)?;
/// assert_eq!(data, vec![0u8; 32]);
/// # Ok::<(), rijndael::modes::LengthError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Ecb;

impl Ecb {
    /// Encrypts `data` in place.
    ///
    /// # Errors
    ///
    /// Returns [`LengthError`] unless `data.len()` is a multiple of the
    /// cipher's block length.
    pub fn encrypt<C: BlockCipher + ?Sized>(
        cipher: &C,
        data: &mut [u8],
    ) -> Result<(), LengthError> {
        let bl = cipher.block_len();
        if !data.len().is_multiple_of(bl) {
            return Err(LengthError {
                len: data.len(),
                block: bl,
            });
        }
        for block in data.chunks_exact_mut(bl) {
            cipher.encrypt_in_place(block);
        }
        Ok(())
    }

    /// Decrypts `data` in place.
    ///
    /// # Errors
    ///
    /// Returns [`LengthError`] unless `data.len()` is a multiple of the
    /// cipher's block length.
    pub fn decrypt<C: BlockCipher + ?Sized>(
        cipher: &C,
        data: &mut [u8],
    ) -> Result<(), LengthError> {
        let bl = cipher.block_len();
        if !data.len().is_multiple_of(bl) {
            return Err(LengthError {
                len: data.len(),
                block: bl,
            });
        }
        for block in data.chunks_exact_mut(bl) {
            cipher.decrypt_in_place(block);
        }
        Ok(())
    }
}

/// Cipher block chaining with an explicit IV.
#[derive(Debug, Clone, Copy)]
pub struct Cbc;

impl Cbc {
    /// Encrypts `data` in place under `iv`.
    ///
    /// # Errors
    ///
    /// Returns [`LengthError`] unless `data.len()` is a multiple of the
    /// block length.
    ///
    /// # Panics
    ///
    /// Panics if `iv.len()` differs from the cipher's block length.
    pub fn encrypt<C: BlockCipher + ?Sized>(
        cipher: &C,
        iv: &[u8],
        data: &mut [u8],
    ) -> Result<(), LengthError> {
        let bl = cipher.block_len();
        assert_eq!(iv.len(), bl, "IV must be one block long");
        if !data.len().is_multiple_of(bl) {
            return Err(LengthError {
                len: data.len(),
                block: bl,
            });
        }
        let mut chain = iv.to_vec();
        for block in data.chunks_exact_mut(bl) {
            for (b, c) in block.iter_mut().zip(&chain) {
                *b ^= c;
            }
            cipher.encrypt_in_place(block);
            chain.copy_from_slice(block);
        }
        Ok(())
    }

    /// Decrypts `data` in place under `iv`.
    ///
    /// # Errors
    ///
    /// Returns [`LengthError`] unless `data.len()` is a multiple of the
    /// block length.
    ///
    /// # Panics
    ///
    /// Panics if `iv.len()` differs from the cipher's block length.
    pub fn decrypt<C: BlockCipher + ?Sized>(
        cipher: &C,
        iv: &[u8],
        data: &mut [u8],
    ) -> Result<(), LengthError> {
        let bl = cipher.block_len();
        assert_eq!(iv.len(), bl, "IV must be one block long");
        if !data.len().is_multiple_of(bl) {
            return Err(LengthError {
                len: data.len(),
                block: bl,
            });
        }
        let mut chain = iv.to_vec();
        let mut next_chain = vec![0u8; bl];
        for block in data.chunks_exact_mut(bl) {
            next_chain.copy_from_slice(block);
            cipher.decrypt_in_place(block);
            for (b, c) in block.iter_mut().zip(&chain) {
                *b ^= c;
            }
            core::mem::swap(&mut chain, &mut next_chain);
        }
        Ok(())
    }
}

/// Counter mode: a stream cipher built from block encryptions of a counter.
///
/// Works on any data length; decryption is the same operation as
/// encryption.
#[derive(Debug, Clone, Copy)]
pub struct Ctr;

impl Ctr {
    /// XORs the keystream for (`nonce`, starting counter 0) into `data`.
    ///
    /// # Panics
    ///
    /// Panics if `nonce.len()` differs from the cipher's block length
    /// (the final 4 bytes are replaced by the big-endian block counter).
    pub fn apply<C: BlockCipher + ?Sized>(cipher: &C, nonce: &[u8], data: &mut [u8]) {
        let bl = cipher.block_len();
        assert_eq!(nonce.len(), bl, "nonce must be one block long");
        let mut counter_block = nonce.to_vec();
        let mut keystream = vec![0u8; bl];
        for (i, chunk) in data.chunks_mut(bl).enumerate() {
            let ctr = u32::try_from(i).expect("stream longer than 2^32 blocks");
            counter_block[bl - 4..].copy_from_slice(&ctr.to_be_bytes());
            keystream.copy_from_slice(&counter_block);
            cipher.encrypt_in_place(&mut keystream);
            for (b, k) in chunk.iter_mut().zip(&keystream) {
                *b ^= k;
            }
        }
    }
}

/// Cipher feedback (full-block CFB).
#[derive(Debug, Clone, Copy)]
pub struct Cfb;

impl Cfb {
    /// Encrypts `data` in place under `iv`. Handles a partial final block.
    ///
    /// # Panics
    ///
    /// Panics if `iv.len()` differs from the cipher's block length.
    pub fn encrypt<C: BlockCipher + ?Sized>(cipher: &C, iv: &[u8], data: &mut [u8]) {
        let bl = cipher.block_len();
        assert_eq!(iv.len(), bl, "IV must be one block long");
        let mut feedback = iv.to_vec();
        for chunk in data.chunks_mut(bl) {
            cipher.encrypt_in_place(&mut feedback);
            for (b, k) in chunk.iter_mut().zip(&feedback) {
                *b ^= k;
            }
            feedback[..chunk.len()].copy_from_slice(chunk);
        }
    }

    /// Decrypts `data` in place under `iv`.
    ///
    /// # Panics
    ///
    /// Panics if `iv.len()` differs from the cipher's block length.
    pub fn decrypt<C: BlockCipher + ?Sized>(cipher: &C, iv: &[u8], data: &mut [u8]) {
        let bl = cipher.block_len();
        assert_eq!(iv.len(), bl, "IV must be one block long");
        let mut feedback = iv.to_vec();
        let mut ct = vec![0u8; bl];
        for chunk in data.chunks_mut(bl) {
            ct[..chunk.len()].copy_from_slice(chunk);
            cipher.encrypt_in_place(&mut feedback);
            for (b, k) in chunk.iter_mut().zip(&feedback) {
                *b ^= k;
            }
            feedback[..chunk.len()].copy_from_slice(&ct[..chunk.len()]);
        }
    }
}

/// Output feedback: a synchronous stream cipher. Encryption and decryption
/// are the same operation.
#[derive(Debug, Clone, Copy)]
pub struct Ofb;

impl Ofb {
    /// XORs the OFB keystream for `iv` into `data`.
    ///
    /// # Panics
    ///
    /// Panics if `iv.len()` differs from the cipher's block length.
    pub fn apply<C: BlockCipher + ?Sized>(cipher: &C, iv: &[u8], data: &mut [u8]) {
        let bl = cipher.block_len();
        assert_eq!(iv.len(), bl, "IV must be one block long");
        let mut feedback = iv.to_vec();
        for chunk in data.chunks_mut(bl) {
            cipher.encrypt_in_place(&mut feedback);
            for (b, k) in chunk.iter_mut().zip(&feedback) {
                *b ^= k;
            }
        }
    }
}

/// Appends PKCS#7 padding so the buffer becomes a whole number of blocks.
///
/// # Panics
///
/// Panics if `block_len` is 0 or greater than 255.
pub fn pkcs7_pad(data: &mut Vec<u8>, block_len: usize) {
    assert!(block_len > 0 && block_len <= 255, "invalid block length");
    let pad = block_len - data.len() % block_len;
    data.extend(std::iter::repeat_n(pad as u8, pad));
}

/// Removes PKCS#7 padding, returning the unpadded length, or `None` when
/// the padding is malformed.
#[must_use]
pub fn pkcs7_unpad(data: &[u8], block_len: usize) -> Option<usize> {
    if data.is_empty() || !data.len().is_multiple_of(block_len) {
        return None;
    }
    let pad = *data.last()? as usize;
    if pad == 0 || pad > block_len || pad > data.len() {
        return None;
    }
    let body = data.len() - pad;
    data[body..]
        .iter()
        .all(|&b| b as usize == pad)
        .then_some(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;

    fn cipher() -> Aes128 {
        Aes128::new(&core::array::from_fn(|i| i as u8))
    }

    fn sample(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(73).wrapping_add(5))
            .collect()
    }

    #[test]
    fn ecb_roundtrip_and_determinism() {
        let c = cipher();
        let pt = sample(64);
        let mut a = pt.clone();
        Ecb::encrypt(&c, &mut a).unwrap();
        // Identical plaintext blocks encrypt identically in ECB.
        let half = sample(16);
        let mut t = [half.clone(), half].concat();
        Ecb::encrypt(&c, &mut t).unwrap();
        assert_eq!(&t[..16], &t[16..]);
        Ecb::decrypt(&c, &mut a).unwrap();
        assert_eq!(a, pt);
    }

    #[test]
    fn ecb_rejects_ragged_lengths() {
        let c = cipher();
        let mut data = vec![0u8; 17];
        let err = Ecb::encrypt(&c, &mut data).unwrap_err();
        assert_eq!(err.block, 16);
        assert!(err.to_string().contains("not a multiple"));
    }

    #[test]
    fn cbc_roundtrip_and_chaining() {
        let c = cipher();
        let iv = sample(16);
        let pt = vec![0u8; 48]; // three identical blocks
        let mut ct = pt.clone();
        Cbc::encrypt(&c, &iv, &mut ct).unwrap();
        // Chaining must break the ECB pattern.
        assert_ne!(&ct[..16], &ct[16..32]);
        assert_ne!(&ct[16..32], &ct[32..48]);
        Cbc::decrypt(&c, &iv, &mut ct).unwrap();
        assert_eq!(ct, pt);
    }

    #[test]
    fn cbc_iv_sensitivity() {
        let c = cipher();
        let pt = sample(32);
        let mut a = pt.clone();
        let mut b = pt.clone();
        Cbc::encrypt(&c, &[0u8; 16], &mut a).unwrap();
        Cbc::encrypt(&c, &[1u8; 16], &mut b).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn ctr_roundtrip_any_length() {
        let c = cipher();
        for len in [0usize, 1, 15, 16, 17, 100] {
            let pt = sample(len);
            let mut data = pt.clone();
            Ctr::apply(&c, &[9u8; 16], &mut data);
            if len > 0 {
                assert_ne!(data, pt);
            }
            Ctr::apply(&c, &[9u8; 16], &mut data);
            assert_eq!(data, pt, "CTR roundtrip failed at len {len}");
        }
    }

    #[test]
    fn cfb_roundtrip_any_length() {
        let c = cipher();
        for len in [1usize, 16, 31, 32, 33] {
            let pt = sample(len);
            let mut data = pt.clone();
            Cfb::encrypt(&c, &[3u8; 16], &mut data);
            Cfb::decrypt(&c, &[3u8; 16], &mut data);
            assert_eq!(data, pt, "CFB roundtrip failed at len {len}");
        }
    }

    #[test]
    fn ofb_is_involutive() {
        let c = cipher();
        let pt = sample(50);
        let mut data = pt.clone();
        Ofb::apply(&c, &[8u8; 16], &mut data);
        Ofb::apply(&c, &[8u8; 16], &mut data);
        assert_eq!(data, pt);
    }

    #[test]
    fn ofb_keystream_is_position_dependent() {
        let c = cipher();
        let mut z = vec![0u8; 32];
        Ofb::apply(&c, &[8u8; 16], &mut z);
        assert_ne!(&z[..16], &z[16..]);
    }

    #[test]
    fn pkcs7_roundtrip() {
        for len in 0..=33usize {
            let mut data = sample(len);
            pkcs7_pad(&mut data, 16);
            assert_eq!(data.len() % 16, 0);
            assert!(data.len() > len);
            let body = pkcs7_unpad(&data, 16).unwrap();
            assert_eq!(body, len);
        }
    }

    #[test]
    fn pkcs7_rejects_malformed() {
        assert_eq!(pkcs7_unpad(&[], 16), None);
        assert_eq!(pkcs7_unpad(&[0u8; 16], 16), None); // pad byte 0
        let mut bad = vec![4u8; 16];
        bad[15] = 17; // pad > block
        assert_eq!(pkcs7_unpad(&bad, 16), None);
        let mut torn = vec![2u8; 16];
        torn[14] = 3; // inconsistent pad bytes
        assert_eq!(pkcs7_unpad(&torn, 16), None);
    }
}

//! Block-cipher modes of operation over any [`BlockCipher`].
//!
//! The paper positions the IP for "backbone communication channels" and
//! "Internet Banking" traffic; real deployments wrap the raw block cipher
//! in a mode. ECB, CBC, CTR, CFB and OFB are provided, generic over the
//! cipher so the same workload code drives the software reference, the
//! T-table baseline and the cycle-accurate hardware model.
//!
//! Two call surfaces exist:
//!
//! * the **generic inherent functions** (`Ecb::encrypt`, `Cbc::decrypt`,
//!   ...) — monomorphized hot paths, IV mismatches panic;
//! * the object-safe [`Mode`] **trait** (`&dyn Mode` + [`Iv`]) — the
//!   dynamic surface the multi-core engine and the TCP service route
//!   through, where IV and length problems arrive from the wire and are
//!   reported as [`Error`] values. The trait impls are thin forwarders
//!   onto the inherent functions, so both surfaces are byte-identical.
//!
//! Every mode call also feeds the process-wide telemetry registry
//! ([`telemetry::Registry::global`]): counters
//! `rijndael.mode.<name>.blocks` and `rijndael.mode.<name>.bytes` tally
//! work per mode, one relaxed atomic add per call.

use core::fmt;

use crate::cipher::{BatchCipher, BlockCipher};
use crate::error::Error;

/// Largest block this crate's ciphers produce (`Rijndael<8>`: 32 bytes).
/// The chained modes keep their chaining state in fixed stack buffers of
/// this size instead of heap scratch, so their per-call cost is zero
/// allocations no matter how much data streams through.
const MAX_BLOCK: usize = 32;

/// Keystream blocks prepared per batched CTR step: one wide bitsliced
/// pass ([`crate::bitslice::WIDE`]), a multiple of the 8-block granule.
const CTR_BATCH: usize = crate::bitslice::WIDE;

/// Error for buffers whose length does not fit the requested mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LengthError {
    /// Offending buffer length.
    pub len: usize,
    /// Required granularity in bytes.
    pub block: usize,
}

impl fmt::Display for LengthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer length {} is not a multiple of the {}-byte block",
            self.len, self.block
        )
    }
}

impl std::error::Error for LengthError {}

/// Global-registry instrumentation for the mode layer: one counter pair
/// (blocks, bytes) per mode, resolved once per process and cached so the
/// per-call cost is a relaxed atomic add. `pub(crate)` so the AEAD layer
/// ([`crate::aead`]) records its modes (gcm/xts/kw) through the same
/// naming scheme.
pub(crate) mod stats {
    use std::sync::OnceLock;
    use telemetry::{Counter, Registry};

    pub(crate) struct ModeStats {
        blocks: Counter,
        bytes: Counter,
    }

    impl ModeStats {
        fn new(mode: &str) -> Self {
            let reg = Registry::global();
            ModeStats {
                blocks: reg.counter(&format!("rijndael.mode.{mode}.blocks")),
                bytes: reg.counter(&format!("rijndael.mode.{mode}.bytes")),
            }
        }

        /// Records one mode call over `bytes` bytes of `block`-byte
        /// blocks (partial final blocks count as one block).
        #[inline]
        pub(crate) fn record(&self, bytes: usize, block: usize) {
            self.blocks.add(bytes.div_ceil(block.max(1)) as u64);
            self.bytes.add(bytes as u64);
        }
    }

    macro_rules! mode_stats {
        ($fn_name:ident, $name:literal) => {
            pub(crate) fn $fn_name() -> &'static ModeStats {
                static STATS: OnceLock<ModeStats> = OnceLock::new();
                STATS.get_or_init(|| ModeStats::new($name))
            }
        };
    }
    mode_stats!(ecb, "ecb");
    mode_stats!(cbc, "cbc");
    mode_stats!(ctr, "ctr");
    mode_stats!(cfb, "cfb");
    mode_stats!(ofb, "ofb");
    mode_stats!(gcm, "gcm");
    mode_stats!(xts, "xts");
    mode_stats!(kw, "kw");
}

/// An IV or nonce handed to the object-safe [`Mode`] surface.
///
/// Holds up to 32 bytes inline (the largest block this crate's ciphers
/// produce), so passing one never allocates. ECB takes [`Iv::empty`];
/// the chained and counter modes take one cipher block.
///
/// # Examples
///
/// ```
/// use rijndael::modes::Iv;
///
/// let iv = Iv::from([7u8; 16]);
/// assert_eq!(iv.as_bytes(), &[7u8; 16]);
/// assert!(Iv::empty().is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Iv {
    bytes: [u8; MAX_BLOCK],
    len: usize,
}

impl Iv {
    /// Wraps `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than 32 bytes.
    #[must_use]
    pub fn new(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() <= MAX_BLOCK,
            "IV of {} bytes exceeds the {MAX_BLOCK}-byte maximum block",
            bytes.len()
        );
        let mut iv = Iv::default();
        iv.bytes[..bytes.len()].copy_from_slice(bytes);
        iv.len = bytes.len();
        iv
    }

    /// The zero-length IV (what ECB takes).
    #[must_use]
    pub fn empty() -> Self {
        Iv::default()
    }

    /// The wrapped bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len]
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bytes are wrapped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl From<[u8; 16]> for Iv {
    fn from(bytes: [u8; 16]) -> Self {
        Iv::new(&bytes)
    }
}

impl From<&[u8; 16]> for Iv {
    fn from(bytes: &[u8; 16]) -> Self {
        Iv::new(bytes)
    }
}

/// Validates that `iv` is exactly one cipher block.
fn check_iv(iv: &Iv, block: usize) -> Result<(), Error> {
    if iv.len() == block {
        Ok(())
    } else {
        Err(Error::BadIv {
            len: iv.len(),
            block,
        })
    }
}

/// Object-safe mode-of-operation surface.
///
/// Where the inherent functions are generic (and panic on a bad IV, a
/// programmer error), the trait works over `&dyn BlockCipher` and reports
/// every input problem as a [`Error`] value — the right contract for the
/// engine scheduler and the TCP service, whose IVs and buffers arrive
/// from the wire. Stream modes (CTR, CFB, OFB) accept any data length;
/// block modes (ECB, CBC) require whole blocks.
///
/// # Examples
///
/// ```
/// use rijndael::Aes128;
/// use rijndael::modes::{Cbc, Iv, Mode};
///
/// let aes = Aes128::new(&[0u8; 16]);
/// let mode: &dyn Mode = &Cbc;
/// let iv = Iv::from([9u8; 16]);
/// let mut data = vec![0u8; 32];
/// mode.encrypt_in_place(&aes, &iv, &mut data)?;
/// mode.decrypt_in_place(&aes, &iv, &mut data)?;
/// assert_eq!(data, vec![0u8; 32]);
/// # Ok::<(), rijndael::Error>(())
/// ```
pub trait Mode {
    /// Stable lowercase mode name (`"ecb"`, `"cbc"`, ...).
    fn name(&self) -> &'static str;

    /// `true` when data must be a whole number of cipher blocks.
    fn requires_full_blocks(&self) -> bool;

    /// Encrypts `data` in place under `iv`.
    ///
    /// # Errors
    ///
    /// [`Error::BadIv`] when `iv` is not one cipher block (for modes that
    /// take one); [`Error::RaggedLength`] when a block mode receives a
    /// ragged buffer.
    fn encrypt_in_place(
        &self,
        cipher: &dyn BlockCipher,
        iv: &Iv,
        data: &mut [u8],
    ) -> Result<(), Error>;

    /// Decrypts `data` in place under `iv`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mode::encrypt_in_place`].
    fn decrypt_in_place(
        &self,
        cipher: &dyn BlockCipher,
        iv: &Iv,
        data: &mut [u8],
    ) -> Result<(), Error>;
}

impl Mode for Ecb {
    fn name(&self) -> &'static str {
        "ecb"
    }

    fn requires_full_blocks(&self) -> bool {
        true
    }

    /// ECB takes no IV; `iv` is ignored.
    fn encrypt_in_place(
        &self,
        cipher: &dyn BlockCipher,
        _iv: &Iv,
        data: &mut [u8],
    ) -> Result<(), Error> {
        Ecb::encrypt(cipher, data).map_err(Error::from)
    }

    /// ECB takes no IV; `iv` is ignored.
    fn decrypt_in_place(
        &self,
        cipher: &dyn BlockCipher,
        _iv: &Iv,
        data: &mut [u8],
    ) -> Result<(), Error> {
        Ecb::decrypt(cipher, data).map_err(Error::from)
    }
}

impl Mode for Cbc {
    fn name(&self) -> &'static str {
        "cbc"
    }

    fn requires_full_blocks(&self) -> bool {
        true
    }

    fn encrypt_in_place(
        &self,
        cipher: &dyn BlockCipher,
        iv: &Iv,
        data: &mut [u8],
    ) -> Result<(), Error> {
        check_iv(iv, cipher.block_len())?;
        Cbc::encrypt(cipher, iv.as_bytes(), data).map_err(Error::from)
    }

    fn decrypt_in_place(
        &self,
        cipher: &dyn BlockCipher,
        iv: &Iv,
        data: &mut [u8],
    ) -> Result<(), Error> {
        check_iv(iv, cipher.block_len())?;
        Cbc::decrypt(cipher, iv.as_bytes(), data).map_err(Error::from)
    }
}

impl Mode for Ctr {
    fn name(&self) -> &'static str {
        "ctr"
    }

    fn requires_full_blocks(&self) -> bool {
        false
    }

    fn encrypt_in_place(
        &self,
        cipher: &dyn BlockCipher,
        iv: &Iv,
        data: &mut [u8],
    ) -> Result<(), Error> {
        check_iv(iv, cipher.block_len())?;
        Ctr::apply(cipher, iv.as_bytes(), data);
        Ok(())
    }

    /// CTR decryption is the same keystream XOR as encryption.
    fn decrypt_in_place(
        &self,
        cipher: &dyn BlockCipher,
        iv: &Iv,
        data: &mut [u8],
    ) -> Result<(), Error> {
        self.encrypt_in_place(cipher, iv, data)
    }
}

impl Mode for Cfb {
    fn name(&self) -> &'static str {
        "cfb"
    }

    fn requires_full_blocks(&self) -> bool {
        false
    }

    fn encrypt_in_place(
        &self,
        cipher: &dyn BlockCipher,
        iv: &Iv,
        data: &mut [u8],
    ) -> Result<(), Error> {
        check_iv(iv, cipher.block_len())?;
        Cfb::encrypt(cipher, iv.as_bytes(), data);
        Ok(())
    }

    fn decrypt_in_place(
        &self,
        cipher: &dyn BlockCipher,
        iv: &Iv,
        data: &mut [u8],
    ) -> Result<(), Error> {
        check_iv(iv, cipher.block_len())?;
        Cfb::decrypt(cipher, iv.as_bytes(), data);
        Ok(())
    }
}

impl Mode for Ofb {
    fn name(&self) -> &'static str {
        "ofb"
    }

    fn requires_full_blocks(&self) -> bool {
        false
    }

    fn encrypt_in_place(
        &self,
        cipher: &dyn BlockCipher,
        iv: &Iv,
        data: &mut [u8],
    ) -> Result<(), Error> {
        check_iv(iv, cipher.block_len())?;
        Ofb::apply(cipher, iv.as_bytes(), data);
        Ok(())
    }

    /// OFB is involutive: decryption is the same keystream XOR.
    fn decrypt_in_place(
        &self,
        cipher: &dyn BlockCipher,
        iv: &Iv,
        data: &mut [u8],
    ) -> Result<(), Error> {
        self.encrypt_in_place(cipher, iv, data)
    }
}

/// Electronic codebook: each block enciphered independently.
///
/// # Examples
///
/// ```
/// use rijndael::{Aes128, modes::Ecb};
///
/// let aes = Aes128::new(&[0u8; 16]);
/// let mut data = vec![0u8; 32];
/// Ecb::encrypt(&aes, &mut data)?;
/// Ecb::decrypt(&aes, &mut data)?;
/// assert_eq!(data, vec![0u8; 32]);
/// # Ok::<(), rijndael::modes::LengthError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Ecb;

impl Ecb {
    /// Encrypts `data` in place.
    ///
    /// # Errors
    ///
    /// Returns [`LengthError`] unless `data.len()` is a multiple of the
    /// cipher's block length.
    pub fn encrypt<C: BlockCipher + ?Sized>(
        cipher: &C,
        data: &mut [u8],
    ) -> Result<(), LengthError> {
        let bl = cipher.block_len();
        if !data.len().is_multiple_of(bl) {
            return Err(LengthError {
                len: data.len(),
                block: bl,
            });
        }
        for block in data.chunks_exact_mut(bl) {
            cipher.encrypt_in_place(block);
        }
        stats::ecb().record(data.len(), bl);
        Ok(())
    }

    /// Decrypts `data` in place.
    ///
    /// # Errors
    ///
    /// Returns [`LengthError`] unless `data.len()` is a multiple of the
    /// cipher's block length.
    pub fn decrypt<C: BlockCipher + ?Sized>(
        cipher: &C,
        data: &mut [u8],
    ) -> Result<(), LengthError> {
        let bl = cipher.block_len();
        if !data.len().is_multiple_of(bl) {
            return Err(LengthError {
                len: data.len(),
                block: bl,
            });
        }
        for block in data.chunks_exact_mut(bl) {
            cipher.decrypt_in_place(block);
        }
        stats::ecb().record(data.len(), bl);
        Ok(())
    }

    /// Encrypts `data` in place through the cipher's batch path: the
    /// whole payload is handed to [`BatchCipher::encrypt_blocks`] at
    /// once, so a bitsliced cipher runs full multi-block passes instead
    /// of one [`BlockCipher`] call per block.
    ///
    /// # Errors
    ///
    /// Returns [`LengthError`] unless `data.len()` is a multiple of 16.
    pub fn encrypt_batched<C: BatchCipher + ?Sized>(
        cipher: &C,
        data: &mut [u8],
    ) -> Result<(), LengthError> {
        let (blocks, rest) = data.as_chunks_mut::<16>();
        if !rest.is_empty() {
            return Err(LengthError {
                len: blocks.len() * 16 + rest.len(),
                block: 16,
            });
        }
        cipher.encrypt_blocks(blocks);
        stats::ecb().record(blocks.len() * 16, 16);
        Ok(())
    }

    /// Decrypts `data` in place through the cipher's batch path (see
    /// [`Ecb::encrypt_batched`]).
    ///
    /// # Errors
    ///
    /// Returns [`LengthError`] unless `data.len()` is a multiple of 16.
    pub fn decrypt_batched<C: BatchCipher + ?Sized>(
        cipher: &C,
        data: &mut [u8],
    ) -> Result<(), LengthError> {
        let (blocks, rest) = data.as_chunks_mut::<16>();
        if !rest.is_empty() {
            return Err(LengthError {
                len: blocks.len() * 16 + rest.len(),
                block: 16,
            });
        }
        cipher.decrypt_blocks(blocks);
        stats::ecb().record(blocks.len() * 16, 16);
        Ok(())
    }
}

/// Cipher block chaining with an explicit IV.
#[derive(Debug, Clone, Copy)]
pub struct Cbc;

impl Cbc {
    /// Encrypts `data` in place under `iv`.
    ///
    /// # Errors
    ///
    /// Returns [`LengthError`] unless `data.len()` is a multiple of the
    /// block length.
    ///
    /// # Panics
    ///
    /// Panics if `iv.len()` differs from the cipher's block length, or if
    /// that length exceeds [`MAX_BLOCK`] bytes.
    pub fn encrypt<C: BlockCipher + ?Sized>(
        cipher: &C,
        iv: &[u8],
        data: &mut [u8],
    ) -> Result<(), LengthError> {
        let bl = cipher.block_len();
        assert_eq!(iv.len(), bl, "IV must be one block long");
        assert!(bl <= MAX_BLOCK, "block length exceeds chaining scratch");
        if !data.len().is_multiple_of(bl) {
            return Err(LengthError {
                len: data.len(),
                block: bl,
            });
        }
        let mut chain = [0u8; MAX_BLOCK];
        chain[..bl].copy_from_slice(iv);
        for block in data.chunks_exact_mut(bl) {
            for (b, c) in block.iter_mut().zip(&chain) {
                *b ^= c;
            }
            cipher.encrypt_in_place(block);
            chain[..bl].copy_from_slice(block);
        }
        stats::cbc().record(data.len(), bl);
        Ok(())
    }

    /// Decrypts `data` in place under `iv`.
    ///
    /// # Errors
    ///
    /// Returns [`LengthError`] unless `data.len()` is a multiple of the
    /// block length.
    ///
    /// # Panics
    ///
    /// Panics if `iv.len()` differs from the cipher's block length, or if
    /// that length exceeds [`MAX_BLOCK`] bytes.
    pub fn decrypt<C: BlockCipher + ?Sized>(
        cipher: &C,
        iv: &[u8],
        data: &mut [u8],
    ) -> Result<(), LengthError> {
        let bl = cipher.block_len();
        assert_eq!(iv.len(), bl, "IV must be one block long");
        assert!(bl <= MAX_BLOCK, "block length exceeds chaining scratch");
        if !data.len().is_multiple_of(bl) {
            return Err(LengthError {
                len: data.len(),
                block: bl,
            });
        }
        let mut chain = [0u8; MAX_BLOCK];
        chain[..bl].copy_from_slice(iv);
        let mut next_chain = [0u8; MAX_BLOCK];
        for block in data.chunks_exact_mut(bl) {
            next_chain[..bl].copy_from_slice(block);
            cipher.decrypt_in_place(block);
            for (b, c) in block.iter_mut().zip(&chain) {
                *b ^= c;
            }
            core::mem::swap(&mut chain, &mut next_chain);
        }
        stats::cbc().record(data.len(), bl);
        Ok(())
    }
}

/// Counter mode: a stream cipher built from block encryptions of a counter.
///
/// Follows the NIST SP 800-38A convention: the nonce is the *initial
/// counter block* and the standard incrementing function adds one to the
/// whole block, big-endian, wrapping modulo 2^(8·block) — carries
/// propagate past the low 32-bit word into the nonce bytes.
///
/// Works on any data length; decryption is the same operation as
/// encryption. Keystream blocks are independent, so a stream can be
/// produced in parallel chunks via [`Ctr::apply_at`] (the multi-core
/// engine shards exactly this way).
#[derive(Debug, Clone, Copy)]
pub struct Ctr;

/// Adds `inc` to a big-endian counter block in place, wrapping modulo
/// 2^(8·len) — the standard incrementing function of SP 800-38A §B.1
/// applied to the full block width.
fn counter_add(block: &mut [u8], mut inc: u128) {
    let mut carry = 0u16;
    for b in block.iter_mut().rev() {
        let sum = u16::from(*b) + ((inc & 0xFF) as u16) + carry;
        *b = sum as u8;
        carry = sum >> 8;
        inc >>= 8;
        if inc == 0 && carry == 0 {
            break;
        }
    }
}

impl Ctr {
    /// XORs the keystream for initial counter block `nonce` into `data`.
    ///
    /// # Panics
    ///
    /// Panics if `nonce.len()` differs from the cipher's block length.
    pub fn apply<C: BlockCipher + ?Sized>(cipher: &C, nonce: &[u8], data: &mut [u8]) {
        Self::apply_at(cipher, nonce, 0, data);
    }

    /// XORs the keystream into `data`, starting `first_block` blocks into
    /// the stream: block `i` of `data` is XORed with the encryption of
    /// `nonce + first_block + i` (wrapping). `apply_at(c, n, 0, data)` is
    /// [`Ctr::apply`]; splitting `data` at any block boundary and applying
    /// each piece with the matching offset produces identical bytes, which
    /// is what makes CTR shardable across cores.
    ///
    /// # Panics
    ///
    /// Panics if `nonce.len()` differs from the cipher's block length, or
    /// if that length exceeds [`MAX_BLOCK`] bytes.
    pub fn apply_at<C: BlockCipher + ?Sized>(
        cipher: &C,
        nonce: &[u8],
        first_block: u128,
        data: &mut [u8],
    ) {
        let bl = cipher.block_len();
        assert_eq!(nonce.len(), bl, "nonce must be one block long");
        assert!(bl <= MAX_BLOCK, "block length exceeds counter scratch");
        let mut counter_block = [0u8; MAX_BLOCK];
        counter_block[..bl].copy_from_slice(nonce);
        counter_add(&mut counter_block[..bl], first_block);
        let mut keystream = [0u8; MAX_BLOCK];
        for chunk in data.chunks_mut(bl) {
            keystream[..bl].copy_from_slice(&counter_block[..bl]);
            cipher.encrypt_in_place(&mut keystream[..bl]);
            for (b, k) in chunk.iter_mut().zip(&keystream) {
                *b ^= k;
            }
            counter_add(&mut counter_block[..bl], 1);
        }
        stats::ctr().record(data.len(), bl);
    }

    /// XORs the keystream into `data` through the cipher's batch path:
    /// counter blocks are precomputed [`CTR_BATCH`] at a time (via the
    /// same incrementing function as [`Ctr::apply_at`]) and encrypted in
    /// one [`BatchCipher::encrypt_blocks`] call, so a bitsliced cipher
    /// fills whole passes. Byte-identical to
    /// `apply_at(cipher, nonce, first_block, data)` on any data length.
    pub fn apply_batched<C: BatchCipher + ?Sized>(
        cipher: &C,
        nonce: &[u8; 16],
        first_block: u128,
        data: &mut [u8],
    ) {
        let mut keystream = [[0u8; 16]; CTR_BATCH];
        let mut index = first_block;
        for chunk in data.chunks_mut(CTR_BATCH * 16) {
            let nblocks = chunk.len().div_ceil(16);
            let batch = &mut keystream[..nblocks];
            Self::fill_counter_blocks(nonce, index, batch);
            cipher.encrypt_blocks(batch);
            for (b, k) in chunk.iter_mut().zip(batch.as_flattened()) {
                *b ^= k;
            }
            index = index.wrapping_add(nblocks as u128);
        }
        stats::ctr().record(data.len(), 16);
    }

    /// Fills `out[i]` with counter block `nonce + first_block + i` under
    /// the standard incrementing function (wrapping modulo 2^128) — the
    /// counter precompute feeding [`Ctr::apply_batched`], shared with the
    /// multi-core engine's CTR sharding.
    pub fn fill_counter_blocks(nonce: &[u8; 16], first_block: u128, out: &mut [[u8; 16]]) {
        let mut blocks = out.iter_mut();
        let Some(first) = blocks.next() else {
            return;
        };
        first.copy_from_slice(nonce);
        counter_add(first, first_block);
        let mut prev = *first;
        for block in blocks {
            counter_add(&mut prev, 1);
            block.copy_from_slice(&prev);
        }
    }

    /// The counter block `index` positions into the stream that starts at
    /// `nonce`: `nonce + index` under the standard incrementing function.
    /// Exposed so external schedulers (the multi-core engine) generate
    /// byte-identical keystream blocks. Returns the block by value on the
    /// stack — this sits next to the sharding hot path, so no allocation.
    #[must_use]
    pub fn counter_block(nonce: &[u8; 16], index: u128) -> [u8; 16] {
        let mut block = *nonce;
        counter_add(&mut block, index);
        block
    }
}

/// Cipher feedback (full-block CFB).
#[derive(Debug, Clone, Copy)]
pub struct Cfb;

impl Cfb {
    /// Encrypts `data` in place under `iv`. Handles a partial final block.
    ///
    /// # Panics
    ///
    /// Panics if `iv.len()` differs from the cipher's block length, or if
    /// that length exceeds [`MAX_BLOCK`] bytes.
    pub fn encrypt<C: BlockCipher + ?Sized>(cipher: &C, iv: &[u8], data: &mut [u8]) {
        let bl = cipher.block_len();
        assert_eq!(iv.len(), bl, "IV must be one block long");
        assert!(bl <= MAX_BLOCK, "block length exceeds feedback scratch");
        let mut feedback = [0u8; MAX_BLOCK];
        feedback[..bl].copy_from_slice(iv);
        for chunk in data.chunks_mut(bl) {
            cipher.encrypt_in_place(&mut feedback[..bl]);
            for (b, k) in chunk.iter_mut().zip(&feedback) {
                *b ^= k;
            }
            feedback[..chunk.len()].copy_from_slice(chunk);
        }
        stats::cfb().record(data.len(), bl);
    }

    /// Decrypts `data` in place under `iv`.
    ///
    /// # Panics
    ///
    /// Panics if `iv.len()` differs from the cipher's block length, or if
    /// that length exceeds [`MAX_BLOCK`] bytes.
    pub fn decrypt<C: BlockCipher + ?Sized>(cipher: &C, iv: &[u8], data: &mut [u8]) {
        let bl = cipher.block_len();
        assert_eq!(iv.len(), bl, "IV must be one block long");
        assert!(bl <= MAX_BLOCK, "block length exceeds feedback scratch");
        let mut feedback = [0u8; MAX_BLOCK];
        feedback[..bl].copy_from_slice(iv);
        let mut ct = [0u8; MAX_BLOCK];
        for chunk in data.chunks_mut(bl) {
            ct[..chunk.len()].copy_from_slice(chunk);
            cipher.encrypt_in_place(&mut feedback[..bl]);
            for (b, k) in chunk.iter_mut().zip(&feedback) {
                *b ^= k;
            }
            feedback[..chunk.len()].copy_from_slice(&ct[..chunk.len()]);
        }
        stats::cfb().record(data.len(), bl);
    }
}

/// Output feedback: a synchronous stream cipher. Encryption and decryption
/// are the same operation.
#[derive(Debug, Clone, Copy)]
pub struct Ofb;

impl Ofb {
    /// XORs the OFB keystream for `iv` into `data`.
    ///
    /// # Panics
    ///
    /// Panics if `iv.len()` differs from the cipher's block length, or if
    /// that length exceeds [`MAX_BLOCK`] bytes.
    pub fn apply<C: BlockCipher + ?Sized>(cipher: &C, iv: &[u8], data: &mut [u8]) {
        let bl = cipher.block_len();
        assert_eq!(iv.len(), bl, "IV must be one block long");
        assert!(bl <= MAX_BLOCK, "block length exceeds feedback scratch");
        let mut feedback = [0u8; MAX_BLOCK];
        feedback[..bl].copy_from_slice(iv);
        for chunk in data.chunks_mut(bl) {
            cipher.encrypt_in_place(&mut feedback[..bl]);
            for (b, k) in chunk.iter_mut().zip(&feedback) {
                *b ^= k;
            }
        }
        stats::ofb().record(data.len(), bl);
    }
}

/// Appends PKCS#7 padding so the buffer becomes a whole number of blocks.
///
/// # Panics
///
/// Panics if `block_len` is 0 or greater than 255.
pub fn pkcs7_pad(data: &mut Vec<u8>, block_len: usize) {
    assert!(block_len > 0 && block_len <= 255, "invalid block length");
    let pad = block_len - data.len() % block_len;
    data.extend(std::iter::repeat_n(pad as u8, pad));
}

/// Removes PKCS#7 padding, returning the unpadded length, or `None` when
/// the padding is malformed.
#[must_use]
pub fn pkcs7_unpad(data: &[u8], block_len: usize) -> Option<usize> {
    if data.is_empty() || !data.len().is_multiple_of(block_len) {
        return None;
    }
    let pad = *data.last()? as usize;
    if pad == 0 || pad > block_len || pad > data.len() {
        return None;
    }
    let body = data.len() - pad;
    data[body..]
        .iter()
        .all(|&b| b as usize == pad)
        .then_some(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;

    fn cipher() -> Aes128 {
        Aes128::new(&core::array::from_fn(|i| i as u8))
    }

    fn sample(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(73).wrapping_add(5))
            .collect()
    }

    #[test]
    fn ecb_roundtrip_and_determinism() {
        let c = cipher();
        let pt = sample(64);
        let mut a = pt.clone();
        Ecb::encrypt(&c, &mut a).unwrap();
        // Identical plaintext blocks encrypt identically in ECB.
        let half = sample(16);
        let mut t = [half.clone(), half].concat();
        Ecb::encrypt(&c, &mut t).unwrap();
        assert_eq!(&t[..16], &t[16..]);
        Ecb::decrypt(&c, &mut a).unwrap();
        assert_eq!(a, pt);
    }

    #[test]
    fn ecb_rejects_ragged_lengths() {
        let c = cipher();
        let mut data = vec![0u8; 17];
        let err = Ecb::encrypt(&c, &mut data).unwrap_err();
        assert_eq!(err.block, 16);
        assert!(err.to_string().contains("not a multiple"));
    }

    #[test]
    fn cbc_roundtrip_and_chaining() {
        let c = cipher();
        let iv = sample(16);
        let pt = vec![0u8; 48]; // three identical blocks
        let mut ct = pt.clone();
        Cbc::encrypt(&c, &iv, &mut ct).unwrap();
        // Chaining must break the ECB pattern.
        assert_ne!(&ct[..16], &ct[16..32]);
        assert_ne!(&ct[16..32], &ct[32..48]);
        Cbc::decrypt(&c, &iv, &mut ct).unwrap();
        assert_eq!(ct, pt);
    }

    #[test]
    fn cbc_iv_sensitivity() {
        let c = cipher();
        let pt = sample(32);
        let mut a = pt.clone();
        let mut b = pt.clone();
        Cbc::encrypt(&c, &[0u8; 16], &mut a).unwrap();
        Cbc::encrypt(&c, &[1u8; 16], &mut b).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn ctr_sp800_38a_f5_known_answer() {
        // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt: key 2b7e...4f3c,
        // initial counter block f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff. This
        // vector only passes when the *whole* counter block increments —
        // the old code replaced the low word with 0,1,2,3.
        let key = [
            0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF,
            0x4F, 0x3C,
        ];
        let nonce: [u8; 16] = core::array::from_fn(|i| 0xF0 + i as u8);
        let mut data = [
            0x6B, 0xC1, 0xBE, 0xE2, 0x2E, 0x40, 0x9F, 0x96, 0xE9, 0x3D, 0x7E, 0x11, 0x73, 0x93,
            0x17, 0x2A, 0xAE, 0x2D, 0x8A, 0x57, 0x1E, 0x03, 0xAC, 0x9C, 0x9E, 0xB7, 0x6F, 0xAC,
            0x45, 0xAF, 0x8E, 0x51, 0x30, 0xC8, 0x1C, 0x46, 0xA3, 0x5C, 0xE4, 0x11, 0xE5, 0xFB,
            0xC1, 0x19, 0x1A, 0x0A, 0x52, 0xEF, 0xF6, 0x9F, 0x24, 0x45, 0xDF, 0x4F, 0x9B, 0x17,
            0xAD, 0x2B, 0x41, 0x7B, 0xE6, 0x6C, 0x37, 0x10,
        ];
        Ctr::apply(&Aes128::new(&key), &nonce, &mut data);
        let expect = [
            0x87, 0x4D, 0x61, 0x91, 0xB6, 0x20, 0xE3, 0x26, 0x1B, 0xEF, 0x68, 0x64, 0x99, 0x0D,
            0xB6, 0xCE, 0x98, 0x06, 0xF6, 0x6B, 0x79, 0x70, 0xFD, 0xFF, 0x86, 0x17, 0x18, 0x7B,
            0xB9, 0xFF, 0xFD, 0xFF, 0x5A, 0xE4, 0xDF, 0x3E, 0xDB, 0xD5, 0xD3, 0x5E, 0x5B, 0x4F,
            0x09, 0x02, 0x0D, 0xB0, 0x3E, 0xAB, 0x1E, 0x03, 0x1D, 0xDA, 0x2F, 0xBE, 0x03, 0xD1,
            0x79, 0x21, 0x70, 0xA0, 0xF3, 0x00, 0x9C, 0xEE,
        ];
        assert_eq!(data, expect);
    }

    #[test]
    fn ctr_carry_crosses_the_32bit_word_boundary() {
        // Initial counter ...FFFFFFFF: block 1 must carry into byte 11
        // (the byte just above the low 32-bit word), per SP 800-38A.
        let c = cipher();
        let mut nonce = [0xAAu8; 16];
        nonce[12..].fill(0xFF);
        let mut data = vec![0u8; 32]; // zero plaintext ⇒ data = keystream
        Ctr::apply(&c, &nonce, &mut data);

        let mut ctr0 = nonce;
        let mut ctr1 = [0xAAu8; 16];
        ctr1[11] = 0xAB;
        ctr1[12..].fill(0x00);
        c.encrypt_in_place(&mut ctr0);
        c.encrypt_in_place(&mut ctr1);
        assert_eq!(&data[..16], &ctr0[..]);
        assert_eq!(&data[16..], &ctr1[..], "carry must propagate past bit 32");
    }

    #[test]
    fn ctr_wraps_at_the_full_128bit_boundary() {
        // Initial counter all-FF: block 1 wraps to the all-zero block
        // (increment is modulo 2^128).
        let c = cipher();
        let mut data = vec![0u8; 32];
        Ctr::apply(&c, &[0xFFu8; 16], &mut data);

        let mut top = [0xFFu8; 16];
        let mut wrapped = [0x00u8; 16];
        c.encrypt_in_place(&mut top);
        c.encrypt_in_place(&mut wrapped);
        assert_eq!(&data[..16], &top[..]);
        assert_eq!(&data[16..], &wrapped[..], "counter must wrap mod 2^128");
    }

    #[test]
    fn ctr_chunked_apply_at_matches_one_shot() {
        // Splitting the stream at block boundaries and applying each chunk
        // with its offset must reproduce the one-shot bytes exactly.
        let c = cipher();
        let nonce: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(91));
        let pt = sample(100);
        let mut one_shot = pt.clone();
        Ctr::apply(&c, &nonce, &mut one_shot);

        let mut chunked = pt;
        let (head, rest) = chunked.split_at_mut(48); // 3 blocks
        let (mid, tail) = rest.split_at_mut(32); // 2 blocks, tail partial
        Ctr::apply_at(&c, &nonce, 0, head);
        Ctr::apply_at(&c, &nonce, 3, mid);
        Ctr::apply_at(&c, &nonce, 5, tail);
        assert_eq!(chunked, one_shot);
    }

    #[test]
    fn ctr_counter_block_helper_matches_increment() {
        assert_eq!(Ctr::counter_block(&[0u8; 16], 5)[15], 5);
        let wrapped = Ctr::counter_block(&[0xFFu8; 16], 1);
        assert_eq!(wrapped, [0u8; 16]);
        let mut big = Ctr::counter_block(&[0u8; 16], u128::MAX);
        assert_eq!(big, [0xFFu8; 16]);
        super::counter_add(&mut big, 2);
        assert_eq!(big[15], 1, "wrapping add past u128::MAX");
    }

    #[test]
    fn ecb_batched_matches_per_block_for_every_cipher() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let reference = Aes128::new(&key);
        let sliced = crate::bitslice::Bitsliced8::new(&key);
        for blocks in [1usize, 7, 8, 9, 64, 65, 100] {
            let pt = sample(blocks * 16);
            let mut expect = pt.clone();
            Ecb::encrypt(&reference, &mut expect).unwrap();

            let mut via_ref = pt.clone();
            Ecb::encrypt_batched(&reference, &mut via_ref).unwrap();
            assert_eq!(via_ref, expect, "default batch path, {blocks} blocks");

            let mut via_sliced = pt.clone();
            Ecb::encrypt_batched(&sliced, &mut via_sliced).unwrap();
            assert_eq!(via_sliced, expect, "bitsliced batch path, {blocks} blocks");

            Ecb::decrypt_batched(&sliced, &mut via_sliced).unwrap();
            assert_eq!(via_sliced, pt, "bitsliced batch decrypt, {blocks} blocks");
        }
    }

    #[test]
    fn ecb_batched_rejects_ragged_lengths() {
        let c = cipher();
        let mut data = vec![0u8; 40];
        let err = Ecb::encrypt_batched(&c, &mut data).unwrap_err();
        assert_eq!((err.len, err.block), (40, 16));
        assert!(Ecb::decrypt_batched(&c, &mut data).is_err());
    }

    #[test]
    fn ctr_apply_batched_matches_apply_at_any_length_and_offset() {
        let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(29) ^ 0x42);
        let reference = Aes128::new(&key);
        let sliced = crate::bitslice::Bitsliced8::new(&key);
        let nonce: [u8; 16] = core::array::from_fn(|i| 0xD0 ^ (i as u8));
        for (len, offset) in [
            (1usize, 0u128),
            (15, 7),
            (16, 1),
            (100, 3),
            (64 * 16, 0),
            (64 * 16 + 40, 9),
            (3 * 64 * 16 + 1, 1 << 80),
        ] {
            let pt = sample(len);
            let mut expect = pt.clone();
            Ctr::apply_at(&reference, &nonce, offset, &mut expect);
            let mut got = pt.clone();
            Ctr::apply_batched(&sliced, &nonce, offset, &mut got);
            assert_eq!(got, expect, "len {len} offset {offset}");
        }
    }

    #[test]
    fn ctr_counter_wrap_across_a_batch_boundary_known_answer() {
        // Start the counter 3 blocks below 2^128: the wrap to the all-zero
        // block happens *inside* the first precomputed batch, so the
        // batched path must carry SP 800-38A's modulo-2^128 semantics into
        // the 8-wide precompute, not just the scalar loop.
        let c = cipher();
        let sliced =
            crate::bitslice::Bitsliced8::new(&core::array::from_fn::<u8, 16, _>(|i| i as u8));
        let mut nonce = [0xFFu8; 16];
        nonce[15] = 0xFD; // nonce = 2^128 - 3
        let blocks = 20usize;

        let mut expect = vec![0u8; blocks * 16];
        Ctr::apply(&c, &nonce, &mut expect);
        let mut got = vec![0u8; blocks * 16];
        Ctr::apply_batched(&sliced, &nonce, 0, &mut got);
        assert_eq!(got, expect);

        // Keystream block 3 is the encryption of the wrapped (all-zero)
        // counter — pin it as a direct known answer too.
        let mut zero_ctr = [0u8; 16];
        c.encrypt_in_place(&mut zero_ctr);
        assert_eq!(&got[48..64], &zero_ctr[..], "wrap lands at block 3");
    }

    #[test]
    fn fill_counter_blocks_shares_increment_semantics_with_apply_at() {
        let nonce: [u8; 16] = core::array::from_fn(|i| 0xF0 + i as u8);
        let mut out = [[0u8; 16]; 5];
        Ctr::fill_counter_blocks(&nonce, 2, &mut out);
        for (i, block) in out.iter().enumerate() {
            assert_eq!(
                *block,
                Ctr::counter_block(&nonce, 2 + i as u128),
                "block {i}"
            );
        }
        Ctr::fill_counter_blocks(&nonce, 0, &mut []); // empty batch is a no-op
    }

    #[test]
    fn ctr_roundtrip_any_length() {
        let c = cipher();
        for len in [0usize, 1, 15, 16, 17, 100] {
            let pt = sample(len);
            let mut data = pt.clone();
            Ctr::apply(&c, &[9u8; 16], &mut data);
            if len > 0 {
                assert_ne!(data, pt);
            }
            Ctr::apply(&c, &[9u8; 16], &mut data);
            assert_eq!(data, pt, "CTR roundtrip failed at len {len}");
        }
    }

    #[test]
    fn cfb_roundtrip_any_length() {
        let c = cipher();
        for len in [1usize, 16, 31, 32, 33] {
            let pt = sample(len);
            let mut data = pt.clone();
            Cfb::encrypt(&c, &[3u8; 16], &mut data);
            Cfb::decrypt(&c, &[3u8; 16], &mut data);
            assert_eq!(data, pt, "CFB roundtrip failed at len {len}");
        }
    }

    #[test]
    fn ofb_is_involutive() {
        let c = cipher();
        let pt = sample(50);
        let mut data = pt.clone();
        Ofb::apply(&c, &[8u8; 16], &mut data);
        Ofb::apply(&c, &[8u8; 16], &mut data);
        assert_eq!(data, pt);
    }

    #[test]
    fn ofb_keystream_is_position_dependent() {
        let c = cipher();
        let mut z = vec![0u8; 32];
        Ofb::apply(&c, &[8u8; 16], &mut z);
        assert_ne!(&z[..16], &z[16..]);
    }

    #[test]
    fn pkcs7_roundtrip() {
        for len in 0..=33usize {
            let mut data = sample(len);
            pkcs7_pad(&mut data, 16);
            assert_eq!(data.len() % 16, 0);
            assert!(data.len() > len);
            let body = pkcs7_unpad(&data, 16).unwrap();
            assert_eq!(body, len);
        }
    }

    #[test]
    fn pkcs7_rejects_malformed() {
        assert_eq!(pkcs7_unpad(&[], 16), None);
        assert_eq!(pkcs7_unpad(&[0u8; 16], 16), None); // pad byte 0
        let mut bad = vec![4u8; 16];
        bad[15] = 17; // pad > block
        assert_eq!(pkcs7_unpad(&bad, 16), None);
        let mut torn = vec![2u8; 16];
        torn[14] = 3; // inconsistent pad bytes
        assert_eq!(pkcs7_unpad(&torn, 16), None);
    }

    #[test]
    fn pkcs7_unpad_edge_cases_return_none_without_panicking() {
        // Degenerate block length: nothing can be validly padded to
        // blocks of zero bytes — must report None, never divide by zero.
        assert_eq!(pkcs7_unpad(&[1u8], 0), None);
        assert_eq!(pkcs7_unpad(&[], 0), None);
        // Ragged input (not a multiple of the block).
        assert_eq!(pkcs7_unpad(&[1u8; 17], 16), None);
        // Pad byte claims more bytes than the buffer holds.
        let mut overlong = vec![0u8; 16];
        overlong[15] = 32;
        assert_eq!(pkcs7_unpad(&overlong, 16), None);
        // A full block of pad (the empty-message encoding) is valid.
        assert_eq!(pkcs7_unpad(&[16u8; 16], 16), Some(0));
    }

    #[test]
    #[should_panic(expected = "invalid block length")]
    fn pkcs7_pad_rejects_zero_block() {
        pkcs7_pad(&mut vec![1u8, 2], 0);
    }

    #[test]
    fn iv_wraps_bytes_without_allocating() {
        let iv = Iv::new(&[5u8; 16]);
        assert_eq!(iv.as_bytes(), &[5u8; 16]);
        assert_eq!(iv.len(), 16);
        assert!(!iv.is_empty());
        assert_eq!(Iv::from([7u8; 16]), Iv::from(&[7u8; 16]));
        assert!(Iv::empty().as_bytes().is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds the 32-byte maximum block")]
    fn iv_rejects_oversized_bytes() {
        let _ = Iv::new(&[0u8; 33]);
    }

    #[test]
    fn mode_trait_matches_the_inherent_functions() {
        let c = cipher();
        let iv_bytes = [0x5Au8; 16];
        let iv = Iv::from(iv_bytes);
        let modes: [(&dyn Mode, bool); 5] = [
            (&Ecb, true),
            (&Cbc, true),
            (&Ctr, false),
            (&Cfb, false),
            (&Ofb, false),
        ];
        for (mode, full_blocks) in modes {
            assert_eq!(mode.requires_full_blocks(), full_blocks, "{}", mode.name());
            let len = if full_blocks { 48 } else { 50 };
            let pt = sample(len);

            let mut expect = pt.clone();
            match mode.name() {
                "ecb" => Ecb::encrypt(&c, &mut expect).unwrap(),
                "cbc" => Cbc::encrypt(&c, &iv_bytes, &mut expect).unwrap(),
                "ctr" => Ctr::apply(&c, &iv_bytes, &mut expect),
                "cfb" => Cfb::encrypt(&c, &iv_bytes, &mut expect),
                "ofb" => Ofb::apply(&c, &iv_bytes, &mut expect),
                other => panic!("unexpected mode {other}"),
            }

            let mut via_trait = pt.clone();
            mode.encrypt_in_place(&c, &iv, &mut via_trait).unwrap();
            assert_eq!(via_trait, expect, "{} trait encrypt", mode.name());
            mode.decrypt_in_place(&c, &iv, &mut via_trait).unwrap();
            assert_eq!(via_trait, pt, "{} trait roundtrip", mode.name());
        }
    }

    #[test]
    fn mode_trait_reports_bad_ivs_and_ragged_lengths_as_errors() {
        let c = cipher();
        let short_iv = Iv::new(&[0u8; 4]);
        let mut data = vec![0u8; 32];
        for mode in [&Cbc as &dyn Mode, &Ctr, &Cfb, &Ofb] {
            assert_eq!(
                mode.encrypt_in_place(&c, &short_iv, &mut data),
                Err(Error::BadIv { len: 4, block: 16 }),
                "{} must reject a short IV",
                mode.name()
            );
            assert_eq!(
                mode.decrypt_in_place(&c, &short_iv, &mut data),
                Err(Error::BadIv { len: 4, block: 16 }),
                "{} must reject a short IV on decrypt",
                mode.name()
            );
        }
        let mut ragged = vec![0u8; 17];
        let iv = Iv::from([0u8; 16]);
        assert_eq!(
            Mode::encrypt_in_place(&Ecb, &c, &Iv::empty(), &mut ragged),
            Err(Error::RaggedLength { len: 17, block: 16 })
        );
        assert_eq!(
            Mode::decrypt_in_place(&Cbc, &c, &iv, &mut ragged),
            Err(Error::RaggedLength { len: 17, block: 16 })
        );
    }

    #[test]
    fn mode_calls_feed_the_global_registry() {
        let c = cipher();
        let reg = telemetry::Registry::global();
        let before = reg.snapshot();
        let mut data = sample(64);
        Ecb::encrypt(&c, &mut data).unwrap();
        Ctr::apply(&c, &[1u8; 16], &mut data[..50]);
        let after = reg.snapshot();
        // Other tests share the process-wide registry, so assert on the
        // delta being at least this test's contribution.
        let d = after.delta(&before);
        assert!(d.counter("rijndael.mode.ecb.blocks").unwrap() >= 4);
        assert!(d.counter("rijndael.mode.ecb.bytes").unwrap() >= 64);
        assert!(d.counter("rijndael.mode.ctr.blocks").unwrap() >= 4);
        assert!(d.counter("rijndael.mode.ctr.bytes").unwrap() >= 50);
    }
}

//! The NIST AESAVS Monte Carlo Test (MCT) procedure.
//!
//! AESAVS validates implementations by chaining 100 outer rounds of 1000
//! inner encryptions with key feedback — a long dependence chain that
//! shakes out state-management bugs no single known-answer vector can.
//! This reproduction runs the procedure over any [`BlockCipher`] so the
//! software reference and the hardware models can be validated against
//! each other (the workspace integration tests do exactly that).

use crate::cipher::BlockCipher;

/// Result of one MCT run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MctResult {
    /// Ciphertext after each outer round (100 entries in the full
    /// procedure).
    pub checkpoints: Vec<[u8; 16]>,
    /// The final key (after all key-feedback updates).
    pub final_key: Vec<u8>,
}

/// Runs the AESAVS encryption MCT for an AES-128 key.
///
/// Each outer round runs `inner` encryptions feeding the ciphertext back
/// as plaintext, then XORs the last ciphertext into the key. The official
/// procedure uses `outer = 100`, `inner = 1000`; reduced counts give a
/// faster smoke-test with the same chaining structure.
///
/// `make_cipher` constructs the implementation under test for a given
/// key — this is where a hardware model gets its key loaded.
///
/// # Panics
///
/// Panics if `outer` or `inner` is zero.
pub fn encrypt_mct<C: BlockCipher>(
    key: [u8; 16],
    seed_plaintext: [u8; 16],
    outer: usize,
    inner: usize,
    mut make_cipher: impl FnMut(&[u8; 16]) -> C,
) -> MctResult {
    assert!(outer > 0 && inner > 0, "MCT needs at least one round");
    let mut key = key;
    let mut pt = seed_plaintext;
    let mut checkpoints = Vec::with_capacity(outer);

    for _ in 0..outer {
        let cipher = make_cipher(&key);
        let mut prev = [0u8; 16];
        let mut ct = [0u8; 16];
        for j in 0..inner {
            let mut block = pt;
            cipher.encrypt_in_place(&mut block);
            prev = ct;
            ct = block;
            // CT_{j-1} is the next plaintext per the AESAVS procedure
            // (for j = 0 the previous CT is the running one; the official
            // text uses CT_j as the next PT for AES-128 ECB).
            pt = ct;
            let _ = j;
        }
        checkpoints.push(ct);
        // Key_{i+1} = Key_i xor CT_last (AES-128 rule).
        for (k, c) in key.iter_mut().zip(&ct) {
            *k ^= c;
        }
        let _ = prev;
        pt = ct;
    }

    MctResult {
        checkpoints,
        final_key: key.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;
    use crate::ttable::TtableAes;

    #[test]
    fn reference_and_ttable_agree_over_the_chain() {
        let key = [0u8; 16];
        let seed = [0u8; 16];
        let a = encrypt_mct(key, seed, 10, 100, Aes128::new);
        let b = encrypt_mct(key, seed, 10, 100, |k| {
            TtableAes::new(k).expect("AES key length")
        });
        assert_eq!(a, b);
        // The chain must keep moving: all checkpoints distinct.
        let mut seen = std::collections::HashSet::new();
        for c in &a.checkpoints {
            assert!(seen.insert(*c), "checkpoint repeated — chain collapsed");
        }
        assert_ne!(a.final_key, key.to_vec());
    }

    #[test]
    fn checkpoints_depend_on_every_parameter() {
        let base = encrypt_mct([0u8; 16], [0u8; 16], 3, 50, Aes128::new);
        let other_key = encrypt_mct([1u8; 16], [0u8; 16], 3, 50, Aes128::new);
        let other_seed = encrypt_mct([0u8; 16], [1u8; 16], 3, 50, Aes128::new);
        let other_inner = encrypt_mct([0u8; 16], [0u8; 16], 3, 51, Aes128::new);
        assert_ne!(base.checkpoints, other_key.checkpoints);
        assert_ne!(base.checkpoints, other_seed.checkpoints);
        assert_ne!(base.checkpoints, other_inner.checkpoints);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let _ = encrypt_mct([0u8; 16], [0u8; 16], 0, 1, Aes128::new);
    }
}

//! AES-CMAC message authentication (RFC 4493 / NIST SP 800-38B).
//!
//! The paper's application scenarios (smart cards, banking traffic) need
//! authentication as much as confidentiality; CMAC builds it from the
//! same block cipher — so the hardware model can compute it with zero
//! extra gates. Generic over [`BlockCipher`], like the modes.

use crate::cipher::BlockCipher;

/// Doubling in GF(2^128) with the CMAC polynomial (x^128+x^7+x^2+x+1):
/// shift left one bit, conditionally XOR 0x87 into the last byte.
fn dbl(block: &mut [u8; 16]) {
    let msb = block[0] & 0x80 != 0;
    for i in 0..15 {
        block[i] = (block[i] << 1) | (block[i + 1] >> 7);
    }
    block[15] <<= 1;
    if msb {
        block[15] ^= 0x87;
    }
}

/// The derived subkeys `(K1, K2)` of RFC 4493 §2.3.
#[must_use]
pub fn subkeys<C: BlockCipher>(cipher: &C) -> ([u8; 16], [u8; 16]) {
    assert_eq!(cipher.block_len(), 16, "CMAC is defined for 128-bit blocks");
    let mut l = [0u8; 16];
    cipher.encrypt_in_place(&mut l);
    let mut k1 = l;
    dbl(&mut k1);
    let mut k2 = k1;
    dbl(&mut k2);
    (k1, k2)
}

/// Computes the 128-bit AES-CMAC tag of `message`.
///
/// # Examples
///
/// ```
/// use rijndael::{Aes128, cmac::cmac};
///
/// // RFC 4493 example 1: the empty message.
/// let key = [
///     0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
///     0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C,
/// ];
/// let tag = cmac(&Aes128::new(&key), b"");
/// assert_eq!(tag[..4], [0xBB, 0x1D, 0x69, 0x29]);
/// ```
///
/// # Panics
///
/// Panics if the cipher's block length is not 16 bytes.
#[must_use]
pub fn cmac<C: BlockCipher>(cipher: &C, message: &[u8]) -> [u8; 16] {
    let (k1, k2) = subkeys(cipher);

    // Number of blocks, with the empty message counted as one.
    let n = message.len().div_ceil(16).max(1);
    let complete = !message.is_empty() && message.len().is_multiple_of(16);

    let mut x = [0u8; 16];
    for block in 0..n - 1 {
        for (xi, &mi) in x.iter_mut().zip(&message[16 * block..16 * (block + 1)]) {
            *xi ^= mi;
        }
        cipher.encrypt_in_place(&mut x);
    }

    // Last block: XOR K1 when complete, pad + XOR K2 otherwise.
    let tail = &message[16 * (n - 1)..];
    let mut last = [0u8; 16];
    if complete {
        last.copy_from_slice(tail);
        for (l, k) in last.iter_mut().zip(&k1) {
            *l ^= k;
        }
    } else {
        last[..tail.len()].copy_from_slice(tail);
        last[tail.len()] = 0x80;
        for (l, k) in last.iter_mut().zip(&k2) {
            *l ^= k;
        }
    }
    for (xi, &li) in x.iter_mut().zip(&last) {
        *xi ^= li;
    }
    cipher.encrypt_in_place(&mut x);
    x
}

/// Constant-time equality over two equal-length byte slices: the full
/// length is always scanned and every byte pair contributes to one
/// accumulated difference word, so the comparison never exits early on
/// the first mismatch (the classic MAC-forgery timing oracle).
///
/// # Panics
///
/// Panics if the slices differ in length — length is public information;
/// only the *contents* are compared in constant time.
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    assert_eq!(a.len(), b.len(), "ct_eq compares equal-length slices");
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Constant-shape tag verification via [`ct_eq`] (this model is not a
/// side-channel boundary, but the API mirrors real ones: no early exit on
/// the first mismatching tag byte).
#[must_use]
pub fn verify<C: BlockCipher>(cipher: &C, message: &[u8], tag: &[u8; 16]) -> bool {
    let computed = cmac(cipher, message);
    ct_eq(&computed, tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;

    const RFC_KEY: [u8; 16] = [
        0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F,
        0x3C,
    ];

    #[test]
    fn rfc4493_subkeys() {
        // RFC 4493 §4: K1 = fbeed618 35713366 7c85e08f 7236a8de,
        //              K2 = f7ddac30 6ae266cc f90bc11e e46d513b.
        let (k1, k2) = subkeys(&Aes128::new(&RFC_KEY));
        assert_eq!(
            k1,
            [
                0xFB, 0xEE, 0xD6, 0x18, 0x35, 0x71, 0x33, 0x66, 0x7C, 0x85, 0xE0, 0x8F, 0x72, 0x36,
                0xA8, 0xDE
            ]
        );
        assert_eq!(
            k2,
            [
                0xF7, 0xDD, 0xAC, 0x30, 0x6A, 0xE2, 0x66, 0xCC, 0xF9, 0x0B, 0xC1, 0x1E, 0xE4, 0x6D,
                0x51, 0x3B
            ]
        );
    }

    #[test]
    fn rfc4493_example_1_empty_message() {
        let tag = cmac(&Aes128::new(&RFC_KEY), b"");
        assert_eq!(
            tag,
            [
                0xBB, 0x1D, 0x69, 0x29, 0xE9, 0x59, 0x37, 0x28, 0x7F, 0xA3, 0x7D, 0x12, 0x9B, 0x75,
                0x67, 0x46
            ]
        );
    }

    #[test]
    fn rfc4493_example_2_one_block() {
        // M = 6bc1bee2 2e409f96 e93d7e11 7393172a
        // tag = 070a16b4 6b4d4144 f79bdd9d d04a287c
        let msg = [
            0x6B, 0xC1, 0xBE, 0xE2, 0x2E, 0x40, 0x9F, 0x96, 0xE9, 0x3D, 0x7E, 0x11, 0x73, 0x93,
            0x17, 0x2A,
        ];
        let tag = cmac(&Aes128::new(&RFC_KEY), &msg);
        assert_eq!(
            tag,
            [
                0x07, 0x0A, 0x16, 0xB4, 0x6B, 0x4D, 0x41, 0x44, 0xF7, 0x9B, 0xDD, 0x9D, 0xD0, 0x4A,
                0x28, 0x7C
            ]
        );
    }

    #[test]
    fn rfc4493_example_3_40_bytes() {
        // M = first 40 bytes of the NIST test pattern;
        // tag = dfa66747 de9ae630 30ca3261 1497c827.
        let msg = [
            0x6B, 0xC1, 0xBE, 0xE2, 0x2E, 0x40, 0x9F, 0x96, 0xE9, 0x3D, 0x7E, 0x11, 0x73, 0x93,
            0x17, 0x2A, 0xAE, 0x2D, 0x8A, 0x57, 0x1E, 0x03, 0xAC, 0x9C, 0x9E, 0xB7, 0x6F, 0xAC,
            0x45, 0xAF, 0x8E, 0x51, 0x30, 0xC8, 0x1C, 0x46, 0xA3, 0x5C, 0xE4, 0x11,
        ];
        let tag = cmac(&Aes128::new(&RFC_KEY), &msg);
        assert_eq!(
            tag,
            [
                0xDF, 0xA6, 0x67, 0x47, 0xDE, 0x9A, 0xE6, 0x30, 0x30, 0xCA, 0x32, 0x61, 0x14, 0x97,
                0xC8, 0x27
            ]
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let cipher = Aes128::new(&RFC_KEY);
        let msg = b"transaction: 42 units";
        let tag = cmac(&cipher, msg);
        assert!(verify(&cipher, msg, &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!verify(&cipher, msg, &bad));
        assert!(!verify(&cipher, b"transaction: 43 units", &tag));
    }

    #[test]
    fn verify_rejects_every_single_bit_corruption() {
        // Flip each of the 128 tag bits in turn: every corrupted tag must
        // be rejected (and the pristine tag accepted), so no bit of the
        // comparison is ignored.
        let cipher = Aes128::new(&RFC_KEY);
        let msg = b"settlement batch 0x2003";
        let tag = cmac(&cipher, msg);
        assert!(verify(&cipher, msg, &tag));
        for byte in 0..16 {
            for bit in 0..8 {
                let mut bad = tag;
                bad[byte] ^= 1 << bit;
                assert!(
                    !verify(&cipher, msg, &bad),
                    "accepted tag corrupted at byte {byte} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn ct_eq_basic_contract() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(&[0x80], &[0x00]));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn ct_eq_rejects_length_mismatch() {
        let _ = ct_eq(b"ab", b"abc");
    }

    #[test]
    fn tags_depend_on_length_not_just_content() {
        let cipher = Aes128::new(&RFC_KEY);
        // A complete block vs the same bytes plus padding path.
        let t16 = cmac(&cipher, &[0xAA; 16]);
        let t15 = cmac(&cipher, &[0xAA; 15]);
        let t17 = cmac(&cipher, &[0xAA; 17]);
        assert_ne!(t16, t15);
        assert_ne!(t16, t17);
    }
}

//! Cut-based K-input LUT technology mapping.
//!
//! The classic FPGA mapping recipe (FlowMap/Cutmap lineage):
//!
//! 1. enumerate cuts of size ≤ K for every combinational node by merging
//!    operand cuts (keeping the best few by depth, then size);
//! 2. label each node with its depth-optimal cut;
//! 3. cover the netlist from the roots (primary outputs, flip-flop data
//!    inputs, ROM address pins) backwards, instantiating one LUT per
//!    chosen cut;
//! 4. pack LUT+FF pairs into logic cells the way Altera's LE/LC does.
//!
//! The mapped network is functionally verified against the gate network in
//! the tests (and in the cross-crate integration tests on the real AES
//! datapath).

use std::collections::{HashMap, HashSet};

use crate::ir::{CellKind, NetId, Netlist};

/// Mapper parameters.
#[derive(Debug, Clone, Copy)]
pub struct MapperConfig {
    /// LUT input count (4 for the Acex1K/Cyclone generation).
    pub k: u32,
    /// Cuts retained per node during enumeration.
    pub max_cuts: usize,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig { k: 4, max_cuts: 12 }
    }
}

/// One mapped LUT.
#[derive(Debug, Clone)]
pub struct Lut {
    /// The net this LUT drives (a root or an interior boundary).
    pub output: NetId,
    /// Leaf nets, in truth-table input order.
    pub inputs: Vec<NetId>,
    /// Truth table: bit `i` is the output for input assignment `i`
    /// (input `j` contributes bit `j` of `i`).
    pub truth: u64,
    /// LUT depth from the sequential/IO boundary (1 = fed by leaves only).
    pub level: u32,
}

/// One physical ROM retained as an embedded-memory macro.
#[derive(Debug, Clone)]
pub struct RomMacro {
    /// Group id from the source netlist.
    pub group: u32,
    /// Address nets (LSB first; shared by all 8 slices).
    pub addr: Vec<NetId>,
    /// The 8 output nets (may be fewer if some bits were pruned).
    pub outputs: Vec<NetId>,
}

/// The mapping result.
#[derive(Debug, Clone)]
pub struct MappedDesign {
    /// Instantiated LUTs (covering order, roots last).
    pub luts: Vec<Lut>,
    /// Flip-flop count carried over from the netlist.
    pub dff_count: usize,
    /// ROM macros kept in embedded memory.
    pub roms: Vec<RomMacro>,
    /// Logic cells after LUT+FF packing.
    pub logic_cells: usize,
    /// LUT levels on the longest combinational path.
    pub depth: u32,
    /// Index into `luts` by driven net.
    pub lut_of_net: HashMap<NetId, usize>,
}

impl MappedDesign {
    /// Total embedded memory bits (2048 per ROM macro).
    #[must_use]
    pub fn memory_bits(&self) -> usize {
        self.roms.len() * 2048
    }
}

#[derive(Clone, PartialEq, Eq)]
struct Cut {
    leaves: Vec<NetId>, // sorted
    depth: u32,
}

/// Maps a netlist onto K-input LUTs.
///
/// Run [`crate::opt::optimize`] first; constant operands inflate cuts.
///
/// # Examples
///
/// ```
/// use netlist::ir::Netlist;
/// use netlist::mapper::{map, MapperConfig};
///
/// let mut nl = Netlist::new("maj");
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let c = nl.input("c");
/// let ab = nl.and2(a, b);
/// let bc = nl.and2(b, c);
/// let ca = nl.and2(c, a);
/// let t = nl.or2(ab, bc);
/// let maj = nl.or2(t, ca);
/// nl.output("maj", maj);
/// let mapped = map(&nl, &MapperConfig::default());
/// assert_eq!(mapped.luts.len(), 1); // 3-input majority fits one LUT4
/// assert_eq!(mapped.depth, 1);
/// ```
#[must_use]
pub fn map(netlist: &Netlist, cfg: &MapperConfig) -> MappedDesign {
    assert!((2..=6).contains(&cfg.k), "LUT size must be 2..=6");
    let cells = netlist.cells();
    let n = cells.len();

    // ------------------------------------------------------------------
    // Node labels (depth) and best cuts, forward pass.
    // Leaves: Input, Dff (q), Const. RomBit outputs get a label derived
    // from their address nets but are cut leaves themselves.
    // ------------------------------------------------------------------
    let mut label = vec![0u32; n];
    let mut best_cut: Vec<Option<Cut>> = vec![None; n];
    let mut cut_sets: Vec<Vec<Cut>> = vec![Vec::new(); n];

    for i in 0..n {
        let id = NetId(i as u32);
        match &cells[i].kind {
            CellKind::Input | CellKind::Dff => {
                label[i] = 0;
                cut_sets[i] = vec![Cut {
                    leaves: vec![id],
                    depth: 0,
                }];
            }
            CellKind::Const(_) => {
                // Constants are free: they contribute no cut leaves (the
                // truth-table computation folds them away).
                label[i] = 0;
                cut_sets[i] = vec![Cut {
                    leaves: vec![],
                    depth: 0,
                }];
            }
            CellKind::RomBit { .. } => {
                let l = cells[i]
                    .inputs
                    .iter()
                    .map(|a| label[a.idx()])
                    .max()
                    .unwrap_or(0);
                label[i] = l + 1;
                cut_sets[i] = vec![Cut {
                    leaves: vec![id],
                    depth: l + 1,
                }];
            }
            kind if kind.is_combinational() => {
                let ops = &cells[i].inputs;
                // Merge operand cut sets.
                let mut merged: Vec<Cut> = Vec::new();
                merge_cuts(ops, &cut_sets, cfg, &mut merged);
                // Depth of each merged cut = 1 + max leaf label.
                for c in &mut merged {
                    c.depth = 1 + c.leaves.iter().map(|l| label[l.idx()]).max().unwrap_or(0);
                }
                merged.sort_by_key(|c| (c.depth, c.leaves.len()));
                merged.dedup_by(|a, b| a.leaves == b.leaves);
                merged.truncate(cfg.max_cuts);
                assert!(
                    !merged.is_empty(),
                    "no feasible cut for node {i} — operand fanin exceeds K?"
                );
                label[i] = merged[0].depth;
                best_cut[i] = Some(merged[0].clone());
                // Parents may also treat this node as a leaf.
                let mut with_trivial = merged;
                with_trivial.push(Cut {
                    leaves: vec![id],
                    depth: label[i],
                });
                cut_sets[i] = with_trivial;
            }
            _ => unreachable!("unhandled cell kind"),
        }
    }

    // ------------------------------------------------------------------
    // Area flow: expected LUT cost per node, discounted by fanout, used
    // to pick cheap cuts off the critical path during covering.
    // ------------------------------------------------------------------
    let fanout = netlist.fanouts();
    let mut area_flow = vec![0.0f64; n];
    for i in 0..n {
        if cells[i].kind.is_combinational() {
            let mut best = f64::INFINITY;
            for cut in &cut_sets[i] {
                if cut.leaves == [NetId(i as u32)] {
                    continue; // trivial self-cut
                }
                let mut af = 1.0;
                for &l in &cut.leaves {
                    if cells[l.idx()].kind.is_combinational() {
                        af += area_flow[l.idx()] / f64::from(fanout[l.idx()].max(1));
                    }
                }
                best = best.min(af);
            }
            area_flow[i] = if best.is_finite() { best } else { 1.0 };
        }
    }

    // ------------------------------------------------------------------
    // Covering from roots with required-time slack: every node gets the
    // cheapest (area-flow) cut whose depth bound still meets its required
    // time; the global depth target is the depth-optimal one.
    // ------------------------------------------------------------------
    let mut roots: Vec<NetId> = Vec::new();
    for po in netlist.outputs() {
        roots.push(po.net);
    }
    for cell in cells {
        match &cell.kind {
            CellKind::Dff | CellKind::RomBit { .. } => roots.extend(&cell.inputs),
            _ => {}
        }
    }
    let global_target = roots.iter().map(|r| label[r.idx()]).max().unwrap_or(0);

    // Process in descending net order (reverse topological): parents fix a
    // node's required time before the node itself is covered.
    let mut req: Vec<u32> = vec![u32::MAX; n];
    let mut needed = vec![false; n];
    for &r in &roots {
        if cells[r.idx()].kind.is_combinational() {
            needed[r.idx()] = true;
            req[r.idx()] = req[r.idx()].min(global_target);
        }
    }

    let mut chosen: Vec<Option<usize>> = vec![None; n]; // cut index per node
    for i in (0..n).rev() {
        if !needed[i] {
            continue;
        }
        let id = NetId(i as u32);
        let budget = req[i];
        let mut best: Option<(usize, f64, u32)> = None; // (idx, af, depth)
        for (ci, cut) in cut_sets[i].iter().enumerate() {
            if cut.leaves == [id] {
                continue; // trivial self-cut
            }
            let depth = 1 + cut.leaves.iter().map(|l| label[l.idx()]).max().unwrap_or(0);
            if depth > budget {
                continue;
            }
            let mut af = 1.0;
            for &l in &cut.leaves {
                if cells[l.idx()].kind.is_combinational() {
                    af += area_flow[l.idx()] / f64::from(fanout[l.idx()].max(1));
                }
            }
            let better = match best {
                None => true,
                Some((_, baf, bd)) => af < baf - 1e-12 || (af < baf + 1e-12 && depth < bd),
            };
            if better {
                best = Some((ci, af, depth));
            }
        }
        let (ci, _, _) = best.expect("label-feasible cut exists within the budget");
        chosen[i] = Some(ci);
        for &l in &cut_sets[i][ci].leaves {
            let li = l.idx();
            if cells[li].kind.is_combinational() {
                needed[li] = true;
                req[li] = req[li].min(budget - 1);
            } else if let CellKind::RomBit { .. } = cells[li].kind {
                // ROM addresses become roots with the remaining budget.
                for &a in &cells[li].inputs {
                    if cells[a.idx()].kind.is_combinational() {
                        needed[a.idx()] = true;
                        req[a.idx()] = req[a.idx()].min(budget.saturating_sub(2));
                    }
                }
            }
        }
    }

    let mut luts: Vec<Lut> = Vec::new();
    let mut lut_of_net: HashMap<NetId, usize> = HashMap::new();
    for i in 0..n {
        if let Some(ci) = chosen[i] {
            let net = NetId(i as u32);
            let cut = &cut_sets[i][ci];
            let truth = cone_truth(netlist, net, &cut.leaves);
            lut_of_net.insert(net, luts.len());
            luts.push(Lut {
                output: net,
                inputs: cut.leaves.clone(),
                truth,
                level: 0,
            });
        }
    }
    let _ = &best_cut; // labels retain the depth-optimal reference

    // ------------------------------------------------------------------
    // LUT levels (longest path in the mapped network).
    // ------------------------------------------------------------------
    let mut level_memo: HashMap<NetId, u32> = HashMap::new();
    fn net_level(
        net: NetId,
        cells: &[crate::ir::Cell],
        luts: &[Lut],
        lut_of_net: &HashMap<NetId, usize>,
        memo: &mut HashMap<NetId, u32>,
    ) -> u32 {
        if let Some(&l) = memo.get(&net) {
            return l;
        }
        let l = if let Some(&li) = lut_of_net.get(&net) {
            1 + luts[li]
                .inputs
                .iter()
                .map(|&x| net_level(x, cells, luts, lut_of_net, memo))
                .max()
                .unwrap_or(0)
        } else if let CellKind::RomBit { .. } = cells[net.idx()].kind {
            1 + cells[net.idx()]
                .inputs
                .iter()
                .map(|&x| net_level(x, cells, luts, lut_of_net, memo))
                .max()
                .unwrap_or(0)
        } else {
            0
        };
        memo.insert(net, l);
        l
    }
    let mut depth = 0;
    let lut_nets: Vec<NetId> = luts.iter().map(|l| l.output).collect();
    for netv in lut_nets {
        let l = net_level(netv, cells, &luts, &lut_of_net, &mut level_memo);
        let li = lut_of_net[&netv];
        luts[li].level = l;
        depth = depth.max(l);
    }

    // ------------------------------------------------------------------
    // ROM macros.
    // ------------------------------------------------------------------
    let mut rom_map: HashMap<u32, RomMacro> = HashMap::new();
    for (i, cell) in cells.iter().enumerate() {
        if let CellKind::RomBit { group, .. } = &cell.kind {
            let entry = rom_map.entry(*group).or_insert_with(|| RomMacro {
                group: *group,
                addr: cell.inputs.clone(),
                outputs: Vec::new(),
            });
            entry.outputs.push(NetId(i as u32));
        }
    }
    let mut roms: Vec<RomMacro> = rom_map.into_values().collect();
    roms.sort_by_key(|r| r.group);

    // ------------------------------------------------------------------
    // LUT + FF packing into logic cells. Each LC holds one LUT and one FF;
    // a FF pairs with the LUT driving its D input (one FF per LUT).
    // ------------------------------------------------------------------
    let mut dff_count = 0usize;
    let mut host_taken: HashSet<NetId> = HashSet::new();
    let mut paired = 0usize;
    for cell in cells {
        if matches!(cell.kind, CellKind::Dff) {
            dff_count += 1;
            let d = cell.inputs[0];
            if lut_of_net.contains_key(&d) && host_taken.insert(d) {
                paired += 1;
            }
        }
    }
    let logic_cells = luts.len() + dff_count - paired;

    MappedDesign {
        luts,
        dff_count,
        roms,
        logic_cells,
        depth,
        lut_of_net,
    }
}

/// Merges operand cut sets into candidate cuts of size ≤ K.
fn merge_cuts(ops: &[NetId], cut_sets: &[Vec<Cut>], cfg: &MapperConfig, out: &mut Vec<Cut>) {
    fn rec(
        ops: &[NetId],
        idx: usize,
        acc: Vec<NetId>,
        cut_sets: &[Vec<Cut>],
        cfg: &MapperConfig,
        out: &mut Vec<Cut>,
    ) {
        if out.len() > 4 * cfg.max_cuts * cfg.max_cuts {
            return; // enumeration budget
        }
        if idx == ops.len() {
            out.push(Cut {
                leaves: acc,
                depth: 0,
            });
            return;
        }
        for cut in &cut_sets[ops[idx].idx()] {
            let mut merged = acc.clone();
            for &l in &cut.leaves {
                if !merged.contains(&l) {
                    merged.push(l);
                }
            }
            if merged.len() <= cfg.k as usize {
                let mut m = merged;
                m.sort();
                rec(ops, idx + 1, m, cut_sets, cfg, out);
            }
        }
    }
    rec(ops, 0, Vec::new(), cut_sets, cfg, out);
}

/// Evaluates the cone rooted at `root` with the given leaf assignment and
/// returns the truth table over `leaves` (input `j` = bit `j`).
fn cone_truth(netlist: &Netlist, root: NetId, leaves: &[NetId]) -> u64 {
    assert!(leaves.len() <= 6, "LUT wider than supported");
    let mut truth = 0u64;
    for assignment in 0..(1u32 << leaves.len()) {
        let mut memo: HashMap<NetId, bool> = leaves
            .iter()
            .enumerate()
            .map(|(j, &l)| (l, (assignment >> j) & 1 == 1))
            .collect();
        if eval_cone(netlist, root, &mut memo) {
            truth |= 1u64 << assignment;
        }
    }
    truth
}

fn eval_cone(netlist: &Netlist, net: NetId, memo: &mut HashMap<NetId, bool>) -> bool {
    if let Some(&v) = memo.get(&net) {
        return v;
    }
    let cell = netlist.cell(net);
    let v = match &cell.kind {
        CellKind::Const(c) => *c,
        CellKind::Not => !eval_cone(netlist, cell.inputs[0], memo),
        CellKind::And2 => {
            eval_cone(netlist, cell.inputs[0], memo) & eval_cone(netlist, cell.inputs[1], memo)
        }
        CellKind::Or2 => {
            eval_cone(netlist, cell.inputs[0], memo) | eval_cone(netlist, cell.inputs[1], memo)
        }
        CellKind::Xor2 => {
            eval_cone(netlist, cell.inputs[0], memo) ^ eval_cone(netlist, cell.inputs[1], memo)
        }
        CellKind::Mux2 => {
            if eval_cone(netlist, cell.inputs[0], memo) {
                eval_cone(netlist, cell.inputs[2], memo)
            } else {
                eval_cone(netlist, cell.inputs[1], memo)
            }
        }
        other => panic!("cone escapes through non-combinational cell {other:?}"),
    };
    memo.insert(net, v);
    v
}

/// Evaluates a mapped design on a primary-input/state assignment and
/// returns the value of every *visible* net (LUT outputs, leaves). Used
/// for mapping-equivalence verification.
///
/// # Panics
///
/// Panics if an input or flip-flop value is missing.
#[must_use]
pub fn evaluate_mapped(
    netlist: &Netlist,
    mapped: &MappedDesign,
    input_values: &HashMap<NetId, bool>,
    state: &HashMap<NetId, bool>,
) -> HashMap<NetId, bool> {
    let mut values: HashMap<NetId, bool> = HashMap::new();
    for (&net, &v) in input_values {
        values.insert(net, v);
    }
    for (&net, &v) in state {
        values.insert(net, v);
    }
    // Constants are free leaves.
    for (i, cell) in netlist.cells().iter().enumerate() {
        if let CellKind::Const(c) = cell.kind {
            values.insert(NetId(i as u32), c);
        }
    }

    fn get(
        net: NetId,
        netlist: &Netlist,
        mapped: &MappedDesign,
        values: &mut HashMap<NetId, bool>,
    ) -> bool {
        if let Some(&v) = values.get(&net) {
            return v;
        }
        let v = if let Some(&li) = mapped.lut_of_net.get(&net) {
            let lut = &mapped.luts[li];
            let mut idx = 0u32;
            for (j, &inp) in lut.inputs.iter().enumerate() {
                if get(inp, netlist, mapped, values) {
                    idx |= 1 << j;
                }
            }
            (lut.truth >> idx) & 1 == 1
        } else if let CellKind::RomBit { table, .. } = &netlist.cell(net).kind {
            let mut a = 0u8;
            for (bit, &inp) in netlist.cell(net).inputs.iter().enumerate() {
                if get(inp, netlist, mapped, values) {
                    a |= 1 << bit;
                }
            }
            table.get(a)
        } else {
            panic!("net {net:?} is not visible in the mapped design");
        };
        values.insert(net, v);
        v
    }

    let visible: Vec<NetId> = netlist
        .outputs()
        .iter()
        .map(|p| p.net)
        .chain(
            netlist
                .cells()
                .iter()
                .filter(|&c| matches!(c.kind, CellKind::Dff))
                .map(|c| c.inputs[0]),
        )
        .collect();
    for net in visible {
        get(net, netlist, mapped, &mut values);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_equivalence(nl: &Netlist, mapped: &MappedDesign, patterns: u32) {
        let pis: Vec<NetId> = nl.inputs().iter().map(|p| p.net).collect();
        let dffs: Vec<NetId> = nl
            .cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c.kind, CellKind::Dff))
            .map(|(i, _)| NetId(i as u32))
            .collect();
        let mut seed = 0xC0FF_EE00_1234u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..patterns {
            let iv: HashMap<NetId, bool> = pis.iter().map(|&n| (n, rng() & 1 == 1)).collect();
            let st: HashMap<NetId, bool> = dffs.iter().map(|&n| (n, rng() & 1 == 1)).collect();
            let gate_vals = nl.evaluate(&iv, &st);
            let mapped_vals = evaluate_mapped(nl, mapped, &iv, &st);
            for po in nl.outputs() {
                assert_eq!(
                    gate_vals[po.net.idx()],
                    mapped_vals[&po.net],
                    "output {} diverged",
                    po.name
                );
            }
            for &q in &dffs {
                let d = nl.cell(q).inputs[0];
                assert_eq!(gate_vals[d.idx()], mapped_vals[&d], "next-state diverged");
            }
        }
    }

    #[test]
    fn majority_fits_one_lut() {
        let mut nl = Netlist::new("maj");
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let ab = nl.and2(a, b);
        let bc = nl.and2(b, c);
        let ca = nl.and2(c, a);
        let t = nl.or2(ab, bc);
        let m = nl.or2(t, ca);
        nl.output("maj", m);
        let mapped = map(&nl, &MapperConfig::default());
        assert_eq!(mapped.luts.len(), 1);
        assert_eq!(mapped.depth, 1);
        assert_eq!(mapped.logic_cells, 1);
        check_equivalence(&nl, &mapped, 16);
    }

    #[test]
    fn wide_xor_tree_depth() {
        // 16-input XOR: depth 2 with LUT4s (4 leaves + 1 combiner... the
        // combiner takes 4 subtree outputs).
        let mut nl = Netlist::new("xor16");
        let ins: Vec<NetId> = (0..16).map(|i| nl.input(format!("i{i}"))).collect();
        let mut layer = ins.clone();
        while layer.len() > 1 {
            layer = layer.chunks(2).map(|p| nl.xor2(p[0], p[1])).collect();
        }
        nl.output("x", layer[0]);
        let mapped = map(&nl, &MapperConfig::default());
        assert_eq!(mapped.depth, 2, "16-input XOR needs exactly 2 LUT4 levels");
        assert_eq!(mapped.luts.len(), 5, "4 leaf LUTs + 1 combiner");
        check_equivalence(&nl, &mapped, 64);
    }

    #[test]
    fn registered_design_packs_luts_with_ffs() {
        // 8-bit XOR of two buses into a register: 8 LUTs + 8 FFs → 8 LCs.
        let mut nl = Netlist::new("regxor");
        let a = nl.input_bus("a", 8);
        let b = nl.input_bus("b", 8);
        let x = nl.xor_word(&a, &b);
        let q = nl.dff_word(&x);
        nl.output_bus("q", &q);
        let mapped = map(&nl, &MapperConfig::default());
        assert_eq!(mapped.luts.len(), 8);
        assert_eq!(mapped.dff_count, 8);
        assert_eq!(mapped.logic_cells, 8, "every FF pairs with its LUT");
        check_equivalence(&nl, &mapped, 32);
    }

    #[test]
    fn unpaired_ff_costs_a_cell() {
        // A FF fed straight from a PI cannot share a LUT.
        let mut nl = Netlist::new("pipe");
        let a = nl.input("a");
        let q1 = nl.dff(a);
        let q2 = nl.dff(q1);
        nl.output("q", q2);
        let mapped = map(&nl, &MapperConfig::default());
        assert_eq!(mapped.luts.len(), 0);
        assert_eq!(mapped.logic_cells, 2);
    }

    #[test]
    fn rom_macro_is_kept_and_counted() {
        let mut contents = [0u8; 256];
        for (i, c) in contents.iter_mut().enumerate() {
            *c = (i as u8).wrapping_mul(13);
        }
        let mut nl = Netlist::new("rom");
        let addr = nl.input_bus("a", 8);
        let data = nl.rom256x8(&addr, &contents);
        nl.output_bus("d", &data);
        let mapped = map(&nl, &MapperConfig::default());
        assert_eq!(mapped.roms.len(), 1);
        assert_eq!(mapped.memory_bits(), 2048);
        assert_eq!(mapped.luts.len(), 0);
        check_equivalence(&nl, &mapped, 32);
    }

    #[test]
    fn lut_rom_maps_to_about_31_luts_per_bit() {
        // The Cyclone case: an S-box-like ROM in logic cells. The mux-tree
        // bound is 31 LUT4s per output bit (16 leaves + 15 mux nodes);
        // sharing pulls it below that.
        let contents: [u8; 256] = core::array::from_fn(|i| {
            // An S-box-grade dense table (the real S-box lives in gf256;
            // use a similar-complexity permutation here).
            let x = i as u8;
            x.wrapping_mul(167).rotate_left(3) ^ x.wrapping_mul(29).rotate_left(6) ^ 0x63
        });
        let mut nl = Netlist::new("lutrom");
        let addr = nl.input_bus("a", 8);
        let data = nl.rom256x8_lut(&addr, &contents);
        nl.output_bus("d", &data);
        let (opt, _) = crate::opt::optimize(&nl);
        let mapped = map(&opt, &MapperConfig::default());
        assert_eq!(mapped.roms.len(), 0);
        assert!(
            mapped.luts.len() <= 8 * 31,
            "mux-tree bound exceeded: {} LUTs",
            mapped.luts.len()
        );
        assert!(
            mapped.luts.len() >= 100,
            "implausibly small: {}",
            mapped.luts.len()
        );
        // 8-input function: 2 LUT4 levels cover 4+4... the mux tree gives
        // depth ≥ 3 after packing the bottom 4 levels into leaf LUTs.
        assert!(mapped.depth <= 5, "depth {} too deep", mapped.depth);
        check_equivalence(&opt, &mapped, 64);
    }

    #[test]
    fn mux_heavy_design_equivalence() {
        let mut nl = Netlist::new("muxes");
        let sel = nl.input_bus("s", 2);
        let data = nl.input_bus("d", 4);
        let lo = nl.mux2(sel[0], data[0], data[1]);
        let hi = nl.mux2(sel[0], data[2], data[3]);
        let out = nl.mux2(sel[1], lo, hi);
        nl.output("y", out);
        let mapped = map(&nl, &MapperConfig::default());
        // 4:1 mux = 6 inputs → 3 LUT4s (two leaf 2:1 muxes + combiner).
        assert!(mapped.luts.len() <= 3, "{} LUTs", mapped.luts.len());
        assert!(mapped.depth <= 2);
        check_equivalence(&nl, &mapped, 64);
    }

    #[test]
    fn feedback_register_design() {
        // 4-bit LFSR-ish: taps xor back into the shift register.
        let mut nl = Netlist::new("lfsr");
        let q = nl.dff_word_uninit(4);
        let fb = nl.xor2(q[3], q[2]);
        nl.connect_dff(q[0], fb);
        nl.connect_dff(q[1], q[0]);
        nl.connect_dff(q[2], q[1]);
        nl.connect_dff(q[3], q[2]);
        nl.output_bus("q", &q);
        nl.validate();
        let mapped = map(&nl, &MapperConfig::default());
        assert_eq!(mapped.dff_count, 4);
        assert_eq!(mapped.luts.len(), 1);
        // The feedback LUT pairs with q[0]'s FF: 1 + 4 - 1 = 4 LCs.
        assert_eq!(mapped.logic_cells, 4);
        check_equivalence(&nl, &mapped, 32);
    }
}

//! Gate-level netlists, K-LUT technology mapping, logic-cell packing and
//! static timing analysis.
//!
//! This crate is the Leonardo-Spectrum substitute of the reproduction: the
//! paper's logic-cell, memory-bit and clock-period numbers came from
//! synthesis + fitting on Altera silicon; here the same datapaths are
//! described as gate networks ([`ir`]), cleaned up ([`opt`]), mapped onto
//! 4-input LUTs with cut enumeration ([`mapper`]) and timed with a
//! fanout-aware delay model ([`sta`]). S-boxes can be kept as embedded
//! asynchronous-ROM macros or lowered to shared multiplexer trees — the
//! Acex-vs-Cyclone distinction at the heart of the paper's Table 2.
//!
//! # Examples
//!
//! ```
//! use netlist::ir::Netlist;
//! use netlist::mapper::{map, MapperConfig};
//! use netlist::opt::optimize;
//! use netlist::sta::{analyze, TimingParams};
//!
//! // A registered 8-bit XOR datapath.
//! let mut nl = Netlist::new("demo");
//! let a = nl.input_bus("a", 8);
//! let b = nl.input_bus("b", 8);
//! let x = nl.xor_word(&a, &b);
//! let q = nl.dff_word(&x);
//! nl.output_bus("q", &q);
//!
//! let (clean, _) = optimize(&nl);
//! let mapped = map(&clean, &MapperConfig::default());
//! assert_eq!(mapped.logic_cells, 8);
//! let timing = analyze(&clean, &mapped, &TimingParams::default());
//! assert!(timing.min_period > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod ir;
pub mod mapper;
pub mod opt;
pub mod power;
pub mod sta;
pub mod verify;

pub use ir::{CellKind, NetId, Netlist, NetlistStats};
pub use mapper::{map, Lut, MappedDesign, MapperConfig};
pub use opt::{optimize, OptReport};
pub use power::{estimate_power, ActivityTrace, PowerParams, PowerReport};
pub use sta::{analyze, TimingParams, TimingReport};
pub use verify::{check_mapping, check_netlists, Mismatch};

//! Equivalence checking utilities.
//!
//! Synthesis transformations (optimisation, technology mapping) must be
//! behaviour-preserving; this module provides the checks the flow uses to
//! demonstrate it: random-vector equivalence between two netlists with the
//! same interface, and between a netlist and its mapped form. For the
//! small cones inside a LUT the mapper already verifies exhaustively;
//! these checks cover whole designs where exhaustive inputs are
//! impossible, using seeded random vectors (reproducible by construction).

use std::collections::HashMap;

use crate::ir::{CellKind, NetId, Netlist};
use crate::mapper::{evaluate_mapped, MappedDesign};

/// A mismatch found during an equivalence run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Which random pattern (0-based) exposed it.
    pub pattern: u32,
    /// Name of the diverging output or `dff:<id>` for a register input.
    pub signal: String,
}

/// Deterministic xorshift for reproducible stimulus.
struct Rng(u64);

impl Rng {
    fn next_bool(&mut self) -> bool {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0 & 1 == 1
    }
}

fn dff_nets(nl: &Netlist) -> Vec<NetId> {
    nl.cells()
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c.kind, CellKind::Dff))
        .map(|(i, _)| NetId(i as u32))
        .collect()
}

/// Checks a netlist against its mapped form on `patterns` random
/// input/state vectors; primary outputs and every register's next-state
/// function must agree.
///
/// Returns the first mismatch, or `None` when equivalent on all vectors.
///
/// # Examples
///
/// ```
/// use netlist::ir::Netlist;
/// use netlist::mapper::{map, MapperConfig};
/// use netlist::verify::check_mapping;
///
/// let mut nl = Netlist::new("m");
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let x = nl.xor2(a, b);
/// nl.output("x", x);
/// let mapped = map(&nl, &MapperConfig::default());
/// assert_eq!(check_mapping(&nl, &mapped, 32, 7), None);
/// ```
#[must_use]
pub fn check_mapping(
    netlist: &Netlist,
    mapped: &MappedDesign,
    patterns: u32,
    seed: u64,
) -> Option<Mismatch> {
    let pis: Vec<NetId> = netlist.inputs().iter().map(|p| p.net).collect();
    let dffs = dff_nets(netlist);
    let mut rng = Rng(seed | 1);

    for pattern in 0..patterns {
        let iv: HashMap<NetId, bool> = pis.iter().map(|&n| (n, rng.next_bool())).collect();
        let st: HashMap<NetId, bool> = dffs.iter().map(|&n| (n, rng.next_bool())).collect();
        let gate_vals = netlist.evaluate(&iv, &st);
        let mapped_vals = evaluate_mapped(netlist, mapped, &iv, &st);

        for po in netlist.outputs() {
            if gate_vals[po.net.idx()] != mapped_vals[&po.net] {
                return Some(Mismatch {
                    pattern,
                    signal: po.name.clone(),
                });
            }
        }
        for &q in &dffs {
            let d = netlist.cell(q).inputs[0];
            if gate_vals[d.idx()] != mapped_vals[&d] {
                return Some(Mismatch {
                    pattern,
                    signal: format!("dff:{}", q.0),
                });
            }
        }
    }
    None
}

/// Checks two netlists with identical port names for combinational +
/// next-state equivalence on `patterns` random vectors.
///
/// Both designs must declare the same input/output names (order may
/// differ) and the same number of registers; registers are matched by
/// construction order.
///
/// Returns the first mismatch, or `None` when equivalent on all vectors.
///
/// # Panics
///
/// Panics if the interfaces differ (port names or register counts).
#[must_use]
pub fn check_netlists(a: &Netlist, b: &Netlist, patterns: u32, seed: u64) -> Option<Mismatch> {
    let mut a_ins: Vec<&str> = a.inputs().iter().map(|p| p.name.as_str()).collect();
    let mut b_ins: Vec<&str> = b.inputs().iter().map(|p| p.name.as_str()).collect();
    a_ins.sort_unstable();
    b_ins.sort_unstable();
    assert_eq!(a_ins, b_ins, "input interfaces differ");
    let mut a_outs: Vec<&str> = a.outputs().iter().map(|p| p.name.as_str()).collect();
    let mut b_outs: Vec<&str> = b.outputs().iter().map(|p| p.name.as_str()).collect();
    a_outs.sort_unstable();
    b_outs.sort_unstable();
    assert_eq!(a_outs, b_outs, "output interfaces differ");

    let a_dffs = dff_nets(a);
    let b_dffs = dff_nets(b);
    assert_eq!(a_dffs.len(), b_dffs.len(), "register counts differ");

    let b_out_by_name: HashMap<&str, NetId> = b
        .outputs()
        .iter()
        .map(|p| (p.name.as_str(), p.net))
        .collect();
    let b_in_by_name: HashMap<&str, NetId> = b
        .inputs()
        .iter()
        .map(|p| (p.name.as_str(), p.net))
        .collect();

    let mut rng = Rng(seed | 1);
    for pattern in 0..patterns {
        let mut a_iv: HashMap<NetId, bool> = HashMap::new();
        let mut b_iv: HashMap<NetId, bool> = HashMap::new();
        for p in a.inputs() {
            let v = rng.next_bool();
            a_iv.insert(p.net, v);
            b_iv.insert(b_in_by_name[p.name.as_str()], v);
        }
        let mut a_st: HashMap<NetId, bool> = HashMap::new();
        let mut b_st: HashMap<NetId, bool> = HashMap::new();
        for (&qa, &qb) in a_dffs.iter().zip(&b_dffs) {
            let v = rng.next_bool();
            a_st.insert(qa, v);
            b_st.insert(qb, v);
        }

        let va = a.evaluate(&a_iv, &a_st);
        let vb = b.evaluate(&b_iv, &b_st);
        for pa in a.outputs() {
            let nb = b_out_by_name[pa.name.as_str()];
            if va[pa.net.idx()] != vb[nb.idx()] {
                return Some(Mismatch {
                    pattern,
                    signal: pa.name.clone(),
                });
            }
        }
        for (&qa, &qb) in a_dffs.iter().zip(&b_dffs) {
            let da = a.cell(qa).inputs[0];
            let db = b.cell(qb).inputs[0];
            if va[da.idx()] != vb[db.idx()] {
                return Some(Mismatch {
                    pattern,
                    signal: format!("dff:{}", qa.0),
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map, MapperConfig};
    use crate::opt::optimize;

    fn adder4() -> Netlist {
        let mut nl = Netlist::new("add4");
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let mut carry = nl.constant(false);
        let mut sum = Vec::new();
        for i in 0..4 {
            let x = nl.xor2(a[i], b[i]);
            let s = nl.xor2(x, carry);
            let g = nl.and2(a[i], b[i]);
            let p = nl.and2(x, carry);
            carry = nl.or2(g, p);
            sum.push(s);
        }
        nl.output_bus("s", &sum);
        nl.output("cout", carry);
        nl
    }

    #[test]
    fn optimized_netlist_is_equivalent() {
        let nl = adder4();
        let (opt, _) = optimize(&nl);
        assert_eq!(check_netlists(&nl, &opt, 200, 42), None);
    }

    #[test]
    fn mapped_netlist_is_equivalent() {
        let nl = adder4();
        let mapped = map(&nl, &MapperConfig::default());
        assert_eq!(check_mapping(&nl, &mapped, 200, 42), None);
    }

    #[test]
    fn injected_bug_is_caught() {
        let good = adder4();
        // Rebuild with a deliberate bug: the carry generate term uses OR
        // instead of AND (a classic copy-paste slip). Note that replacing
        // the carry *merge* `g | p` with `g ^ p` would NOT be a bug —
        // generate and propagate are mutually exclusive — which is
        // exactly why equivalence is checked rather than eyeballed.
        let mut bad = Netlist::new("add4");
        let a = bad.input_bus("a", 4);
        let b = bad.input_bus("b", 4);
        let mut carry = bad.constant(false);
        let mut sum = Vec::new();
        for i in 0..4 {
            let x = bad.xor2(a[i], b[i]);
            let s = bad.xor2(x, carry);
            let g = bad.or2(a[i], b[i]); // bug: should be AND
            let p = bad.and2(x, carry);
            carry = bad.or2(g, p);
            sum.push(s);
        }
        bad.output_bus("s", &sum);
        bad.output("cout", carry);

        let hit = check_netlists(&good, &bad, 500, 1);
        assert!(hit.is_some(), "injected bug not detected");
    }

    #[test]
    #[should_panic(expected = "input interfaces differ")]
    fn interface_mismatch_rejected() {
        let a = adder4();
        let mut b = Netlist::new("other");
        let x = b.input("x");
        b.output("y", x);
        let _ = check_netlists(&a, &b, 1, 1);
    }

    #[test]
    fn sequential_designs_compared() {
        let build = |name: &str| {
            let mut nl = Netlist::new(name);
            let en = nl.input("en");
            let q = nl.dff_word_uninit(4);
            // increment when enabled
            let mut carry = en;
            let mut d = Vec::new();
            for &bit in &q {
                let s = nl.xor2(bit, carry);
                carry = nl.and2(bit, carry);
                d.push(s);
            }
            nl.connect_dff_word(&q, &d);
            nl.output_bus("q", &q);
            nl
        };
        let a = build("ctr");
        let b = build("ctr");
        assert_eq!(check_netlists(&a, &b, 100, 9), None);
    }
}

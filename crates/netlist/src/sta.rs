//! Static timing analysis over a mapped design.
//!
//! A simple but honest FPGA timing model: every LUT contributes a cell
//! delay, every net a fanout-dependent routing delay, ROM macros an
//! asynchronous access time, and registers their clock-to-out and setup
//! times. The minimum clock period is the worst register-to-register or
//! register-to-pin path — the number Quartus' timing analyzer reported as
//! the paper's "Clk" row.

use std::collections::HashMap;

use crate::ir::{CellKind, NetId, Netlist};
use crate::mapper::MappedDesign;

/// Delay parameters, in nanoseconds. Device families provide calibrated
/// instances (see the `fpga` crate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// LUT cell delay.
    pub lut_delay: f64,
    /// Base routing delay per net hop.
    pub wire_base: f64,
    /// Additional routing delay per *doubling* of fanout: FPGA routing
    /// fabrics buffer high-fanout nets, so delay grows logarithmically,
    /// not linearly (`wire = base + per_fanout · log2(fanout)`).
    pub wire_per_fanout: f64,
    /// Asynchronous embedded-ROM access time.
    pub rom_access: f64,
    /// Register clock-to-out.
    pub clk_to_q: f64,
    /// Register setup time.
    pub ff_setup: f64,
    /// Input/output pad delay.
    pub pad_delay: f64,
}

impl Default for TimingParams {
    /// Neutral unit-delay parameters for tests.
    fn default() -> Self {
        TimingParams {
            lut_delay: 1.0,
            wire_base: 0.0,
            wire_per_fanout: 0.0,
            rom_access: 1.0,
            clk_to_q: 0.0,
            ff_setup: 0.0,
            pad_delay: 0.0,
        }
    }
}

/// One node on the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathNode {
    /// The net.
    pub net: NetId,
    /// Arrival time at the net's driver output.
    pub arrival: f64,
    /// Human-readable node kind.
    pub kind: &'static str,
}

/// The timing result.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Minimum clock period in nanoseconds.
    pub min_period: f64,
    /// Maximum clock frequency in MHz.
    pub fmax_mhz: f64,
    /// The critical path, source first.
    pub critical_path: Vec<PathNode>,
    /// Where the critical path ends.
    pub endpoint: &'static str,
}

/// Runs STA and returns the minimum clock period and critical path.
///
/// # Examples
///
/// ```
/// use netlist::ir::Netlist;
/// use netlist::mapper::{map, MapperConfig};
/// use netlist::sta::{analyze, TimingParams};
///
/// let mut nl = Netlist::new("pipe");
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let q1 = nl.dff(a);
/// let q2 = nl.dff(b);
/// let x = nl.xor2(q1, q2);
/// let q3 = nl.dff(x);
/// nl.output("q", q3);
/// let mapped = map(&nl, &MapperConfig::default());
/// let report = analyze(&nl, &mapped, &TimingParams::default());
/// assert!((report.min_period - 1.0).abs() < 1e-9); // one LUT level
/// ```
#[must_use]
pub fn analyze(netlist: &Netlist, mapped: &MappedDesign, params: &TimingParams) -> TimingReport {
    // Mapped fanout per net: LUT inputs, ROM addresses, FF data, POs.
    let mut fanout: HashMap<NetId, u32> = HashMap::new();
    for lut in &mapped.luts {
        for &i in &lut.inputs {
            *fanout.entry(i).or_insert(0) += 1;
        }
    }
    for rom in &mapped.roms {
        for &a in &rom.addr {
            *fanout.entry(a).or_insert(0) += 1;
        }
    }
    for cell in netlist.cells() {
        if matches!(cell.kind, CellKind::Dff) {
            *fanout.entry(cell.inputs[0]).or_insert(0) += 1;
        }
    }
    for po in netlist.outputs() {
        *fanout.entry(po.net).or_insert(0) += 1;
    }

    let wire = |net: NetId, fanout: &HashMap<NetId, u32>| -> f64 {
        let f = fanout.get(&net).copied().unwrap_or(1).max(1);
        params.wire_base + params.wire_per_fanout * f64::from(f).log2()
    };

    // Arrival times with predecessor tracking for path reconstruction.
    let mut arrival: HashMap<NetId, f64> = HashMap::new();
    let mut pred: HashMap<NetId, Option<NetId>> = HashMap::new();

    #[allow(clippy::too_many_arguments)] // threading memo tables through recursion
    fn arr(
        net: NetId,
        netlist: &Netlist,
        mapped: &MappedDesign,
        params: &TimingParams,
        fanout: &HashMap<NetId, u32>,
        wire: &dyn Fn(NetId, &HashMap<NetId, u32>) -> f64,
        arrival: &mut HashMap<NetId, f64>,
        pred: &mut HashMap<NetId, Option<NetId>>,
    ) -> f64 {
        if let Some(&a) = arrival.get(&net) {
            return a;
        }
        let (a, p): (f64, Option<NetId>) = if let Some(&li) = mapped.lut_of_net.get(&net) {
            let lut = &mapped.luts[li];
            let mut worst = (f64::MIN, None);
            for &i in &lut.inputs {
                let t =
                    arr(i, netlist, mapped, params, fanout, wire, arrival, pred) + wire(i, fanout);
                if t > worst.0 {
                    worst = (t, Some(i));
                }
            }
            (worst.0.max(0.0) + params.lut_delay, worst.1)
        } else {
            match &netlist.cell(net).kind {
                CellKind::Input => (params.pad_delay, None),
                CellKind::Const(_) => (0.0, None),
                CellKind::Dff => (params.clk_to_q, None),
                CellKind::RomBit { .. } => {
                    let mut worst = (f64::MIN, None);
                    for &i in &netlist.cell(net).inputs {
                        let t = arr(i, netlist, mapped, params, fanout, wire, arrival, pred)
                            + wire(i, fanout);
                        if t > worst.0 {
                            worst = (t, Some(i));
                        }
                    }
                    (worst.0.max(0.0) + params.rom_access, worst.1)
                }
                other => panic!("net {net:?} ({other:?}) not visible in mapped design"),
            }
        };
        arrival.insert(net, a);
        pred.insert(net, p);
        a
    }

    // Endpoints: FF data pins (+setup) and primary outputs (+pad).
    let mut worst: (f64, Option<NetId>, &'static str) = (0.0, None, "none");
    for cell in netlist.cells() {
        if matches!(cell.kind, CellKind::Dff) {
            let d = cell.inputs[0];
            let t = arr(
                d,
                netlist,
                mapped,
                params,
                &fanout,
                &wire,
                &mut arrival,
                &mut pred,
            ) + wire(d, &fanout)
                + params.ff_setup;
            if t > worst.0 {
                worst = (t, Some(d), "register setup");
            }
        }
    }
    for po in netlist.outputs() {
        let t = arr(
            po.net,
            netlist,
            mapped,
            params,
            &fanout,
            &wire,
            &mut arrival,
            &mut pred,
        ) + wire(po.net, &fanout)
            + params.pad_delay;
        if t > worst.0 {
            worst = (t, Some(po.net), "output pad");
        }
    }

    // Reconstruct the critical path.
    let mut critical_path = Vec::new();
    let mut cursor = worst.1;
    while let Some(net) = cursor {
        let kind = if mapped.lut_of_net.contains_key(&net) {
            "LUT"
        } else {
            match &netlist.cell(net).kind {
                CellKind::Input => "input pad",
                CellKind::Dff => "register",
                CellKind::RomBit { .. } => "ROM",
                CellKind::Const(_) => "constant",
                _ => "gate",
            }
        };
        critical_path.push(PathNode {
            net,
            arrival: arrival[&net],
            kind,
        });
        cursor = pred.get(&net).copied().flatten();
    }
    critical_path.reverse();

    let min_period = worst.0.max(f64::EPSILON);
    TimingReport {
        min_period,
        fmax_mhz: 1000.0 / min_period,
        critical_path,
        endpoint: worst.2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map, MapperConfig};

    fn unit() -> TimingParams {
        TimingParams::default()
    }

    #[test]
    fn single_lut_between_registers() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let q1 = nl.dff(a);
        let x = nl.not(q1);
        let q2 = nl.dff(x);
        nl.output("q", q2);
        let mapped = map(&nl, &MapperConfig::default());
        let r = analyze(&nl, &mapped, &unit());
        assert!((r.min_period - 1.0).abs() < 1e-9, "{}", r.min_period);
        assert_eq!(r.endpoint, "register setup");
        assert!(r.critical_path.iter().any(|n| n.kind == "LUT"));
    }

    #[test]
    fn deeper_logic_is_slower() {
        // 16-input xor (2 LUT levels) vs 4-input (1 level).
        let build = |width: usize| {
            let mut nl = Netlist::new("x");
            let ins: Vec<_> = (0..width).map(|i| nl.input(format!("i{i}"))).collect();
            let regs: Vec<_> = ins.iter().map(|&i| nl.dff(i)).collect();
            let mut layer = regs;
            while layer.len() > 1 {
                layer = layer.chunks(2).map(|p| nl.xor2(p[0], p[1])).collect();
            }
            let q = nl.dff(layer[0]);
            nl.output("q", q);
            let mapped = map(&nl, &MapperConfig::default());
            analyze(&nl, &mapped, &unit()).min_period
        };
        let shallow = build(4);
        let deep = build(16);
        assert!(deep > shallow, "deep {deep} vs shallow {shallow}");
    }

    #[test]
    fn rom_access_time_counts() {
        let contents: [u8; 256] = core::array::from_fn(|i| i as u8);
        let mut nl = Netlist::new("r");
        let addr = nl.input_bus("a", 8);
        let regs = nl.dff_word(&addr);
        let data = nl.rom256x8(&regs, &contents);
        let out = nl.dff_word(&data);
        nl.output_bus("q", &out);
        let mapped = map(&nl, &MapperConfig::default());
        let params = TimingParams {
            rom_access: 5.0,
            ..unit()
        };
        let r = analyze(&nl, &mapped, &params);
        assert!((r.min_period - 5.0).abs() < 1e-9, "{}", r.min_period);
        assert!(r.critical_path.iter().any(|n| n.kind == "ROM"));
    }

    #[test]
    fn fanout_increases_delay() {
        let build = |fan: usize| {
            let mut nl = Netlist::new("f");
            let a = nl.input("a");
            let q = nl.dff(a);
            let x = nl.not(q);
            for i in 0..fan {
                let y = nl.not(x);
                let qq = nl.dff(y);
                nl.output(format!("o{i}"), qq);
            }
            let mapped = map(&nl, &MapperConfig::default());
            let params = TimingParams {
                wire_per_fanout: 0.2,
                ..unit()
            };
            analyze(&nl, &mapped, &params).min_period
        };
        assert!(build(8) > build(1));
    }

    #[test]
    fn registers_and_pads_contribute() {
        let mut nl = Netlist::new("p");
        let a = nl.input("a");
        let q = nl.dff(a);
        nl.output("q", q);
        let mapped = map(&nl, &MapperConfig::default());
        let params = TimingParams {
            clk_to_q: 2.0,
            pad_delay: 3.0,
            ..unit()
        };
        let r = analyze(&nl, &mapped, &params);
        // q (clk_to_q 2.0) + pad 3.0.
        assert!((r.min_period - 5.0).abs() < 1e-9, "{}", r.min_period);
        assert_eq!(r.endpoint, "output pad");
        assert!(r.fmax_mhz > 0.0);
    }
}

//! Activity-based dynamic-power estimation.
//!
//! The paper's §6 proposes "a power analysis of the architecture" as
//! future work (the target applications include mobile systems); this
//! module provides it. Dynamic power in CMOS is
//! `P = α · C · V² · f` — switching activity `α` is *measured* by
//! counting signal toggles while the gate-level netlist executes a real
//! workload, effective capacitance is modelled per cell with a
//! fanout-dependent wire term, and voltage/frequency come from the device
//! family.

use crate::ir::{CellKind, Netlist};

/// Per-family electrical parameters (see `fpga::power` for calibrated
/// instances).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Core supply voltage in volts.
    pub voltage: f64,
    /// Effective capacitance of a logic-cell output in picofarads.
    pub cell_cap_pf: f64,
    /// Additional wire capacitance per fanout in picofarads.
    pub wire_cap_per_fanout_pf: f64,
    /// Energy of one embedded-ROM access in picojoules.
    pub rom_access_energy_pj: f64,
    /// Clock-tree energy per flip-flop per cycle in picojoules
    /// (clock toggles regardless of data activity).
    pub clock_energy_per_ff_pj: f64,
}

/// Toggle counts collected while simulating a netlist.
#[derive(Debug, Clone)]
pub struct ActivityTrace {
    /// Toggles per net, indexed like [`Netlist::cells`].
    pub toggles: Vec<u64>,
    /// Clock cycles observed.
    pub cycles: u64,
}

impl ActivityTrace {
    /// An empty trace sized for `netlist`.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        ActivityTrace {
            toggles: vec![0; netlist.cells().len()],
            cycles: 0,
        }
    }

    /// Accumulates one clock cycle's value vector against the previous
    /// one.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the trace size.
    pub fn record(&mut self, previous: &[bool], current: &[bool]) {
        assert_eq!(
            current.len(),
            self.toggles.len(),
            "value vector size mismatch"
        );
        assert_eq!(previous.len(), current.len());
        for ((t, &p), &c) in self.toggles.iter_mut().zip(previous).zip(current) {
            if p != c {
                *t += 1;
            }
        }
        self.cycles += 1;
    }

    /// Mean switching activity (toggles per net per cycle).
    #[must_use]
    pub fn mean_activity(&self) -> f64 {
        if self.cycles == 0 || self.toggles.is_empty() {
            return 0.0;
        }
        let total: u64 = self.toggles.iter().sum();
        total as f64 / (self.cycles as f64 * self.toggles.len() as f64)
    }
}

/// Power estimate for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Total dynamic power in milliwatts at the given clock.
    pub dynamic_mw: f64,
    /// Logic (gate/mux/xor switching) component in milliwatts.
    pub logic_mw: f64,
    /// Register-output switching component in milliwatts.
    pub register_mw: f64,
    /// Embedded-ROM access component in milliwatts.
    pub rom_mw: f64,
    /// Clock-tree component in milliwatts.
    pub clock_mw: f64,
    /// Energy per clock cycle in picojoules.
    pub energy_per_cycle_pj: f64,
    /// Mean switching activity over all nets.
    pub mean_activity: f64,
}

/// Estimates dynamic power from a measured activity trace.
///
/// `clock_ns` is the clock period the design runs at (the synthesis
/// flow's timing result, or the paper's published clock).
///
/// # Panics
///
/// Panics if the trace was not collected on `netlist` or `clock_ns` is
/// not positive.
#[must_use]
pub fn estimate_power(
    netlist: &Netlist,
    activity: &ActivityTrace,
    params: &PowerParams,
    clock_ns: f64,
) -> PowerReport {
    assert_eq!(
        activity.toggles.len(),
        netlist.cells().len(),
        "activity trace does not match the netlist"
    );
    assert!(clock_ns > 0.0, "clock period must be positive");
    let cycles = activity.cycles.max(1) as f64;
    let fanout = netlist.fanouts();
    let v2 = params.voltage * params.voltage;

    let mut logic_pj = 0.0;
    let mut register_pj = 0.0;
    let mut rom_pj = 0.0;
    let mut ff_count = 0u64;

    for (i, cell) in netlist.cells().iter().enumerate() {
        let toggles = activity.toggles[i] as f64;
        let cap_pf = params.cell_cap_pf + params.wire_cap_per_fanout_pf * f64::from(fanout[i]);
        // E = 1/2 C V^2 per transition; C in pF and V in volts gives pJ.
        let switch_pj = 0.5 * cap_pf * v2 * toggles;
        match &cell.kind {
            CellKind::Dff => {
                register_pj += switch_pj;
                ff_count += 1;
            }
            CellKind::RomBit { .. } => {
                // Each output toggle implies an access; amortise the
                // array energy over the 8 bit-slices of the ROM.
                rom_pj += switch_pj + toggles * params.rom_access_energy_pj / 8.0;
            }
            CellKind::Input | CellKind::Const(_) => {}
            _ => logic_pj += switch_pj,
        }
    }
    let clock_pj = cycles * ff_count as f64 * params.clock_energy_per_ff_pj;

    let total_pj = logic_pj + register_pj + rom_pj + clock_pj;
    let energy_per_cycle_pj = total_pj / cycles;
    // mW = pJ/cycle / ns = (pJ / 1000) / (ns) * 1000 ... pJ/ns = mW.
    let to_mw = |pj: f64| pj / cycles / clock_ns;

    PowerReport {
        dynamic_mw: to_mw(total_pj),
        logic_mw: to_mw(logic_pj),
        register_mw: to_mw(register_pj),
        rom_mw: to_mw(rom_pj),
        clock_mw: to_mw(clock_pj),
        energy_per_cycle_pj,
        mean_activity: activity.mean_activity(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn params() -> PowerParams {
        PowerParams {
            voltage: 2.5,
            cell_cap_pf: 0.02,
            wire_cap_per_fanout_pf: 0.005,
            rom_access_energy_pj: 2.0,
            clock_energy_per_ff_pj: 0.05,
        }
    }

    fn toggle_workload(invert_each_cycle: bool) -> (Netlist, ActivityTrace) {
        // An 8-bit register fed by XOR against a control input.
        let mut nl = Netlist::new("p");
        let en = nl.input("en");
        let q = nl.dff_word_uninit(8);
        let d: Vec<_> = q.iter().map(|&b| nl.mux2(en, b, b)).collect();
        // mux(en, b, b) folds away; build a real toggler instead:
        let _ = d;
        let nq: Vec<_> = q.iter().map(|&b| nl.not(b)).collect();
        let d: Vec<_> = q
            .iter()
            .zip(&nq)
            .map(|(&h, &t)| nl.mux2(en, h, t))
            .collect();
        nl.connect_dff_word(&q, &d);
        nl.output_bus("q", &q);

        let mut trace = ActivityTrace::new(&nl);
        let mut state: HashMap<_, _> = q.iter().map(|&n| (n, false)).collect();
        let mut prev: Option<Vec<bool>> = None;
        for _ in 0..100 {
            let iv = HashMap::from([(en, invert_each_cycle)]);
            let vals = nl.evaluate(&iv, &state);
            for &qb in &q {
                let db = nl.cell(qb).inputs[0];
                state.insert(qb, vals[db.idx()]);
            }
            if let Some(p) = &prev {
                trace.record(p, &vals);
            }
            prev = Some(vals);
        }
        (nl, trace)
    }

    #[test]
    fn active_design_draws_more_than_idle() {
        let (nl_hot, hot) = toggle_workload(true);
        let (nl_cold, cold) = toggle_workload(false);
        let p_hot = estimate_power(&nl_hot, &hot, &params(), 10.0);
        let p_cold = estimate_power(&nl_cold, &cold, &params(), 10.0);
        assert!(
            p_hot.dynamic_mw > p_cold.dynamic_mw * 2.0,
            "hot {} vs cold {}",
            p_hot.dynamic_mw,
            p_cold.dynamic_mw
        );
        // Idle still pays the clock tree.
        assert!(p_cold.clock_mw > 0.0);
        assert!(p_cold.dynamic_mw >= p_cold.clock_mw);
    }

    #[test]
    fn voltage_scales_quadratically() {
        let (nl, trace) = toggle_workload(true);
        let lo = estimate_power(
            &nl,
            &trace,
            &PowerParams {
                voltage: 1.5,
                ..params()
            },
            10.0,
        );
        let hi = estimate_power(
            &nl,
            &trace,
            &PowerParams {
                voltage: 3.0,
                ..params()
            },
            10.0,
        );
        // Switching components scale by (3.0/1.5)^2 = 4; the clock term is
        // voltage-independent in this model, so compare logic only.
        assert!((hi.logic_mw / lo.logic_mw - 4.0).abs() < 1e-9);
    }

    #[test]
    fn faster_clock_means_more_power_same_energy() {
        let (nl, trace) = toggle_workload(true);
        let slow = estimate_power(&nl, &trace, &params(), 20.0);
        let fast = estimate_power(&nl, &trace, &params(), 10.0);
        assert!((fast.dynamic_mw / slow.dynamic_mw - 2.0).abs() < 1e-9);
        assert!((fast.energy_per_cycle_pj - slow.energy_per_cycle_pj).abs() < 1e-12);
    }

    #[test]
    fn mean_activity_bounds() {
        let (_, hot) = toggle_workload(true);
        let a = hot.mean_activity();
        assert!(a > 0.0 && a <= 1.0, "activity {a}");
    }

    #[test]
    #[should_panic(expected = "does not match the netlist")]
    fn mismatched_trace_rejected() {
        let (nl, _) = toggle_workload(true);
        let other = Netlist::new("other");
        let empty = ActivityTrace::new(&other);
        let _ = estimate_power(&nl, &empty, &params(), 10.0);
    }
}
